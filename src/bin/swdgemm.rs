//! `swdgemm` — command-line front end to the simulated SW26010 DGEMM.
//!
//! ```text
//! swdgemm run      --variant sched -m 256 -n 128 -k 256 [--alpha A] [--beta B] [--seed S]
//! swdgemm estimate [--variant sched|all] -m 9216 -n 9216 -k 9216 [--cgs 1..4]
//! swdgemm tune     [--target 9216] [--top 10]
//! swdgemm info
//! ```
//!
//! `run` executes functionally (64 simulated CPE threads) and verifies
//! against a host reference; `estimate` uses the discrete-event timing
//! model; `tune` searches the blocking space. The per-figure harnesses
//! live in the `sw-bench` crate (`cargo run -p sw-bench --bin fig6`).

use std::process::ExitCode;
use sw26010_dgemm::dgemm::gen::random_matrix;
use sw26010_dgemm::dgemm::reference::{dgemm_naive, gemm_tolerance};
use sw26010_dgemm::dgemm::timing::estimate;
use sw26010_dgemm::dgemm::tuner::tune;
use sw26010_dgemm::dgemm::{estimate_multi_cg, DgemmRunner, Variant};
use sw26010_dgemm::mem::dma::BandwidthModel;

struct Args(Vec<String>);

impl Args {
    fn flag(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(|s| s.as_str())
            // A following flag is not a value ("--variant -m 16" must
            // read as a missing value, not variant "-m").
            .filter(|v| !v.starts_with('-') || v.parse::<f64>().is_ok())
    }
    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for {name}: {v}")),
        }
    }
    fn required_num<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let v = self
            .flag(name)
            .ok_or_else(|| format!("missing required flag {name}"))?;
        v.parse()
            .map_err(|_| format!("invalid value for {name}: {v}"))
    }
}

fn parse_variant(s: &str) -> Result<Variant, String> {
    match s.to_ascii_lowercase().as_str() {
        "raw" => Ok(Variant::Raw),
        "pe" => Ok(Variant::Pe),
        "row" => Ok(Variant::Row),
        "db" => Ok(Variant::Db),
        "sched" => Ok(Variant::Sched),
        other => Err(format!("unknown variant '{other}' (raw|pe|row|db|sched)")),
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let variant = parse_variant(args.flag("--variant").unwrap_or("sched"))?;
    let m: usize = args.required_num("-m")?;
    let n: usize = args.required_num("-n")?;
    let k: usize = args.required_num("-k")?;
    let alpha: f64 = args.num("--alpha", 1.0)?;
    let beta: f64 = args.num("--beta", 1.0)?;
    let seed: u64 = args.num("--seed", 42)?;

    if m == 0 || n == 0 || k == 0 {
        return Err("dimensions must be positive".into());
    }
    let a = random_matrix(m, k, seed);
    let b = random_matrix(k, n, seed + 1);
    let mut c = random_matrix(m, n, seed + 2);
    let mut expect = c.clone();

    println!("running {variant} functionally on 64 simulated CPE threads: C = {alpha}*A*B + {beta}*C, {m}x{n}x{k}");
    let report = DgemmRunner::new(variant)
        .pad(true)
        .run(alpha, &a, &b, beta, &mut c)
        .map_err(|e| e.to_string())?;
    dgemm_naive(alpha, &a, &b, beta, &mut expect);
    let err = c.max_abs_diff(&expect);
    let tol = gemm_tolerance(&a, &b, alpha) * (1.0 + beta.abs());
    println!("  max |simulated - reference| = {err:.3e} (tolerance {tol:.3e})");
    if err > tol {
        return Err("verification FAILED".into());
    }
    println!(
        "  verified OK; DMA {} B over {} descriptors; mesh {} B; wall {:?}",
        report.stats.dma.total_bytes(),
        report.stats.dma.descriptors,
        report.stats.mesh.bytes_sent(),
        report.stats.wall
    );
    Ok(())
}

fn cmd_estimate(args: &Args) -> Result<(), String> {
    let m: usize = args.required_num("-m")?;
    let n: usize = args.required_num("-n")?;
    let k: usize = args.required_num("-k")?;
    let cgs: usize = args.num("--cgs", 1)?;
    let which = args.flag("--variant").unwrap_or("all");
    let variants: Vec<Variant> = if which == "all" {
        Variant::ALL.to_vec()
    } else {
        vec![parse_variant(which)?]
    };
    for v in variants {
        if cgs == 1 {
            let r = estimate(v, m, n, k).map_err(|e| e.to_string())?;
            println!(
                "{:<6} {:8.1} Gflops/s  ({:4.1}% of one CG's 742.4 peak; {} cycles)",
                v.name(),
                r.gflops,
                100.0 * r.efficiency,
                r.makespan_cycles
            );
        } else {
            let r = estimate_multi_cg(v, cgs, m, n, k).map_err(|e| e.to_string())?;
            println!(
                "{:<6} {:8.1} Gflops/s over {cgs} CGs ({:4.1}% of the {:.1} peak)",
                v.name(),
                r.gflops,
                100.0 * r.efficiency,
                cgs as f64 * 742.4
            );
        }
    }
    Ok(())
}

fn cmd_tune(args: &Args) -> Result<(), String> {
    let target: usize = args.num("--target", 9216)?;
    let top: usize = args.num("--top", 10)?;
    let results =
        tune(Variant::Sched, target, &BandwidthModel::calibrated()).map_err(|e| e.to_string())?;
    println!(
        "top {top} of {} staged-search survivors timed near {target}^3 \
         (analytic + stall-prover pre-rank):",
        results.len()
    );
    println!("  pM   pN   pK   LDM doubles   Gflops/s");
    for r in results.iter().take(top) {
        println!(
            "  {:>2}  {:>3}  {:>3}   {:>11}   {:>8.1}{}",
            r.params.pm,
            r.params.pn,
            r.params.pk,
            r.ldm_doubles,
            r.gflops,
            if r.params.pn == 32 && r.params.pk == 96 {
                "   <- paper"
            } else {
                ""
            }
        );
    }
    Ok(())
}

fn cmd_info() {
    use sw26010_dgemm::arch::consts::*;
    println!("simulated SW26010 core group:");
    println!(
        "  64 CPEs on an 8x8 mesh @ {CLOCK_GHZ} GHz, {FLOPS_PER_CYCLE_PER_CPE} flop/cycle each"
    );
    println!("  peak {PEAK_GFLOPS_CG:.1} Gflops/s per CG (x4 CGs per processor)");
    println!("  {LDM_BYTES} B LDM per CPE, {ICACHE_BYTES} B icache");
    println!("  DMA: {DMA_TRANSACTION_BYTES} B transactions, {DMA_THEORETICAL_GBS} GB/s channel");
    println!("  latencies: vmad {VMAD_RAW_LATENCY} cyc, register comm {REGCOMM_RAW_LATENCY} cyc");
}

fn usage() -> String {
    "usage: swdgemm <run|estimate|tune|info> [flags]\n\
     \n  run      --variant sched -m M -n N -k K [--alpha A] [--beta B] [--seed S]\
     \n  estimate [--variant V|all] -m M -n N -k K [--cgs 1..4]\
     \n  tune     [--target 9216] [--top 10]\
     \n  info"
        .into()
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = Args(argv);
    let result = match cmd.as_str() {
        "run" => cmd_run(&args),
        "estimate" => cmd_estimate(&args),
        "tune" => cmd_tune(&args),
        "info" => {
            cmd_info();
            Ok(())
        }
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
