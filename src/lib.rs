//! Umbrella crate for the SW26010 DGEMM reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests (and downstream users who just want "the library")
//! can depend on a single package:
//!
//! * [`arch`] — architectural constants and primitive types,
//! * [`mem`] — main memory, LDM scratch pads, DMA engine,
//! * [`mesh`] — the 8×8 register-communication mesh,
//! * [`isa`] — CPE instruction set, pipeline model, kernel generators,
//! * [`sim`] — the core-group simulator (functional + timing),
//! * [`dgemm`] — the paper's DGEMM: blocking, sharing scheme, variants,
//! * [`linalg`] — blocked LU / TRSM / SYRK layered on the DGEMM.

pub use sw_arch as arch;
pub use sw_dgemm as dgemm;
pub use sw_isa as isa;
pub use sw_linalg as linalg;
pub use sw_mem as mem;
pub use sw_mesh as mesh;
pub use sw_sim as sim;
