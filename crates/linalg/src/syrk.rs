//! Blocked symmetric rank-k update (`SYRK`):
//! `C ← α·A·Aᵀ + β·C`, touching only one triangle of C.
//!
//! The blocked form walks `nb × nb` tiles of the chosen triangle;
//! off-diagonal tiles are full GEMMs through the backend, diagonal
//! tiles are computed host-side (only their triangle is stored, so a
//! rectangular GEMM would overwrite the untouched half).

use crate::backend::{store, window, GemmBackend};
use crate::LinalgError;
use sw_dgemm::Matrix;

/// Which triangle of a symmetric matrix an operation references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uplo {
    /// The lower triangle.
    Lower,
    /// The upper triangle.
    Upper,
}

/// `C ← α·A·Aᵀ + β·C` on the `uplo` triangle of the n×n matrix `c`,
/// where `a` is n×k; off-triangle entries of `c` are left untouched.
pub fn syrk(
    uplo: Uplo,
    alpha: f64,
    a: &Matrix,
    beta: f64,
    c: &mut Matrix,
    nb: usize,
    backend: &dyn GemmBackend,
) -> Result<(), LinalgError> {
    let n = a.rows();
    if c.rows() != n || c.cols() != n {
        return Err(LinalgError::BadShape(format!(
            "C must be {n}x{n} to match A ({n}x{}), got {}x{}",
            a.cols(),
            c.rows(),
            c.cols()
        )));
    }
    if nb == 0 {
        return Err(LinalgError::BadShape("block width must be positive".into()));
    }
    let k = a.cols();
    let blocks: Vec<(usize, usize)> = (0..n).step_by(nb).map(|b0| (b0, nb.min(n - b0))).collect();
    for &(i0, ih) in &blocks {
        for &(j0, jh) in &blocks {
            let off_tri = match uplo {
                Uplo::Lower => i0 > j0,
                Uplo::Upper => i0 < j0,
            };
            if off_tri {
                // Full tile: C(i,j) = α·A(i,:)·A(j,:)ᵀ + β·C(i,j).
                let ai = window(a, i0, 0, ih, k);
                let ajt = Matrix::from_fn(k, jh, |r, cc| a.get(j0 + cc, r));
                let mut cij = window(c, i0, j0, ih, jh);
                backend.gemm(alpha, &ai, &ajt, beta, &mut cij)?;
                store(c, i0, j0, &cij);
            } else if i0 == j0 {
                // Diagonal tile: only its triangle is updated.
                for jj in 0..ih {
                    let range: Box<dyn Iterator<Item = usize>> = match uplo {
                        Uplo::Lower => Box::new(jj..ih),
                        Uplo::Upper => Box::new(0..=jj),
                    };
                    for ii in range {
                        let mut acc = 0.0;
                        for t in 0..k {
                            acc += a.get(i0 + ii, t) * a.get(j0 + jj, t);
                        }
                        let v = alpha * acc + beta * c.get(i0 + ii, j0 + jj);
                        c.set(i0 + ii, j0 + jj, v);
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;
    use sw_dgemm::gen::random_matrix;

    /// Dense reference: full α·A·Aᵀ + β·C.
    fn full_reference(alpha: f64, a: &Matrix, beta: f64, c: &Matrix) -> Matrix {
        let n = a.rows();
        Matrix::from_fn(n, n, |i, j| {
            let mut acc = 0.0;
            for t in 0..a.cols() {
                acc += a.get(i, t) * a.get(j, t);
            }
            alpha * acc + beta * c.get(i, j)
        })
    }

    fn check(uplo: Uplo, nb: usize) {
        let (n, k) = (40, 24);
        let a = random_matrix(n, k, 20);
        let c0 = random_matrix(n, n, 21);
        let mut c = c0.clone();
        syrk(uplo, 1.5, &a, -0.5, &mut c, nb, &Backend::Host).unwrap();
        let expect = full_reference(1.5, &a, -0.5, &c0);
        for j in 0..n {
            for i in 0..n {
                let in_tri = match uplo {
                    Uplo::Lower => i >= j,
                    Uplo::Upper => i <= j,
                };
                if in_tri {
                    assert!(
                        (c.get(i, j) - expect.get(i, j)).abs() < 1e-10,
                        "{uplo:?} nb={nb} ({i},{j})"
                    );
                } else {
                    assert_eq!(c.get(i, j), c0.get(i, j), "off-triangle must be untouched");
                }
            }
        }
    }

    #[test]
    fn lower_and_upper_various_blockings() {
        for uplo in [Uplo::Lower, Uplo::Upper] {
            for nb in [1usize, 8, 13, 40, 64] {
                check(uplo, nb);
            }
        }
    }

    #[test]
    fn result_is_symmetric_when_both_triangles_computed() {
        let (n, k) = (32, 16);
        let a = random_matrix(n, k, 22);
        let mut c = Matrix::zeros(n, n);
        syrk(Uplo::Lower, 1.0, &a, 0.0, &mut c, 8, &Backend::Host).unwrap();
        syrk(Uplo::Upper, 1.0, &a, 0.0, &mut c, 8, &Backend::Host).unwrap();
        for j in 0..n {
            for i in 0..n {
                assert!((c.get(i, j) - c.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shape_checked() {
        let a = Matrix::zeros(8, 4);
        let mut c = Matrix::zeros(7, 8);
        assert!(syrk(Uplo::Lower, 1.0, &a, 0.0, &mut c, 4, &Backend::Host).is_err());
    }
}
