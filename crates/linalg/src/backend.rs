//! GEMM backend abstraction.

use crate::LinalgError;
use sw_dgemm::reference::dgemm_naive;
use sw_dgemm::{DgemmRunner, Matrix, Variant};

/// Anything that can perform `C = α·A·B + β·C`.
pub trait GemmBackend {
    /// Performs the update in place on `c`.
    fn gemm(
        &self,
        alpha: f64,
        a: &Matrix,
        b: &Matrix,
        beta: f64,
        c: &mut Matrix,
    ) -> Result<(), LinalgError>;
}

/// The two stock backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Route through the 64-thread simulated core group with the given
    /// variant, zero-padding as needed.
    Simulated(Variant),
    /// Plain host triple loop (for tests and small problems).
    Host,
}

impl GemmBackend for Backend {
    fn gemm(
        &self,
        alpha: f64,
        a: &Matrix,
        b: &Matrix,
        beta: f64,
        c: &mut Matrix,
    ) -> Result<(), LinalgError> {
        match self {
            Backend::Simulated(v) => {
                DgemmRunner::new(*v).pad(true).run(alpha, a, b, beta, c)?;
                Ok(())
            }
            Backend::Host => {
                dgemm_naive(alpha, a, b, beta, c);
                Ok(())
            }
        }
    }
}

/// Copies the `rows × cols` window at `(r0, c0)` out of `a`.
pub(crate) fn window(a: &Matrix, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| a.get(r0 + r, c0 + c))
}

/// Writes `src` back into `a` at `(r0, c0)`.
pub(crate) fn store(a: &mut Matrix, r0: usize, c0: usize, src: &Matrix) {
    for c in 0..src.cols() {
        for r in 0..src.rows() {
            a.set(r0 + r, c0 + c, src.get(r, c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_dgemm::gen::random_matrix;
    use sw_dgemm::reference::gemm_tolerance;

    #[test]
    fn backends_agree() {
        let a = random_matrix(48, 32, 1);
        let b = random_matrix(32, 24, 2);
        let c0 = random_matrix(48, 24, 3);
        let mut c1 = c0.clone();
        let mut c2 = c0;
        Backend::Host.gemm(1.5, &a, &b, 0.5, &mut c1).unwrap();
        Backend::Simulated(Variant::Sched)
            .gemm(1.5, &a, &b, 0.5, &mut c2)
            .unwrap();
        assert!(c1.max_abs_diff(&c2) <= gemm_tolerance(&a, &b, 1.5));
    }

    #[test]
    fn window_store_roundtrip() {
        let a = random_matrix(10, 10, 4);
        let w = window(&a, 2, 3, 4, 5);
        let mut b = Matrix::zeros(10, 10);
        store(&mut b, 2, 3, &w);
        assert_eq!(b.get(3, 4), a.get(3, 4));
        assert_eq!(b.get(0, 0), 0.0);
    }
}
