//! Right-looking blocked LU with partial pivoting — the computation
//! HPL benchmarks, with its trailing-matrix GEMM (the bulk of the
//! flops) routed through the backend.

use crate::backend::{store, window, GemmBackend};
use crate::LinalgError;
use sw_dgemm::Matrix;

/// Pivot magnitudes below this are treated as singular.
const PIVOT_TOL: f64 = 1e-12;

/// The in-place factors of `P·A = L·U`.
#[derive(Debug, Clone, PartialEq)]
pub struct LuFactors {
    /// Unit-lower L below the diagonal, U on and above it.
    pub lu: Matrix,
    /// `piv[i]` = the row swapped with row `i` at elimination step `i`
    /// (LAPACK-style ipiv, 0-based).
    pub piv: Vec<usize>,
}

/// Factors a square matrix with panel width `nb`, sending every
/// trailing update `A22 ← A22 − L21·U12` through `backend`.
///
/// ```
/// use sw_linalg::{lu_factor, lu_residual, Backend};
/// use sw_dgemm::gen::random_matrix;
///
/// let a = random_matrix(64, 64, 1);
/// let f = lu_factor(&a, 16, &Backend::Host).unwrap();
/// assert!(lu_residual(&a, &f) < 1e-12);
/// ```
pub fn lu_factor(
    a: &Matrix,
    nb: usize,
    backend: &dyn GemmBackend,
) -> Result<LuFactors, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::BadShape(format!(
            "LU needs a square matrix, got {}x{}",
            n,
            a.cols()
        )));
    }
    if nb == 0 {
        return Err(LinalgError::BadShape("panel width must be positive".into()));
    }
    let mut lu = a.clone();
    let mut piv = Vec::with_capacity(n);

    for k0 in (0..n).step_by(nb) {
        let w = nb.min(n - k0);
        // --- Panel factorization with partial pivoting (host side —
        // the MPE does the panel in HPL deployments too). ---
        for j in k0..k0 + w {
            // Pivot search in column j, rows j..n.
            let (mut prow, mut pval) = (j, lu.get(j, j).abs());
            for r in j + 1..n {
                let v = lu.get(r, j).abs();
                if v > pval {
                    prow = r;
                    pval = v;
                }
            }
            if pval < PIVOT_TOL {
                return Err(LinalgError::Singular {
                    step: j,
                    pivot: pval,
                });
            }
            piv.push(prow);
            if prow != j {
                swap_rows(&mut lu, j, prow);
            }
            // Eliminate below the pivot within the panel.
            let pivv = lu.get(j, j);
            for r in j + 1..n {
                lu.set(r, j, lu.get(r, j) / pivv);
            }
            for c in j + 1..k0 + w {
                let ujc = lu.get(j, c);
                if ujc != 0.0 {
                    for r in j + 1..n {
                        lu.set(r, c, lu.get(r, c) - lu.get(r, j) * ujc);
                    }
                }
            }
        }
        let rest = n - k0 - w;
        if rest == 0 {
            continue;
        }
        // --- U12 = L11⁻¹ · A12 (small unit-lower solve, host). ---
        for c in k0 + w..n {
            for j in k0..k0 + w {
                let ajc = lu.get(j, c);
                if ajc != 0.0 {
                    for r in j + 1..k0 + w {
                        lu.set(r, c, lu.get(r, c) - lu.get(r, j) * ajc);
                    }
                }
            }
        }
        // --- Trailing update A22 -= L21 · U12 through the backend:
        // the O(n³) bulk of LU, i.e. the DGEMM the paper optimizes. ---
        let l21 = window(&lu, k0 + w, k0, rest, w);
        let u12 = window(&lu, k0, k0 + w, w, rest);
        let mut a22 = window(&lu, k0 + w, k0 + w, rest, rest);
        backend.gemm(-1.0, &l21, &u12, 1.0, &mut a22)?;
        store(&mut lu, k0 + w, k0 + w, &a22);
    }
    Ok(LuFactors { lu, piv })
}

/// Solves `A·x = b` from the factors (apply P, forward-substitute the
/// unit-lower L, back-substitute U).
pub fn lu_solve(f: &LuFactors, b: &Matrix) -> Result<Matrix, LinalgError> {
    let n = f.lu.rows();
    if b.rows() != n {
        return Err(LinalgError::BadShape(format!(
            "rhs has {} rows, matrix has {n}",
            b.rows()
        )));
    }
    let mut x = b.clone();
    // P·b.
    for (i, &p) in f.piv.iter().enumerate() {
        if p != i {
            swap_rows(&mut x, i, p);
        }
    }
    for col in 0..x.cols() {
        // L·y = Pb (unit lower).
        for i in 0..n {
            let mut v = x.get(i, col);
            for j in 0..i {
                v -= f.lu.get(i, j) * x.get(j, col);
            }
            x.set(i, col, v);
        }
        // U·x = y.
        for i in (0..n).rev() {
            let mut v = x.get(i, col);
            for j in i + 1..n {
                v -= f.lu.get(i, j) * x.get(j, col);
            }
            x.set(i, col, v / f.lu.get(i, i));
        }
    }
    Ok(x)
}

/// Max-norm residual `‖P·A − L·U‖_max`, for verification.
pub fn lu_residual(a: &Matrix, f: &LuFactors) -> f64 {
    let n = a.rows();
    // Build P·A by replaying the row swaps.
    let mut pa = a.clone();
    for (i, &p) in f.piv.iter().enumerate() {
        if p != i {
            swap_rows(&mut pa, i, p);
        }
    }
    let mut worst: f64 = 0.0;
    for j in 0..n {
        for i in 0..n {
            let mut acc = 0.0;
            for t in 0..=i.min(j) {
                let l = if t == i { 1.0 } else { f.lu.get(i, t) };
                acc += l * f.lu.get(t, j);
            }
            worst = worst.max((acc - pa.get(i, j)).abs());
        }
    }
    worst
}

fn swap_rows(m: &mut Matrix, a: usize, b: usize) {
    for c in 0..m.cols() {
        let t = m.get(a, c);
        m.set(a, c, m.get(b, c));
        m.set(b, c, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;
    use sw_dgemm::gen::random_matrix;

    fn residual_scale(a: &Matrix) -> f64 {
        a.max_abs() * a.rows() as f64 * f64::EPSILON
    }

    #[test]
    fn factor_and_solve_host_backend() {
        let n = 96;
        let a = random_matrix(n, n, 5);
        let f = lu_factor(&a, 16, &Backend::Host).unwrap();
        assert!(lu_residual(&a, &f) < 64.0 * residual_scale(&a));
        // Solve against a known solution.
        let xs = random_matrix(n, 3, 6);
        let mut b = Matrix::zeros(n, 3);
        Backend::Host.gemm(1.0, &a, &xs, 0.0, &mut b).unwrap();
        let x = lu_solve(&f, &b).unwrap();
        assert!(
            x.max_abs_diff(&xs) < 1e-8,
            "solve error {}",
            x.max_abs_diff(&xs)
        );
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // (0,0) = 0 forces an immediate pivot; without partial pivoting
        // this matrix is unfactorable.
        let mut a = random_matrix(32, 32, 7);
        a.set(0, 0, 0.0);
        let f = lu_factor(&a, 8, &Backend::Host).unwrap();
        assert_ne!(f.piv[0], 0, "step 0 must pivot away from the zero");
        assert!(lu_residual(&a, &f) < 64.0 * residual_scale(&a));
    }

    #[test]
    fn singular_matrix_detected() {
        // Rank-1 matrix.
        let n = 16;
        let u = random_matrix(n, 1, 8);
        let a = Matrix::from_fn(n, n, |r, c| u.get(r, 0) * u.get(c, 0));
        let err = lu_factor(&a, 4, &Backend::Host).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { .. }));
    }

    #[test]
    fn panel_width_spanning_cases() {
        let a = random_matrix(40, 40, 9);
        for nb in [1usize, 7, 40, 64] {
            let f = lu_factor(&a, nb, &Backend::Host).unwrap();
            assert!(
                lu_residual(&a, &f) < 64.0 * residual_scale(&a),
                "nb = {nb}: residual {}",
                lu_residual(&a, &f)
            );
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(8, 10);
        assert!(matches!(
            lu_factor(&a, 4, &Backend::Host),
            Err(LinalgError::BadShape(_))
        ));
    }
}
