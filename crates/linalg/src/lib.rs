//! Dense linear algebra built on the simulated SW26010 DGEMM.
//!
//! The paper motivates DGEMM as the performance-critical basis of HPL
//! and of dense solvers generally, and its conclusion proposes
//! extending the methodology "to other dense matrix kernels". This
//! crate is that layer: blocked algorithms whose O(n³) inner updates
//! route through the [`sw_dgemm`] public API —
//!
//! * [`lu`] — right-looking blocked LU with partial pivoting (the HPL
//!   computation) plus forward/backward solves,
//! * [`trsm`] — blocked triangular solve with multiple right-hand
//!   sides,
//! * [`mod@syrk`] — blocked symmetric rank-k update,
//!
//! all parameterized over a [`GemmBackend`] so the same algorithm runs
//! against the 64-thread simulator (`Backend::Simulated`) or a plain
//! host GEMM (`Backend::Host`) — which is also how the tests prove the
//! simulated path exact.

pub mod backend;
pub mod error;
pub mod lu;
pub mod syrk;
pub mod trsm;

pub use backend::{Backend, GemmBackend};
pub use error::LinalgError;
pub use lu::{lu_factor, lu_residual, lu_solve, LuFactors};
pub use sw_dgemm::Matrix;
pub use syrk::{syrk, Uplo};
pub use trsm::{trsm_left, Diag};
