//! Blocked triangular solve with multiple right-hand sides
//! (`TRSM`, left side): `X ← α · A⁻¹ · B` for triangular `A`.
//!
//! The blocked algorithm solves `nb × nb` diagonal blocks on the host
//! (like the panel work of LU) and eliminates the off-diagonal
//! couplings with backend GEMMs — which is where all the O(n²·nrhs)
//! flops go.

use crate::backend::{store, window, GemmBackend};
use crate::syrk::Uplo;
use crate::LinalgError;
use sw_dgemm::Matrix;

/// Whether the triangular matrix has a unit diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    /// Diagonal entries are used as stored.
    NonUnit,
    /// Diagonal entries are taken to be 1 (as in LU's L factor).
    Unit,
}

/// Solves `A · X = α · B` in place (`b` becomes `X`), with `A` lower or
/// upper triangular, using diagonal blocks of width `nb`.
pub fn trsm_left(
    uplo: Uplo,
    diag: Diag,
    alpha: f64,
    a: &Matrix,
    b: &mut Matrix,
    nb: usize,
    backend: &dyn GemmBackend,
) -> Result<(), LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::BadShape(format!(
            "TRSM needs square A, got {}x{}",
            n,
            a.cols()
        )));
    }
    if b.rows() != n {
        return Err(LinalgError::BadShape(format!(
            "B has {} rows, A is {n}x{n}",
            b.rows()
        )));
    }
    if nb == 0 {
        return Err(LinalgError::BadShape("block width must be positive".into()));
    }
    if alpha != 1.0 {
        for v in b.as_mut_slice() {
            *v *= alpha;
        }
    }
    let nrhs = b.cols();
    let blocks: Vec<(usize, usize)> = (0..n).step_by(nb).map(|k0| (k0, nb.min(n - k0))).collect();
    match uplo {
        Uplo::Lower => {
            for &(k0, w) in &blocks {
                solve_diag_block(uplo, diag, a, b, k0, w)?;
                let rest = n - k0 - w;
                if rest > 0 {
                    // B2 ← B2 − A21 · X1.
                    let a21 = window(a, k0 + w, k0, rest, w);
                    let x1 = window(b, k0, 0, w, nrhs);
                    let mut b2 = window(b, k0 + w, 0, rest, nrhs);
                    backend.gemm(-1.0, &a21, &x1, 1.0, &mut b2)?;
                    store(b, k0 + w, 0, &b2);
                }
            }
        }
        Uplo::Upper => {
            for &(k0, w) in blocks.iter().rev() {
                solve_diag_block(uplo, diag, a, b, k0, w)?;
                if k0 > 0 {
                    // B1 ← B1 − A12 · X2.
                    let a12 = window(a, 0, k0, k0, w);
                    let x2 = window(b, k0, 0, w, nrhs);
                    let mut b1 = window(b, 0, 0, k0, nrhs);
                    backend.gemm(-1.0, &a12, &x2, 1.0, &mut b1)?;
                    store(b, 0, 0, &b1);
                }
            }
        }
    }
    Ok(())
}

/// Unblocked solve of the `w × w` diagonal block at `k0` against the
/// corresponding rows of B (host side).
fn solve_diag_block(
    uplo: Uplo,
    diag: Diag,
    a: &Matrix,
    b: &mut Matrix,
    k0: usize,
    w: usize,
) -> Result<(), LinalgError> {
    for col in 0..b.cols() {
        match uplo {
            Uplo::Lower => {
                for i in k0..k0 + w {
                    let mut v = b.get(i, col);
                    for j in k0..i {
                        v -= a.get(i, j) * b.get(j, col);
                    }
                    if diag == Diag::NonUnit {
                        let d = a.get(i, i);
                        if d.abs() < 1e-300 {
                            return Err(LinalgError::Singular {
                                step: i,
                                pivot: d.abs(),
                            });
                        }
                        v /= d;
                    }
                    b.set(i, col, v);
                }
            }
            Uplo::Upper => {
                for i in (k0..k0 + w).rev() {
                    let mut v = b.get(i, col);
                    for j in i + 1..k0 + w {
                        v -= a.get(i, j) * b.get(j, col);
                    }
                    if diag == Diag::NonUnit {
                        let d = a.get(i, i);
                        if d.abs() < 1e-300 {
                            return Err(LinalgError::Singular {
                                step: i,
                                pivot: d.abs(),
                            });
                        }
                        v /= d;
                    }
                    b.set(i, col, v);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;
    use sw_dgemm::gen::random_matrix;

    /// Builds a well-conditioned triangular matrix.
    fn tri(n: usize, uplo: Uplo, seed: u64) -> Matrix {
        let r = random_matrix(n, n, seed);
        Matrix::from_fn(n, n, |i, j| {
            let keep = match uplo {
                Uplo::Lower => i >= j,
                Uplo::Upper => i <= j,
            };
            if !keep {
                0.0
            } else if i == j {
                2.0 + r.get(i, j).abs()
            } else {
                0.5 * r.get(i, j)
            }
        })
    }

    fn check(uplo: Uplo, diag: Diag, nb: usize) {
        let n = 48;
        let mut a = tri(n, uplo, 10);
        if diag == Diag::Unit {
            for i in 0..n {
                a.set(i, i, 1.0);
            }
        }
        let xs = random_matrix(n, 5, 11);
        let mut b = Matrix::zeros(n, 5);
        Backend::Host.gemm(1.0, &a, &xs, 0.0, &mut b).unwrap();
        trsm_left(uplo, diag, 1.0, &a, &mut b, nb, &Backend::Host).unwrap();
        assert!(
            b.max_abs_diff(&xs) < 1e-10,
            "{uplo:?}/{diag:?} nb={nb}: {}",
            b.max_abs_diff(&xs)
        );
    }

    #[test]
    fn lower_and_upper_all_block_widths() {
        for uplo in [Uplo::Lower, Uplo::Upper] {
            for diag in [Diag::NonUnit, Diag::Unit] {
                for nb in [1usize, 16, 48, 64] {
                    check(uplo, diag, nb);
                }
            }
        }
    }

    #[test]
    fn alpha_scaling() {
        let n = 32;
        let a = tri(n, Uplo::Lower, 12);
        let xs = random_matrix(n, 2, 13);
        let mut b = Matrix::zeros(n, 2);
        Backend::Host.gemm(1.0, &a, &xs, 0.0, &mut b).unwrap();
        // Solve A·X = 2B → X = 2·xs.
        trsm_left(
            Uplo::Lower,
            Diag::NonUnit,
            2.0,
            &a,
            &mut b,
            8,
            &Backend::Host,
        )
        .unwrap();
        let twice = Matrix::from_fn(n, 2, |r, c| 2.0 * xs.get(r, c));
        assert!(b.max_abs_diff(&twice) < 1e-10);
    }

    #[test]
    fn singular_diagonal_detected() {
        let mut a = tri(8, Uplo::Lower, 14);
        a.set(3, 3, 0.0);
        let mut b = random_matrix(8, 1, 15);
        let err = trsm_left(
            Uplo::Lower,
            Diag::NonUnit,
            1.0,
            &a,
            &mut b,
            4,
            &Backend::Host,
        )
        .unwrap_err();
        assert!(matches!(err, LinalgError::Singular { step: 3, .. }));
    }

    #[test]
    fn shape_errors() {
        let a = Matrix::zeros(8, 9);
        let mut b = Matrix::zeros(8, 1);
        assert!(trsm_left(Uplo::Lower, Diag::Unit, 1.0, &a, &mut b, 4, &Backend::Host).is_err());
        let a = Matrix::zeros(8, 8);
        let mut b = Matrix::zeros(7, 1);
        assert!(trsm_left(Uplo::Lower, Diag::Unit, 1.0, &a, &mut b, 4, &Backend::Host).is_err());
    }
}
