//! Error type of the linear-algebra layer.

use std::fmt;
use sw_dgemm::DgemmError;

/// Errors from the blocked algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The matrix is numerically singular (pivot below threshold at the
    /// given elimination step).
    Singular {
        /// Elimination step at which the pivot vanished.
        step: usize,
        /// The offending pivot magnitude.
        pivot: f64,
    },
    /// Shape mismatch between operands.
    BadShape(String),
    /// The underlying simulated GEMM failed.
    Gemm(DgemmError),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { step, pivot } => {
                write!(f, "matrix is singular: pivot {pivot:e} at step {step}")
            }
            LinalgError::BadShape(s) => write!(f, "shape error: {s}"),
            LinalgError::Gemm(e) => write!(f, "GEMM backend error: {e}"),
        }
    }
}

impl std::error::Error for LinalgError {}

impl From<DgemmError> for LinalgError {
    fn from(e: DgemmError) -> Self {
        LinalgError::Gemm(e)
    }
}
