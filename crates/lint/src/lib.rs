//! # sw-lint — whole-core-group static analyzer
//!
//! Static verification of SW26010 kernel streams and core-group plans,
//! before anything executes. Three analysis passes over a shared
//! diagnostics framework ([`diag`]):
//!
//! 1. **Mesh protocol verification** ([`mesh`]) — the 64 per-CPE
//!    streams of a plan are summarized by abstract interpretation into
//!    per-network broadcast/receive word counts, and in-order
//!    rendezvous counting per row/column group detects wedged-mesh
//!    deadlocks and orphan broadcasts (§III-B's silent failure mode).
//! 2. **LDM memory safety** ([`ldm`]) — abstract interpretation over
//!    the integer registers ([`absint`]: constants plus affine strides
//!    through `Setl`/`Addl`/`Bne` loops, summarized in closed form)
//!    yields per-instruction access ranges, checked against the 64 KB
//!    LDM bound, vector alignment, and the double-buffer layout (the
//!    DB hazard: compute touching the DMA-owned half-buffer).
//! 3. **Static stall prover** ([`stall`]) — replays the executor's
//!    dual-issue in-order timing over abstract registers, yielding a
//!    [`StallReport`](sw_isa::StallReport) that is exact on streams
//!    whose branches resolve and a per-bucket lower bound otherwise;
//!    cross-validated against `sw-probe`'s dynamic reports.
//!
//! Structural stream checks (register ranges, branch targets, i-cache
//! budget, one-role-per-network) absorb the old `sw_isa::verify` pass;
//! read-before-write is now CFG-aware ([`cfg`]) instead of bailing on
//! any stream containing a branch.
//!
//! Entry points: [`lint_stream`] for one stream, [`lint_core_group`]
//! for a full 8×8 plan (adds the mesh pass), and
//! [`stall::prove_stalls`] for the prover.

pub mod absint;
pub mod cfg;
pub mod diag;
pub mod ldm;
pub mod mesh;
pub mod stall;
pub mod structural;

pub use absint::{AbsintOptions, CommCounts, StreamSummary};
pub use diag::{codes, Diagnostic, LintReport, Severity, Span};
pub use ldm::{LdmLayout, LdmRegion};
pub use mesh::{check_mesh, rendezvous_summary};
pub use stall::{
    prove_stalls, prove_stalls_budgeted, score_stalls, score_stalls_budgeted, Bound, StallScore,
    StaticStalls,
};

use mesh::MESH_DIM;
use sw_isa::Instr;

/// Full single-stream analysis: the lint report plus the abstract
/// summary (communication counts, access ranges) the mesh pass needs.
#[derive(Debug, Clone)]
pub struct StreamAnalysis {
    /// Structural + interpretation + LDM findings, canonicalized.
    pub report: LintReport,
    /// The abstract interpreter's stream summary.
    pub summary: StreamSummary,
}

/// Analyzes one stream against an optional LDM layout.
pub fn analyze_stream(prog: &[Instr], layout: Option<&LdmLayout>) -> StreamAnalysis {
    let mut report = LintReport::new();
    report.extend(structural::check_structural(prog));
    let summary = absint::interpret(prog, &AbsintOptions::default());
    report.extend(summary.diags.clone());
    report.extend(ldm::check_ldm(&summary, layout));
    report.sort_and_dedup();
    StreamAnalysis { report, summary }
}

/// Lints one instruction stream: structural checks, abstract
/// interpretation, and LDM safety. (The mesh pass needs all 64
/// streams — see [`lint_core_group`].)
pub fn lint_stream(prog: &[Instr], layout: Option<&LdmLayout>) -> LintReport {
    analyze_stream(prog, layout).report
}

/// Lints the 64 per-CPE streams of one core-group step against a
/// shared LDM layout, including the cross-CPE mesh rendezvous pass.
///
/// `streams[row * 8 + col]` is CPE `(row, col)`'s stream. Identical
/// streams are analyzed once; their per-stream diagnostics carry the
/// coordinate of the first CPE running them.
pub fn lint_core_group(streams: &[&[Instr]], layout: Option<&LdmLayout>) -> LintReport {
    assert_eq!(
        streams.len(),
        MESH_DIM * MESH_DIM,
        "a core group has exactly 64 CPE streams"
    );
    let mut report = LintReport::new();
    let mut cache: Vec<(&[Instr], StreamAnalysis)> = Vec::new();
    let mut comm = [[CommCounts::default(); MESH_DIM]; MESH_DIM];
    let mut exact = [[true; MESH_DIM]; MESH_DIM];
    for (id, &prog) in streams.iter().enumerate() {
        let (row, col) = ((id / MESH_DIM) as u8, (id % MESH_DIM) as u8);
        let cached = cache.iter().position(|(p, _)| *p == prog);
        let analysis = match cached {
            Some(i) => &cache[i].1,
            None => {
                let mut a = analyze_stream(prog, layout);
                // Per-stream findings are deduplicated across CPEs;
                // tag them with the first coordinate that runs them.
                for d in &mut a.report.diagnostics {
                    if d.cpe.is_none() {
                        d.cpe = Some((row, col));
                    }
                }
                report.merge(a.report.clone());
                cache.push((prog, a));
                &cache.last().unwrap().1
            }
        };
        comm[row as usize][col as usize] = analysis.summary.comm;
        exact[row as usize][col as usize] = analysis.summary.exact;
    }
    report.extend(mesh::check_mesh(&comm, &exact));
    report.sort_and_dedup();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_isa::kernels::{BlockKernelCfg, KernelStyle, Operand};
    use sw_isa::{gen_block_kernel_looped, Net};

    fn role_cfg(a_src: Operand, b_src: Operand) -> BlockKernelCfg {
        BlockKernelCfg {
            pm: 16,
            pn: 8,
            pk: 16,
            a_src,
            b_src,
            a_base: 0,
            b_base: 512,
            c_base: 768,
            alpha_addr: 1024,
        }
    }

    /// Builds the 64 streams of one collective step: the CPE in mesh
    /// column `step` broadcasts A along its row, the CPE in mesh row
    /// `step` broadcasts B along its column (the PE mapping's roles).
    fn step_streams(step: usize) -> Vec<Vec<Instr>> {
        let mut out = Vec::with_capacity(64);
        for row in 0..8 {
            for col in 0..8 {
                let a_src = if col == step {
                    Operand::LdmBcast(Net::Row)
                } else {
                    Operand::Recv(Net::Row)
                };
                let b_src = if row == step {
                    Operand::LdmBcast(Net::Col)
                } else {
                    Operand::Recv(Net::Col)
                };
                out.push(gen_block_kernel_looped(
                    &role_cfg(a_src, b_src),
                    KernelStyle::Naive,
                    1,
                ));
            }
        }
        out
    }

    #[test]
    fn collective_step_lints_clean() {
        for step in [0, 3, 7] {
            let streams = step_streams(step);
            let refs: Vec<&[Instr]> = streams.iter().map(|s| s.as_slice()).collect();
            let report = lint_core_group(&refs, None);
            assert!(report.is_clean(), "step {step}:\n{}", report.render_text());
        }
    }

    #[test]
    fn unique_stream_analysis_is_shared() {
        // 64 streams but only 4 distinct role pairs → the per-stream
        // diagnostics of a bad shared stream appear once, not 49×.
        let mut streams = step_streams(0);
        for s in &mut streams {
            // Make every stream out-of-bounds in the same way.
            if let Some(Instr::Ldde { off, .. }) = s.get_mut(1) {
                *off = 9000;
            }
        }
        let refs: Vec<&[Instr]> = streams.iter().map(|s| s.as_slice()).collect();
        let report = lint_core_group(&refs, None);
        let oob: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == codes::LDM_OUT_OF_BOUNDS)
            .collect();
        assert_eq!(oob.len(), 4, "one finding per distinct stream");
    }
}
