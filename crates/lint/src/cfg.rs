//! Control-flow graph construction and the CFG-aware
//! definitely-written vector-register analysis.
//!
//! This replaces the old linear-scan read-before-write check in
//! `sw_isa::verify`, which silently skipped any stream containing a
//! `Bne`. Here the stream is split into basic blocks and a forward
//! must-initialized dataflow (intersection over predecessors, writes
//! accumulate and are never killed) decides, per program point, which
//! scratch registers are *definitely* written on every path — so
//! looped kernels are analyzed instead of skipped.

use crate::diag::{codes, Diagnostic, Severity, Span};
use sw_arch::consts::VREG_COUNT;
use sw_isa::Instr;

/// Registers v0..v15 are scratch (operand staging); reading one before
/// any write observes stale data from a previous kernel. v16..v31 are
/// C-tile accumulators whose live-in values are part of the contract.
const SCRATCH_REGS: u8 = 16;

/// A basic block: instruction indices `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Block {
    pub start: usize,
    pub end: usize,
}

/// Splits `prog` into basic blocks. Leaders: instruction 0, every
/// in-range branch target, and every instruction following a `Bne`.
pub(crate) fn basic_blocks(prog: &[Instr]) -> Vec<Block> {
    let len = prog.len();
    if len == 0 {
        return Vec::new();
    }
    let mut leader = vec![false; len];
    leader[0] = true;
    for (pc, i) in prog.iter().enumerate() {
        if let Instr::Bne { target, .. } = i {
            if *target < len {
                leader[*target] = true;
            }
            if pc + 1 < len {
                leader[pc + 1] = true;
            }
        }
    }
    let mut blocks = Vec::new();
    let mut start = 0;
    for (pc, &lead) in leader.iter().enumerate().take(len).skip(1) {
        if lead {
            blocks.push(Block { start, end: pc });
            start = pc;
        }
    }
    blocks.push(Block { start, end: len });
    blocks
}

/// Successor block indices of block `b`. A `Bne` always terminates its
/// block (the next instruction is a leader), so only the last
/// instruction matters. Out-of-range targets get no edge — the
/// structural pass flags them separately.
fn successors(prog: &[Instr], blocks: &[Block], b: usize) -> Vec<usize> {
    let blk = blocks[b];
    let mut succ = Vec::new();
    let block_of = |pc: usize| blocks.iter().position(|x| pc >= x.start && pc < x.end);
    match prog[blk.end - 1] {
        Instr::Bne { target, .. } => {
            if b + 1 < blocks.len() {
                succ.push(b + 1);
            }
            if target < prog.len() {
                if let Some(t) = block_of(target) {
                    if !succ.contains(&t) {
                        succ.push(t);
                    }
                }
            }
        }
        _ => {
            if b + 1 < blocks.len() {
                succ.push(b + 1);
            }
        }
    }
    succ
}

/// Flags every read of a scratch vector register (v0..v15) that is not
/// definitely preceded by a write on all paths from entry.
pub(crate) fn check_read_before_write(prog: &[Instr]) -> Vec<Diagnostic> {
    let blocks = basic_blocks(prog);
    if blocks.is_empty() {
        return Vec::new();
    }
    let nb = blocks.len();
    let preds: Vec<Vec<usize>> = {
        let mut preds = vec![Vec::new(); nb];
        for b in 0..nb {
            for s in successors(prog, &blocks, b) {
                preds[s].push(b);
            }
        }
        preds
    };
    // gen[b] = registers written anywhere in block b (writes are never
    // killed — once written, a register stays initialized).
    let gen: Vec<u32> = blocks
        .iter()
        .map(|blk| {
            let mut g = 0u32;
            for i in &prog[blk.start..blk.end] {
                if let Some(d) = i.vdst() {
                    if (d.0 as usize) < VREG_COUNT {
                        g |= 1 << d.0;
                    }
                }
            }
            g
        })
        .collect();
    // Must-initialized at block entry: IN = ∩ preds OUT, with the
    // entry block pinned to ∅ (nothing is initialized at stream start).
    // Non-entry blocks start at the universe so the intersection
    // converges downward to the greatest fixpoint.
    let mut inn = vec![u32::MAX; nb];
    inn[0] = 0;
    loop {
        let mut changed = false;
        for b in 0..nb {
            let mut v = if b == 0 { 0 } else { u32::MAX };
            for &p in &preds[b] {
                v &= inn[p] | gen[p];
            }
            if b == 0 {
                v = 0; // entry fact: joins with the empty initial state
            }
            if v != inn[b] {
                inn[b] = v;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Walk each block with the converged entry state and flag reads.
    let mut out = Vec::new();
    for (b, blk) in blocks.iter().enumerate() {
        let mut written = inn[b];
        for (pc, i) in prog[blk.start..blk.end].iter().enumerate() {
            let pc = blk.start + pc;
            for r in i.vsrcs() {
                if r.0 < SCRATCH_REGS && written & (1 << r.0) == 0 {
                    out.push(
                        Diagnostic::new(
                            Severity::Error,
                            codes::READ_BEFORE_WRITE,
                            format!(
                                "`{i}` reads scratch register v{} before any write reaches it",
                                r.0
                            ),
                        )
                        .with_span(Span::at(pc)),
                    );
                }
            }
            if let Some(d) = i.vdst() {
                if (d.0 as usize) < VREG_COUNT {
                    written |= 1 << d.0;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_isa::{IReg, VReg};

    #[test]
    fn straight_line_blocks() {
        let prog = vec![Instr::Vclr { d: VReg(0) }, Instr::Nop, Instr::Nop];
        let b = basic_blocks(&prog);
        assert_eq!(b, vec![Block { start: 0, end: 3 }]);
    }

    #[test]
    fn loop_splits_blocks() {
        // 0: setl r1      | block 0
        // 1: vclr v0      | block 1 (branch target)
        // 2: addl r1 -1   |
        // 3: bne r1 @1    |
        // 4: nop          | block 2
        let prog = vec![
            Instr::Setl { d: IReg(1), imm: 3 },
            Instr::Vclr { d: VReg(0) },
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: -1,
            },
            Instr::Bne {
                s: IReg(1),
                target: 1,
            },
            Instr::Nop,
        ];
        let b = basic_blocks(&prog);
        assert_eq!(
            b,
            vec![
                Block { start: 0, end: 1 },
                Block { start: 1, end: 4 },
                Block { start: 4, end: 5 },
            ]
        );
    }

    #[test]
    fn write_inside_loop_body_dominates_read_after_it() {
        // The loop body writes v0 before reading it; must be clean even
        // though the backward edge joins the pre-write entry state.
        let prog = vec![
            Instr::Setl { d: IReg(1), imm: 4 },
            Instr::Vclr { d: VReg(0) },
            Instr::Vmad {
                a: VReg(0),
                b: VReg(0),
                c: VReg(16),
                d: VReg(16),
            },
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: -1,
            },
            Instr::Bne {
                s: IReg(1),
                target: 1,
            },
        ];
        assert!(check_read_before_write(&prog).is_empty());
    }

    #[test]
    fn uninitialized_read_in_loop_flagged() {
        // v14 is never written anywhere; the old linear scan skipped
        // this stream because of the Bne.
        let prog = vec![
            Instr::Setl { d: IReg(1), imm: 2 },
            Instr::Vmad {
                a: VReg(14),
                b: VReg(14),
                c: VReg(16),
                d: VReg(16),
            },
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: -1,
            },
            Instr::Bne {
                s: IReg(1),
                target: 1,
            },
        ];
        let ds = check_read_before_write(&prog);
        assert!(!ds.is_empty());
        assert!(ds.iter().all(|d| d.code == codes::READ_BEFORE_WRITE));
        assert_eq!(ds[0].span, Some(Span::at(1)));
    }

    #[test]
    fn write_on_only_one_path_still_flagged() {
        // v2 is written only when the branch at 1 falls through is NOT
        // taken... i.e. only on one path into the read at 4.
        let prog = vec![
            Instr::Setl { d: IReg(1), imm: 1 },
            Instr::Bne {
                s: IReg(1),
                target: 3,
            },
            Instr::Vclr { d: VReg(2) },
            Instr::Nop,
            Instr::Vstd {
                s: VReg(2),
                base: IReg(0),
                off: 0,
            },
        ];
        let ds = check_read_before_write(&prog);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].span, Some(Span::at(4)));
    }

    #[test]
    fn accumulator_reads_are_contractual() {
        // v16..v31 carry live-in C-tile state; reading them cold is fine.
        let prog = vec![Instr::Vmad {
            a: VReg(16),
            b: VReg(17),
            c: VReg(18),
            d: VReg(19),
        }];
        // Sources v16/v17/v18 are all ≥ SCRATCH_REGS.
        assert!(check_read_before_write(&prog).is_empty());
    }
}
