//! Diagnostics vocabulary: severity, instruction spans, stable codes,
//! and the [`LintReport`] container with text and JSON renderers.
//!
//! The JSON format is versioned (`"schema": 1`) and fully
//! deterministic: diagnostics are sorted by (severity, code, CPE,
//! span) before rendering, so the output is golden-file stable.

use std::fmt;

/// How bad a finding is.
///
/// `Error` means the stream or plan is wrong — it deadlocks, corrupts
/// LDM, or violates the executor's contract. `Warning` flags things
/// that execute but smell (multiple broadcasters on one network,
/// addresses the analyzer cannot resolve). `Info` reports reduced
/// analysis precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Provably wrong; lint-on-build denies the plan.
    Error,
    /// Suspicious but executable.
    Warning,
    /// Analysis precision note.
    Info,
}

impl Severity {
    /// Lower-case label used by both renderers.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

/// Stable diagnostic codes. Tests and CI match on these strings, so
/// they are append-only.
pub mod codes {
    /// A vector-register operand ≥ `VREG_COUNT`.
    pub const BAD_VREG: &str = "bad-vreg";
    /// An integer-register operand ≥ `IREG_COUNT`.
    pub const BAD_IREG: &str = "bad-ireg";
    /// `Bne` target outside the program.
    pub const BAD_BRANCH_TARGET: &str = "bad-branch-target";
    /// A scratch vector register read on some path before any write.
    pub const READ_BEFORE_WRITE: &str = "read-before-write";
    /// The stream does not fit the 16 KB instruction cache.
    pub const ICACHE_OVERFLOW: &str = "icache-overflow";
    /// One stream both broadcasts and receives on the same network.
    pub const MIXED_COMM_ROLE: &str = "mixed-comm-role";
    /// An LDM access outside `[0, LDM_DOUBLES)`.
    pub const LDM_OUT_OF_BOUNDS: &str = "ldm-out-of-bounds";
    /// A vector LDM access at an address not a multiple of 4 doubles.
    pub const LDM_MISALIGNED: &str = "ldm-misaligned";
    /// An access whose base register the analyzer could not resolve.
    pub const LDM_UNKNOWN_ADDRESS: &str = "ldm-unknown-address";
    /// A kernel access overlapping the DMA-written half-buffer.
    pub const DB_HAZARD: &str = "db-hazard";
    /// A CPE waits for more mesh words than its peers broadcast.
    pub const MESH_DEADLOCK: &str = "mesh-deadlock";
    /// Broadcast words a group member never drains.
    pub const ORPHAN_BROADCAST: &str = "orphan-broadcast";
    /// More than one sender on one network in one row/column group.
    pub const MULTIPLE_BROADCASTERS: &str = "multiple-broadcasters";
    /// A loop whose counter provably never reaches zero.
    pub const RUNAWAY_LOOP: &str = "runaway-loop";
    /// Abstract interpretation stopped at its instruction budget.
    pub const ANALYSIS_BUDGET: &str = "analysis-budget";
    /// A branch on a register the analyzer could not resolve.
    pub const UNRESOLVED_BRANCH: &str = "unresolved-branch";
    /// A mesh group skipped because a member stream was inexact.
    pub const MESH_ANALYSIS_INCOMPLETE: &str = "mesh-analysis-incomplete";
}

/// An inclusive range of instruction indices (`lo..=hi`) a diagnostic
/// points at; single-instruction findings have `lo == hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// First instruction index.
    pub lo: usize,
    /// Last instruction index (inclusive).
    pub hi: usize,
}

impl Span {
    /// Span of a single instruction.
    pub fn at(pc: usize) -> Self {
        Span { lo: pc, hi: pc }
    }

    /// Span of an inclusive index range.
    pub fn range(lo: usize, hi: usize) -> Self {
        debug_assert!(lo <= hi);
        Span { lo, hi }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "@{}", self.lo)
        } else {
            write!(f, "@{}..{}", self.lo, self.hi)
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable machine-matchable code from [`codes`].
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Instruction span inside the offending stream, when applicable.
    pub span: Option<Span>,
    /// Mesh coordinate `(row, col)` of the offending CPE. For deduped
    /// per-stream findings this is the first CPE running the stream.
    pub cpe: Option<(u8, u8)>,
}

impl Diagnostic {
    /// A diagnostic with no span or CPE attached.
    pub fn new(severity: Severity, code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity,
            code,
            message: message.into(),
            span: None,
            cpe: None,
        }
    }

    /// Attaches an instruction span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attaches a CPE coordinate.
    pub fn with_cpe(mut self, row: u8, col: u8) -> Self {
        self.cpe = Some((row, col));
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity.name(), self.code)?;
        if let Some((r, c)) = self.cpe {
            write!(f, " cpe({r},{c})")?;
        }
        if let Some(s) = self.span {
            write!(f, " {s}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// An ordered, deduplicated collection of diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// The findings, sorted by [`LintReport::sort_and_dedup`].
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends many diagnostics.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// Merges another report in.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of `Error` findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of `Warning` findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// True when the report has no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one diagnostic has the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Canonicalizes: sorts by (severity, code, cpe, span, message) and
    /// removes exact duplicates (the same finding reported through
    /// several steps of a plan collapses to one line).
    pub fn sort_and_dedup(&mut self) {
        let key = |d: &Diagnostic| {
            (
                d.severity,
                d.code,
                d.cpe.unwrap_or((u8::MAX, u8::MAX)),
                d.span
                    .map(|s| (s.lo, s.hi))
                    .unwrap_or((usize::MAX, usize::MAX)),
                d.message.clone(),
            )
        };
        self.diagnostics.sort_by_key(key);
        self.diagnostics.dedup();
    }

    /// Pretty multi-line rendering: one line per diagnostic plus a
    /// summary tail.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} diagnostic(s) total\n",
            self.error_count(),
            self.warning_count(),
            self.diagnostics.len()
        ));
        out
    }

    /// Machine-readable rendering (schema 1). Deterministic given a
    /// canonicalized report; golden-file tested.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": 1,\n");
        s.push_str(&format!("  \"errors\": {},\n", self.error_count()));
        s.push_str(&format!("  \"warnings\": {},\n", self.warning_count()));
        s.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"severity\": \"{}\", ", d.severity.name()));
            s.push_str(&format!("\"code\": \"{}\", ", escape_json(d.code)));
            match d.cpe {
                Some((r, c)) => s.push_str(&format!("\"cpe\": [{r}, {c}], ")),
                None => s.push_str("\"cpe\": null, "),
            }
            match d.span {
                Some(sp) => s.push_str(&format!("\"span\": [{}, {}], ", sp.lo, sp.hi)),
                None => s.push_str("\"span\": null, "),
            }
            s.push_str(&format!("\"message\": \"{}\"", escape_json(&d.message)));
            s.push('}');
        }
        if !self.diagnostics.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Minimal JSON string escaper (the workspace is std-only by design).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_dedup() {
        let mut r = LintReport::new();
        let d = Diagnostic::new(Severity::Error, codes::LDM_OUT_OF_BOUNDS, "oob")
            .with_span(Span::at(3))
            .with_cpe(0, 1);
        r.push(d.clone());
        r.push(d);
        r.push(Diagnostic::new(
            Severity::Warning,
            codes::ANALYSIS_BUDGET,
            "budget",
        ));
        r.sort_and_dedup();
        assert_eq!(r.diagnostics.len(), 2);
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.is_clean());
        assert!(r.has_code(codes::LDM_OUT_OF_BOUNDS));
        // Errors sort first.
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
    }

    #[test]
    fn text_rendering_shape() {
        let mut r = LintReport::new();
        r.push(
            Diagnostic::new(Severity::Error, codes::MESH_DEADLOCK, "waits forever")
                .with_cpe(2, 5)
                .with_span(Span::range(4, 9)),
        );
        let t = r.render_text();
        assert!(t.contains("error[mesh-deadlock] cpe(2,5) @4..9: waits forever"));
        assert!(t.contains("1 error(s), 0 warning(s)"));
    }

    #[test]
    fn json_escapes_and_schema() {
        let mut r = LintReport::new();
        r.push(Diagnostic::new(
            Severity::Warning,
            codes::LDM_UNKNOWN_ADDRESS,
            "quote \" backslash \\ newline \n done",
        ));
        let j = r.to_json();
        assert!(j.contains("\"schema\": 1"));
        assert!(j.contains("quote \\\" backslash \\\\ newline \\n done"));
        assert!(j.contains("\"cpe\": null"));
        assert!(j.contains("\"span\": null"));
    }

    #[test]
    fn empty_report_json_is_valid_shape() {
        let j = LintReport::new().to_json();
        assert!(j.contains("\"diagnostics\": []"));
    }
}
