//! LDM memory-safety checks over the abstract interpreter's per-base
//! access ranges.
//!
//! Three properties of the 64 KB software-managed scratchpad:
//!
//! * every access lies inside `[0, LDM_DOUBLES)` — there is no MMU;
//! * vector accesses are 4-double aligned (the executor's contract);
//! * under double buffering, the compute kernel must not touch the
//!   half-buffer the in-flight DMA is writing (Algorithm 2's A/C
//!   rotation) — the *DB hazard*, a silent data race on hardware.

use crate::absint::StreamSummary;
use crate::diag::{codes, Diagnostic, Severity, Span};
use sw_arch::consts::LDM_DOUBLES;

/// One named region of the LDM layout a plan allocates.
#[derive(Debug, Clone)]
pub struct LdmRegion {
    /// Human-readable name ("A buffer 1", "C buffer 0", …).
    pub name: String,
    /// First double of the region.
    pub base: usize,
    /// Length in doubles.
    pub len: usize,
    /// True when an asynchronous DMA writes this region while the
    /// linted kernel computes (the double-buffer partner).
    pub dma_hazard: bool,
}

impl LdmRegion {
    /// A plain kernel-owned region.
    pub fn new(name: impl Into<String>, base: usize, len: usize) -> Self {
        LdmRegion {
            name: name.into(),
            base,
            len,
            dma_hazard: false,
        }
    }

    /// A region the DMA engine owns during compute.
    pub fn hazard(name: impl Into<String>, base: usize, len: usize) -> Self {
        LdmRegion {
            dma_hazard: true,
            ..LdmRegion::new(name, base, len)
        }
    }
}

/// The LDM layout a plan gives each CPE.
#[derive(Debug, Clone, Default)]
pub struct LdmLayout {
    /// All regions, in allocation order.
    pub regions: Vec<LdmRegion>,
}

/// Checks one stream's access summary against the LDM bound and, when
/// a layout is given, against its DMA-owned regions.
pub fn check_ldm(summary: &StreamSummary, layout: Option<&LdmLayout>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for a in &summary.accesses {
        let kind = if a.is_write { "store" } else { "load" };
        let shape = if a.is_vector { "vector" } else { "scalar" };
        if a.lo < 0 || a.hi + a.width > LDM_DOUBLES as i64 {
            out.push(
                Diagnostic::new(
                    Severity::Error,
                    codes::LDM_OUT_OF_BOUNDS,
                    format!(
                        "{shape} {kind} ranges over doubles {}..{} — outside the \
                         {LDM_DOUBLES}-double LDM",
                        a.lo,
                        a.hi + a.width
                    ),
                )
                .with_span(Span::at(a.pc)),
            );
        }
        if a.misaligned {
            out.push(
                Diagnostic::new(
                    Severity::Error,
                    codes::LDM_MISALIGNED,
                    format!(
                        "{shape} {kind} hits an address not 4-double aligned \
                         (range {}..{})",
                        a.lo,
                        a.hi + a.width
                    ),
                )
                .with_span(Span::at(a.pc)),
            );
        }
        if let Some(layout) = layout {
            for region in layout.regions.iter().filter(|r| r.dma_hazard) {
                let (rb, re) = (region.base as i64, (region.base + region.len) as i64);
                if a.lo < re && a.hi + a.width > rb {
                    out.push(
                        Diagnostic::new(
                            Severity::Error,
                            codes::DB_HAZARD,
                            format!(
                                "{shape} {kind} over doubles {}..{} overlaps `{}` \
                                 ({rb}..{re}), which the in-flight DMA is writing \
                                 during compute",
                                a.lo,
                                a.hi + a.width,
                                region.name
                            ),
                        )
                        .with_span(Span::at(a.pc)),
                    );
                }
            }
        }
    }
    for &pc in &summary.unknown_addrs {
        out.push(
            Diagnostic::new(
                Severity::Warning,
                codes::LDM_UNKNOWN_ADDRESS,
                "access through a base register the analyzer could not resolve; \
                 bounds not provable"
                    .to_string(),
            )
            .with_span(Span::at(pc)),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::{interpret, AbsintOptions};
    use sw_isa::{IReg, Instr, VReg};

    fn summarize(prog: &[Instr]) -> StreamSummary {
        interpret(prog, &AbsintOptions::default())
    }

    #[test]
    fn in_bounds_access_clean() {
        let prog = vec![
            Instr::Setl {
                d: IReg(0),
                imm: 8188,
            },
            Instr::Vldd {
                d: VReg(0),
                base: IReg(0),
                off: 0,
            },
        ];
        assert!(check_ldm(&summarize(&prog), None).is_empty());
    }

    #[test]
    fn out_of_bounds_flagged() {
        // 8190 + width 4 crosses the 8192-double boundary.
        let prog = vec![
            Instr::Setl {
                d: IReg(0),
                imm: 8188,
            },
            Instr::Vldd {
                d: VReg(0),
                base: IReg(0),
                off: 4,
            },
        ];
        let ds = check_ldm(&summarize(&prog), None);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, codes::LDM_OUT_OF_BOUNDS);
    }

    #[test]
    fn negative_address_flagged() {
        let prog = vec![
            Instr::Setl { d: IReg(0), imm: 0 },
            Instr::Vldd {
                d: VReg(0),
                base: IReg(0),
                off: -4,
            },
        ];
        let ds = check_ldm(&summarize(&prog), None);
        assert_eq!(ds[0].code, codes::LDM_OUT_OF_BOUNDS);
    }

    #[test]
    fn scalar_access_may_be_odd() {
        let prog = vec![
            Instr::Setl { d: IReg(0), imm: 0 },
            Instr::Ldde {
                d: VReg(8),
                base: IReg(0),
                off: 4001,
            },
        ];
        assert!(check_ldm(&summarize(&prog), None).is_empty());
    }

    #[test]
    fn hazard_overlap_flagged_with_region_name() {
        let prog = vec![
            Instr::Setl {
                d: IReg(0),
                imm: 1024,
            },
            Instr::Vldd {
                d: VReg(0),
                base: IReg(0),
                off: 0,
            },
        ];
        let layout = LdmLayout {
            regions: vec![
                LdmRegion::new("A buffer 0", 0, 1024),
                LdmRegion::hazard("A buffer 1", 1024, 1024),
            ],
        };
        let ds = check_ldm(&summarize(&prog), Some(&layout));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, codes::DB_HAZARD);
        assert!(ds[0].message.contains("A buffer 1"));
    }

    #[test]
    fn adjacent_region_is_not_overlap() {
        let prog = vec![
            Instr::Setl {
                d: IReg(0),
                imm: 1020,
            },
            Instr::Vldd {
                d: VReg(0),
                base: IReg(0),
                off: 0,
            },
        ];
        let layout = LdmLayout {
            regions: vec![LdmRegion::hazard("A buffer 1", 1024, 1024)],
        };
        assert!(check_ldm(&summarize(&prog), Some(&layout)).is_empty());
    }
}
