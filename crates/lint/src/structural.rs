//! Structural single-stream checks (the old `sw_isa::verify` absorbed
//! into the diagnostics framework).
//!
//! These are flow-insensitive facts about the instruction encoding:
//! register indices in range, branch targets inside the program, the
//! 16 KB i-cache budget, and the one-role-per-network protocol rule.
//! Read-before-write is flow-*sensitive* and routed through the CFG
//! engine ([`crate::cfg`]); address legality is value-sensitive and
//! handled by abstract interpretation ([`crate::absint`]), which
//! subsumes the old `r0`-relative misalignment scan.

use crate::cfg;
use crate::diag::{codes, Diagnostic, Severity, Span};
use sw_arch::consts::{ICACHE_BYTES, VREG_COUNT};
use sw_isa::regs::IREG_COUNT;
use sw_isa::{fits_icache, icache_footprint_bytes, Instr, Net};

/// Runs every structural check over one stream.
pub fn check_structural(prog: &[Instr]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let len = prog.len();
    let mut sent = [false; 2];
    let mut received = [false; 2];
    for (pc, i) in prog.iter().enumerate() {
        for r in i.vsrcs() {
            if (r.0 as usize) >= VREG_COUNT {
                out.push(bad_vreg(pc, i, r.0));
            }
        }
        if let Some(d) = i.vdst() {
            if (d.0 as usize) >= VREG_COUNT {
                out.push(bad_vreg(pc, i, d.0));
            }
        }
        for r in i.isrcs() {
            if (r.0 as usize) >= IREG_COUNT {
                out.push(bad_ireg(pc, i, r.0));
            }
        }
        if let Some(d) = i.idst() {
            if (d.0 as usize) >= IREG_COUNT {
                out.push(bad_ireg(pc, i, d.0));
            }
        }
        match *i {
            Instr::Bne { target, .. } if target >= len => {
                out.push(
                    Diagnostic::new(
                        Severity::Error,
                        codes::BAD_BRANCH_TARGET,
                        format!("`{i}` targets instruction {target} of a {len}-instruction stream"),
                    )
                    .with_span(Span::at(pc)),
                );
            }
            Instr::Vldr { net, .. } | Instr::Lddec { net, .. } => {
                sent[net_bit(net)] = true;
            }
            Instr::Getr { .. } => received[0] = true,
            Instr::Getc { .. } => received[1] = true,
            _ => {}
        }
    }
    for (n, name) in [(0, "row"), (1, "column")] {
        if sent[n] && received[n] {
            out.push(Diagnostic::new(
                Severity::Error,
                codes::MIXED_COMM_ROLE,
                format!(
                    "stream both broadcasts and receives on the {name} network; \
                     a step role is sender or receiver, never both"
                ),
            ));
        }
    }
    if !fits_icache(prog) {
        out.push(Diagnostic::new(
            Severity::Error,
            codes::ICACHE_OVERFLOW,
            format!(
                "stream is {} bytes, over the {ICACHE_BYTES}-byte instruction cache; \
                 use the looped generator",
                icache_footprint_bytes(prog)
            ),
        ));
    }
    out.extend(cfg::check_read_before_write(prog));
    out
}

fn net_bit(net: Net) -> usize {
    match net {
        Net::Row => 0,
        Net::Col => 1,
    }
}

fn bad_vreg(pc: usize, i: &Instr, r: u8) -> Diagnostic {
    Diagnostic::new(
        Severity::Error,
        codes::BAD_VREG,
        format!("`{i}` names v{r}, outside the {VREG_COUNT}-register vector file"),
    )
    .with_span(Span::at(pc))
}

fn bad_ireg(pc: usize, i: &Instr, r: u8) -> Diagnostic {
    Diagnostic::new(
        Severity::Error,
        codes::BAD_IREG,
        format!("`{i}` names r{r}, outside the {IREG_COUNT}-register integer file"),
    )
    .with_span(Span::at(pc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_isa::{IReg, VReg};

    #[test]
    fn bad_registers_flagged() {
        let prog = vec![
            Instr::Vclr { d: VReg(32) },
            Instr::Addl {
                d: IReg(9),
                s: IReg(9),
                imm: 1,
            },
        ];
        let ds = check_structural(&prog);
        assert!(ds.iter().any(|d| d.code == codes::BAD_VREG));
        assert!(ds.iter().any(|d| d.code == codes::BAD_IREG));
    }

    #[test]
    fn mixed_role_flagged_even_behind_branch() {
        // The old verify pass happened to survive branches here, but
        // route it through the framework and pin the behavior.
        let prog = vec![
            Instr::Setl { d: IReg(1), imm: 1 },
            Instr::Vldr {
                d: VReg(0),
                base: IReg(0),
                off: 0,
                net: Net::Row,
            },
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: -1,
            },
            Instr::Bne {
                s: IReg(1),
                target: 1,
            },
            Instr::Getr { d: VReg(1) },
        ];
        let ds = check_structural(&prog);
        assert!(ds.iter().any(|d| d.code == codes::MIXED_COMM_ROLE));
    }

    #[test]
    fn clean_stream_passes() {
        let prog = vec![
            Instr::Setl { d: IReg(0), imm: 0 },
            Instr::Vclr { d: VReg(0) },
            Instr::Vstd {
                s: VReg(0),
                base: IReg(0),
                off: 0,
            },
        ];
        assert!(check_structural(&prog).is_empty());
    }
}
