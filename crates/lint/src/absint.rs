//! Abstract interpretation of one instruction stream over the integer
//! register file.
//!
//! Integer registers hold either a known constant (`Some`) or ⊤
//! (`None`). The executor zeroes integer registers at kernel entry, so
//! the default entry state is all-zeros and every `Setl`/`Addl` chain
//! stays concrete; ⊤ only enters through an explicit caller-provided
//! entry state (used by tests and by defensive analysis of foreign
//! streams).
//!
//! Loops are not unrolled instruction by instruction: at a taken
//! backward `Bne` whose body is *simple* — straight-line, counter and
//! pointers advanced only by self-`Addl` — the interpreter derives the
//! per-iteration affine deltas and applies all remaining iterations in
//! closed form (the "per-iteration summary" of the looped generators).
//! Access ranges, alignment residues, communication word counts, and
//! the final register state are all exact under acceleration; the
//! equivalence with plain iteration is pinned by tests.

use crate::diag::{codes, Diagnostic, Severity, Span};
use sw_isa::regs::IREG_COUNT;
use sw_isa::{IReg, Instr, Net};

/// Default dynamic-instruction budget. Generated kernels finish in at
/// most a few thousand abstract steps thanks to acceleration; the
/// budget only guards hand-written streams whose loops resist
/// summarization.
pub const DEFAULT_BUDGET: u64 = 2_000_000;

/// Analysis knobs.
#[derive(Debug, Clone, Copy)]
pub struct AbsintOptions {
    /// Entry values of the integer registers (`None` = unknown). The
    /// executor zeroes them, so the default is all `Some(0)`.
    pub entry_regs: [Option<i64>; IREG_COUNT],
    /// Dynamic-instruction budget before the analysis gives up.
    pub budget: u64,
    /// Whether to apply closed-form loop summaries (disable only to
    /// cross-check acceleration against plain iteration in tests).
    pub accelerate: bool,
}

impl Default for AbsintOptions {
    fn default() -> Self {
        AbsintOptions {
            entry_regs: [Some(0); IREG_COUNT],
            budget: DEFAULT_BUDGET,
            accelerate: true,
        }
    }
}

/// Register-communication words a stream moves, per network
/// (index 0 = row, 1 = column).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommCounts {
    /// Words broadcast (`Vldr` / `Lddec`).
    pub sent: [u64; 2],
    /// Words received (`Getr` / `Getc`).
    pub recv: [u64; 2],
}

/// Index of a network in [`CommCounts`] arrays.
pub fn net_idx(net: Net) -> usize {
    match net {
        Net::Row => 0,
        Net::Col => 1,
    }
}

/// Everything the interpreter learned about one static memory
/// instruction (one `pc`), folded over all its dynamic executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSummary {
    /// Instruction index.
    pub pc: usize,
    /// True for stores (`Vstd`).
    pub is_write: bool,
    /// True for 4-double vector accesses (`Vldd`/`Vstd`/`Vldr`),
    /// false for scalar (`Ldde`/`Lddec`).
    pub is_vector: bool,
    /// Lowest start address observed (doubles).
    pub lo: i64,
    /// Highest start address observed (doubles).
    pub hi: i64,
    /// Doubles touched per execution (4 or 1).
    pub width: i64,
    /// True if any vector execution hit an address ≢ 0 (mod 4).
    pub misaligned: bool,
    /// Dynamic execution count (saturating).
    pub count: u64,
    /// Address of the most recent execution (drives acceleration).
    last: i64,
}

/// The per-stream analysis result.
#[derive(Debug, Clone, Default)]
pub struct StreamSummary {
    /// Mesh traffic the stream performs.
    pub comm: CommCounts,
    /// Per-instruction access ranges, in `pc` order.
    pub accesses: Vec<AccessSummary>,
    /// `pc`s of accesses whose base register was unknown.
    pub unknown_addrs: Vec<usize>,
    /// Dynamic instructions interpreted (accelerated iterations count).
    pub executed: u64,
    /// True when the stream was followed to termination with every
    /// branch resolved — the summary is then exact, not a prefix.
    pub exact: bool,
    /// Findings made during interpretation (runaway loops, budget,
    /// unresolved branches).
    pub diags: Vec<Diagnostic>,
}

/// `(base, offset, is_write, is_vector)` of a memory instruction.
fn access_of(i: &Instr) -> Option<(IReg, i64, bool, bool)> {
    match *i {
        Instr::Vldd { base, off, .. } => Some((base, off, false, true)),
        Instr::Vstd { base, off, .. } => Some((base, off, true, true)),
        Instr::Ldde { base, off, .. } => Some((base, off, false, false)),
        Instr::Vldr { base, off, .. } => Some((base, off, false, true)),
        Instr::Lddec { base, off, .. } => Some((base, off, false, false)),
        _ => None,
    }
}

fn ireg_ok(r: IReg) -> bool {
    (r.0 as usize) < IREG_COUNT
}

/// What the loop summarizer decided about a taken backward branch.
enum Accel {
    /// Body too complex — iterate it plainly.
    Bail,
    /// Counter provably never reaches zero.
    Runaway,
    /// `iters` further iterations run, then the branch falls through.
    Finite { iters: u64 },
}

/// Per-register net delta of one loop-body iteration, or `None` when
/// the body is not simple (inner branch, `Setl`, non-self `Addl`, or
/// an out-of-range integer register).
fn loop_deltas(prog: &[Instr], head: usize, back: usize) -> Option<[i64; IREG_COUNT]> {
    let mut deltas = [0i64; IREG_COUNT];
    for (pc, i) in prog[head..=back].iter().enumerate() {
        match *i {
            Instr::Bne { .. } if head + pc != back => return None,
            Instr::Setl { .. } => return None,
            Instr::Addl { d, s, imm } => {
                if d != s || !ireg_ok(d) {
                    return None;
                }
                deltas[d.idx()] = deltas[d.idx()].checked_add(imm)?;
            }
            _ => {}
        }
    }
    Some(deltas)
}

fn clamp_i128(x: i128) -> i64 {
    x.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

/// Interprets `prog` and folds what it does into a [`StreamSummary`].
pub fn interpret(prog: &[Instr], opts: &AbsintOptions) -> StreamSummary {
    let len = prog.len();
    let mut sum = StreamSummary {
        exact: true,
        ..Default::default()
    };
    // pc → index into sum.accesses.
    let mut slot: Vec<Option<usize>> = vec![None; len];
    // pc → address of the most recent execution of that access.
    let mut regs = opts.entry_regs;
    let mut pc = 0usize;

    let record = |sum: &mut StreamSummary,
                  slot: &mut Vec<Option<usize>>,
                  pc: usize,
                  addr: i64,
                  is_write: bool,
                  is_vector: bool| {
        let idx = *slot[pc].get_or_insert_with(|| {
            sum.accesses.push(AccessSummary {
                pc,
                is_write,
                is_vector,
                lo: addr,
                hi: addr,
                width: if is_vector { 4 } else { 1 },
                misaligned: false,
                count: 0,
                last: addr,
            });
            sum.accesses.len() - 1
        });
        let a = &mut sum.accesses[idx];
        a.lo = a.lo.min(addr);
        a.hi = a.hi.max(addr);
        a.count = a.count.saturating_add(1);
        a.last = addr;
        if is_vector && addr.rem_euclid(4) != 0 {
            a.misaligned = true;
        }
    };

    while pc < len {
        if sum.executed >= opts.budget {
            sum.diags.push(
                Diagnostic::new(
                    Severity::Warning,
                    codes::ANALYSIS_BUDGET,
                    format!(
                        "abstract interpretation stopped after {} instructions; \
                         the summary covers only a prefix of the stream",
                        sum.executed
                    ),
                )
                .with_span(Span::at(pc)),
            );
            sum.exact = false;
            return sum;
        }
        sum.executed += 1;
        let instr = prog[pc];

        match instr {
            Instr::Vldr { net, .. } | Instr::Lddec { net, .. } => {
                sum.comm.sent[net_idx(net)] = sum.comm.sent[net_idx(net)].saturating_add(1);
            }
            Instr::Getr { .. } => sum.comm.recv[0] = sum.comm.recv[0].saturating_add(1),
            Instr::Getc { .. } => sum.comm.recv[1] = sum.comm.recv[1].saturating_add(1),
            _ => {}
        }

        if let Some((base, off, w, v)) = access_of(&instr) {
            match regs.get(base.0 as usize).copied().flatten() {
                Some(b) => record(&mut sum, &mut slot, pc, b.saturating_add(off), w, v),
                None => {
                    if !sum.unknown_addrs.contains(&pc) {
                        sum.unknown_addrs.push(pc);
                    }
                }
            }
        }

        match instr {
            Instr::Setl { d, imm } if ireg_ok(d) => regs[d.idx()] = Some(imm),
            Instr::Addl { d, s, imm } if ireg_ok(d) => {
                regs[d.idx()] = regs
                    .get(s.0 as usize)
                    .copied()
                    .flatten()
                    .map(|x| x.saturating_add(imm));
            }
            Instr::Bne { s, target } => {
                let v = regs.get(s.0 as usize).copied().flatten();
                match v {
                    None => {
                        sum.diags.push(
                            Diagnostic::new(
                                Severity::Warning,
                                codes::UNRESOLVED_BRANCH,
                                format!(
                                    "`{instr}` branches on r{} whose value is unknown; \
                                     the summary covers only a prefix of the stream",
                                    s.0
                                ),
                            )
                            .with_span(Span::at(pc)),
                        );
                        sum.exact = false;
                        return sum;
                    }
                    Some(0) => {
                        pc += 1;
                        continue;
                    }
                    Some(cur) => {
                        // Taken. Try the closed-form summary for simple
                        // backward self-loops.
                        let accel = if opts.accelerate && target <= pc && ireg_ok(s) {
                            match loop_deltas(prog, target, pc) {
                                None => Accel::Bail,
                                Some(deltas) => {
                                    let d = deltas[s.idx()];
                                    let bases_known = prog[target..=pc].iter().all(|i| {
                                        access_of(i).is_none_or(|(b, ..)| {
                                            regs.get(b.0 as usize).copied().flatten().is_some()
                                        })
                                    });
                                    if !bases_known {
                                        Accel::Bail
                                    } else if d == 0 || cur % d != 0 || -(cur / d) <= 0 {
                                        // Counter stuck, stepping away
                                        // from zero, or stepping over it:
                                        // `bne` compares for exact zero,
                                        // so the loop never exits.
                                        Accel::Runaway
                                    } else {
                                        Accel::Finite {
                                            iters: (-(cur / d)) as u64,
                                        }
                                    }
                                }
                            }
                        } else {
                            Accel::Bail
                        };
                        match accel {
                            Accel::Bail => {
                                if target >= len {
                                    return sum; // structural pass flags the target
                                }
                                pc = target;
                                continue;
                            }
                            Accel::Runaway => {
                                sum.diags.push(
                                    Diagnostic::new(
                                        Severity::Error,
                                        codes::RUNAWAY_LOOP,
                                        format!(
                                            "loop at {}..={pc} never terminates: counter r{} \
                                             (value {cur}) steps by {} per iteration and never \
                                             reaches zero",
                                            target,
                                            s.0,
                                            loop_deltas(prog, target, pc)
                                                .map(|d| d[s.idx()])
                                                .unwrap_or(0),
                                        ),
                                    )
                                    .with_span(Span::range(target, pc)),
                                );
                                sum.exact = false;
                                return sum;
                            }
                            Accel::Finite { iters } => {
                                let deltas = loop_deltas(prog, target, pc)
                                    .expect("deltas re-derivable for accelerated loop");
                                let r = iters as i128;
                                for (pc2, i2) in prog[target..=pc].iter().enumerate() {
                                    let pc2 = target + pc2;
                                    match *i2 {
                                        Instr::Vldr { net, .. } | Instr::Lddec { net, .. } => {
                                            let n = net_idx(net);
                                            sum.comm.sent[n] =
                                                sum.comm.sent[n].saturating_add(iters);
                                        }
                                        Instr::Getr { .. } => {
                                            sum.comm.recv[0] =
                                                sum.comm.recv[0].saturating_add(iters)
                                        }
                                        Instr::Getc { .. } => {
                                            sum.comm.recv[1] =
                                                sum.comm.recv[1].saturating_add(iters)
                                        }
                                        _ => {}
                                    }
                                    if let Some((b, _, _, is_vec)) = access_of(i2) {
                                        let sd = deltas[b.idx()] as i128;
                                        let idx = slot[pc2]
                                            .expect("accelerated access executed this iteration");
                                        let a = &mut sum.accesses[idx];
                                        let a0 = a.last as i128;
                                        let first = clamp_i128(a0 + sd);
                                        let end = clamp_i128(a0 + r * sd);
                                        a.lo = a.lo.min(first).min(end);
                                        a.hi = a.hi.max(first).max(end);
                                        if is_vec && sd.rem_euclid(4) != 0 {
                                            // Stride not 0 mod 4: four
                                            // consecutive iterations cover
                                            // every residue that occurs.
                                            for i in 1..=iters.min(4) as i128 {
                                                if (a0 + i * sd).rem_euclid(4) != 0 {
                                                    a.misaligned = true;
                                                }
                                            }
                                        }
                                        a.count = a.count.saturating_add(iters);
                                        a.last = end;
                                    }
                                }
                                for (ri, d) in deltas.iter().enumerate() {
                                    if *d != 0 {
                                        regs[ri] = regs[ri]
                                            .map(|x| clamp_i128(x as i128 + r * *d as i128));
                                    }
                                }
                                debug_assert_eq!(regs[s.idx()], Some(0));
                                let body = (pc - target + 1) as u64;
                                sum.executed =
                                    sum.executed.saturating_add(iters.saturating_mul(body));
                                pc += 1;
                                continue;
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        pc += 1;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_isa::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
    use sw_isa::{gen_block_kernel_looped, VReg};

    fn cfg(a_src: Operand, b_src: Operand) -> BlockKernelCfg {
        BlockKernelCfg {
            pm: 16,
            pn: 8,
            pk: 16,
            a_src,
            b_src,
            a_base: 0,
            b_base: 2048,
            c_base: 4096,
            alpha_addr: 8000,
        }
    }

    /// Strips acceleration-independent fields for comparison.
    fn key(s: &StreamSummary) -> (CommCounts, Vec<AccessSummary>, bool) {
        (s.comm, s.accesses.clone(), s.exact)
    }

    #[test]
    fn acceleration_matches_plain_iteration() {
        for style in [KernelStyle::Naive, KernelStyle::Scheduled] {
            for unroll in [1usize, 2, 4] {
                let c = cfg(Operand::LdmBcast(Net::Row), Operand::Recv(Net::Col));
                let prog = gen_block_kernel_looped(&c, style, unroll);
                let fast = interpret(&prog, &AbsintOptions::default());
                let slow = interpret(
                    &prog,
                    &AbsintOptions {
                        accelerate: false,
                        ..Default::default()
                    },
                );
                assert!(fast.exact && slow.exact);
                assert_eq!(key(&fast), key(&slow), "style {style:?} unroll {unroll}");
                assert_eq!(fast.executed, slow.executed);
            }
        }
    }

    #[test]
    fn looped_and_unrolled_agree_on_ranges_and_comm() {
        let c = cfg(Operand::Recv(Net::Row), Operand::LdmBcast(Net::Col));
        let unrolled = interpret(
            &gen_block_kernel(&c, KernelStyle::Naive),
            &AbsintOptions::default(),
        );
        let looped = interpret(
            &gen_block_kernel_looped(&c, KernelStyle::Naive, 1),
            &AbsintOptions::default(),
        );
        assert_eq!(unrolled.comm, looped.comm);
        // Same footprint: fold per-pc ranges into per-stream extremes.
        let fold = |s: &StreamSummary| {
            let lo = s.accesses.iter().map(|a| a.lo).min().unwrap();
            let hi = s.accesses.iter().map(|a| a.hi + a.width).max().unwrap();
            (lo, hi)
        };
        assert_eq!(fold(&unrolled), fold(&looped));
    }

    #[test]
    fn comm_counts_match_the_collective_scheme() {
        // A broadcast on the row net: (pn/4)·pk·4 words; B on the
        // column net: (pn/4)·pk·4 splatted scalars.
        let c = cfg(Operand::LdmBcast(Net::Row), Operand::LdmBcast(Net::Col));
        let s = interpret(
            &gen_block_kernel_looped(&c, KernelStyle::Naive, 1),
            &AbsintOptions::default(),
        );
        assert!(s.exact);
        assert_eq!(s.comm.sent, [2 * 16 * 4, 2 * 16 * 4]);
        assert_eq!(s.comm.recv, [0, 0]);
        let r = interpret(
            &gen_block_kernel_looped(
                &cfg(Operand::Recv(Net::Row), Operand::Recv(Net::Col)),
                KernelStyle::Naive,
                1,
            ),
            &AbsintOptions::default(),
        );
        assert_eq!(r.comm.recv, [2 * 16 * 4, 2 * 16 * 4]);
        assert_eq!(r.comm.sent, [0, 0]);
    }

    #[test]
    fn runaway_loop_detected() {
        // Counter steps by −2 from 3: hits 1 then −1, never 0.
        let prog = vec![
            Instr::Setl { d: IReg(1), imm: 3 },
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: -2,
            },
            Instr::Bne {
                s: IReg(1),
                target: 1,
            },
        ];
        let s = interpret(&prog, &AbsintOptions::default());
        assert!(!s.exact);
        assert!(s.diags.iter().any(|d| d.code == codes::RUNAWAY_LOOP));
    }

    #[test]
    fn counter_stepping_away_from_zero_is_runaway() {
        let prog = vec![
            Instr::Setl { d: IReg(1), imm: 1 },
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: 1,
            },
            Instr::Bne {
                s: IReg(1),
                target: 1,
            },
        ];
        let s = interpret(&prog, &AbsintOptions::default());
        assert!(s.diags.iter().any(|d| d.code == codes::RUNAWAY_LOOP));
    }

    #[test]
    fn unknown_branch_counter_yields_prefix() {
        let mut opts = AbsintOptions::default();
        opts.entry_regs[1] = None;
        let prog = vec![
            Instr::Vclr { d: VReg(0) },
            Instr::Bne {
                s: IReg(1),
                target: 0,
            },
            Instr::Vclr { d: VReg(1) },
        ];
        let s = interpret(&prog, &opts);
        assert!(!s.exact);
        assert!(s.diags.iter().any(|d| d.code == codes::UNRESOLVED_BRANCH));
        assert_eq!(s.executed, 2);
    }

    #[test]
    fn unknown_base_is_reported_not_crashed() {
        let mut opts = AbsintOptions::default();
        opts.entry_regs[0] = None;
        let prog = vec![Instr::Vldd {
            d: VReg(0),
            base: IReg(0),
            off: 8,
        }];
        let s = interpret(&prog, &opts);
        assert_eq!(s.unknown_addrs, vec![0]);
        assert!(s.accesses.is_empty());
        assert!(s.exact);
    }

    #[test]
    fn misaligned_stride_caught_by_residue_scan() {
        // Vector load striding by 2: every other iteration misaligned.
        let prog = vec![
            Instr::Setl { d: IReg(0), imm: 0 },
            Instr::Setl { d: IReg(1), imm: 8 },
            Instr::Vldd {
                d: VReg(0),
                base: IReg(0),
                off: 0,
            },
            Instr::Addl {
                d: IReg(0),
                s: IReg(0),
                imm: 2,
            },
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: -1,
            },
            Instr::Bne {
                s: IReg(1),
                target: 2,
            },
        ];
        let s = interpret(&prog, &AbsintOptions::default());
        assert!(s.exact);
        let a = &s.accesses[0];
        assert!(a.misaligned);
        assert_eq!(a.count, 8);
        assert_eq!((a.lo, a.hi), (0, 14));
    }

    #[test]
    fn budget_stop_is_a_warning_prefix() {
        let prog = vec![
            Instr::Setl {
                d: IReg(1),
                imm: 100,
            },
            Instr::Nop,
            Instr::Vclr { d: VReg(0) }, // breaks loop simplicity? no — no ireg write
            Instr::Setl { d: IReg(2), imm: 7 }, // Setl inside body forces Bail
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: -1,
            },
            Instr::Bne {
                s: IReg(1),
                target: 1,
            },
        ];
        let s = interpret(
            &prog,
            &AbsintOptions {
                budget: 50,
                ..Default::default()
            },
        );
        assert!(!s.exact);
        assert!(s.diags.iter().any(|d| d.code == codes::ANALYSIS_BUDGET));
    }
}
