//! Cross-CPE mesh protocol verification.
//!
//! The register-communication networks are blocking, in-order, and
//! group-scoped: a row broadcast delivers one word to the other seven
//! CPEs of the sender's mesh row; `getr` blocks until a word arrives.
//! For a step to complete, every CPE of every row (and column) group
//! must receive *exactly* the words its peers broadcast:
//!
//! * receives > peer broadcasts → some `getr`/`getc` blocks forever —
//!   the wedged-mesh deadlock of §III-B;
//! * receives < peer broadcasts → orphan words are left in flight and
//!   wedge the *next* step's traffic.
//!
//! The check is pure counting over the per-stream [`CommCounts`] the
//! abstract interpreter proves, so it is exact whenever every member
//! stream was followed to termination.

use crate::absint::CommCounts;
use crate::diag::{codes, Diagnostic, Severity};

/// Side length of the square CPE mesh (8×8 = `CPES_PER_CG`).
pub const MESH_DIM: usize = 8;

/// Verifies rendezvous counts for all 8 row groups on the row network
/// and all 8 column groups on the column network.
///
/// `comm[r][c]` / `exact[r][c]` are the per-CPE summaries (mesh row
/// `r`, mesh column `c`).
pub fn check_mesh(
    comm: &[[CommCounts; MESH_DIM]; MESH_DIM],
    exact: &[[bool; MESH_DIM]; MESH_DIM],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // net 0 = row network (groups are mesh rows), net 1 = column
    // network (groups are mesh columns).
    for (net, net_name) in [(0usize, "row"), (1, "column")] {
        for g in 0..8 {
            let members: Vec<(u8, u8)> = (0..8)
                .map(|m| {
                    if net == 0 {
                        (g as u8, m as u8)
                    } else {
                        (m as u8, g as u8)
                    }
                })
                .collect();
            if members.iter().any(|&(r, c)| !exact[r as usize][c as usize]) {
                out.push(Diagnostic::new(
                    Severity::Info,
                    codes::MESH_ANALYSIS_INCOMPLETE,
                    format!(
                        "{net_name} group {g}: a member stream was not fully analyzed; \
                         rendezvous counting skipped"
                    ),
                ));
                continue;
            }
            let sent: Vec<u64> = members
                .iter()
                .map(|&(r, c)| comm[r as usize][c as usize].sent[net])
                .collect();
            let total: u64 = sent.iter().sum();
            let senders = sent.iter().filter(|&&s| s > 0).count();
            if senders > 1 {
                out.push(Diagnostic::new(
                    Severity::Warning,
                    codes::MULTIPLE_BROADCASTERS,
                    format!(
                        "{net_name} group {g}: {senders} CPEs broadcast on the {net_name} \
                         network; the collective scheme has one sender per group per step"
                    ),
                ));
            }
            for (m, &(r, c)) in members.iter().enumerate() {
                let recv = comm[r as usize][c as usize].recv[net];
                let expected = total - sent[m];
                if recv > expected {
                    out.push(
                        Diagnostic::new(
                            Severity::Error,
                            codes::MESH_DEADLOCK,
                            format!(
                                "CPE ({r},{c}) waits for {recv} words on the {net_name} \
                                 network but its group peers broadcast only {expected}; \
                                 the receive blocks forever and wedges the mesh"
                            ),
                        )
                        .with_cpe(r, c),
                    );
                } else if recv < expected {
                    out.push(
                        Diagnostic::new(
                            Severity::Error,
                            codes::ORPHAN_BROADCAST,
                            format!(
                                "CPE ({r},{c}) drains {recv} of the {expected} words its \
                                 {net_name}-group peers broadcast; {} orphan words are \
                                 left in flight",
                                expected - recv
                            ),
                        )
                        .with_cpe(r, c),
                    );
                }
            }
        }
    }
    out
}

/// Renders the mesh-pass verdict over *observed* per-CPE traffic as a
/// human-readable rendezvous summary — the diagnostic attached to a
/// runtime mesh-deadlock error.
///
/// The runtime feeds the counts it actually saw at teardown (with each
/// timed-out receive counted as one word of unmet demand), so the same
/// counting that statically proves a scheme deadlock-free here *names*
/// the wedged row/column group of a live failure. Balanced groups
/// contribute nothing; a fully balanced grid reports itself as such.
pub fn rendezvous_summary(comm: &[[CommCounts; MESH_DIM]; MESH_DIM]) -> String {
    let ds = check_mesh(comm, &[[true; MESH_DIM]; MESH_DIM]);
    if ds.is_empty() {
        return "all row/column rendezvous groups balanced".to_string();
    }
    let lines: Vec<String> = ds
        .iter()
        .map(|d| format!("{}: {}", d.code, d.message))
        .collect();
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> ([[CommCounts; 8]; 8], [[bool; 8]; 8]) {
        ([[CommCounts::default(); 8]; 8], [[true; 8]; 8])
    }

    /// One sender per row group on the row net, 128 words each.
    fn clean_row_step(comm: &mut [[CommCounts; 8]; 8], sender_col: usize) {
        for row in comm.iter_mut() {
            for (c, cell) in row.iter_mut().enumerate() {
                if c == sender_col {
                    cell.sent[0] = 128;
                } else {
                    cell.recv[0] = 128;
                }
            }
        }
    }

    #[test]
    fn clean_collective_step_passes() {
        let (mut comm, exact) = grid();
        clean_row_step(&mut comm, 3);
        assert!(check_mesh(&comm, &exact).is_empty());
    }

    #[test]
    fn extra_receive_is_deadlock() {
        let (mut comm, exact) = grid();
        clean_row_step(&mut comm, 0);
        comm[2][5].recv[0] += 1;
        let ds = check_mesh(&comm, &exact);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, codes::MESH_DEADLOCK);
        assert_eq!(ds[0].cpe, Some((2, 5)));
    }

    #[test]
    fn dropped_receive_is_orphan() {
        let (mut comm, exact) = grid();
        clean_row_step(&mut comm, 0);
        comm[4][1].recv[0] -= 4;
        let ds = check_mesh(&comm, &exact);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, codes::ORPHAN_BROADCAST);
        assert_eq!(ds[0].cpe, Some((4, 1)));
    }

    #[test]
    fn two_senders_warned() {
        let (mut comm, exact) = grid();
        // Two senders in row 0; receivers drain both, so counts still
        // balance — only the protocol-shape warning fires.
        comm[0][0].sent[0] = 10;
        comm[0][1].sent[0] = 6;
        for cell in comm[0].iter_mut() {
            let own = cell.sent[0];
            cell.recv[0] = 16 - own;
        }
        let ds = check_mesh(&comm, &exact);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, codes::MULTIPLE_BROADCASTERS);
    }

    #[test]
    fn rendezvous_summary_names_the_starving_group() {
        let (mut comm, _) = grid();
        // CPE (2,5) demanded one word on the row network that nobody
        // broadcast — the runtime signature of a wedged sender.
        comm[2][5].recv[0] = 1;
        let s = rendezvous_summary(&comm);
        assert!(s.contains(codes::MESH_DEADLOCK), "summary: {s}");
        assert!(s.contains("(2,5)"), "summary must name the CPE: {s}");

        let (balanced, _) = grid();
        assert_eq!(
            rendezvous_summary(&balanced),
            "all row/column rendezvous groups balanced"
        );
    }

    #[test]
    fn inexact_member_skips_group() {
        let (mut comm, mut exact) = grid();
        clean_row_step(&mut comm, 0);
        comm[1][2].recv[0] += 7; // would be a deadlock…
        exact[1][2] = false; // …but the stream wasn't fully analyzed
        let ds = check_mesh(&comm, &exact);
        // The inexact CPE sits in one row group and one column group;
        // both are skipped with an Info instead of reporting errors.
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|d| d.code == codes::MESH_ANALYSIS_INCOMPLETE));
    }
}
