//! Static stall prover: a pipeline dataflow pass that reproduces the
//! executor's dual-issue in-order timing — scoreboard, pipe slots,
//! branch refill, and the per-pipe stall attribution — over *abstract*
//! integer registers, with no LDM, no mesh, and no floating point.
//!
//! The executor's timing is data-independent except through `Bne`, and
//! `Bne` counters are driven purely by `Setl`/`Addl` chains. So:
//!
//! * when every branch resolves (every generated kernel), the prover
//!   walks the exact dynamic path and its [`StallReport`] equals
//!   `Machine::run_probed`'s **field for field** — [`Bound::Exact`];
//! * when a branch counter is unknown or the budget trips, the prover
//!   stops after a *prefix* of the dynamic instruction sequence and
//!   returns the attribution accumulated so far, without the final
//!   tail attribution — every bucket is then ≤ its dynamic value
//!   (the dynamic run issues a superset of the prefix's instructions
//!   and only ever *adds* to buckets) — [`Bound::LowerBound`].
//!
//! Both claims are pinned by the cross-validation tests in
//! `tests/stall_crosscheck.rs`.

use sw_arch::consts::VREG_COUNT;
use sw_isa::instr::{Pipe, BRANCH_TAKEN_PENALTY};
use sw_isa::regs::IREG_COUNT;
use sw_isa::{Instr, PipeBreakdown, StallKind, StallReport};

/// Result latency that marks a producer as load-class (LDM loads and
/// register-communication receives); mirrors the executor's constant.
const LOAD_LATENCY: u64 = 4;

/// Default dynamic-instruction budget for the prover.
pub const DEFAULT_STALL_BUDGET: u64 = 20_000_000;

/// How tight the proven report is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Every branch resolved; the report equals the dynamic one.
    Exact,
    /// Analysis stopped on an unresolved branch or the budget; every
    /// bucket is a lower bound on the dynamic value.
    LowerBound,
}

/// The prover's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticStalls {
    /// Per-pipe attribution. For [`Bound::Exact`] this satisfies
    /// [`StallReport::check`]; for a lower bound the buckets cover only
    /// the attributed prefix and need not sum to `cycles`.
    pub report: StallReport,
    /// Whether the report is exact or a prefix lower bound.
    pub bound: Bound,
    /// Dynamic instructions the prover walked.
    pub instructions: u64,
}

/// Mirror of the executor's incremental stall attribution (the
/// original lives privately in `sw_isa::machine`; the equality tests
/// keep the two from drifting).
#[derive(Debug)]
struct Attribution {
    report: StallReport,
    attributed: [u64; 2],
    refill_snap: [u64; 2],
    refill_cum: u64,
    refill_last_end: u64,
    vload: [bool; VREG_COUNT],
}

impl Default for Attribution {
    fn default() -> Self {
        Attribution {
            report: StallReport::default(),
            attributed: [0; 2],
            refill_snap: [0; 2],
            refill_cum: 0,
            refill_last_end: 0,
            vload: [false; VREG_COUNT],
        }
    }
}

#[inline]
fn consider(best: &mut (u64, bool), ready: u64, is_load: bool) {
    if ready > best.0 {
        *best = (ready, is_load);
    } else if ready == best.0 && is_load {
        best.1 = true;
    }
}

impl Attribution {
    #[inline]
    fn on_issue(&mut self, pipe: Pipe, t: u64, cur0: u64, ready: (u64, bool)) {
        let p = pipe as usize;
        let a = self.attributed[p];
        let refill = self.refill_cum - self.refill_snap[p];
        let hazard = t.min(ready.0).saturating_sub(a.max(cur0));
        let gap = t - a;
        debug_assert!(refill + hazard <= gap, "attribution exceeds the gap");
        let b = &mut self.report.pipes[p];
        b.add(StallKind::LoopOverhead, refill);
        b.add(
            if ready.1 {
                StallKind::LoadUse
            } else {
                StallKind::Raw
            },
            hazard,
        );
        b.add(StallKind::PipeConflict, gap - refill - hazard);
        b.issue += 1;
        self.attributed[p] = t + 1;
        self.refill_snap[p] = self.refill_cum;
    }

    #[inline]
    fn on_taken_branch(&mut self, t: u64) {
        self.refill_cum += BRANCH_TAKEN_PENALTY;
        self.refill_last_end = t + 1 + BRANCH_TAKEN_PENALTY;
    }

    fn finish(&mut self, cycles: u64) -> StallReport {
        self.report.cycles = cycles;
        for p in 0..2 {
            let tail = cycles - self.attributed[p];
            let pending = self.refill_cum - self.refill_snap[p];
            let overshoot = self.refill_last_end.saturating_sub(cycles);
            let refill = pending.saturating_sub(overshoot).min(tail);
            let b = &mut self.report.pipes[p];
            b.add(StallKind::LoopOverhead, refill);
            b.add(StallKind::PipeConflict, tail - refill);
        }
        self.report
    }
}

/// A scalar schedule-quality summary derived from a proven report —
/// what a ranking pass (the block-size autotuner's stage 2) needs from
/// the prover without executing anything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallScore {
    /// Proven cycles — exact, or a lower bound (see `bound`).
    pub cycles: u64,
    /// Fraction of dual-issue slots filled: `issued / (2·cycles)`.
    pub utilization: f64,
    /// P0 (floating-point pipe) occupancy: `pipes[0].issue / cycles` —
    /// the fraction of cycles the FMA pipe is fed.
    pub p0_occupancy: f64,
    /// Tightness of the proof. A [`Bound::LowerBound`] makes `cycles`
    /// optimistic and the occupancies correspondingly inflated.
    pub bound: Bound,
    /// Dynamic instructions the prover walked.
    pub instructions: u64,
}

/// Scores a kernel stream for ranking: proves the stall report and
/// collapses it to cycles plus issue-slot utilization. Exact for every
/// generated kernel (all branches resolve); a lower bound when the
/// `budget` trips first.
pub fn score_stalls_budgeted(prog: &[Instr], budget: u64) -> StallScore {
    let s = prove_stalls_budgeted(prog, budget, [Some(0); IREG_COUNT]);
    let denom = s.report.cycles.max(1) as f64;
    StallScore {
        cycles: s.report.cycles,
        utilization: s.report.issue_cycles() as f64 / (2.0 * denom),
        p0_occupancy: s.report.pipes[0].issue as f64 / denom,
        bound: s.bound,
        instructions: s.instructions,
    }
}

/// [`score_stalls_budgeted`] with the default budget.
pub fn score_stalls(prog: &[Instr]) -> StallScore {
    score_stalls_budgeted(prog, DEFAULT_STALL_BUDGET)
}

/// Proves a stall report for `prog` with the default budget and the
/// executor's zeroed entry registers.
pub fn prove_stalls(prog: &[Instr]) -> StaticStalls {
    prove_stalls_budgeted(prog, DEFAULT_STALL_BUDGET, [Some(0); IREG_COUNT])
}

/// Proves a stall report with an explicit budget and entry state.
pub fn prove_stalls_budgeted(
    prog: &[Instr],
    budget: u64,
    entry_regs: [Option<i64>; IREG_COUNT],
) -> StaticStalls {
    let mut probe = Attribution::default();
    let mut instructions: u64 = 0;
    let mut vready = [0u64; VREG_COUNT];
    let mut iready = [0u64; IREG_COUNT];
    let mut regs = entry_regs;
    let mut cur: u64 = 0;
    let mut p0_used = false;
    let mut p1_used = false;
    let mut last_issue: u64 = 0;
    let mut pc = 0usize;
    let mut bound = Bound::Exact;

    // Any out-of-range register makes the stream unrunnable; the
    // structural pass reports it — here we just refuse to walk.
    let regs_ok = |i: &Instr| {
        i.vsrcs().into_iter().all(|r| (r.0 as usize) < VREG_COUNT)
            && i.vdst().is_none_or(|d| (d.0 as usize) < VREG_COUNT)
            && i.isrcs().into_iter().all(|r| (r.0 as usize) < IREG_COUNT)
            && i.idst().is_none_or(|d| (d.0 as usize) < IREG_COUNT)
    };

    while pc < prog.len() {
        let instr = prog[pc];
        if instructions >= budget || !regs_ok(&instr) {
            bound = Bound::LowerBound;
            break;
        }
        instructions += 1;

        let cur0 = cur;
        let mut t = cur;
        let mut ready = (0u64, false);
        for r in instr.vsrcs() {
            let rt = vready[r.idx()];
            t = t.max(rt);
            consider(&mut ready, rt, probe.vload[r.idx()]);
        }
        for r in instr.isrcs() {
            let rt = iready[r.idx()];
            t = t.max(rt);
            consider(&mut ready, rt, false);
        }
        if let Some(d) = instr.vdst() {
            let rt = vready[d.idx()];
            t = t.max(rt);
            consider(&mut ready, rt, probe.vload[d.idx()]);
        }
        if let Some(d) = instr.idst() {
            let rt = iready[d.idx()];
            t = t.max(rt);
            consider(&mut ready, rt, false);
        }
        loop {
            if t > cur {
                cur = t;
                p0_used = false;
                p1_used = false;
            }
            let used = match instr.pipe() {
                Pipe::P0 => &mut p0_used,
                Pipe::P1 => &mut p1_used,
            };
            if !*used {
                *used = true;
                break;
            }
            t += 1;
        }
        last_issue = last_issue.max(t);
        probe.on_issue(instr.pipe(), t, cur0, ready);

        if let Some(d) = instr.vdst() {
            vready[d.idx()] = t + instr.latency();
            probe.vload[d.idx()] = instr.latency() == LOAD_LATENCY;
        }
        if let Some(d) = instr.idst() {
            iready[d.idx()] = t + instr.latency();
        }
        let mut next_pc = pc + 1;
        match instr {
            Instr::Addl { d, s, imm } => {
                regs[d.idx()] = regs[s.idx()].map(|x| x.saturating_add(imm));
            }
            Instr::Setl { d, imm } => {
                regs[d.idx()] = Some(imm);
            }
            Instr::Bne { s, target } => match regs[s.idx()] {
                None => {
                    // The branch itself issued (its timing is part of
                    // both outcomes) but the successor is unknown.
                    bound = Bound::LowerBound;
                    pc = prog.len();
                    continue;
                }
                Some(0) => {}
                Some(_) => {
                    next_pc = target;
                    cur = t + 1 + BRANCH_TAKEN_PENALTY;
                    p0_used = false;
                    p1_used = false;
                    probe.on_taken_branch(t);
                }
            },
            _ => {}
        }
        pc = next_pc;
    }

    let cycles = if instructions == 0 { 0 } else { last_issue + 1 };
    let report = match bound {
        Bound::Exact => probe.finish(cycles),
        Bound::LowerBound => {
            // Prefix attribution only: no tail, so each bucket is a
            // lower bound on the dynamic run's.
            let mut r = probe.report;
            r.cycles = cycles;
            r
        }
    };
    StaticStalls {
        report,
        bound,
        instructions,
    }
}

/// Per-kind lower-bound comparison: every bucket of `lo` ≤ the same
/// bucket of `hi`, and `lo.cycles` ≤ `hi.cycles`.
pub fn report_le(lo: &StallReport, hi: &StallReport) -> bool {
    let pipe_le = |a: &PipeBreakdown, b: &PipeBreakdown| {
        a.issue <= b.issue && StallKind::ALL.iter().all(|&k| a.get(k) <= b.get(k))
    };
    pipe_le(&lo.pipes[0], &hi.pipes[0])
        && pipe_le(&lo.pipes[1], &hi.pipes[1])
        && lo.cycles <= hi.cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_arch::consts::LDM_DOUBLES;
    use sw_isa::{IReg, Machine, SinkComm, VReg};

    fn dynamic(prog: &[Instr]) -> StallReport {
        let mut ldm = vec![0.0f64; LDM_DOUBLES];
        let mut comm = SinkComm;
        Machine::new(&mut ldm, &mut comm).run_probed(prog).1
    }

    #[test]
    fn branch_free_stream_is_exact() {
        let prog = vec![
            Instr::Setl { d: IReg(0), imm: 0 },
            Instr::Vldd {
                d: VReg(0),
                base: IReg(0),
                off: 0,
            },
            Instr::Vmad {
                a: VReg(0),
                b: VReg(0),
                c: VReg(16),
                d: VReg(16),
            },
            Instr::Vstd {
                s: VReg(16),
                base: IReg(0),
                off: 0,
            },
        ];
        let s = prove_stalls(&prog);
        assert_eq!(s.bound, Bound::Exact);
        assert_eq!(s.report, dynamic(&prog));
        assert!(s.report.check().is_ok());
    }

    #[test]
    fn resolved_loop_is_exact() {
        let prog = vec![
            Instr::Setl { d: IReg(0), imm: 0 },
            Instr::Setl { d: IReg(1), imm: 5 },
            Instr::Vldd {
                d: VReg(0),
                base: IReg(0),
                off: 0,
            },
            Instr::Vmad {
                a: VReg(0),
                b: VReg(0),
                c: VReg(16),
                d: VReg(16),
            },
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: -1,
            },
            Instr::Bne {
                s: IReg(1),
                target: 2,
            },
        ];
        let s = prove_stalls(&prog);
        assert_eq!(s.bound, Bound::Exact);
        assert_eq!(s.report, dynamic(&prog));
    }

    #[test]
    fn unknown_counter_gives_prefix_lower_bound() {
        let mut entry = [Some(0i64); IREG_COUNT];
        entry[1] = None;
        let prog = vec![
            Instr::Setl { d: IReg(0), imm: 0 },
            Instr::Vldd {
                d: VReg(0),
                base: IReg(0),
                off: 0,
            },
            Instr::Vmad {
                a: VReg(0),
                b: VReg(0),
                c: VReg(16),
                d: VReg(16),
            },
            Instr::Bne {
                s: IReg(1),
                target: 1,
            },
            Instr::Vstd {
                s: VReg(16),
                base: IReg(0),
                off: 0,
            },
        ];
        let s = prove_stalls_budgeted(&prog, DEFAULT_STALL_BUDGET, entry);
        assert_eq!(s.bound, Bound::LowerBound);
        // Dynamically the machine zeroes r1, so the branch falls
        // through and the full run is a superset of the prefix.
        assert!(report_le(&s.report, &dynamic(&prog)));
    }

    #[test]
    fn budget_stop_is_lower_bound() {
        let prog = vec![
            Instr::Setl {
                d: IReg(1),
                imm: 1000,
            },
            Instr::Vclr { d: VReg(0) },
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: -1,
            },
            Instr::Bne {
                s: IReg(1),
                target: 1,
            },
        ];
        let s = prove_stalls_budgeted(&prog, 50, [Some(0); IREG_COUNT]);
        assert_eq!(s.bound, Bound::LowerBound);
        assert_eq!(s.instructions, 50);
        assert!(report_le(&s.report, &dynamic(&prog)));
    }

    #[test]
    fn empty_stream() {
        let s = prove_stalls(&[]);
        assert_eq!(s.bound, Bound::Exact);
        assert_eq!(s.report.cycles, 0);
        assert!(s.report.check().is_ok());
    }

    #[test]
    fn score_matches_proof_and_is_bounded() {
        let prog = vec![
            Instr::Setl { d: IReg(1), imm: 8 },
            Instr::Vclr { d: VReg(0) },
            Instr::Vclr { d: VReg(1) },
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: -1,
            },
            Instr::Bne {
                s: IReg(1),
                target: 1,
            },
        ];
        let proof = prove_stalls(&prog);
        let score = score_stalls(&prog);
        assert_eq!(score.cycles, proof.report.cycles);
        assert_eq!(score.bound, Bound::Exact);
        assert_eq!(score.instructions, proof.instructions);
        assert!(score.utilization > 0.0 && score.utilization <= 1.0);
        assert!(score.p0_occupancy >= 0.0 && score.p0_occupancy <= 1.0);
    }

    #[test]
    fn score_of_empty_stream_does_not_divide_by_zero() {
        let s = score_stalls(&[]);
        assert_eq!(s.cycles, 0);
        assert_eq!(s.utilization, 0.0);
        assert_eq!(s.p0_occupancy, 0.0);
    }
}
