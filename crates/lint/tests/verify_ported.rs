//! The old `sw_isa::verify` test suite, ported onto `sw-lint`.
//!
//! Every check the linear-scan verifier performed is reproduced here
//! through [`sw_lint::lint_stream`], plus the two cases the old pass
//! could not handle: CFG-aware read-before-write on streams containing
//! branches (the old scan silently skipped them), and the tiled-kernel
//! coverage that used to live as an inline assert in `sw_isa::tiling`.

use sw_isa::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
use sw_isa::sched::list_schedule;
use sw_isa::tiling::{
    ablation_tilings, gen_tiled_kernel_naive, gen_tiled_kernel_scheduled, TiledKernelCfg, Tiling,
};
use sw_isa::{gen_block_kernel_looped, IReg, Instr, Net, VReg};
use sw_lint::{codes, lint_stream, Severity};

fn cfg(a: Operand, b: Operand) -> BlockKernelCfg {
    BlockKernelCfg {
        pm: 16,
        pn: 8,
        pk: 16,
        a_src: a,
        b_src: b,
        a_base: 0,
        b_base: 2048,
        c_base: 4096,
        alpha_addr: 8000,
    }
}

#[test]
fn generated_kernels_pass() {
    for a in [
        Operand::Ldm,
        Operand::LdmBcast(Net::Row),
        Operand::Recv(Net::Row),
    ] {
        for b in [
            Operand::Ldm,
            Operand::LdmBcast(Net::Col),
            Operand::Recv(Net::Col),
        ] {
            let c = cfg(a, b);
            for style in [KernelStyle::Naive, KernelStyle::Scheduled] {
                let unrolled = gen_block_kernel(&c, style);
                let r = lint_stream(&unrolled, None);
                assert!(
                    r.is_clean(),
                    "{a:?}/{b:?}/{style:?} unrolled:\n{}",
                    r.render_text()
                );
                let looped = gen_block_kernel_looped(&c, style, 2);
                let r = lint_stream(&looped, None);
                assert!(
                    r.is_clean(),
                    "{a:?}/{b:?}/{style:?} looped:\n{}",
                    r.render_text()
                );
            }
            let auto = list_schedule(&gen_block_kernel(&c, KernelStyle::Naive));
            let r = lint_stream(&auto, None);
            assert!(
                r.is_clean(),
                "{a:?}/{b:?} list-scheduled:\n{}",
                r.render_text()
            );
        }
    }
}

#[test]
fn misalignment_flagged() {
    // The old verifier special-cased `base == r0 && off % 4 != 0`; the
    // abstract interpreter subsumes it (r0 is zero at entry).
    let prog = [Instr::Vldd {
        d: VReg(0),
        base: IReg(0),
        off: 6,
    }];
    let r = lint_stream(&prog, None);
    assert!(r.has_code(codes::LDM_MISALIGNED), "{}", r.render_text());
}

#[test]
fn read_before_write_flagged() {
    let prog = [Instr::Vmad {
        a: VReg(0),
        b: VReg(1),
        c: VReg(2),
        d: VReg(2),
    }];
    let r = lint_stream(&prog, None);
    assert!(r.has_code(codes::READ_BEFORE_WRITE), "{}", r.render_text());
}

#[test]
fn bad_branch_flagged() {
    let prog = [
        Instr::Setl { d: IReg(1), imm: 1 },
        Instr::Bne {
            s: IReg(1),
            target: 99,
        },
    ];
    let r = lint_stream(&prog, None);
    assert!(r.has_code(codes::BAD_BRANCH_TARGET), "{}", r.render_text());
}

#[test]
fn mixed_role_flagged() {
    let prog = [
        Instr::Vldr {
            d: VReg(0),
            base: IReg(0),
            off: 0,
            net: Net::Row,
        },
        Instr::Getr { d: VReg(1) },
    ];
    let r = lint_stream(&prog, None);
    assert!(r.has_code(codes::MIXED_COMM_ROLE), "{}", r.render_text());
}

#[test]
fn icache_overflow_flagged() {
    let c = BlockKernelCfg {
        pm: 16,
        pn: 32,
        pk: 96,
        ..cfg(Operand::Ldm, Operand::Ldm)
    };
    let unrolled = gen_block_kernel(&c, KernelStyle::Scheduled);
    let r = lint_stream(&unrolled, None);
    assert!(
        r.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .all(|d| d.code == codes::ICACHE_OVERFLOW),
        "production unrolled kernel should only trip the icache check:\n{}",
        r.render_text()
    );
    assert!(r.has_code(codes::ICACHE_OVERFLOW));
    // And the looped production kernel passes completely.
    let looped = gen_block_kernel_looped(&c, KernelStyle::Scheduled, 4);
    let r = lint_stream(&looped, None);
    assert!(r.is_clean(), "{}", r.render_text());
}

/// The case the old verifier could not handle: a stream containing a
/// branch used to skip read-before-write entirely. The CFG-aware pass
/// analyzes it and still catches the uninitialized read.
#[test]
fn read_before_write_found_across_branches() {
    let prog = [
        Instr::Setl { d: IReg(1), imm: 4 },
        // Loop body reads v0 before anything ever wrote it.
        Instr::Vmad {
            a: VReg(0),
            b: VReg(16),
            c: VReg(17),
            d: VReg(17),
        },
        Instr::Addl {
            d: IReg(1),
            s: IReg(1),
            imm: -1,
        },
        Instr::Bne {
            s: IReg(1),
            target: 1,
        },
    ];
    let r = lint_stream(&prog, None);
    assert!(r.has_code(codes::READ_BEFORE_WRITE), "{}", r.render_text());
}

/// And the dual: a write that dominates the loop-body read is clean —
/// the old verifier would have had to skip this stream too.
#[test]
fn dominating_write_across_branch_is_clean() {
    let prog = [
        Instr::Setl { d: IReg(1), imm: 4 },
        Instr::Vclr { d: VReg(0) },
        Instr::Vmad {
            a: VReg(0),
            b: VReg(16),
            c: VReg(17),
            d: VReg(17),
        },
        Instr::Addl {
            d: IReg(1),
            s: IReg(1),
            imm: -1,
        },
        Instr::Bne {
            s: IReg(1),
            target: 2,
        },
    ];
    let r = lint_stream(&prog, None);
    assert!(r.is_clean(), "{}", r.render_text());
}

/// Every feasible register tiling's generated kernels lint clean —
/// this replaces the `verify::check` assert that lived inside the
/// `sw_isa::tiling` correctness test before the analyzer moved here.
#[test]
fn every_feasible_tiling_lints_clean() {
    fn tcfg(t: Tiling, pk: usize) -> TiledKernelCfg {
        TiledKernelCfg {
            pm: t.rows(),
            pn: 2 * t.rn,
            pk,
            a_base: 0,
            b_base: 2048,
            c_base: 4096,
            alpha_addr: 8000,
        }
    }
    for t in ablation_tilings() {
        let c = tcfg(t, 8);
        for (name, prog) in [
            ("naive", gen_tiled_kernel_naive(&c, t)),
            ("scheduled", gen_tiled_kernel_scheduled(&c, t)),
        ] {
            let r = lint_stream(&prog, None);
            assert!(
                r.is_clean(),
                "tiling rm={} rn={} {name}:\n{}",
                t.rm,
                t.rn,
                r.render_text()
            );
        }
    }
}
