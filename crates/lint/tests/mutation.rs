//! Mutation tests: each seeded bug is caught by exactly the analysis
//! pass designed for it, and the unmutated plan lints clean.
//!
//! The plan under test is one collective step of the PE mapping: the
//! CPE in mesh column 0 broadcasts A along its row, the CPE in mesh
//! row 0 broadcasts B along its column, everyone else receives. The
//! streams are the *unrolled* generator output so mutations can insert
//! and delete instructions without branch-target fixups.

use sw_isa::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
use sw_isa::{Instr, Net, VReg};
use sw_lint::{codes, lint_core_group, LdmLayout, LdmRegion, LintReport, Severity};

const PM: usize = 16;
const PN: usize = 8;
const PK: usize = 16;
const A0: usize = 0; // compute-owned A half-buffer
const A1: usize = 1536; // DMA-owned A half-buffer
const B0: usize = 512;
const C0: usize = 768;
const C1: usize = 1792; // DMA-owned C half-buffer
const ALPHA: usize = 1024;

fn role_cfg(a_src: Operand, b_src: Operand) -> BlockKernelCfg {
    BlockKernelCfg {
        pm: PM,
        pn: PN,
        pk: PK,
        a_src,
        b_src,
        a_base: A0,
        b_base: B0,
        c_base: C0,
        alpha_addr: ALPHA,
    }
}

/// The double-buffer layout: the partner halves of A and C belong to
/// the DMA engine while this step computes.
fn layout() -> LdmLayout {
    LdmLayout {
        regions: vec![
            LdmRegion::new("A buffer 0", A0, PM * PK),
            LdmRegion::hazard("A buffer 1", A1, PM * PK),
            LdmRegion::new("B buffer", B0, PK * PN),
            LdmRegion::new("C buffer 0", C0, PM * PN),
            LdmRegion::hazard("C buffer 1", C1, PM * PN),
            LdmRegion::new("alpha", ALPHA, 1),
        ],
    }
}

/// The 64 streams of collective step 0 (unrolled, branch-free).
fn step_streams() -> Vec<Vec<Instr>> {
    let mut out = Vec::with_capacity(64);
    for row in 0..8 {
        for col in 0..8 {
            let a_src = if col == 0 {
                Operand::LdmBcast(Net::Row)
            } else {
                Operand::Recv(Net::Row)
            };
            let b_src = if row == 0 {
                Operand::LdmBcast(Net::Col)
            } else {
                Operand::Recv(Net::Col)
            };
            out.push(gen_block_kernel(
                &role_cfg(a_src, b_src),
                KernelStyle::Naive,
            ));
        }
    }
    out
}

fn lint(streams: &[Vec<Instr>]) -> LintReport {
    let refs: Vec<&[Instr]> = streams.iter().map(|s| s.as_slice()).collect();
    lint_core_group(&refs, Some(&layout()))
}

/// Every error in the report carries the single expected code.
fn only_error_is(report: &LintReport, code: &str) {
    assert!(
        report.has_code(code),
        "expected {code}:\n{}",
        report.render_text()
    );
    for d in &report.diagnostics {
        if d.severity == Severity::Error {
            assert_eq!(
                d.code,
                code,
                "unexpected extra error:\n{}",
                report.render_text()
            );
        }
    }
}

#[test]
fn unmutated_step_lints_clean() {
    let report = lint(&step_streams());
    assert!(report.is_clean(), "{}", report.render_text());
}

/// Pass 1 (mesh): deleting a receive leaves a broadcast word in
/// flight — orphan-broadcast, attributed to the starving CPE.
#[test]
fn dropped_getr_is_orphan_broadcast() {
    let mut streams = step_streams();
    // CPE (2,5) is an A-receiver; drop its first row-net receive.
    // The destination register is still written (`vclr`) so the only
    // observable change is one missing rendezvous.
    let victim = &mut streams[2 * 8 + 5];
    let at = victim
        .iter()
        .position(|i| matches!(i, Instr::Getr { .. }))
        .expect("receiver stream has Getr");
    let Instr::Getr { d } = victim[at] else {
        unreachable!()
    };
    victim[at] = Instr::Vclr { d };
    let report = lint(&streams);
    only_error_is(&report, codes::ORPHAN_BROADCAST);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::ORPHAN_BROADCAST)
        .unwrap();
    assert_eq!(d.cpe, Some((2, 5)));
}

/// Pass 1 (mesh): an extra receive blocks forever — mesh-deadlock.
#[test]
fn extra_getr_is_mesh_deadlock() {
    let mut streams = step_streams();
    // CPE (4,1) asks for one word more than its peers broadcast.
    streams[4 * 8 + 1].insert(0, Instr::Getr { d: VReg(0) });
    let report = lint(&streams);
    only_error_is(&report, codes::MESH_DEADLOCK);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::MESH_DEADLOCK)
        .unwrap();
    assert_eq!(d.cpe, Some((4, 1)));
}

/// Pass 2 (LDM): an out-of-bounds offset is caught by the bounds
/// check and nothing else — comm counts and stalls are unaffected.
#[test]
fn out_of_bounds_vldd_is_ldm_error() {
    let mut streams = step_streams();
    let victim = &mut streams[3 * 8 + 3];
    let at = victim
        .iter()
        .position(|i| matches!(i, Instr::Vldd { .. }))
        .expect("stream has a local vector load");
    if let Instr::Vldd { off, .. } = &mut victim[at] {
        *off = 9000; // past the 8192-double LDM
    }
    let report = lint(&streams);
    only_error_is(&report, codes::LDM_OUT_OF_BOUNDS);
}

/// Pass 2 (LDM): pointing compute at the DMA-owned half-buffer (the
/// classic double-buffer rotation bug) is a db-hazard, and only that.
#[test]
fn swapped_double_buffer_base_is_db_hazard() {
    let mut streams = step_streams();
    // CPE (5,0) broadcasts A from its LDM; regenerate its stream with
    // A read from the half the DMA engine is filling for the *next*
    // step. Comm counts are untouched, so only the LDM pass can see it.
    let bad = BlockKernelCfg {
        a_base: A1,
        ..role_cfg(Operand::LdmBcast(Net::Row), Operand::Recv(Net::Col))
    };
    streams[5 * 8] = gen_block_kernel(&bad, KernelStyle::Naive);
    let report = lint(&streams);
    only_error_is(&report, codes::DB_HAZARD);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::DB_HAZARD)
        .unwrap();
    assert!(d.message.contains("A buffer 1"), "{}", d.message);
}
