//! Golden-file pin of the `sw-lint` JSON report format.
//!
//! A small deliberately-buggy stream exercises every diagnostic field
//! (severity, code, CPE tag, span, message); its JSON rendering must
//! match `tests/golden/lint_report.json` byte for byte. The report is
//! canonicalized (`sort_and_dedup`) before rendering, so the bytes are
//! deterministic. Re-bless with:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test -p sw-lint --test json_golden
//! ```

use sw_isa::{IReg, Instr, VReg};
use sw_lint::{lint_stream, LdmLayout, LdmRegion};

const GOLDEN_PATH: &str = "tests/golden/lint_report.json";

/// A stream tripping one finding of each pass: a read of scratch v0
/// before any write (CFG pass), a vector load past the LDM bound and a
/// misaligned store (LDM pass), and a touch of the DMA-owned
/// half-buffer (DB hazard).
fn buggy_report_json() -> String {
    let prog = vec![
        Instr::Vmad {
            a: VReg(0),
            b: VReg(16),
            c: VReg(17),
            d: VReg(17),
        },
        Instr::Vldd {
            d: VReg(1),
            base: IReg(0),
            off: 8190,
        },
        Instr::Vstd {
            s: VReg(17),
            base: IReg(0),
            off: 6,
        },
        Instr::Vldd {
            d: VReg(2),
            base: IReg(0),
            off: 4096,
        },
    ];
    let layout = LdmLayout {
        regions: vec![
            LdmRegion::new("A buffer 0", 0, 2048),
            LdmRegion::hazard("A buffer 1", 4096, 2048),
        ],
    };
    lint_stream(&prog, Some(&layout)).to_json()
}

#[test]
fn report_json_matches_golden_bytes() {
    let json = buggy_report_json();
    if std::env::var("BLESS_GOLDEN").is_ok() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_PATH, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with BLESS_GOLDEN=1 to create it");
    assert_eq!(
        json, golden,
        "lint JSON drifted from {GOLDEN_PATH}; if intentional, \
         re-bless with BLESS_GOLDEN=1"
    );
}

#[test]
fn report_json_is_stable_across_runs() {
    assert_eq!(buggy_report_json(), buggy_report_json());
}
