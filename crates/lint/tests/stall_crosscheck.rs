//! Cross-validation of the static stall prover against `sw-probe`'s
//! dynamic attribution (`Machine::run_probed`).
//!
//! The two claims the ISSUE pins:
//!
//! * on every generated kernel (branches all resolve from the zeroed
//!   entry registers) the static report is [`Bound::Exact`] and equals
//!   the dynamic [`StallReport`] **field for field**;
//! * wherever the prover stops early (unknown counter, budget), every
//!   bucket of the static report is ≤ the dynamic one — property-tested
//!   over randomized programs.

use sw_arch::consts::LDM_DOUBLES;
use sw_isa::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
use sw_isa::regs::IREG_COUNT;
use sw_isa::{gen_block_kernel_looped, IReg, Instr, Machine, Net, SinkComm, StallReport, VReg};
use sw_lint::stall::{prove_stalls_budgeted, report_le, DEFAULT_STALL_BUDGET};
use sw_lint::{prove_stalls, Bound};

fn dynamic(prog: &[Instr]) -> StallReport {
    let mut ldm = vec![0.0f64; LDM_DOUBLES];
    let mut comm = SinkComm;
    Machine::new(&mut ldm, &mut comm).run_probed(prog).1
}

fn cfg(a: Operand, b: Operand) -> BlockKernelCfg {
    BlockKernelCfg {
        pm: 16,
        pn: 8,
        pk: 16,
        a_src: a,
        b_src: b,
        a_base: 0,
        b_base: 2048,
        c_base: 4096,
        alpha_addr: 8000,
    }
}

/// Every generated kernel — all nine operand-source combinations, both
/// styles, unrolled and looped at several unroll factors — proves
/// exactly: the static report equals the dynamic one field for field.
#[test]
fn generated_kernels_prove_exact() {
    for a in [
        Operand::Ldm,
        Operand::LdmBcast(Net::Row),
        Operand::Recv(Net::Row),
    ] {
        for b in [
            Operand::Ldm,
            Operand::LdmBcast(Net::Col),
            Operand::Recv(Net::Col),
        ] {
            let c = cfg(a, b);
            for style in [KernelStyle::Naive, KernelStyle::Scheduled] {
                let mut programs = vec![("unrolled", gen_block_kernel(&c, style))];
                for unroll in [1usize, 2, 4] {
                    programs.push(("looped", gen_block_kernel_looped(&c, style, unroll)));
                }
                for (name, prog) in programs {
                    let s = prove_stalls(&prog);
                    assert_eq!(s.bound, Bound::Exact, "{a:?}/{b:?}/{style:?} {name}");
                    let dyn_report = dynamic(&prog);
                    assert_eq!(
                        s.report, dyn_report,
                        "{a:?}/{b:?}/{style:?} {name}: static != dynamic"
                    );
                    assert!(s.report.check().is_ok());
                }
            }
        }
    }
}

/// A budget-truncated proof of a kernel is a per-bucket lower bound on
/// the full dynamic report.
#[test]
fn budget_truncation_is_lower_bound() {
    let c = cfg(Operand::Ldm, Operand::Ldm);
    let prog = gen_block_kernel_looped(&c, KernelStyle::Scheduled, 1);
    let dyn_report = dynamic(&prog);
    for budget in [1u64, 7, 50, 300, 1000] {
        let s = prove_stalls_budgeted(&prog, budget, [Some(0); IREG_COUNT]);
        assert_eq!(s.bound, Bound::LowerBound);
        assert_eq!(s.instructions, budget);
        assert!(
            report_le(&s.report, &dyn_report),
            "budget {budget}: static exceeds dynamic\nstatic: {:?}\ndynamic: {dyn_report:?}",
            s.report
        );
    }
}

/// Deterministic splittable PRNG (std-only).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random branch-free instruction (addresses kept inside the LDM so
/// the dynamic machine can actually run the program).
fn random_instr(rng: &mut SplitMix64) -> Instr {
    let v = |rng: &mut SplitMix64| VReg(rng.below(32) as u8);
    let base = IReg(0); // zeroed at entry; offsets carry the address
    let off = (rng.below(1024) * 4) as i64;
    match rng.below(8) {
        0 => Instr::Vldd {
            d: v(rng),
            base,
            off,
        },
        1 => Instr::Vstd {
            s: v(rng),
            base,
            off,
        },
        2 => Instr::Ldde {
            d: v(rng),
            base,
            off,
        },
        3 | 4 => Instr::Vmad {
            a: v(rng),
            b: v(rng),
            c: v(rng),
            d: v(rng),
        },
        5 => Instr::Vclr { d: v(rng) },
        6 => Instr::Addl {
            d: IReg(2),
            s: IReg(2),
            imm: rng.below(16) as i64,
        },
        _ => Instr::Setl {
            d: IReg(3),
            imm: rng.below(4096) as i64,
        },
    }
}

/// Property: random branch-free programs always prove exactly and
/// agree with the dynamic attribution field for field.
#[test]
fn random_branch_free_programs_prove_exact() {
    let mut rng = SplitMix64(0xD6E8_FEB8_6659_FD93);
    for case in 0..200 {
        let len = 1 + rng.below(120) as usize;
        let prog: Vec<Instr> = (0..len).map(|_| random_instr(&mut rng)).collect();
        let s = prove_stalls(&prog);
        assert_eq!(s.bound, Bound::Exact, "case {case}");
        assert_eq!(s.report, dynamic(&prog), "case {case}: {prog:?}");
        assert!(s.report.check().is_ok(), "case {case}");
    }
}

/// Property: random programs wrapped in a known-trip counted loop
/// still prove exactly (the prover walks the loop like the machine).
#[test]
fn random_counted_loops_prove_exact() {
    let mut rng = SplitMix64(0x0123_4567_89AB_CDEF);
    for case in 0..100 {
        let body_len = 1 + rng.below(20) as usize;
        let trips = 1 + rng.below(9) as i64;
        let mut prog = vec![Instr::Setl {
            d: IReg(1),
            imm: trips,
        }];
        prog.extend((0..body_len).map(|_| random_instr(&mut rng)));
        prog.push(Instr::Addl {
            d: IReg(1),
            s: IReg(1),
            imm: -1,
        });
        prog.push(Instr::Bne {
            s: IReg(1),
            target: 1,
        });
        let s = prove_stalls(&prog);
        assert_eq!(s.bound, Bound::Exact, "case {case}");
        assert_eq!(s.report, dynamic(&prog), "case {case}: {prog:?}");
    }
}

/// Property: whatever the prover returns under a random budget — or
/// with the loop counter hidden — never exceeds the dynamic report in
/// any bucket.
#[test]
fn random_truncations_stay_below_dynamic() {
    let mut rng = SplitMix64(0xFACE_0FF0_CAFE_F00D);
    for case in 0..100 {
        let body_len = 1 + rng.below(20) as usize;
        let trips = 1 + rng.below(9) as i64;
        let mut prog = vec![Instr::Setl {
            d: IReg(1),
            imm: trips,
        }];
        prog.extend((0..body_len).map(|_| random_instr(&mut rng)));
        prog.push(Instr::Addl {
            d: IReg(1),
            s: IReg(1),
            imm: -1,
        });
        prog.push(Instr::Bne {
            s: IReg(1),
            target: 1,
        });
        let dyn_report = dynamic(&prog);

        // Random budget truncation.
        let budget = 1 + rng.below(2 * (body_len as u64 + 3) * trips as u64);
        let s = prove_stalls_budgeted(&prog, budget, [Some(0); IREG_COUNT]);
        assert!(
            report_le(&s.report, &dyn_report),
            "case {case} budget {budget}"
        );

        // Unknown counter: the prover stops at the branch; the machine
        // (zeroed registers, counter left untouched) falls through.
        let mut entry = [Some(0i64); IREG_COUNT];
        entry[1] = None;
        let mut hidden = prog.clone();
        hidden[0] = Instr::Nop;
        let decr = hidden.len() - 2;
        hidden[decr] = Instr::Nop;
        let s = prove_stalls_budgeted(&hidden, DEFAULT_STALL_BUDGET, entry);
        assert_eq!(s.bound, Bound::LowerBound, "case {case}");
        assert!(report_le(&s.report, &dynamic(&hidden)), "case {case}");
    }
}
