//! The DMA-mode micro-benchmark of §IV-A (Figure 4).
//!
//! The paper compares the sustained bandwidth of `PE_MODE` and
//! `ROW_MODE` by loading the CG-level blocks of an m×k matrix
//! sequentially into the LDMs of the 64 CPEs, with the DGEMM access
//! pattern (bM = 128, bK = 768, pM = 16, pK = 96). This module rebuilds
//! that benchmark on the timing model: it walks the same descriptor
//! sequence each mode would issue and reports total bytes over total
//! modelled time.
//!
//! * `PE_MODE` issues one descriptor per CPE per CG block (64 per
//!   block), each covering a pM×pK thread block — contiguous runs of
//!   pM doubles.
//! * `ROW_MODE` issues one collective descriptor per bM×pK column slab
//!   (8 per block), each serving a whole mesh row — contiguous runs of
//!   bM doubles.
//!
//! Descriptors within a block are pipelined on the channel (wire times
//! add, startups overlap); one startup is paid per block.

use crate::dma::{BandwidthModel, DmaMode};
use sw_arch::coord::N_CPES;
use sw_arch::time::cycles_to_secs;

/// Blocking configuration of the micro-benchmark (defaults to the
/// paper's Figure 4 parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicrobenchConfig {
    /// CG-level block rows.
    pub bm: usize,
    /// CG-level block columns.
    pub bk: usize,
    /// Thread-level block rows.
    pub pm: usize,
    /// Thread-level block columns.
    pub pk: usize,
}

impl Default for MicrobenchConfig {
    fn default() -> Self {
        // §IV-A: "we set bM = 128, bK = 768, pM = 16, and pK = 96".
        MicrobenchConfig {
            bm: 128,
            bk: 768,
            pm: 16,
            pk: 96,
        }
    }
}

impl MicrobenchConfig {
    /// Validates divisibility: the CG block must tile into an 8×8 grid
    /// of thread blocks and the matrix into CG blocks.
    pub fn validate(&self, m: usize, k: usize) -> Result<(), String> {
        if self.bm != 8 * self.pm || self.bk != 8 * self.pk {
            return Err(format!(
                "CG block {}x{} is not an 8x8 grid of {}x{} thread blocks",
                self.bm, self.bk, self.pm, self.pk
            ));
        }
        if !m.is_multiple_of(self.bm) || !k.is_multiple_of(self.bk) {
            return Err(format!(
                "matrix {m}x{k} does not tile into {}x{} CG blocks",
                self.bm, self.bk
            ));
        }
        Ok(())
    }
}

/// Modelled sustained bandwidth (GB/s) of loading every CG block of an
/// m×k matrix in the given mode — one point of Figure 4.
pub fn sustained_bandwidth_gbs(
    model: &BandwidthModel,
    mode: DmaMode,
    m: usize,
    k: usize,
    cfg: &MicrobenchConfig,
) -> f64 {
    cfg.validate(m, k)
        .expect("invalid micro-benchmark configuration");
    let footprint = m * k * 8;
    let blocks = (m / cfg.bm) * (k / cfg.bk);
    let (descriptors_per_block, desc_bytes, run_bytes) = match mode {
        // 64 thread-block descriptors, runs of pM doubles.
        DmaMode::Pe => (N_CPES, cfg.pm * cfg.pk * 8, cfg.pm * 8),
        // 8 column-slab collectives, runs of bM doubles.
        DmaMode::Row => (8, cfg.bm * cfg.pk * 8, cfg.bm * 8),
        _ => panic!("the Figure 4 micro-benchmark compares PE_MODE and ROW_MODE only"),
    };
    let gbs = model.sustained_gbs(mode, run_bytes, footprint);
    let wire_secs_per_block = descriptors_per_block as f64 * desc_bytes as f64 / (gbs * 1.0e9);
    let startup_secs = cycles_to_secs(model.startup_cycles);
    let total_secs = blocks as f64 * (wire_secs_per_block + startup_secs);
    let total_bytes = blocks as f64 * descriptors_per_block as f64 * desc_bytes as f64;
    total_bytes / total_secs / 1.0e9
}

/// One row of the Figure 4 table: matrix size and both bandwidths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// m = k.
    pub mk: usize,
    /// `PE_MODE` sustained bandwidth, GB/s.
    pub pe_gbs: f64,
    /// `ROW_MODE` sustained bandwidth, GB/s.
    pub row_gbs: f64,
}

/// Regenerates the full Figure 4 sweep (m = k ∈ {1536, 3072, …, 15360}).
///
/// ```
/// use sw_mem::dma::BandwidthModel;
/// let pts = sw_mem::microbench::fig4_sweep(&BandwidthModel::calibrated());
/// assert!(pts.iter().all(|p| p.row_gbs > p.pe_gbs));
/// ```
pub fn fig4_sweep(model: &BandwidthModel) -> Vec<Fig4Point> {
    let cfg = MicrobenchConfig::default();
    (1..=10)
        .map(|i| {
            let mk = 1536 * i;
            Fig4Point {
                mk,
                pe_gbs: sustained_bandwidth_gbs(model, DmaMode::Pe, mk, mk, &cfg),
                row_gbs: sustained_bandwidth_gbs(model, DmaMode::Row, mk, mk, &cfg),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_holds() {
        let model = BandwidthModel::calibrated();
        let pts = fig4_sweep(&model);
        assert_eq!(pts.len(), 10);
        // ROW_MODE is remarkably superior to PE_MODE at every size.
        for p in &pts {
            assert!(
                p.row_gbs > p.pe_gbs,
                "at {}: row {} <= pe {}",
                p.mk,
                p.row_gbs,
                p.pe_gbs
            );
        }
        // Both rise monotonically with matrix size.
        for w in pts.windows(2) {
            assert!(w[1].pe_gbs > w[0].pe_gbs);
            assert!(w[1].row_gbs > w[0].row_gbs);
        }
        // Endpoints sit in the paper's measured ranges.
        assert!(
            pts[0].pe_gbs > 10.0 && pts[0].pe_gbs < 17.0,
            "{}",
            pts[0].pe_gbs
        );
        assert!(
            pts[9].pe_gbs > 23.0 && pts[9].pe_gbs < 28.0,
            "{}",
            pts[9].pe_gbs
        );
        assert!(
            pts[0].row_gbs > 18.0 && pts[0].row_gbs < 24.0,
            "{}",
            pts[0].row_gbs
        );
        assert!(
            pts[9].row_gbs > 27.0 && pts[9].row_gbs < 31.0,
            "{}",
            pts[9].row_gbs
        );
    }

    #[test]
    fn bad_config_rejected() {
        let cfg = MicrobenchConfig {
            bm: 100,
            bk: 768,
            pm: 16,
            pk: 96,
        };
        assert!(cfg.validate(1536, 1536).is_err());
        let cfg = MicrobenchConfig::default();
        assert!(cfg.validate(1000, 1536).is_err());
        assert!(cfg.validate(1536, 1536).is_ok());
    }

    #[test]
    #[should_panic]
    fn bcast_mode_not_part_of_fig4() {
        let model = BandwidthModel::calibrated();
        let cfg = MicrobenchConfig::default();
        let _ = sustained_bandwidth_gbs(&model, DmaMode::Bcast, 1536, 1536, &cfg);
    }
}
