//! The 64 KB local device memory (LDM) of one CPE.
//!
//! The LDM is the middle level of the paper's blocking hierarchy: every
//! thread-level block of A, B and C lives here, and the constraint
//! `pM·pN + pN·pK + pK·pM < 8192` doubles (§III-C.2) — doubled buffers
//! included when double buffering is on (§IV-B) — is exactly the
//! capacity check [`Ldm::alloc`] enforces.
//!
//! Allocation is a bump allocator with 128 B alignment (the DMA
//! transaction granularity), plus a `reset` for reuse between CG blocks.
//! There is no free-list: kernels on the real machine lay buffers out
//! statically, and a bump allocator models that while still catching
//! overflow.

use crate::MemError;
use sw_arch::consts::{DMA_TRANSACTION_DOUBLES, LDM_DOUBLES};

/// A buffer inside one CPE's LDM: an offset/length pair in doubles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdmBuf {
    off: usize,
    len: usize,
}

impl LdmBuf {
    /// Offset in doubles from the start of the LDM.
    #[inline]
    pub fn offset(&self) -> usize {
        self.off
    }

    /// Length in doubles.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One past the last double of the buffer (`offset + len`).
    #[inline]
    pub fn end(&self) -> usize {
        self.off + self.len
    }

    /// A sub-buffer at `off..off + len` (relative to this buffer).
    ///
    /// # Panics
    /// If the range escapes the buffer.
    #[inline]
    pub fn sub(&self, off: usize, len: usize) -> LdmBuf {
        assert!(
            off + len <= self.len,
            "sub-buffer escapes parent ({off}+{len} > {})",
            self.len
        );
        LdmBuf {
            off: self.off + off,
            len,
        }
    }
}

/// One CPE's scratch pad: 8192 doubles with a checked bump allocator.
#[derive(Debug)]
pub struct Ldm {
    data: Vec<f64>,
    watermark: usize,
}

impl Default for Ldm {
    fn default() -> Self {
        Self::new()
    }
}

impl Ldm {
    /// A fresh, zeroed 64 KB LDM.
    pub fn new() -> Self {
        Ldm {
            data: vec![0.0; LDM_DOUBLES],
            watermark: 0,
        }
    }

    /// Allocates `len` doubles, 128 B-aligned, erroring if the scratch
    /// pad would overflow.
    pub fn alloc(&mut self, len: usize) -> Result<LdmBuf, MemError> {
        let off = self.watermark.next_multiple_of(DMA_TRANSACTION_DOUBLES);
        if off + len > LDM_DOUBLES {
            return Err(MemError::LdmOverflow {
                requested: len,
                available: LDM_DOUBLES.saturating_sub(off),
            });
        }
        self.watermark = off + len;
        Ok(LdmBuf { off, len })
    }

    /// Doubles still allocatable (ignoring the final alignment pad).
    pub fn free_doubles(&self) -> usize {
        LDM_DOUBLES
            - self
                .watermark
                .next_multiple_of(DMA_TRANSACTION_DOUBLES)
                .min(LDM_DOUBLES)
    }

    /// Releases all allocations (buffers handed out earlier must no
    /// longer be used; in debug builds the data is poisoned to surface
    /// use-after-reset bugs).
    pub fn reset(&mut self) {
        self.watermark = 0;
        if cfg!(debug_assertions) {
            self.data.fill(f64::NAN);
        }
    }

    /// Read access to a buffer's contents.
    #[inline]
    pub fn slice(&self, buf: LdmBuf) -> &[f64] {
        &self.data[buf.off..buf.off + buf.len]
    }

    /// Write access to a buffer's contents.
    #[inline]
    pub fn slice_mut(&mut self, buf: LdmBuf) -> &mut [f64] {
        &mut self.data[buf.off..buf.off + buf.len]
    }

    /// Raw read access by absolute LDM offset (used by the ISA executor,
    /// whose address arithmetic works in absolute doubles).
    #[inline]
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Raw write access by absolute LDM offset.
    #[inline]
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_checked() {
        let mut ldm = Ldm::new();
        let a = ldm.alloc(10).unwrap();
        assert_eq!(a.offset(), 0);
        let b = ldm.alloc(10).unwrap();
        // 10 rounds up to the next 16-double (128 B) boundary.
        assert_eq!(b.offset(), 16);
        assert_eq!(ldm.free_doubles(), LDM_DOUBLES - 32);
    }

    #[test]
    fn overflow_is_an_error() {
        let mut ldm = Ldm::new();
        ldm.alloc(LDM_DOUBLES - 16).unwrap();
        let err = ldm.alloc(32).unwrap_err();
        assert!(matches!(err, MemError::LdmOverflow { .. }));
    }

    #[test]
    fn paper_production_blocking_fits_exactly_once() {
        // §IV-B: with double buffering, pM=16, pN=32, pK=96 must fit:
        // 2·(pM·pN) + 2·(pM·pK) + pN·pK + 2·(pK·pN)? The paper's DB
        // scheme double-buffers A and C; B is resident. Check the raw
        // capacity arithmetic here: 2·16·32 + 2·16·96 + 96·32 = 7168 ≤ 8192.
        let need = 2 * 16 * 32 + 2 * 16 * 96 + 96 * 32;
        assert!(need <= LDM_DOUBLES);
        let mut ldm = Ldm::new();
        for sz in [16 * 32, 16 * 32, 16 * 96, 16 * 96, 96 * 32] {
            ldm.alloc(sz).unwrap();
        }
        // And the *pre-DB* blocking pN=48 does NOT fit doubled:
        let need_48 = 2 * 16 * 48 + 2 * 16 * 96 + 96 * 48;
        assert!(need_48 > LDM_DOUBLES);
    }

    #[test]
    fn reset_allows_reuse() {
        let mut ldm = Ldm::new();
        let a = ldm.alloc(100).unwrap();
        ldm.slice_mut(a)[0] = 3.0;
        ldm.reset();
        let b = ldm.alloc(100).unwrap();
        assert_eq!(b.offset(), 0);
    }

    #[test]
    fn sub_buffer() {
        let mut ldm = Ldm::new();
        let a = ldm.alloc(64).unwrap();
        let s = a.sub(16, 8);
        assert_eq!(s.offset(), 16);
        assert_eq!(s.len(), 8);
    }

    #[test]
    #[should_panic]
    fn sub_buffer_escape_panics() {
        let mut ldm = Ldm::new();
        let a = ldm.alloc(8).unwrap();
        let _ = a.sub(4, 8);
    }
}
