//! The off-chip main memory shared by one core group.
//!
//! CPEs never touch main memory directly in our DGEMM (as on the real
//! machine, where LDM + DMA is the only fast path); they go through the
//! DMA functions in [`crate::dma`], which take a `&MainMemory` and use
//! the interior locks. Reads (matrix A and B blocks) take shared locks
//! and proceed fully in parallel across the 64 CPE threads; writes
//! (matrix C blocks) take the exclusive lock of the one matrix being
//! written.

use crate::{HostMatrix, MemError};
use std::sync::Arc;
use std::sync::RwLock;
use sw_arch::consts::MAIN_MEMORY_BYTES;

/// Handle to a matrix installed in [`MainMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatId(pub(crate) usize);

/// One installed matrix: dimensions plus shared, lock-protected storage.
#[derive(Debug, Clone)]
pub(crate) struct Buffer {
    pub rows: usize,
    pub cols: usize,
    pub data: Arc<RwLock<Vec<f64>>>,
}

/// The 8 GB main memory of one core group.
///
/// Installation and extraction happen on the "MPE side" (the host test
/// or example); concurrent access from CPE threads happens only through
/// the DMA layer.
#[derive(Debug, Default)]
pub struct MainMemory {
    buffers: Vec<Option<Buffer>>,
    used_bytes: usize,
}

impl MainMemory {
    /// An empty main memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a host matrix, transferring ownership of its storage.
    ///
    /// Fails when the 8 GB capacity of the CG's memory would be
    /// exceeded.
    pub fn install(&mut self, m: HostMatrix) -> Result<MatId, MemError> {
        let bytes = m.rows() * m.cols() * 8;
        if self.used_bytes + bytes > MAIN_MEMORY_BYTES {
            return Err(MemError::MainMemoryExhausted {
                requested: bytes,
                available: MAIN_MEMORY_BYTES - self.used_bytes,
            });
        }
        self.used_bytes += bytes;
        let id = MatId(self.buffers.len());
        let (rows, cols) = (m.rows(), m.cols());
        self.buffers.push(Some(Buffer {
            rows,
            cols,
            data: Arc::new(RwLock::new(m.into_vec())),
        }));
        Ok(id)
    }

    /// Frees an installed matrix, returning its bytes to the budget.
    /// The id is never reused; later accesses fail with
    /// [`MemError::UnknownMatrix`]. Lets a long-lived core group (see
    /// `DgemmRunner::run_on`) run many DGEMMs without exhausting the
    /// 8 GB accounting.
    pub fn remove(&mut self, id: MatId) -> Result<(), MemError> {
        let slot = self
            .buffers
            .get_mut(id.0)
            .ok_or(MemError::UnknownMatrix(id.0))?;
        let b = slot.take().ok_or(MemError::UnknownMatrix(id.0))?;
        self.used_bytes -= b.rows * b.cols * 8;
        Ok(())
    }

    /// MPE-side read of a rectangular region (column-major order).
    /// Used by the fault-tolerant runner to snapshot C blocks and to
    /// verify ABFT checksums; takes the matrix's shared lock like any
    /// DMA read.
    pub fn read_region(
        &self,
        id: MatId,
        row0: usize,
        col0: usize,
        rows: usize,
        cols: usize,
    ) -> Result<Vec<f64>, MemError> {
        let b = self.buffer(id)?;
        if row0 + rows > b.rows || col0 + cols > b.cols {
            return Err(MemError::OutOfBounds {
                what: format!(
                    "region ({row0}+{rows}, {col0}+{cols}) exceeds matrix {}x{}",
                    b.rows, b.cols
                ),
            });
        }
        let data = b.data.read().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(rows * cols);
        for c in 0..cols {
            let base = (col0 + c) * b.rows + row0;
            out.extend_from_slice(&data[base..base + rows]);
        }
        Ok(out)
    }

    /// MPE-side write of a rectangular region (column-major order,
    /// `vals.len() == rows * cols`). The restore half of the
    /// fault-tolerant runner's snapshot/restore; takes the exclusive
    /// lock like a DMA write.
    pub fn write_region(
        &self,
        id: MatId,
        row0: usize,
        col0: usize,
        rows: usize,
        cols: usize,
        vals: &[f64],
    ) -> Result<(), MemError> {
        let b = self.buffer(id)?;
        if row0 + rows > b.rows || col0 + cols > b.cols {
            return Err(MemError::OutOfBounds {
                what: format!(
                    "region ({row0}+{rows}, {col0}+{cols}) exceeds matrix {}x{}",
                    b.rows, b.cols
                ),
            });
        }
        if vals.len() != rows * cols {
            return Err(MemError::BadDescriptor {
                what: format!(
                    "region write of {} values into a {rows}x{cols} region",
                    vals.len()
                ),
            });
        }
        let mut data = b.data.write().unwrap_or_else(|e| e.into_inner());
        for c in 0..cols {
            let base = (col0 + c) * b.rows + row0;
            data[base..base + rows].copy_from_slice(&vals[c * rows..(c + 1) * rows]);
        }
        Ok(())
    }

    /// Installs a zero-filled `rows × cols` matrix.
    pub fn install_zeros(&mut self, rows: usize, cols: usize) -> Result<MatId, MemError> {
        self.install(HostMatrix::zeros(rows, cols))
    }

    /// Copies a matrix back out of main memory.
    pub fn extract(&self, id: MatId) -> Result<HostMatrix, MemError> {
        let b = self.buffer(id)?;
        Ok(HostMatrix::from_col_major(
            b.rows,
            b.cols,
            b.data.read().unwrap().clone(),
        ))
    }

    /// `(rows, cols)` of an installed matrix.
    pub fn dims(&self, id: MatId) -> Result<(usize, usize), MemError> {
        let b = self.buffer(id)?;
        Ok((b.rows, b.cols))
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    pub(crate) fn buffer(&self, id: MatId) -> Result<&Buffer, MemError> {
        self.buffers
            .get(id.0)
            .and_then(|b| b.as_ref())
            .ok_or(MemError::UnknownMatrix(id.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_extract_roundtrip() {
        let mut mem = MainMemory::new();
        let m = HostMatrix::from_fn(5, 3, |r, c| (r * 100 + c) as f64);
        let id = mem.install(m.clone()).unwrap();
        assert_eq!(mem.dims(id).unwrap(), (5, 3));
        assert_eq!(mem.extract(id).unwrap(), m);
        assert_eq!(mem.used_bytes(), 5 * 3 * 8);
    }

    #[test]
    fn unknown_id_rejected() {
        let mem = MainMemory::new();
        assert_eq!(
            mem.extract(MatId(0)).unwrap_err(),
            MemError::UnknownMatrix(0)
        );
    }

    #[test]
    fn remove_frees_budget_and_invalidates_id() {
        let mut mem = MainMemory::new();
        let id = mem.install_zeros(16, 16).unwrap();
        assert_eq!(mem.used_bytes(), 16 * 16 * 8);
        mem.remove(id).unwrap();
        assert_eq!(mem.used_bytes(), 0);
        assert_eq!(mem.extract(id).unwrap_err(), MemError::UnknownMatrix(0));
        assert_eq!(mem.remove(id).unwrap_err(), MemError::UnknownMatrix(0));
        // Fresh installs get fresh ids, never the removed one.
        let id2 = mem.install_zeros(4, 4).unwrap();
        assert_ne!(id, id2);
    }

    #[test]
    fn region_read_write_roundtrip() {
        let mut mem = MainMemory::new();
        let id = mem
            .install(HostMatrix::from_fn(8, 6, |r, c| (10 * r + c) as f64))
            .unwrap();
        let snap = mem.read_region(id, 2, 1, 3, 2).unwrap();
        assert_eq!(snap, vec![21.0, 31.0, 41.0, 22.0, 32.0, 42.0]);
        mem.write_region(id, 2, 1, 3, 2, &[0.0; 6]).unwrap();
        assert_eq!(mem.read_region(id, 2, 1, 3, 2).unwrap(), vec![0.0; 6]);
        // Untouched neighbours survive.
        assert_eq!(mem.read_region(id, 1, 1, 1, 1).unwrap(), vec![11.0]);
        mem.write_region(id, 2, 1, 3, 2, &snap).unwrap();
        assert_eq!(mem.read_region(id, 2, 1, 3, 2).unwrap(), snap);
    }

    #[test]
    fn region_bounds_checked() {
        let mut mem = MainMemory::new();
        let id = mem.install_zeros(4, 4).unwrap();
        assert!(matches!(
            mem.read_region(id, 2, 0, 3, 1),
            Err(MemError::OutOfBounds { .. })
        ));
        assert!(matches!(
            mem.write_region(id, 0, 0, 2, 2, &[0.0; 3]),
            Err(MemError::BadDescriptor { .. })
        ));
    }

    #[test]
    fn capacity_enforced() {
        let mut mem = MainMemory::new();
        // 8 GB / 8 B = 1 Gi doubles; ask for more in one go via dims that
        // overflow the budget without allocating (zeros would allocate!),
        // so use a small budget trick: install until the accounting
        // rejects. Instead of actually allocating gigabytes, check the
        // arithmetic path with a matrix claiming huge dims is infeasible
        // to construct; so just verify accounting grows.
        let id1 = mem.install_zeros(16, 16).unwrap();
        let id2 = mem.install_zeros(16, 16).unwrap();
        assert_ne!(id1, id2);
        assert_eq!(mem.used_bytes(), 2 * 16 * 16 * 8);
    }
}
