//! Error type shared by the memory subsystem.

use std::fmt;

/// Errors raised by main memory, LDM, and DMA operations.
///
/// On the real machine most of these conditions are undefined behaviour
/// or a wedged DMA engine; the simulator turns them into typed errors so
/// tests can assert on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// LDM bump allocation would exceed the 64 KB scratch pad.
    LdmOverflow {
        /// Doubles requested by the failing allocation.
        requested: usize,
        /// Doubles still free.
        available: usize,
    },
    /// A DMA descriptor violates the 128 B alignment / granularity rule.
    DmaAlignment {
        /// Human-readable description of the violated constraint.
        what: String,
    },
    /// A DMA descriptor references memory outside the target buffer.
    OutOfBounds {
        /// Human-readable description of the offending access.
        what: String,
    },
    /// A matrix id does not exist in this `MainMemory`.
    UnknownMatrix(usize),
    /// A matrix allocation exceeds the 8 GB main memory of the CG.
    MainMemoryExhausted {
        /// Bytes requested.
        requested: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// A descriptor is invalid for the requested DMA mode.
    BadDescriptor {
        /// Human-readable description.
        what: String,
    },
    /// A transfer failed transiently (injected soft error or a stuck
    /// engine); retrying may succeed.
    Transient {
        /// Human-readable description of the failing operation.
        what: String,
    },
    /// A transfer kept failing transiently until its bounded retry
    /// budget ran out.
    RetryBudgetExhausted {
        /// Execution attempts made (1 initial + retries).
        attempts: u32,
        /// Human-readable description of the failing operation.
        what: String,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::LdmOverflow {
                requested,
                available,
            } => write!(
                f,
                "LDM overflow: requested {requested} doubles, {available} free (64 KB scratch pad)"
            ),
            MemError::DmaAlignment { what } => write!(f, "DMA alignment violation: {what}"),
            MemError::OutOfBounds { what } => write!(f, "out-of-bounds access: {what}"),
            MemError::UnknownMatrix(id) => write!(f, "unknown matrix id {id}"),
            MemError::MainMemoryExhausted {
                requested,
                available,
            } => write!(
                f,
                "main memory exhausted: requested {requested} B, {available} B free"
            ),
            MemError::BadDescriptor { what } => write!(f, "bad DMA descriptor: {what}"),
            MemError::Transient { what } => write!(f, "transient DMA failure: {what}"),
            MemError::RetryBudgetExhausted { attempts, what } => write!(
                f,
                "DMA retry budget exhausted after {attempts} attempts: {what}"
            ),
        }
    }
}

impl std::error::Error for MemError {}
