//! Software-emulated cache over main memory (§II).
//!
//! Besides the explicit user-controlled mode the DGEMM uses, the LDM
//! "can be used as ... a software-emulated cache that achieves
//! automatic data caching". This module implements that mode: a
//! direct-mapped, write-back cache of 128 B lines (the DMA transaction
//! size) living in a caller-provided LDM buffer, fetching lines from
//! main memory via `PE_MODE` DMA on miss.
//!
//! It exists to make the paper's implicit ablation runnable: automatic
//! caching is *correct* but pays a DMA round-trip per missed line and
//! gives up all layout control, which is exactly why the DGEMM manages
//! the LDM explicitly. The `cache_vs_dma` example and the tests below
//! quantify it.

use crate::dma::{self, MatRegion};
use crate::ldm::{Ldm, LdmBuf};
use crate::main_memory::{MainMemory, MatId};
use crate::MemError;
use sw_arch::consts::DMA_TRANSACTION_DOUBLES;

/// Hit/miss counters of one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses served from the LDM.
    pub hits: u64,
    /// Accesses that fetched a line from main memory.
    pub misses: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio over all accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A direct-mapped, write-back software cache over one installed
/// matrix.
///
/// The element address space is the matrix's column-major linear
/// index; lines are 16 doubles. Line `l` maps to set `l % lines`.
#[derive(Debug)]
pub struct SoftCache {
    mat: MatId,
    mat_rows: usize,
    mat_len: usize,
    buf: LdmBuf,
    lines: usize,
    /// `tags[set]` = cached line index.
    tags: Vec<Option<usize>>,
    dirty: Vec<bool>,
    stats: CacheStats,
}

impl SoftCache {
    /// Builds a cache over `mat` using `buf` (a multiple of 16 doubles
    /// of LDM) as the data store.
    pub fn new(mem: &MainMemory, mat: MatId, buf: LdmBuf) -> Result<Self, MemError> {
        if buf.is_empty() || !buf.len().is_multiple_of(DMA_TRANSACTION_DOUBLES) {
            return Err(MemError::BadDescriptor {
                what: format!(
                    "cache store of {} doubles is not a whole number of 128 B lines",
                    buf.len()
                ),
            });
        }
        let (rows, cols) = mem.dims(mat)?;
        if rows % DMA_TRANSACTION_DOUBLES != 0 {
            return Err(MemError::DmaAlignment {
                what: format!("cached matrix lda = {rows} must be a multiple of 16 doubles"),
            });
        }
        let lines = buf.len() / DMA_TRANSACTION_DOUBLES;
        Ok(SoftCache {
            mat,
            mat_rows: rows,
            mat_len: rows * cols,
            buf,
            lines,
            tags: vec![None; lines],
            dirty: vec![false; lines],
            stats: CacheStats::default(),
        })
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reads element `(r, c)` through the cache.
    pub fn read(
        &mut self,
        mem: &MainMemory,
        ldm: &mut Ldm,
        r: usize,
        c: usize,
    ) -> Result<f64, MemError> {
        let (set, off) = self.lookup(mem, ldm, r, c)?;
        Ok(ldm.slice(self.buf)[set * DMA_TRANSACTION_DOUBLES + off])
    }

    /// Writes element `(r, c)` through the cache (write-back: main
    /// memory is updated on eviction or [`SoftCache::flush`]).
    pub fn write(
        &mut self,
        mem: &MainMemory,
        ldm: &mut Ldm,
        r: usize,
        c: usize,
        v: f64,
    ) -> Result<(), MemError> {
        let (set, off) = self.lookup(mem, ldm, r, c)?;
        ldm.slice_mut(self.buf)[set * DMA_TRANSACTION_DOUBLES + off] = v;
        self.dirty[set] = true;
        Ok(())
    }

    /// Writes all dirty lines back to main memory.
    pub fn flush(&mut self, mem: &MainMemory, ldm: &Ldm) -> Result<(), MemError> {
        for set in 0..self.lines {
            if self.dirty[set] {
                let line = self.tags[set].expect("dirty line must be tagged");
                self.writeback(mem, ldm, set, line)?;
                self.dirty[set] = false;
            }
        }
        Ok(())
    }

    /// Ensures the line containing `(r, c)` is resident; returns
    /// `(set, offset-in-line)`.
    fn lookup(
        &mut self,
        mem: &MainMemory,
        ldm: &mut Ldm,
        r: usize,
        c: usize,
    ) -> Result<(usize, usize), MemError> {
        let idx = c * self.mat_rows + r;
        if idx >= self.mat_len || r >= self.mat_rows {
            return Err(MemError::OutOfBounds {
                what: format!("cached access ({r}, {c}) outside the matrix"),
            });
        }
        let line = idx / DMA_TRANSACTION_DOUBLES;
        let set = line % self.lines;
        if self.tags[set] != Some(line) {
            self.stats.misses += 1;
            if self.dirty[set] {
                let old = self.tags[set].expect("dirty line must be tagged");
                self.writeback(mem, ldm, set, old)?;
                self.dirty[set] = false;
            }
            // Fetch: a line is 16 consecutive doubles of one column
            // (lda is a multiple of 16, so lines never straddle
            // columns).
            let region = self.line_region(line);
            let dst = self
                .buf
                .sub(set * DMA_TRANSACTION_DOUBLES, DMA_TRANSACTION_DOUBLES);
            dma::pe_get(mem, region, ldm, dst)?;
            self.tags[set] = Some(line);
        } else {
            self.stats.hits += 1;
        }
        Ok((set, idx % DMA_TRANSACTION_DOUBLES))
    }

    fn writeback(
        &mut self,
        mem: &MainMemory,
        ldm: &Ldm,
        set: usize,
        line: usize,
    ) -> Result<(), MemError> {
        let region = self.line_region(line);
        let src = self
            .buf
            .sub(set * DMA_TRANSACTION_DOUBLES, DMA_TRANSACTION_DOUBLES);
        dma::pe_put(mem, region, ldm, src)?;
        self.stats.writebacks += 1;
        Ok(())
    }

    fn line_region(&self, line: usize) -> MatRegion {
        let idx = line * DMA_TRANSACTION_DOUBLES;
        MatRegion::new(
            self.mat,
            idx % self.mat_rows,
            idx / self.mat_rows,
            DMA_TRANSACTION_DOUBLES,
            1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HostMatrix;

    fn setup(lines: usize) -> (MainMemory, MatId, Ldm, LdmBuf) {
        let mut mem = MainMemory::new();
        let mat = mem
            .install(HostMatrix::from_fn(64, 8, |r, c| (100 * c + r) as f64))
            .unwrap();
        let mut ldm = Ldm::new();
        let buf = ldm.alloc(lines * 16).unwrap();
        (mem, mat, ldm, buf)
    }

    #[test]
    fn read_through_and_hit() {
        let (mem, mat, mut ldm, buf) = setup(4);
        let mut cache = SoftCache::new(&mem, mat, buf).unwrap();
        assert_eq!(cache.read(&mem, &mut ldm, 5, 2).unwrap(), 205.0);
        assert_eq!(cache.stats().misses, 1);
        // Same line: a hit.
        assert_eq!(cache.read(&mem, &mut ldm, 6, 2).unwrap(), 206.0);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                writebacks: 0
            }
        );
    }

    #[test]
    fn write_back_on_flush() {
        let (mem, mat, mut ldm, buf) = setup(4);
        let mut cache = SoftCache::new(&mem, mat, buf).unwrap();
        cache.write(&mem, &mut ldm, 10, 1, -7.5).unwrap();
        // Not yet visible in main memory (write-back).
        assert_eq!(mem.extract(mat).unwrap().get(10, 1), 110.0);
        cache.flush(&mem, &ldm).unwrap();
        assert_eq!(mem.extract(mat).unwrap().get(10, 1), -7.5);
        assert_eq!(cache.stats().writebacks, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_line() {
        let (mem, mat, mut ldm, buf) = setup(1); // one line: every new line evicts
        let mut cache = SoftCache::new(&mem, mat, buf).unwrap();
        cache.write(&mem, &mut ldm, 0, 0, 42.0).unwrap();
        // Touch a different line — must evict and write back.
        let _ = cache.read(&mem, &mut ldm, 32, 0).unwrap();
        assert_eq!(mem.extract(mat).unwrap().get(0, 0), 42.0);
        assert_eq!(cache.stats().writebacks, 1);
        // And the evicted value survives a re-read.
        assert_eq!(cache.read(&mem, &mut ldm, 0, 0).unwrap(), 42.0);
    }

    #[test]
    fn sequential_access_has_low_miss_ratio() {
        let (mem, mat, mut ldm, buf) = setup(8);
        let mut cache = SoftCache::new(&mem, mat, buf).unwrap();
        for c in 0..8 {
            for r in 0..64 {
                let _ = cache.read(&mem, &mut ldm, r, c).unwrap();
            }
        }
        // One miss per 16-double line.
        assert!((cache.stats().miss_ratio() - 1.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn row_major_walk_thrashes() {
        // Walking rows of a column-major matrix with a small cache
        // misses every access once the working set exceeds the cache —
        // the behaviour explicit LDM management exists to avoid.
        let (mem, mat, mut ldm, buf) = setup(2);
        let mut cache = SoftCache::new(&mem, mat, buf).unwrap();
        for r in 0..64 {
            for c in 0..8 {
                let _ = cache.read(&mem, &mut ldm, r, c).unwrap();
            }
        }
        assert!(
            cache.stats().miss_ratio() > 0.4,
            "ratio {}",
            cache.stats().miss_ratio()
        );
    }

    #[test]
    fn bounds_checked() {
        let (mem, mat, mut ldm, buf) = setup(2);
        let mut cache = SoftCache::new(&mem, mat, buf).unwrap();
        assert!(matches!(
            cache.read(&mem, &mut ldm, 64, 0),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn bad_store_rejected() {
        let (mem, mat, mut ldm, _) = setup(1);
        let odd = ldm.alloc(10).unwrap();
        assert!(SoftCache::new(&mem, mat, odd).is_err());
    }
}
