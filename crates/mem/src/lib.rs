//! Memory subsystem of the SW26010 core-group simulator.
//!
//! Three storage levels appear in the paper's three-level blocking
//! hierarchy; this crate provides the bottom two:
//!
//! * [`MainMemory`] — the 8 GB off-chip memory a core group shares.
//!   Matrices are installed into it in column-major layout and may only
//!   be touched by CPEs through DMA, mirroring the hardware rule.
//! * [`Ldm`] — the 64 KB local device memory (scratch pad) of one CPE,
//!   with a checked bump allocator. Exceeding 64 KB is a hard error,
//!   exactly the constraint that drives thread-level block-size
//!   selection (§III-C.2).
//! * [`dma`] — the DMA engine: descriptors for the five transfer modes
//!   (`PE`, `BCAST`, `ROW`, `BROW`, `RANK`), 128 B alignment validation,
//!   functional execution, and the calibrated sustained-bandwidth timing
//!   model that reproduces Figure 4.
//!
//! The register level of the hierarchy lives in `sw-isa`.

pub mod dma;
pub mod error;
pub mod ldm;
pub mod main_memory;
pub mod matrix;
pub mod microbench;
pub mod swcache;

pub use error::MemError;
pub use ldm::{Ldm, LdmBuf};
pub use main_memory::{MainMemory, MatId};
pub use matrix::HostMatrix;
pub use swcache::{CacheStats, SoftCache};
