//! Column-major host matrices.
//!
//! All matrices in the paper's implementation are stored in column-major
//! format (§III). [`HostMatrix`] is the owned, host-side representation;
//! it is installed into [`crate::MainMemory`] before a run and read back
//! afterwards.

/// An owned, dense, column-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct HostMatrix {
    rows: usize,
    cols: usize,
    /// `data[c * rows + r]` holds element `(r, c)`.
    data: Vec<f64>,
}

impl HostMatrix {
    /// Zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        HostMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a column-major slice.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "column-major data length mismatch");
        HostMatrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = vec![0.0; rows * cols];
        for c in 0..cols {
            for r in 0..rows {
                data[c * rows + r] = f(r, c);
            }
        }
        HostMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (= rows; the simulator stores matrices densely).
    #[inline]
    pub fn lda(&self) -> usize {
        self.rows
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[c * self.rows + r]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[c * self.rows + r] = v;
    }

    /// The backing column-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its column-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// One column as a slice.
    #[inline]
    pub fn col(&self, c: usize) -> &[f64] {
        &self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Maximum absolute element (∞-norm over entries), used by the
    /// numerical-accuracy checks.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Maximum absolute difference against another matrix of the same
    /// shape.
    pub fn max_abs_diff(&self, other: &HostMatrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_column_major() {
        let m = HostMatrix::from_fn(3, 2, |r, c| (r * 10 + c) as f64);
        // Column 0 then column 1.
        assert_eq!(m.as_slice(), &[0.0, 10.0, 20.0, 1.0, 11.0, 21.0]);
        assert_eq!(m.get(2, 1), 21.0);
        assert_eq!(m.col(1), &[1.0, 11.0, 21.0]);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = HostMatrix::zeros(4, 4);
        m.set(3, 2, 7.5);
        assert_eq!(m.get(3, 2), 7.5);
        assert_eq!(m.max_abs(), 7.5);
    }

    #[test]
    fn diff_norm() {
        let a = HostMatrix::from_fn(2, 2, |r, c| (r + c) as f64);
        let mut b = a.clone();
        b.set(1, 1, b.get(1, 1) + 0.25);
        assert_eq!(a.max_abs_diff(&b), 0.25);
    }

    #[test]
    #[should_panic]
    fn bad_len_panics() {
        let _ = HostMatrix::from_col_major(2, 2, vec![1.0; 3]);
    }
}
