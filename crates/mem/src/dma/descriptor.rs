//! DMA descriptors: what a transfer references, and the validation rules
//! the hardware imposes (128 B alignment / granularity).

use crate::main_memory::{MainMemory, MatId};
use crate::MemError;
use sw_arch::consts::DMA_TRANSACTION_DOUBLES;

/// The five DMA distribution modes of the SW26010 (§II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaMode {
    /// Single-CPE transfer.
    Pe,
    /// Broadcast to all 64 CPEs.
    Bcast,
    /// Collective transfer interleaved over the 8 CPEs of one mesh row.
    Row,
    /// Broadcast to the 8 CPEs of one mesh row.
    Brow,
    /// Transaction-wise round-robin over all 64 CPEs.
    Rank,
}

impl DmaMode {
    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DmaMode::Pe => "pe",
            DmaMode::Bcast => "bcast",
            DmaMode::Row => "row",
            DmaMode::Brow => "brow",
            DmaMode::Rank => "rank",
        }
    }
}

/// A rectangular region of a column-major matrix in main memory.
///
/// The *element stream* of a region is its elements in column-major
/// order: column `col0` rows `row0..row0+rows`, then column `col0 + 1`,
/// and so on — which is exactly the order a strided DMA walks memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatRegion {
    /// The matrix being addressed.
    pub mat: MatId,
    /// First row of the region.
    pub row0: usize,
    /// First column of the region.
    pub col0: usize,
    /// Rows per column (the contiguous run length in memory).
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl MatRegion {
    /// Builds a region covering `rows × cols` at `(row0, col0)`.
    pub fn new(mat: MatId, row0: usize, col0: usize, rows: usize, cols: usize) -> Self {
        MatRegion {
            mat,
            row0,
            col0,
            rows,
            cols,
        }
    }

    /// Total elements in the region (= stream length).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the region is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes in the region.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.len() * 8
    }

    /// Validates the region against the matrix bounds and the 128 B
    /// DMA granularity rules:
    ///
    /// * region within the matrix,
    /// * each per-column run starts on a 128 B boundary (⇒ `row0` and
    ///   the leading dimension are multiples of 16 doubles),
    /// * each run is a whole number of transactions (`rows % 16 == 0`).
    ///
    /// These are the constraints that force the paper's `pK` to be a
    /// multiple of 16 (§III-C.2).
    pub fn validate(&self, mem: &MainMemory) -> Result<(), MemError> {
        let b = mem.buffer(self.mat)?;
        if self.row0 + self.rows > b.rows || self.col0 + self.cols > b.cols {
            return Err(MemError::OutOfBounds {
                what: format!(
                    "region {}+{} x {}+{} exceeds matrix {} x {}",
                    self.row0, self.rows, self.col0, self.cols, b.rows, b.cols
                ),
            });
        }
        if self.is_empty() {
            return Err(MemError::BadDescriptor {
                what: "empty region".into(),
            });
        }
        let t = DMA_TRANSACTION_DOUBLES;
        if !self.row0.is_multiple_of(t) || b.rows % t != 0 {
            return Err(MemError::DmaAlignment {
                what: format!(
                    "column run start (row0={} lda={}) not 128 B-aligned",
                    self.row0, b.rows
                ),
            });
        }
        if !self.rows.is_multiple_of(t) {
            return Err(MemError::DmaAlignment {
                what: format!(
                    "run length {} doubles is not a whole number of 128 B transactions",
                    self.rows
                ),
            });
        }
        Ok(())
    }
}

/// What a completed functional DMA reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Receipt {
    /// Bytes that landed in (or left) *this* CPE's LDM.
    pub bytes_cpe: usize,
    /// Bytes of the whole transfer (equals `bytes_cpe` for `Pe`, is 8×
    /// for `Row`, 64× for `Rank`, …).
    pub bytes_total: usize,
    /// The mode that was used.
    pub mode: DmaMode,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HostMatrix;

    fn mem_with(rows: usize, cols: usize) -> (MainMemory, MatId) {
        let mut mem = MainMemory::new();
        let id = mem.install(HostMatrix::zeros(rows, cols)).unwrap();
        (mem, id)
    }

    #[test]
    fn in_bounds_aligned_ok() {
        let (mem, id) = mem_with(128, 64);
        MatRegion::new(id, 16, 3, 32, 10).validate(&mem).unwrap();
    }

    #[test]
    fn out_of_bounds_rejected() {
        let (mem, id) = mem_with(128, 64);
        let err = MatRegion::new(id, 112, 0, 32, 1)
            .validate(&mem)
            .unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds { .. }));
    }

    #[test]
    fn misaligned_row0_rejected() {
        let (mem, id) = mem_with(128, 64);
        let err = MatRegion::new(id, 8, 0, 16, 1).validate(&mem).unwrap_err();
        assert!(matches!(err, MemError::DmaAlignment { .. }));
    }

    #[test]
    fn misaligned_lda_rejected() {
        let (mem, id) = mem_with(120, 64);
        let err = MatRegion::new(id, 0, 0, 16, 1).validate(&mem).unwrap_err();
        assert!(matches!(err, MemError::DmaAlignment { .. }));
    }

    #[test]
    fn partial_transaction_rejected() {
        let (mem, id) = mem_with(128, 64);
        let err = MatRegion::new(id, 0, 0, 24, 1).validate(&mem).unwrap_err();
        assert!(matches!(err, MemError::DmaAlignment { .. }));
    }

    #[test]
    fn empty_rejected() {
        let (mem, id) = mem_with(128, 64);
        let err = MatRegion::new(id, 0, 0, 0, 4).validate(&mem).unwrap_err();
        assert!(matches!(err, MemError::BadDescriptor { .. }));
    }

    #[test]
    fn stream_length() {
        let (_, id) = mem_with(128, 64);
        let r = MatRegion::new(id, 0, 0, 32, 4);
        assert_eq!(r.len(), 128);
        assert_eq!(r.bytes(), 1024);
    }
}
