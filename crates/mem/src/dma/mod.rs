//! The DMA engine of one core group.
//!
//! A CPE moves data between main memory and its LDM by issuing DMA
//! descriptors. The hardware offers five distribution modes (§II):
//!
//! * [`DmaMode::Pe`] — between main memory and the LDM of the single
//!   issuing CPE.
//! * [`DmaMode::Bcast`] — the same main-memory data to the LDM of all 64
//!   CPEs.
//! * [`DmaMode::Row`] — between main memory and the LDMs of the 8 CPEs
//!   of one mesh row collectively: each 128 B transaction is split into
//!   eight 16 B slices dealt round-robin to the CPEs of the row (so CPE
//!   in mesh column `c` receives slices `c, c+8, c+16, …` of the
//!   element stream).
//! * [`DmaMode::Brow`] — the same data broadcast to the 8 CPEs of one
//!   row.
//! * [`DmaMode::Rank`] — the element stream dealt out transaction-wise
//!   (128 B granules) round-robin over all 64 CPEs in id order.
//!
//! All modes require 128 B alignment and transfer whole 128 B
//! transactions; [`descriptor`] validates this. [`functional`] performs
//! the actual data movement for the 64-thread functional runtime, and
//! [`model`] provides the calibrated sustained-bandwidth curves used by
//! the timing engine (and by the Figure 4 micro-benchmark).

pub mod descriptor;
pub mod functional;
pub mod model;

pub use descriptor::{DmaMode, MatRegion, Receipt};
pub use functional::{bcast_get, brow_get, pe_get, pe_put, rank_get, row_get, row_put};
pub use model::BandwidthModel;
