//! Functional execution of DMA descriptors.
//!
//! Each function is called *by a CPE thread* with its own LDM; collective
//! modes (`Row`, `Brow`, `Rank`) are expressed per-participant: every CPE
//! involved issues the same region and receives exactly its share, which
//! is equivalent to the hardware's single collective transaction and
//! keeps the functional runtime free of cross-thread rendezvous (the row
//! synchronization the hardware requires is modelled by the caller with
//! a row barrier, see `sw-sim`).

use super::descriptor::{DmaMode, MatRegion, Receipt};
use crate::ldm::{Ldm, LdmBuf};
use crate::main_memory::MainMemory;
use crate::MemError;
use sw_arch::consts::{DMA_TRANSACTION_DOUBLES, ROW_MODE_SLICE_DOUBLES};
use sw_arch::coord::{MESH_COLS, N_CPES};

/// Checks that the LDM buffer length matches what the mode will deliver.
fn check_buf(expected: usize, buf: LdmBuf, mode: DmaMode) -> Result<(), MemError> {
    if buf.len() != expected {
        return Err(MemError::BadDescriptor {
            what: format!(
                "{} transfer delivers {expected} doubles but LDM buffer holds {}",
                mode.name(),
                buf.len()
            ),
        });
    }
    Ok(())
}

/// Iterates the contiguous runs of participant `who`'s share of the
/// region's element stream when the stream is dealt out in `sd`-double
/// slices round-robin over `parts` participants: calls
/// `f(mem_start, local_start, len)` for each run, where `mem_start`
/// indexes the backing matrix, `local_start` the participant's packed
/// LDM image, and `len` never crosses a column boundary — so both
/// sides of every run are contiguous and can move with one
/// `copy_from_slice` instead of per-element loads.
fn for_owned_slices(
    region: &MatRegion,
    lda: usize,
    sd: usize,
    parts: usize,
    who: usize,
    mut f: impl FnMut(usize, usize, usize),
) {
    let total = region.len();
    let rows = region.rows;
    let mut slice_idx = who;
    let mut local = 0;
    while slice_idx * sd < total {
        let s0 = slice_idx * sd;
        let s1 = (s0 + sd).min(total);
        let mut s = s0;
        while s < s1 {
            // Stream position s is element (s % rows, s / rows) of the
            // column-major region.
            let c = s / rows;
            let r = s % rows;
            let run = (rows - r).min(s1 - s);
            f(
                (region.col0 + c) * lda + region.row0 + r,
                local + (s - s0),
                run,
            );
            s += run;
        }
        local += s1 - s0;
        slice_idx += parts;
    }
}

/// `PE_MODE` get: the whole region into this CPE's `buf`.
pub fn pe_get(
    mem: &MainMemory,
    region: MatRegion,
    ldm: &mut Ldm,
    buf: LdmBuf,
) -> Result<Receipt, MemError> {
    region.validate(mem)?;
    check_buf(region.len(), buf, DmaMode::Pe)?;
    let b = mem.buffer(region.mat)?;
    let lda = b.rows;
    let data = b.data.read().unwrap();
    let dst = ldm.slice_mut(buf);
    for c in 0..region.cols {
        let base = (region.col0 + c) * lda + region.row0;
        dst[c * region.rows..(c + 1) * region.rows]
            .copy_from_slice(&data[base..base + region.rows]);
    }
    Ok(Receipt {
        bytes_cpe: region.bytes(),
        bytes_total: region.bytes(),
        mode: DmaMode::Pe,
    })
}

/// `PE_MODE` put: this CPE's `buf` into the region.
pub fn pe_put(
    mem: &MainMemory,
    region: MatRegion,
    ldm: &Ldm,
    buf: LdmBuf,
) -> Result<Receipt, MemError> {
    region.validate(mem)?;
    check_buf(region.len(), buf, DmaMode::Pe)?;
    let b = mem.buffer(region.mat)?;
    let lda = b.rows;
    let src = ldm.slice(buf);
    let mut data = b.data.write().unwrap();
    for c in 0..region.cols {
        let base = (region.col0 + c) * lda + region.row0;
        data[base..base + region.rows]
            .copy_from_slice(&src[c * region.rows..(c + 1) * region.rows]);
    }
    Ok(Receipt {
        bytes_cpe: region.bytes(),
        bytes_total: region.bytes(),
        mode: DmaMode::Pe,
    })
}

/// `BCAST_MODE` get: the whole region into this CPE's `buf`; all 64 CPEs
/// call this with the same region and each receives a full copy.
pub fn bcast_get(
    mem: &MainMemory,
    region: MatRegion,
    ldm: &mut Ldm,
    buf: LdmBuf,
) -> Result<Receipt, MemError> {
    let r = pe_get(mem, region, ldm, buf)?;
    Ok(Receipt {
        mode: DmaMode::Bcast,
        ..r
    })
}

/// `BROW_MODE` get: like [`bcast_get`] but the copy goes to the 8 CPEs
/// of one mesh row; the caller is one of them.
pub fn brow_get(
    mem: &MainMemory,
    region: MatRegion,
    ldm: &mut Ldm,
    buf: LdmBuf,
) -> Result<Receipt, MemError> {
    let r = pe_get(mem, region, ldm, buf)?;
    Ok(Receipt {
        mode: DmaMode::Brow,
        ..r
    })
}

/// `ROW_MODE` get: the region's element stream is dealt out in 2-double
/// (16 B) slices, round-robin over the 8 CPEs of a mesh row; the caller
/// at mesh column `mesh_col` receives slices `mesh_col, mesh_col+8, …`
/// packed contiguously into `buf`.
///
/// The stream must be a whole number of 128 B transactions, i.e. its
/// length a multiple of 16 doubles, so every CPE receives the same
/// amount (the hardware requires this and the row synchronization).
pub fn row_get(
    mem: &MainMemory,
    region: MatRegion,
    mesh_col: usize,
    ldm: &mut Ldm,
    buf: LdmBuf,
) -> Result<Receipt, MemError> {
    region.validate(mem)?;
    validate_row_collective(&region, mesh_col)?;
    check_buf(region.len() / MESH_COLS, buf, DmaMode::Row)?;
    let b = mem.buffer(region.mat)?;
    let lda = b.rows;
    let data = b.data.read().unwrap();
    let dst = ldm.slice_mut(buf);
    for_owned_slices(
        &region,
        lda,
        ROW_MODE_SLICE_DOUBLES,
        MESH_COLS,
        mesh_col,
        |m, l, n| dst[l..l + n].copy_from_slice(&data[m..m + n]),
    );
    Ok(Receipt {
        bytes_cpe: region.bytes() / MESH_COLS,
        bytes_total: region.bytes(),
        mode: DmaMode::Row,
    })
}

/// `ROW_MODE` put: inverse of [`row_get`] — this CPE's `buf` is
/// scattered back into its interleaved share of the region.
pub fn row_put(
    mem: &MainMemory,
    region: MatRegion,
    mesh_col: usize,
    ldm: &Ldm,
    buf: LdmBuf,
) -> Result<Receipt, MemError> {
    region.validate(mem)?;
    validate_row_collective(&region, mesh_col)?;
    check_buf(region.len() / MESH_COLS, buf, DmaMode::Row)?;
    let b = mem.buffer(region.mat)?;
    let lda = b.rows;
    let src = ldm.slice(buf);
    let mut data = b.data.write().unwrap();
    for_owned_slices(
        &region,
        lda,
        ROW_MODE_SLICE_DOUBLES,
        MESH_COLS,
        mesh_col,
        |m, l, n| data[m..m + n].copy_from_slice(&src[l..l + n]),
    );
    Ok(Receipt {
        bytes_cpe: region.bytes() / MESH_COLS,
        bytes_total: region.bytes(),
        mode: DmaMode::Row,
    })
}

/// `RANK_MODE` get: the stream is dealt out in whole 128 B transactions
/// (16 doubles) round-robin over all 64 CPEs in id order; the caller
/// with linear id `cpe_id` receives transactions `cpe_id, cpe_id+64, …`.
pub fn rank_get(
    mem: &MainMemory,
    region: MatRegion,
    cpe_id: usize,
    ldm: &mut Ldm,
    buf: LdmBuf,
) -> Result<Receipt, MemError> {
    region.validate(mem)?;
    if cpe_id >= N_CPES {
        return Err(MemError::BadDescriptor {
            what: format!("cpe id {cpe_id} out of range"),
        });
    }
    let td = DMA_TRANSACTION_DOUBLES;
    let txns = region.len() / td;
    if !region.len().is_multiple_of(td) || !txns.is_multiple_of(N_CPES) {
        return Err(MemError::DmaAlignment {
            what: format!(
                "RANK_MODE stream of {} doubles is not a multiple of 64 transactions",
                region.len()
            ),
        });
    }
    check_buf(region.len() / N_CPES, buf, DmaMode::Rank)?;
    let b = mem.buffer(region.mat)?;
    let lda = b.rows;
    let data = b.data.read().unwrap();
    let dst = ldm.slice_mut(buf);
    for_owned_slices(&region, lda, td, N_CPES, cpe_id, |m, l, n| {
        dst[l..l + n].copy_from_slice(&data[m..m + n])
    });
    Ok(Receipt {
        bytes_cpe: region.bytes() / N_CPES,
        bytes_total: region.bytes(),
        mode: DmaMode::Rank,
    })
}

fn validate_row_collective(region: &MatRegion, mesh_col: usize) -> Result<(), MemError> {
    if mesh_col >= MESH_COLS {
        return Err(MemError::BadDescriptor {
            what: format!("mesh column {mesh_col} out of range"),
        });
    }
    if !region.len().is_multiple_of(DMA_TRANSACTION_DOUBLES) {
        return Err(MemError::DmaAlignment {
            what: format!(
                "ROW_MODE stream of {} doubles is not a whole number of 128 B transactions",
                region.len()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostMatrix, MainMemory};

    /// A 128×8 matrix whose element (r, c) is `1000c + r`.
    fn setup() -> (MainMemory, crate::MatId) {
        let mut mem = MainMemory::new();
        let m = HostMatrix::from_fn(128, 8, |r, c| (1000 * c + r) as f64);
        let id = mem.install(m).unwrap();
        (mem, id)
    }

    #[test]
    fn pe_get_copies_region_column_major() {
        let (mem, id) = setup();
        let mut ldm = Ldm::new();
        let buf = ldm.alloc(32 * 2).unwrap();
        let r = pe_get(&mem, MatRegion::new(id, 16, 2, 32, 2), &mut ldm, buf).unwrap();
        assert_eq!(r.bytes_cpe, 32 * 2 * 8);
        let s = ldm.slice(buf);
        assert_eq!(s[0], 2016.0); // (16, 2)
        assert_eq!(s[31], 2047.0); // (47, 2)
        assert_eq!(s[32], 3016.0); // (16, 3)
    }

    #[test]
    fn pe_put_roundtrip() {
        let (mem, id) = setup();
        let mut ldm = Ldm::new();
        let buf = ldm.alloc(16).unwrap();
        for (i, x) in ldm.slice_mut(buf).iter_mut().enumerate() {
            *x = -(i as f64);
        }
        pe_put(&mem, MatRegion::new(id, 32, 5, 16, 1), &ldm, buf).unwrap();
        let back = mem.extract(id).unwrap();
        assert_eq!(back.get(32, 5), 0.0);
        assert_eq!(back.get(40, 5), -8.0);
        // Neighbours untouched.
        assert_eq!(back.get(31, 5), 5031.0);
        assert_eq!(back.get(48, 5), 5048.0);
    }

    #[test]
    fn row_get_deals_two_double_slices() {
        let (mem, id) = setup();
        // One full column of 128 doubles over the 8 CPEs of a row:
        // CPE c gets rows {2c, 2c+1, 2c+16, 2c+17, ...}.
        for mesh_col in 0..8 {
            let mut ldm = Ldm::new();
            let buf = ldm.alloc(16).unwrap();
            let r = row_get(
                &mem,
                MatRegion::new(id, 0, 0, 128, 1),
                mesh_col,
                &mut ldm,
                buf,
            )
            .unwrap();
            assert_eq!(r.bytes_cpe, 16 * 8);
            assert_eq!(r.bytes_total, 128 * 8);
            let s = ldm.slice(buf);
            for t in 0..8 {
                assert_eq!(s[2 * t] as usize, 16 * t + 2 * mesh_col);
                assert_eq!(s[2 * t + 1] as usize, 16 * t + 2 * mesh_col + 1);
            }
        }
    }

    #[test]
    fn row_get_covers_whole_region_disjointly() {
        let (mem, id) = setup();
        let region = MatRegion::new(id, 0, 0, 128, 4);
        let mut seen = vec![0u32; 128 * 4];
        for mesh_col in 0..8 {
            let mut ldm = Ldm::new();
            let buf = ldm.alloc(region.len() / 8).unwrap();
            row_get(&mem, region, mesh_col, &mut ldm, buf).unwrap();
            for &v in ldm.slice(buf) {
                let c = v as usize / 1000;
                let r = v as usize % 1000;
                seen[c * 128 + r] += 1;
            }
        }
        assert!(
            seen.iter().all(|&n| n == 1),
            "every element delivered exactly once"
        );
    }

    #[test]
    fn row_put_is_inverse_of_row_get() {
        let (mem, id) = setup();
        let mut mem2 = MainMemory::new();
        let id2 = mem2.install(HostMatrix::zeros(128, 8)).unwrap();
        let region = MatRegion::new(id, 0, 2, 128, 3);
        let region2 = MatRegion::new(id2, 0, 2, 128, 3);
        for mesh_col in 0..8 {
            let mut ldm = Ldm::new();
            let buf = ldm.alloc(region.len() / 8).unwrap();
            row_get(&mem, region, mesh_col, &mut ldm, buf).unwrap();
            row_put(&mem2, region2, mesh_col, &ldm, buf).unwrap();
        }
        let a = mem.extract(id).unwrap();
        let b = mem2.extract(id2).unwrap();
        for c in 2..5 {
            for r in 0..128 {
                assert_eq!(a.get(r, c), b.get(r, c));
            }
        }
    }

    #[test]
    fn rank_get_deals_transactions() {
        let mut mem = MainMemory::new();
        // 1024 doubles = 64 transactions: one per CPE.
        let m = HostMatrix::from_fn(1024, 1, |r, _| r as f64);
        let id = mem.install(m).unwrap();
        let region = MatRegion::new(id, 0, 0, 1024, 1);
        for cpe in [0usize, 1, 63] {
            let mut ldm = Ldm::new();
            let buf = ldm.alloc(16).unwrap();
            rank_get(&mem, region, cpe, &mut ldm, buf).unwrap();
            let s = ldm.slice(buf);
            assert_eq!(s[0] as usize, cpe * 16);
            assert_eq!(s[15] as usize, cpe * 16 + 15);
        }
    }

    #[test]
    fn bcast_get_full_copy() {
        let (mem, id) = setup();
        let mut ldm = Ldm::new();
        let buf = ldm.alloc(128).unwrap();
        let r = bcast_get(&mem, MatRegion::new(id, 0, 1, 128, 1), &mut ldm, buf).unwrap();
        assert_eq!(r.mode, DmaMode::Bcast);
        assert_eq!(ldm.slice(buf)[127], 1127.0);
    }

    #[test]
    fn buffer_size_mismatch_rejected() {
        let (mem, id) = setup();
        let mut ldm = Ldm::new();
        let buf = ldm.alloc(10).unwrap();
        let err = pe_get(&mem, MatRegion::new(id, 0, 0, 16, 1), &mut ldm, buf).unwrap_err();
        assert!(matches!(err, MemError::BadDescriptor { .. }));
    }

    #[test]
    fn rank_requires_64_transactions() {
        let (mem, id) = setup();
        let mut ldm = Ldm::new();
        let buf = ldm.alloc(2).unwrap();
        let err = rank_get(&mem, MatRegion::new(id, 0, 0, 128, 1), 0, &mut ldm, buf).unwrap_err();
        assert!(matches!(err, MemError::DmaAlignment { .. }));
    }
}
