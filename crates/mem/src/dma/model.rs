//! Calibrated DMA timing model.
//!
//! The simulator cannot measure a real memory controller, so sustained
//! DMA bandwidth is modelled and calibrated against the paper's own
//! measurements (Figure 4): `PE_MODE` rises from ≈13.7 GB/s at
//! m=k=1536 to ≈26 GB/s at 15360, `ROW_MODE` from ≈21.8 to ≈29.3 GB/s,
//! against a 34 GB/s theoretical channel.
//!
//! The model decomposes sustained bandwidth into
//!
//! ```text
//! BW = channel_peak · run_factor(run_bytes) · mode_eff · fp_factor(footprint)
//! ```
//!
//! * `run_factor` — efficiency of the contiguous burst length a
//!   descriptor produces per column run (`r/(r + r_half)`): `ROW_MODE`
//!   streams whole CG-block columns (≈1 KB runs) where `PE_MODE` moves
//!   per-thread runs (128 B), which is the physical root of ROW's
//!   superiority in Figure 4.
//! * `mode_eff` — fixed per-mode overhead (row synchronization,
//!   broadcast replication, …).
//! * `fp_factor` — a saturating footprint term reproducing Figure 4's
//!   rise with total matrix size (page locality / fixed overhead
//!   amortization on the real machine).
//!
//! These curves describe *wire* bandwidth of back-to-back streaming.
//! Descriptor startup (issue, PPU protocol processing, reply) is
//! charged separately and explicitly — `startup_cycles` per descriptor
//! — which is what makes `PE_MODE`'s 64-descriptors-per-block pattern
//! slower than `ROW_MODE`'s 8 collectives in the DGEMM inner loop and
//! lets the PE→ROW gain of Figure 6 (+16.6 %) emerge from the event
//! simulation; see EXPERIMENTS.md.

use super::descriptor::{DmaMode, Receipt};
use sw_arch::consts::DMA_STARTUP_CYCLES;
use sw_arch::time::{secs_to_cycles, Cycles};
use sw_probe::metrics::Registry;

/// The five modes, in report order.
const ALL_MODES: [DmaMode; 5] = [
    DmaMode::Pe,
    DmaMode::Bcast,
    DmaMode::Row,
    DmaMode::Brow,
    DmaMode::Rank,
];

/// Per-mode calibration parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeCurve {
    /// Fraction of channel peak at ideal run length and footprint.
    pub mode_eff: f64,
    /// Floor of the footprint factor (small matrices).
    pub fp_lo: f64,
    /// Footprint half-saturation point in bytes.
    pub fp_half_bytes: f64,
}

/// The calibrated bandwidth/latency model of one CG's DMA channel.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthModel {
    /// Theoretical channel peak in GB/s (34 for SW26010).
    pub channel_peak_gbs: f64,
    /// Half-saturation of the run-length factor, in bytes.
    pub run_half_bytes: f64,
    /// Fixed startup cost per descriptor, in cycles.
    pub startup_cycles: Cycles,
    /// `PE_MODE` curve.
    pub pe: ModeCurve,
    /// `BCAST_MODE` curve.
    pub bcast: ModeCurve,
    /// `ROW_MODE` curve.
    pub row: ModeCurve,
    /// `BROW_MODE` curve.
    pub brow: ModeCurve,
    /// `RANK_MODE` curve.
    pub rank: ModeCurve,
}

impl Default for BandwidthModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl BandwidthModel {
    /// The calibration used throughout the reproduction (see module
    /// docs and EXPERIMENTS.md §calibration).
    pub fn calibrated() -> Self {
        const MB80: f64 = 80.0 * 1024.0 * 1024.0;
        BandwidthModel {
            channel_peak_gbs: 34.0,
            run_half_bytes: 36.0,
            startup_cycles: DMA_STARTUP_CYCLES,
            pe: ModeCurve {
                mode_eff: 1.0,
                fp_lo: 0.40,
                fp_half_bytes: MB80,
            },
            bcast: ModeCurve {
                mode_eff: 0.95,
                fp_lo: 0.45,
                fp_half_bytes: MB80,
            },
            row: ModeCurve {
                mode_eff: 0.90,
                fp_lo: 0.70,
                fp_half_bytes: MB80,
            },
            brow: ModeCurve {
                mode_eff: 0.92,
                fp_lo: 0.55,
                fp_half_bytes: MB80,
            },
            rank: ModeCurve {
                mode_eff: 0.85,
                fp_lo: 0.45,
                fp_half_bytes: MB80,
            },
        }
    }

    /// The per-mode curve.
    pub fn curve(&self, mode: DmaMode) -> &ModeCurve {
        match mode {
            DmaMode::Pe => &self.pe,
            DmaMode::Bcast => &self.bcast,
            DmaMode::Row => &self.row,
            DmaMode::Brow => &self.brow,
            DmaMode::Rank => &self.rank,
        }
    }

    /// Sustained wire bandwidth in GB/s for a transfer whose per-column
    /// contiguous runs are `run_bytes` long, while streaming a data set
    /// of `footprint_bytes` total.
    pub fn sustained_gbs(&self, mode: DmaMode, run_bytes: usize, footprint_bytes: usize) -> f64 {
        assert!(run_bytes > 0, "run length must be positive");
        let c = self.curve(mode);
        let run = run_bytes as f64;
        let run_factor = run / (run + self.run_half_bytes);
        let fp = footprint_bytes as f64;
        let fp_factor = c.fp_lo + (1.0 - c.fp_lo) * fp / (fp + c.fp_half_bytes);
        self.channel_peak_gbs * run_factor * c.mode_eff * fp_factor
    }

    /// Cycles the wire time of `total_bytes` takes at the sustained
    /// bandwidth (no startup).
    pub fn wire_cycles(
        &self,
        mode: DmaMode,
        total_bytes: usize,
        run_bytes: usize,
        footprint_bytes: usize,
    ) -> Cycles {
        let gbs = self.sustained_gbs(mode, run_bytes, footprint_bytes);
        secs_to_cycles(total_bytes as f64 / (gbs * 1.0e9))
    }

    /// Cycles `descriptors` back-to-back descriptors moving
    /// `total_bytes` in all take on the channel: per-descriptor startup
    /// plus wire time.
    pub fn transfer_cycles(
        &self,
        mode: DmaMode,
        descriptors: usize,
        total_bytes: usize,
        run_bytes: usize,
        footprint_bytes: usize,
    ) -> Cycles {
        descriptors as u64 * self.startup_cycles
            + self.wire_cycles(mode, total_bytes, run_bytes, footprint_bytes)
    }

    /// Modelled channel occupancy of one completed per-CPE receipt: one
    /// descriptor whose contiguous run is the receipt itself, streamed
    /// against the whole transfer's footprint. This is the duration the
    /// functional runtime's tracer charges each `dma.*` span; treating
    /// the receipt as a single run is slightly optimistic for strided
    /// regions, which is fine for a qualitative timeline.
    pub fn receipt_cycles(&self, r: &Receipt) -> Cycles {
        self.transfer_cycles(
            r.mode,
            1,
            r.bytes_cpe,
            r.bytes_cpe.max(8),
            r.bytes_total.max(8),
        )
    }

    /// Records the model's calibration in `reg` as gauges — the
    /// asymptotic per-mode ceiling (`mem.model.<mode>.peak_mbs`, in
    /// MB/s) and the per-descriptor startup cost — so metric exports
    /// carry the curve the measured traffic should be judged against.
    pub fn publish(&self, reg: &Registry) {
        for mode in ALL_MODES {
            let peak_mbs = self.channel_peak_gbs * self.curve(mode).mode_eff * 1000.0;
            reg.gauge(&format!("mem.model.{}.peak_mbs", mode.name()))
                .set(peak_mbs as i64);
        }
        reg.gauge("mem.model.startup_cycles")
            .set(self.startup_cycles as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(mk: usize) -> usize {
        mk * mk * 8
    }

    #[test]
    fn fig4_endpoints_pe() {
        let m = BandwidthModel::calibrated();
        // PE_MODE moves 16-double (128 B) runs in the micro-benchmark.
        let lo = m.sustained_gbs(DmaMode::Pe, 128, fp(1536));
        let hi = m.sustained_gbs(DmaMode::Pe, 128, fp(15360));
        assert!((lo - 13.7).abs() < 1.0, "PE at 1536 was {lo}");
        assert!((hi - 26.0).abs() < 1.0, "PE at 15360 was {hi}");
    }

    #[test]
    fn fig4_endpoints_row() {
        let m = BandwidthModel::calibrated();
        // ROW_MODE streams whole bM=128-double (1 KB) column runs.
        let lo = m.sustained_gbs(DmaMode::Row, 1024, fp(1536));
        let hi = m.sustained_gbs(DmaMode::Row, 1024, fp(15360));
        assert!((lo - 21.8).abs() < 1.2, "ROW at 1536 was {lo}");
        assert!((hi - 29.3).abs() < 1.0, "ROW at 15360 was {hi}");
    }

    #[test]
    fn row_beats_pe_everywhere_on_fig4_sweep() {
        let m = BandwidthModel::calibrated();
        for mk in (1536..=15360).step_by(1536) {
            let pe = m.sustained_gbs(DmaMode::Pe, 128, fp(mk));
            let row = m.sustained_gbs(DmaMode::Row, 1024, fp(mk));
            assert!(row > pe, "ROW ({row}) must beat PE ({pe}) at {mk}");
        }
    }

    #[test]
    fn monotone_in_footprint_and_run() {
        let m = BandwidthModel::calibrated();
        let mut last = 0.0;
        for mk in (1536..=15360).step_by(1536) {
            let bw = m.sustained_gbs(DmaMode::Pe, 128, fp(mk));
            assert!(bw > last);
            last = bw;
        }
        let short = m.sustained_gbs(DmaMode::Pe, 64, fp(9216));
        let long = m.sustained_gbs(DmaMode::Pe, 1024, fp(9216));
        assert!(long > short);
    }

    #[test]
    fn never_exceeds_channel_peak() {
        let m = BandwidthModel::calibrated();
        for mode in [
            DmaMode::Pe,
            DmaMode::Bcast,
            DmaMode::Row,
            DmaMode::Brow,
            DmaMode::Rank,
        ] {
            let bw = m.sustained_gbs(mode, 1 << 20, usize::MAX / 2);
            assert!(bw < m.channel_peak_gbs);
        }
    }

    #[test]
    fn receipt_cycles_matches_single_descriptor_transfer() {
        let m = BandwidthModel::calibrated();
        let r = Receipt {
            bytes_cpe: 16 * 1024,
            bytes_total: 128 * 1024,
            mode: DmaMode::Row,
        };
        assert_eq!(
            m.receipt_cycles(&r),
            m.transfer_cycles(DmaMode::Row, 1, 16 * 1024, 16 * 1024, 128 * 1024)
        );
    }

    #[test]
    fn publish_records_ceilings_and_startup() {
        let m = BandwidthModel::calibrated();
        let reg = Registry::new();
        m.publish(&reg);
        let snap = reg.snapshot();
        assert!(matches!(
            snap.get("mem.model.pe.peak_mbs"),
            Some(sw_probe::metrics::MetricValue::Gauge(34_000))
        ));
        assert!(matches!(
            snap.get("mem.model.startup_cycles"),
            Some(sw_probe::metrics::MetricValue::Gauge(g)) if *g > 0
        ));
    }

    #[test]
    fn transfer_cycles_includes_startup_per_descriptor() {
        let m = BandwidthModel::calibrated();
        let c0 = m.transfer_cycles(DmaMode::Pe, 64, 0, 128, fp(9216));
        assert_eq!(c0, 64 * m.startup_cycles);
        let c = m.transfer_cycles(DmaMode::Pe, 1, 1 << 20, 128, fp(9216));
        assert!(c > m.startup_cycles);
        assert_eq!(
            c - m.startup_cycles,
            m.wire_cycles(DmaMode::Pe, 1 << 20, 128, fp(9216))
        );
    }
}
