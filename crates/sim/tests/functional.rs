//! Integration tests of the 64-thread functional runtime: DMA, mesh and
//! ISA-kernel execution composed exactly the way the DGEMM variants use
//! them.

use sw_arch::Coord;
use sw_isa::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
use sw_isa::Net;
use sw_mem::dma::MatRegion;
use sw_mem::HostMatrix;
use sw_sim::CoreGroup;

#[test]
fn every_cpe_writes_its_own_region() {
    let mut cg = CoreGroup::new();
    let mat = cg.mem.install(HostMatrix::zeros(16 * 64, 4)).unwrap();
    let stats = cg.run(|ctx| {
        let buf = ctx.ldm.alloc(16 * 4).unwrap();
        let id = ctx.coord.id();
        for (i, x) in ctx.ldm.slice_mut(buf).iter_mut().enumerate() {
            *x = (id * 1000 + i) as f64;
        }
        ctx.dma_pe_put(MatRegion::new(mat, id * 16, 0, 16, 4), buf)
            .unwrap();
    });
    let m = cg.mem.extract(mat).unwrap();
    for id in 0..64 {
        for c in 0..4 {
            for r in 0..16 {
                assert_eq!(m.get(id * 16 + r, c), (id * 1000 + c * 16 + r) as f64);
            }
        }
    }
    assert_eq!(stats.dma.pe_bytes, 64 * 16 * 4 * 8);
    assert_eq!(stats.dma.descriptors, 64);
}

#[test]
fn row_collective_roundtrip_all_threads() {
    // Every mesh row collectively reads a different column strip and
    // writes it back to a second matrix; the copy must be exact.
    let mut cg = CoreGroup::new();
    let src = HostMatrix::from_fn(128, 16, |r, c| (c * 1000 + r) as f64);
    let a = cg.mem.install(src.clone()).unwrap();
    let b = cg.mem.install(HostMatrix::zeros(128, 16)).unwrap();
    cg.run(|ctx| {
        let cols = 2usize; // each row of CPEs owns 2 columns
        let region_in = MatRegion::new(a, 0, ctx.coord.row as usize * cols, 128, cols);
        let region_out = MatRegion::new(b, 0, ctx.coord.row as usize * cols, 128, cols);
        let buf = ctx.ldm.alloc(128 * cols / 8).unwrap();
        ctx.dma_row_get(region_in, buf).unwrap();
        ctx.dma_row_put(region_out, buf).unwrap();
    });
    assert_eq!(cg.mem.extract(b).unwrap(), src);
}

#[test]
fn diagonal_broadcast_step_at_panel_granularity() {
    // One step of the collective data sharing scheme (§III-B), step
    // i = 3: thread (3,3) broadcasts its A panel along the row and its
    // B panel along the column; row-3 threads rebroadcast B; column-3
    // threads rebroadcast A... here we test the simplest slice: the
    // diagonal thread broadcasts, everyone in its row/column receives.
    let step = 3usize;
    let panel: Vec<f64> = (0..64).map(|i| (i * i) as f64).collect();
    let mut cg = CoreGroup::new();
    let panel_ref = &panel;
    cg.run(move |ctx| {
        let me = ctx.coord;
        if me == Coord::new(step, step) {
            ctx.mesh().row_bcast_panel(panel_ref).unwrap();
            ctx.mesh().col_bcast_panel(panel_ref).unwrap();
        } else if me.row as usize == step {
            let mut got = vec![0.0; 64];
            ctx.mesh().recv_row_panel(&mut got).unwrap();
            assert_eq!(&got, panel_ref);
        } else if me.col as usize == step {
            let mut got = vec![0.0; 64];
            ctx.mesh().recv_col_panel(&mut got).unwrap();
            assert_eq!(&got, panel_ref);
        }
    });
}

#[test]
fn isa_kernel_with_live_mesh_broadcast() {
    // Row 0 runs the register-blocked kernel with A broadcast over the
    // row network: CPE (0,0) is the broadcaster (vldr), CPEs (0,1..7)
    // receive (getr). B is local to each CPE (same contents). All eight
    // must produce the identical C block, equal to the host reference —
    // through every selectable execution backend.
    for backend in sw_isa::EngineBackend::ALL {
        isa_kernel_with_live_mesh_broadcast_on(backend);
    }
}

fn isa_kernel_with_live_mesh_broadcast_on(backend: sw_isa::EngineBackend) {
    let pm = 16;
    let pn = 8;
    let pk = 16;
    let a_base = 0usize;
    let b_base = 1024usize;
    let c_base = 2048usize;
    let alpha_addr = 4096usize;
    let alpha = 1.25f64;

    let apanel: Vec<f64> = (0..pm * pk).map(|i| ((i * 7 % 23) as f64) - 11.0).collect();
    let bpanel: Vec<f64> = (0..pk * pn)
        .map(|i| ((i * 5 % 17) as f64) * 0.5 - 4.0)
        .collect();

    // Host reference with the same FMA order.
    let mut c_ref = vec![0.0f64; pm * pn];
    for j in 0..pn {
        for r in 0..pm {
            let mut acc = 0.0f64;
            for k in 0..pk {
                acc = apanel[k * pm + r].mul_add(bpanel[j * pk + k], acc);
            }
            c_ref[j * pm + r] = acc.mul_add(alpha, 0.0);
        }
    }

    let results = std::sync::Mutex::new(vec![Vec::new(); 8]);
    let mut cg = CoreGroup::new();
    cg.set_engine_backend(backend);
    let (ap, bp) = (&apanel, &bpanel);
    let results_ref = &results;
    cg.run(move |ctx| {
        if ctx.coord.row != 0 {
            return;
        }
        let col = ctx.coord.col as usize;
        // Lay out panels at fixed offsets.
        ctx.ldm.raw_mut()[b_base..b_base + bp.len()].copy_from_slice(bp);
        ctx.ldm.raw_mut()[alpha_addr] = alpha;
        let a_src = if col == 0 {
            ctx.ldm.raw_mut()[a_base..a_base + ap.len()].copy_from_slice(ap);
            Operand::LdmBcast(Net::Row)
        } else {
            Operand::Recv(Net::Row)
        };
        let cfg = BlockKernelCfg {
            pm,
            pn,
            pk,
            a_src,
            b_src: Operand::Ldm,
            a_base,
            b_base,
            c_base,
            alpha_addr,
        };
        let prog = gen_block_kernel(&cfg, KernelStyle::Scheduled);
        let report = ctx.run_kernel(&prog);
        assert!(report.vmads as usize >= pm * pn * pk / 4);
        results_ref.lock().unwrap()[col] = ctx.ldm.raw()[c_base..c_base + pm * pn].to_vec();
    });
    for col in 0..8 {
        assert_eq!(
            results.lock().unwrap()[col],
            c_ref,
            "CPE (0,{col}) result mismatch under {backend}"
        );
    }
}

#[test]
fn sync_all_orders_phases() {
    // Phase 1: everyone writes its id; sync; phase 2: everyone reads a
    // neighbour's slot. Without the barrier this would race.
    use std::sync::atomic::{AtomicU64, Ordering};
    let slots: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(u64::MAX)).collect();
    let slots_ref = &slots;
    let mut cg = CoreGroup::new();
    cg.run(move |ctx| {
        let id = ctx.coord.id();
        slots_ref[id].store(id as u64, Ordering::SeqCst);
        ctx.sync_all();
        let neighbour = (id + 1) % 64;
        assert_eq!(
            slots_ref[neighbour].load(Ordering::SeqCst),
            neighbour as u64
        );
    });
}

#[test]
fn mismatched_communication_scheme_is_diagnosed() {
    // Failure injection: thread (0,0) broadcasts along its row but one
    // receiver never drains — the bounded send buffer fills and the
    // mesh diagnoses the deadlock instead of hanging. The failure
    // surfaces as a structured RunError out of CoreGroup::try_run, and
    // the same CoreGroup stays usable for a subsequent clean run.
    let mut cg = CoreGroup::with_mesh_timeout(std::time::Duration::from_millis(200));
    let err = cg
        .try_run(|ctx| {
            if ctx.coord == Coord::new(0, 0) {
                // Way beyond the buffer capacity of any single receiver.
                for i in 0..1024 {
                    ctx.mesh_row_bcast(sw_arch::V256::splat(i as f64));
                }
            } else if ctx.coord.row == 0 && ctx.coord.col != 7 {
                // These drain correctly...
                for _ in 0..1024 {
                    let _ = ctx.mesh_getr();
                }
            }
            // ...but (0,7) never receives: the sender must block and
            // eventually trip the deadlock diagnostic. Give the mesh a
            // short fuse by exiting everyone else promptly.
        })
        .expect_err("the wedged broadcast must surface as a RunError");
    let primary = err.primary();
    assert!(
        matches!(primary.error, sw_sim::CpeError::Mesh(_)),
        "primary failure must be the mesh deadlock, got {:?}",
        primary
    );
    assert_eq!(primary.coord, Coord::new(0, 0));
    assert!(!err.stats.panicked_cpes.is_empty());
    // The runtime survives: a clean follow-up run succeeds.
    let stats = cg.run(|ctx| {
        ctx.sync_all();
    });
    assert!(stats.panicked_cpes.is_empty());
}

#[test]
fn dma_errors_surface_with_context() {
    // A misaligned region must fail loudly inside the CPE thread.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut cg = CoreGroup::new();
        let mat = cg.mem.install(HostMatrix::zeros(128, 8)).unwrap();
        cg.run(|ctx| {
            let buf = ctx.ldm.alloc(8).unwrap();
            // 8-row run: not a whole 128 B transaction.
            ctx.dma_pe_get(MatRegion::new(mat, 0, 0, 8, 1), buf)
                .expect("A DMA");
        });
    }));
    assert!(result.is_err());
}

#[test]
fn brow_and_rank_modes_through_the_runtime() {
    let mut cg = CoreGroup::new();
    let mat = cg
        .mem
        .install(HostMatrix::from_fn(1024, 1, |r, _| r as f64))
        .unwrap();
    let stats = cg.run(|ctx| {
        // BROW: every row broadcasts the same 16-double head into all
        // 8 of its CPEs.
        let b = ctx.ldm.alloc(16).unwrap();
        ctx.dma_brow_get(MatRegion::new(mat, 0, 0, 16, 1), b)
            .unwrap();
        assert_eq!(ctx.ldm.slice(b)[15], 15.0);
        // RANK: the 64 transactions deal out one per CPE.
        let r = ctx.ldm.alloc(16).unwrap();
        ctx.dma_rank_get(MatRegion::new(mat, 0, 0, 1024, 1), r)
            .unwrap();
        assert_eq!(ctx.ldm.slice(r)[0], (ctx.coord.id() * 16) as f64);
    });
    assert_eq!(stats.dma.brow_bytes, 64 * 16 * 8);
    assert_eq!(stats.dma.rank_bytes, 64 * 16 * 8);
}

#[test]
fn traced_run_produces_valid_chrome_trace() {
    use sw_probe::trace::validate_chrome_trace;
    use sw_sim::Tracer;

    let tracer = Tracer::enabled();
    let mut cg = CoreGroup::new();
    cg.set_tracer(tracer.clone());
    let mat = cg.mem.install(HostMatrix::zeros(16 * 64, 4)).unwrap();
    cg.run(|ctx| {
        let buf = ctx.ldm.alloc(16 * 4).unwrap();
        let id = ctx.coord.id();
        ctx.dma_pe_get(MatRegion::new(mat, id * 16, 0, 16, 4), buf)
            .unwrap();
        ctx.dma_pe_put(MatRegion::new(mat, id * 16, 0, 16, 4), buf)
            .unwrap();
    });
    let data = tracer.take();
    // 64 CPE tracks plus 16 mesh link tracks were registered.
    assert_eq!(data.tracks.len(), 64 + 16);
    // Two DMA spans per CPE, each with a modelled nonzero duration,
    // back to back on that CPE's private timeline.
    let dma_spans: Vec<_> = data.spans.iter().filter(|s| s.cat == "dma").collect();
    assert_eq!(dma_spans.len(), 2 * 64);
    for s in &dma_spans {
        assert!(
            s.end > s.start,
            "{} span must have modelled duration",
            s.name
        );
        assert_eq!(s.args, vec![("bytes", 16 * 4 * 8)]);
    }
    let json = data.to_chrome_json();
    let summary = validate_chrome_trace(&json).expect("functional trace must validate");
    assert_eq!(summary.pairs, 2 * 64);
}

#[test]
fn untraced_run_collects_nothing_and_still_counts() {
    let mut cg = CoreGroup::new();
    let mat = cg.mem.install(HostMatrix::zeros(16 * 64, 1)).unwrap();
    let stats = cg.run(|ctx| {
        let buf = ctx.ldm.alloc(16).unwrap();
        ctx.dma_pe_get(MatRegion::new(mat, ctx.coord.id() * 16, 0, 16, 1), buf)
            .unwrap();
    });
    assert_eq!(stats.dma.descriptors, 64);
}
