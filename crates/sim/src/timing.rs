//! Discrete-event timing engine.
//!
//! A DGEMM variant expresses one run as a DAG of tasks over two serial
//! resources:
//!
//! * [`Resource::Dma`] — the core group's single DMA channel; all block
//!   transfers serialize on it;
//! * [`Resource::Cpes`] — the CPE cluster computing in lockstep (every
//!   CPE runs the same kernel on its own thread-level block, so one
//!   task models all 64);
//! * [`Resource::None`] — pure latency (mesh synchronization, barrier
//!   costs) that occupies no resource.
//!
//! Tasks are processed in insertion order (the program order of the
//! MPE-side schedule): each starts when its dependences have finished
//! *and* its resource is free. Whether DMA hides under compute is
//! therefore decided by the dependence structure the variant builds —
//! Algorithm 1 (serial) versus Algorithm 2 (double-buffered) — not by
//! a formula.

use sw_arch::time::{cycles_to_secs, Cycles};
use sw_probe::trace::Tracer;

/// Identifier of a task inside one [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

/// The resource a task occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// The shared DMA channel.
    Dma,
    /// The lock-stepped CPE cluster.
    Cpes,
    /// No resource — pure latency.
    None,
}

/// Most dependences a task may declare. The MPE-side schedules need at
/// most four (two prefetches, the resident-B load, and the previous
/// compute); keeping them inline makes [`Dag::task`] allocation-free,
/// which matters because a large-size estimate builds ~10⁶ tasks.
pub const MAX_TASK_DEPS: usize = 4;

#[derive(Debug, Clone, Copy)]
struct Task {
    resource: Resource,
    duration: Cycles,
    deps: [u32; MAX_TASK_DEPS],
    n_deps: u8,
    label: &'static str,
}

impl Task {
    #[inline]
    fn deps(&self) -> &[u32] {
        &self.deps[..self.n_deps as usize]
    }
}

/// A dependence DAG of timed tasks.
#[derive(Debug, Clone, Default)]
pub struct Dag {
    tasks: Vec<Task>,
}

impl Dag {
    /// An empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task; dependences must refer to earlier tasks, and at
    /// most [`MAX_TASK_DEPS`] of them (duplicates are harmless).
    pub fn task(
        &mut self,
        resource: Resource,
        duration: Cycles,
        deps: &[TaskId],
        label: &'static str,
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        assert!(
            id.0 < u32::MAX as usize,
            "task count overflows the internal u32 ids"
        );
        assert!(
            deps.len() <= MAX_TASK_DEPS,
            "a task may declare at most {MAX_TASK_DEPS} dependences, got {}",
            deps.len()
        );
        let mut inline = [0u32; MAX_TASK_DEPS];
        for (slot, d) in inline.iter_mut().zip(deps) {
            assert!(
                d.0 < id.0,
                "dependence on a later task — DAGs are built in program order"
            );
            *slot = d.0 as u32;
        }
        self.tasks.push(Task {
            resource,
            duration,
            deps: inline,
            n_deps: deps.len() as u8,
            label,
        });
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks were added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Like [`Dag::schedule`], but also returns the per-task timeline
    /// (label, resource, start, end) for inspection and debugging.
    pub fn trace(&self) -> (TimingResult, Vec<TaskTrace>) {
        let result = self.schedule();
        // Re-run the same deterministic pass, recording intervals.
        let mut finish = vec![0u64; self.tasks.len()];
        let mut dma_free = 0u64;
        let mut cpes_free = 0u64;
        let mut out = Vec::with_capacity(self.tasks.len());
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t
                .deps()
                .iter()
                .map(|&d| finish[d as usize])
                .max()
                .unwrap_or(0);
            let start = match t.resource {
                Resource::Dma => ready.max(dma_free),
                Resource::Cpes => ready.max(cpes_free),
                Resource::None => ready,
            };
            let end = start + t.duration;
            match t.resource {
                Resource::Dma => dma_free = end,
                Resource::Cpes => cpes_free = end,
                Resource::None => {}
            }
            finish[i] = end;
            out.push(TaskTrace {
                label: t.label,
                resource: t.resource,
                start,
                end,
            });
        }
        (result, out)
    }

    /// Schedules the DAG and emits the timeline onto `tracer` — one
    /// span per task on one track per resource (process `"timing-dag"`,
    /// categories `"dma"` / `"compute"` / `"sync"`). Returns what
    /// [`Dag::trace`] returns; with a disabled tracer it *is*
    /// [`Dag::trace`] plus one branch.
    pub fn emit_trace(&self, tracer: &Tracer) -> (TimingResult, Vec<TaskTrace>) {
        let (result, tasks) = self.trace();
        if tracer.is_enabled() {
            let dma = tracer.track("timing-dag", "DMA engine");
            let cpes = tracer.track("timing-dag", "CPE cluster");
            let lat = tracer.track("timing-dag", "latency");
            for t in &tasks {
                let (track, cat) = match t.resource {
                    Resource::Dma => (dma, "dma"),
                    Resource::Cpes => (cpes, "compute"),
                    Resource::None => (lat, "sync"),
                };
                tracer.span(track, cat, t.label, t.start, t.end);
            }
        }
        (result, tasks)
    }

    /// Runs the engine, returning the makespan and per-resource busy
    /// time.
    pub fn schedule(&self) -> TimingResult {
        let mut finish = vec![0u64; self.tasks.len()];
        let mut dma_free = 0u64;
        let mut cpes_free = 0u64;
        let mut dma_busy = 0u64;
        let mut cpes_busy = 0u64;
        let mut makespan = 0u64;
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t
                .deps()
                .iter()
                .map(|&d| finish[d as usize])
                .max()
                .unwrap_or(0);
            let start = match t.resource {
                Resource::Dma => ready.max(dma_free),
                Resource::Cpes => ready.max(cpes_free),
                Resource::None => ready,
            };
            let end = start + t.duration;
            match t.resource {
                Resource::Dma => {
                    dma_free = end;
                    dma_busy += t.duration;
                }
                Resource::Cpes => {
                    cpes_free = end;
                    cpes_busy += t.duration;
                }
                Resource::None => {}
            }
            finish[i] = end;
            makespan = makespan.max(end);
        }
        TimingResult {
            makespan_cycles: makespan,
            dma_busy_cycles: dma_busy,
            cpes_busy_cycles: cpes_busy,
        }
    }
}

impl Dag {
    /// Extracts the **critical path**: the chain of tasks in which each
    /// one's start time was decided by its predecessor's finish —
    /// either a declared dependence or the previous occupant of its
    /// serial resource — walked back from the task that achieves the
    /// makespan. Because the scheduler sets `start = max(deps finish,
    /// resource free)`, the binding predecessor always finishes exactly
    /// when the successor starts, so the returned segments tile
    /// `[0, makespan]` with no gaps and their durations sum exactly to
    /// the makespan (the causal analogue of the interpreter's
    /// stall-attribution invariant).
    pub fn critical_path(&self) -> CriticalPath {
        let n = self.tasks.len();
        let mut finish = vec![0u64; n];
        // The decision that fixed each task's start time.
        let mut binding: Vec<CritBound> = vec![CritBound::RunStart; n];
        let mut dma_free = 0u64;
        let mut cpes_free = 0u64;
        let mut last_dma = u32::MAX;
        let mut last_cpes = u32::MAX;
        let mut makespan = 0u64;
        let mut crit_end = usize::MAX;
        for (i, t) in self.tasks.iter().enumerate() {
            let mut ready = 0u64;
            let mut bind_dep = u32::MAX;
            for &d in t.deps() {
                if finish[d as usize] > ready || bind_dep == u32::MAX {
                    ready = ready.max(finish[d as usize]);
                    if finish[d as usize] == ready {
                        bind_dep = d;
                    }
                }
            }
            let (rfree, rlast) = match t.resource {
                Resource::Dma => (dma_free, last_dma),
                Resource::Cpes => (cpes_free, last_cpes),
                Resource::None => (0, u32::MAX),
            };
            let start = ready.max(rfree);
            binding[i] = if start == 0 {
                CritBound::RunStart
            } else if ready == start && bind_dep != u32::MAX {
                // Ties between a dependence and the resource queue go
                // to the dependence: it is the causal edge.
                CritBound::Dependence(bind_dep)
            } else {
                debug_assert!(rlast != u32::MAX, "resource-bound task with idle resource");
                CritBound::ResourceQueue(rlast)
            };
            let end = start + t.duration;
            match t.resource {
                Resource::Dma => {
                    dma_free = end;
                    last_dma = i as u32;
                }
                Resource::Cpes => {
                    cpes_free = end;
                    last_cpes = i as u32;
                }
                Resource::None => {}
            }
            finish[i] = end;
            if end > makespan || crit_end == usize::MAX {
                makespan = end;
                crit_end = i;
            }
        }
        let mut segments = Vec::new();
        if crit_end != usize::MAX {
            // Walk the binding chain back to cycle 0. Predecessor
            // indices strictly decrease (both edge kinds point at
            // earlier tasks), so this terminates.
            let mut cur = crit_end;
            loop {
                let t = &self.tasks[cur];
                let end = finish[cur];
                segments.push(CritSegment {
                    label: t.label,
                    resource: t.resource,
                    start: end - t.duration,
                    end,
                    bound: binding[cur],
                });
                match binding[cur] {
                    CritBound::RunStart => break,
                    CritBound::Dependence(p) | CritBound::ResourceQueue(p) => cur = p as usize,
                }
            }
            segments.reverse();
        }
        CriticalPath {
            makespan_cycles: makespan,
            segments,
        }
    }
}

/// What fixed a critical-path task's start time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CritBound {
    /// Started at cycle 0 — nothing before it.
    RunStart,
    /// Waited for the declared dependence with this task index.
    Dependence(u32),
    /// Waited for its serial resource, last held by this task index.
    ResourceQueue(u32),
}

/// One link of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CritSegment {
    /// The label given at [`Dag::task`] time.
    pub label: &'static str,
    /// Resource the task occupied.
    pub resource: Resource,
    /// Start cycle (equals the previous segment's `end`).
    pub start: Cycles,
    /// End cycle.
    pub end: Cycles,
    /// Why the task started no earlier.
    pub bound: CritBound,
}

impl CritSegment {
    /// Segment duration in cycles.
    pub fn cycles(&self) -> Cycles {
        self.end - self.start
    }
}

/// The longest dependency chain of a scheduled [`Dag`], tiling
/// `[0, makespan]` exactly.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// End-to-end cycles (same value [`Dag::schedule`] reports).
    pub makespan_cycles: Cycles,
    /// Chronological chain; `segments[0].start == 0`, each segment
    /// starts where the previous ended, and the last ends at
    /// `makespan_cycles`. Empty only for an empty DAG.
    pub segments: Vec<CritSegment>,
}

impl CriticalPath {
    /// Cycles spent on `resource` along the path; the three resources
    /// sum exactly to `makespan_cycles`.
    pub fn resource_cycles(&self, resource: Resource) -> Cycles {
        self.segments
            .iter()
            .filter(|s| s.resource == resource)
            .map(|s| s.cycles())
            .sum()
    }

    /// The path's segments aggregated by `(label, resource)`, sorted by
    /// total cycles descending — "what should I optimize first". Each
    /// entry is `(label, resource, total cycles, occurrence count)`.
    pub fn top_segments(&self, n: usize) -> Vec<(&'static str, Resource, Cycles, usize)> {
        let mut agg: Vec<(&'static str, Resource, Cycles, usize)> = Vec::new();
        for s in &self.segments {
            if let Some(e) = agg.iter_mut().find(|e| e.0 == s.label && e.1 == s.resource) {
                e.2 += s.cycles();
                e.3 += 1;
            } else {
                agg.push((s.label, s.resource, s.cycles(), 1));
            }
        }
        agg.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
        agg.truncate(n);
        agg
    }
}

/// One scheduled task interval, as reported by [`Dag::trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskTrace {
    /// The label given at [`Dag::task`] time.
    pub label: &'static str,
    /// Resource occupied.
    pub resource: Resource,
    /// Start cycle.
    pub start: Cycles,
    /// End cycle.
    pub end: Cycles,
}

/// Outcome of scheduling a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingResult {
    /// End-to-end cycles of the run.
    pub makespan_cycles: Cycles,
    /// Cycles the DMA channel was busy.
    pub dma_busy_cycles: Cycles,
    /// Cycles the CPE cluster was busy.
    pub cpes_busy_cycles: Cycles,
}

impl TimingResult {
    /// Makespan in seconds at the CPE clock.
    pub fn secs(&self) -> f64 {
        cycles_to_secs(self.makespan_cycles)
    }

    /// Sustained Gflops/s for a run performing `flops` operations.
    pub fn gflops(&self, flops: u64) -> f64 {
        sw_arch::time::gflops(flops, self.secs())
    }

    /// Fraction of the makespan the CPE cluster computed.
    pub fn compute_utilization(&self) -> f64 {
        self.cpes_busy_cycles as f64 / self.makespan_cycles.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_chain_adds_durations() {
        let mut d = Dag::new();
        let a = d.task(Resource::Dma, 100, &[], "load");
        let b = d.task(Resource::Cpes, 200, &[a], "compute");
        let _c = d.task(Resource::Dma, 50, &[b], "store");
        let r = d.schedule();
        assert_eq!(r.makespan_cycles, 350);
        assert_eq!(r.dma_busy_cycles, 150);
        assert_eq!(r.cpes_busy_cycles, 200);
    }

    #[test]
    fn double_buffering_overlaps() {
        // Two iterations, Algorithm-2 style: load(i+1) has no dep on
        // compute(i), so it hides under it.
        let mut d = Dag::new();
        let l0 = d.task(Resource::Dma, 100, &[], "load0");
        let l1 = d.task(Resource::Dma, 100, &[], "load1");
        let c0 = d.task(Resource::Cpes, 300, &[l0], "compute0");
        let _c1 = d.task(Resource::Cpes, 300, &[l1, c0], "compute1");
        let r = d.schedule();
        // load1 (100..200) hides under compute0 (100..400).
        assert_eq!(r.makespan_cycles, 700);
    }

    #[test]
    fn serial_version_does_not_overlap() {
        // Algorithm-1 style: compute(i) then load(i+1) strictly after.
        let mut d = Dag::new();
        let l0 = d.task(Resource::Dma, 100, &[], "load0");
        let c0 = d.task(Resource::Cpes, 300, &[l0], "compute0");
        let l1 = d.task(Resource::Dma, 100, &[c0], "load1");
        let _c1 = d.task(Resource::Cpes, 300, &[l1], "compute1");
        let r = d.schedule();
        assert_eq!(r.makespan_cycles, 800);
    }

    #[test]
    fn resource_serialization_without_deps() {
        let mut d = Dag::new();
        d.task(Resource::Dma, 100, &[], "a");
        d.task(Resource::Dma, 100, &[], "b");
        let r = d.schedule();
        assert_eq!(r.makespan_cycles, 200);
    }

    #[test]
    fn latency_tasks_occupy_nothing() {
        let mut d = Dag::new();
        let a = d.task(Resource::None, 40, &[], "sync");
        let b = d.task(Resource::None, 40, &[], "sync2"); // parallel
        let _ = d.task(Resource::Cpes, 10, &[a, b], "c");
        let r = d.schedule();
        assert_eq!(r.makespan_cycles, 50);
        assert_eq!(r.dma_busy_cycles, 0);
    }

    #[test]
    #[should_panic]
    fn forward_dependence_rejected() {
        let mut d = Dag::new();
        d.task(Resource::Dma, 1, &[TaskId(5)], "bad");
    }

    #[test]
    fn trace_matches_schedule() {
        let mut d = Dag::new();
        let l0 = d.task(Resource::Dma, 100, &[], "load0");
        let c0 = d.task(Resource::Cpes, 300, &[l0], "compute0");
        let _s0 = d.task(Resource::Dma, 50, &[c0], "store0");
        let (r, tr) = d.trace();
        assert_eq!(r, d.schedule());
        assert_eq!(tr.len(), 3);
        assert_eq!(tr[0].label, "load0");
        assert_eq!((tr[1].start, tr[1].end), (100, 400));
        assert_eq!((tr[2].start, tr[2].end), (400, 450));
    }

    #[test]
    fn emit_trace_mirrors_trace_onto_tracks() {
        let mut d = Dag::new();
        let l0 = d.task(Resource::Dma, 100, &[], "load0");
        let c0 = d.task(Resource::Cpes, 300, &[l0], "compute0");
        let _s = d.task(Resource::None, 40, &[c0], "sync");
        let tracer = Tracer::enabled();
        let (r, tasks) = d.emit_trace(&tracer);
        assert_eq!(r, d.schedule());
        let data = tracer.take();
        assert_eq!(data.tracks.len(), 3);
        assert_eq!(data.spans.len(), tasks.len());
        for (span, task) in data.spans.iter().zip(&tasks) {
            assert_eq!(span.name, task.label);
            assert_eq!((span.start, span.end), (task.start, task.end));
        }
        assert_eq!(data.spans[0].cat, "dma");
        assert_eq!(data.spans[1].cat, "compute");
        assert_eq!(data.spans[2].cat, "sync");
        // Disabled tracer: same result, nothing collected.
        let off = Tracer::disabled();
        let (r2, _) = d.emit_trace(&off);
        assert_eq!(r2, r);
        assert!(off.take().is_empty());
    }

    fn assert_path_tiles(d: &Dag) {
        let cp = d.critical_path();
        let r = d.schedule();
        assert_eq!(cp.makespan_cycles, r.makespan_cycles);
        let total: u64 = cp.segments.iter().map(|s| s.cycles()).sum();
        assert_eq!(
            total, cp.makespan_cycles,
            "segments must sum to the makespan"
        );
        if d.is_empty() {
            assert!(cp.segments.is_empty());
            return;
        }
        assert_eq!(cp.segments[0].start, 0);
        assert_eq!(cp.segments.last().unwrap().end, cp.makespan_cycles);
        for w in cp.segments.windows(2) {
            assert_eq!(w[0].end, w[1].start, "critical path must have no gaps");
        }
        let by_resource = cp.resource_cycles(Resource::Dma)
            + cp.resource_cycles(Resource::Cpes)
            + cp.resource_cycles(Resource::None);
        assert_eq!(by_resource, cp.makespan_cycles);
    }

    #[test]
    fn critical_path_of_serial_chain() {
        let mut d = Dag::new();
        let a = d.task(Resource::Dma, 100, &[], "load");
        let b = d.task(Resource::Cpes, 200, &[a], "compute");
        let _c = d.task(Resource::Dma, 50, &[b], "store");
        assert_path_tiles(&d);
        let cp = d.critical_path();
        let labels: Vec<_> = cp.segments.iter().map(|s| s.label).collect();
        assert_eq!(labels, vec!["load", "compute", "store"]);
        assert!(matches!(cp.segments[1].bound, CritBound::Dependence(0)));
    }

    #[test]
    fn critical_path_skips_hidden_dma() {
        // Double buffering: load1 hides under compute0 and must NOT be
        // on the path; compute1 chains off compute0 via the CPE queue
        // (the declared dep on compute0 binds — same finish, causal).
        let mut d = Dag::new();
        let l0 = d.task(Resource::Dma, 100, &[], "load0");
        let _l1 = d.task(Resource::Dma, 100, &[], "load1");
        let c0 = d.task(Resource::Cpes, 300, &[l0], "compute0");
        let _c1 = d.task(Resource::Cpes, 300, &[_l1, c0], "compute1");
        assert_path_tiles(&d);
        let cp = d.critical_path();
        let labels: Vec<_> = cp.segments.iter().map(|s| s.label).collect();
        assert_eq!(labels, vec!["load0", "compute0", "compute1"]);
        assert_eq!(cp.resource_cycles(Resource::Dma), 100);
        assert_eq!(cp.resource_cycles(Resource::Cpes), 600);
    }

    #[test]
    fn critical_path_follows_resource_queue() {
        // Two independent DMA tasks: the second is bound by the DMA
        // channel, not by any dependence.
        let mut d = Dag::new();
        d.task(Resource::Dma, 100, &[], "a");
        d.task(Resource::Dma, 150, &[], "b");
        assert_path_tiles(&d);
        let cp = d.critical_path();
        assert_eq!(cp.segments.len(), 2);
        assert!(matches!(cp.segments[1].bound, CritBound::ResourceQueue(0)));
    }

    #[test]
    fn critical_path_of_empty_dag() {
        let d = Dag::new();
        let cp = d.critical_path();
        assert_eq!(cp.makespan_cycles, 0);
        assert!(cp.segments.is_empty());
    }

    #[test]
    fn top_segments_aggregate_by_label() {
        let mut d = Dag::new();
        let mut prev = d.task(Resource::Dma, 10, &[], "load");
        for _ in 0..3 {
            let c = d.task(Resource::Cpes, 100, &[prev], "compute");
            prev = d.task(Resource::Dma, 10, &[c], "load");
        }
        let cp = d.critical_path();
        let top = cp.top_segments(2);
        assert_eq!(top[0].0, "compute");
        assert_eq!(top[0].2, 300);
        assert_eq!(top[0].3, 3);
        assert_eq!(top[1].0, "load");
        assert_eq!(top[1].2, 40);
        assert_eq!(top[1].3, 4);
    }

    /// Property: on random DAGs the critical path tiles `[0, makespan]`
    /// exactly — same invariant style as the stall-attribution suite.
    #[test]
    fn critical_path_attribution_sums_exactly_on_random_dags() {
        // Local splitmix64; the workspace is std-only.
        let mut state = 0x0dd5_beefu64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..300 {
            let mut d = Dag::new();
            let mut ids = Vec::new();
            let n = 1 + (next() % 60) as usize;
            for i in 0..n {
                let resource = match next() % 3 {
                    0 => Resource::Dma,
                    1 => Resource::Cpes,
                    _ => Resource::None,
                };
                // Zero durations included on purpose: degenerate tasks
                // must not break the tiling.
                let duration = next() % 100;
                let mut deps = Vec::new();
                if i > 0 {
                    for _ in 0..(next() % (MAX_TASK_DEPS as u64 + 1)) {
                        deps.push(ids[(next() % i as u64) as usize]);
                    }
                }
                ids.push(d.task(resource, duration, &deps, "t"));
            }
            assert_path_tiles(&d);
        }
    }

    #[test]
    fn gflops_conversion() {
        let mut d = Dag::new();
        d.task(Resource::Cpes, 1_450_000_000, &[], "one second");
        let r = d.schedule();
        assert!((r.secs() - 1.0).abs() < 1e-9);
        assert!((r.gflops(742_400_000_000) - 742.4).abs() < 1e-6);
        assert!((r.compute_utilization() - 1.0).abs() < 1e-12);
    }
}
