//! Discrete-event timing engine.
//!
//! A DGEMM variant expresses one run as a DAG of tasks over two serial
//! resources:
//!
//! * [`Resource::Dma`] — the core group's single DMA channel; all block
//!   transfers serialize on it;
//! * [`Resource::Cpes`] — the CPE cluster computing in lockstep (every
//!   CPE runs the same kernel on its own thread-level block, so one
//!   task models all 64);
//! * [`Resource::None`] — pure latency (mesh synchronization, barrier
//!   costs) that occupies no resource.
//!
//! Tasks are processed in insertion order (the program order of the
//! MPE-side schedule): each starts when its dependences have finished
//! *and* its resource is free. Whether DMA hides under compute is
//! therefore decided by the dependence structure the variant builds —
//! Algorithm 1 (serial) versus Algorithm 2 (double-buffered) — not by
//! a formula.

use sw_arch::time::{cycles_to_secs, Cycles};
use sw_probe::trace::Tracer;

/// Identifier of a task inside one [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

/// The resource a task occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// The shared DMA channel.
    Dma,
    /// The lock-stepped CPE cluster.
    Cpes,
    /// No resource — pure latency.
    None,
}

/// Most dependences a task may declare. The MPE-side schedules need at
/// most four (two prefetches, the resident-B load, and the previous
/// compute); keeping them inline makes [`Dag::task`] allocation-free,
/// which matters because a large-size estimate builds ~10⁶ tasks.
pub const MAX_TASK_DEPS: usize = 4;

#[derive(Debug, Clone, Copy)]
struct Task {
    resource: Resource,
    duration: Cycles,
    deps: [u32; MAX_TASK_DEPS],
    n_deps: u8,
    label: &'static str,
}

impl Task {
    #[inline]
    fn deps(&self) -> &[u32] {
        &self.deps[..self.n_deps as usize]
    }
}

/// A dependence DAG of timed tasks.
#[derive(Debug, Clone, Default)]
pub struct Dag {
    tasks: Vec<Task>,
}

impl Dag {
    /// An empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task; dependences must refer to earlier tasks, and at
    /// most [`MAX_TASK_DEPS`] of them (duplicates are harmless).
    pub fn task(
        &mut self,
        resource: Resource,
        duration: Cycles,
        deps: &[TaskId],
        label: &'static str,
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        assert!(
            id.0 < u32::MAX as usize,
            "task count overflows the internal u32 ids"
        );
        assert!(
            deps.len() <= MAX_TASK_DEPS,
            "a task may declare at most {MAX_TASK_DEPS} dependences, got {}",
            deps.len()
        );
        let mut inline = [0u32; MAX_TASK_DEPS];
        for (slot, d) in inline.iter_mut().zip(deps) {
            assert!(
                d.0 < id.0,
                "dependence on a later task — DAGs are built in program order"
            );
            *slot = d.0 as u32;
        }
        self.tasks.push(Task {
            resource,
            duration,
            deps: inline,
            n_deps: deps.len() as u8,
            label,
        });
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks were added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Like [`Dag::schedule`], but also returns the per-task timeline
    /// (label, resource, start, end) for inspection and debugging.
    pub fn trace(&self) -> (TimingResult, Vec<TaskTrace>) {
        let result = self.schedule();
        // Re-run the same deterministic pass, recording intervals.
        let mut finish = vec![0u64; self.tasks.len()];
        let mut dma_free = 0u64;
        let mut cpes_free = 0u64;
        let mut out = Vec::with_capacity(self.tasks.len());
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t
                .deps()
                .iter()
                .map(|&d| finish[d as usize])
                .max()
                .unwrap_or(0);
            let start = match t.resource {
                Resource::Dma => ready.max(dma_free),
                Resource::Cpes => ready.max(cpes_free),
                Resource::None => ready,
            };
            let end = start + t.duration;
            match t.resource {
                Resource::Dma => dma_free = end,
                Resource::Cpes => cpes_free = end,
                Resource::None => {}
            }
            finish[i] = end;
            out.push(TaskTrace {
                label: t.label,
                resource: t.resource,
                start,
                end,
            });
        }
        (result, out)
    }

    /// Schedules the DAG and emits the timeline onto `tracer` — one
    /// span per task on one track per resource (process `"timing-dag"`,
    /// categories `"dma"` / `"compute"` / `"sync"`). Returns what
    /// [`Dag::trace`] returns; with a disabled tracer it *is*
    /// [`Dag::trace`] plus one branch.
    pub fn emit_trace(&self, tracer: &Tracer) -> (TimingResult, Vec<TaskTrace>) {
        let (result, tasks) = self.trace();
        if tracer.is_enabled() {
            let dma = tracer.track("timing-dag", "DMA engine");
            let cpes = tracer.track("timing-dag", "CPE cluster");
            let lat = tracer.track("timing-dag", "latency");
            for t in &tasks {
                let (track, cat) = match t.resource {
                    Resource::Dma => (dma, "dma"),
                    Resource::Cpes => (cpes, "compute"),
                    Resource::None => (lat, "sync"),
                };
                tracer.span(track, cat, t.label, t.start, t.end);
            }
        }
        (result, tasks)
    }

    /// Runs the engine, returning the makespan and per-resource busy
    /// time.
    pub fn schedule(&self) -> TimingResult {
        let mut finish = vec![0u64; self.tasks.len()];
        let mut dma_free = 0u64;
        let mut cpes_free = 0u64;
        let mut dma_busy = 0u64;
        let mut cpes_busy = 0u64;
        let mut makespan = 0u64;
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t
                .deps()
                .iter()
                .map(|&d| finish[d as usize])
                .max()
                .unwrap_or(0);
            let start = match t.resource {
                Resource::Dma => ready.max(dma_free),
                Resource::Cpes => ready.max(cpes_free),
                Resource::None => ready,
            };
            let end = start + t.duration;
            match t.resource {
                Resource::Dma => {
                    dma_free = end;
                    dma_busy += t.duration;
                }
                Resource::Cpes => {
                    cpes_free = end;
                    cpes_busy += t.duration;
                }
                Resource::None => {}
            }
            finish[i] = end;
            makespan = makespan.max(end);
        }
        TimingResult {
            makespan_cycles: makespan,
            dma_busy_cycles: dma_busy,
            cpes_busy_cycles: cpes_busy,
        }
    }
}

/// One scheduled task interval, as reported by [`Dag::trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskTrace {
    /// The label given at [`Dag::task`] time.
    pub label: &'static str,
    /// Resource occupied.
    pub resource: Resource,
    /// Start cycle.
    pub start: Cycles,
    /// End cycle.
    pub end: Cycles,
}

/// Outcome of scheduling a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingResult {
    /// End-to-end cycles of the run.
    pub makespan_cycles: Cycles,
    /// Cycles the DMA channel was busy.
    pub dma_busy_cycles: Cycles,
    /// Cycles the CPE cluster was busy.
    pub cpes_busy_cycles: Cycles,
}

impl TimingResult {
    /// Makespan in seconds at the CPE clock.
    pub fn secs(&self) -> f64 {
        cycles_to_secs(self.makespan_cycles)
    }

    /// Sustained Gflops/s for a run performing `flops` operations.
    pub fn gflops(&self, flops: u64) -> f64 {
        sw_arch::time::gflops(flops, self.secs())
    }

    /// Fraction of the makespan the CPE cluster computed.
    pub fn compute_utilization(&self) -> f64 {
        self.cpes_busy_cycles as f64 / self.makespan_cycles.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_chain_adds_durations() {
        let mut d = Dag::new();
        let a = d.task(Resource::Dma, 100, &[], "load");
        let b = d.task(Resource::Cpes, 200, &[a], "compute");
        let _c = d.task(Resource::Dma, 50, &[b], "store");
        let r = d.schedule();
        assert_eq!(r.makespan_cycles, 350);
        assert_eq!(r.dma_busy_cycles, 150);
        assert_eq!(r.cpes_busy_cycles, 200);
    }

    #[test]
    fn double_buffering_overlaps() {
        // Two iterations, Algorithm-2 style: load(i+1) has no dep on
        // compute(i), so it hides under it.
        let mut d = Dag::new();
        let l0 = d.task(Resource::Dma, 100, &[], "load0");
        let l1 = d.task(Resource::Dma, 100, &[], "load1");
        let c0 = d.task(Resource::Cpes, 300, &[l0], "compute0");
        let _c1 = d.task(Resource::Cpes, 300, &[l1, c0], "compute1");
        let r = d.schedule();
        // load1 (100..200) hides under compute0 (100..400).
        assert_eq!(r.makespan_cycles, 700);
    }

    #[test]
    fn serial_version_does_not_overlap() {
        // Algorithm-1 style: compute(i) then load(i+1) strictly after.
        let mut d = Dag::new();
        let l0 = d.task(Resource::Dma, 100, &[], "load0");
        let c0 = d.task(Resource::Cpes, 300, &[l0], "compute0");
        let l1 = d.task(Resource::Dma, 100, &[c0], "load1");
        let _c1 = d.task(Resource::Cpes, 300, &[l1], "compute1");
        let r = d.schedule();
        assert_eq!(r.makespan_cycles, 800);
    }

    #[test]
    fn resource_serialization_without_deps() {
        let mut d = Dag::new();
        d.task(Resource::Dma, 100, &[], "a");
        d.task(Resource::Dma, 100, &[], "b");
        let r = d.schedule();
        assert_eq!(r.makespan_cycles, 200);
    }

    #[test]
    fn latency_tasks_occupy_nothing() {
        let mut d = Dag::new();
        let a = d.task(Resource::None, 40, &[], "sync");
        let b = d.task(Resource::None, 40, &[], "sync2"); // parallel
        let _ = d.task(Resource::Cpes, 10, &[a, b], "c");
        let r = d.schedule();
        assert_eq!(r.makespan_cycles, 50);
        assert_eq!(r.dma_busy_cycles, 0);
    }

    #[test]
    #[should_panic]
    fn forward_dependence_rejected() {
        let mut d = Dag::new();
        d.task(Resource::Dma, 1, &[TaskId(5)], "bad");
    }

    #[test]
    fn trace_matches_schedule() {
        let mut d = Dag::new();
        let l0 = d.task(Resource::Dma, 100, &[], "load0");
        let c0 = d.task(Resource::Cpes, 300, &[l0], "compute0");
        let _s0 = d.task(Resource::Dma, 50, &[c0], "store0");
        let (r, tr) = d.trace();
        assert_eq!(r, d.schedule());
        assert_eq!(tr.len(), 3);
        assert_eq!(tr[0].label, "load0");
        assert_eq!((tr[1].start, tr[1].end), (100, 400));
        assert_eq!((tr[2].start, tr[2].end), (400, 450));
    }

    #[test]
    fn emit_trace_mirrors_trace_onto_tracks() {
        let mut d = Dag::new();
        let l0 = d.task(Resource::Dma, 100, &[], "load0");
        let c0 = d.task(Resource::Cpes, 300, &[l0], "compute0");
        let _s = d.task(Resource::None, 40, &[c0], "sync");
        let tracer = Tracer::enabled();
        let (r, tasks) = d.emit_trace(&tracer);
        assert_eq!(r, d.schedule());
        let data = tracer.take();
        assert_eq!(data.tracks.len(), 3);
        assert_eq!(data.spans.len(), tasks.len());
        for (span, task) in data.spans.iter().zip(&tasks) {
            assert_eq!(span.name, task.label);
            assert_eq!((span.start, span.end), (task.start, task.end));
        }
        assert_eq!(data.spans[0].cat, "dma");
        assert_eq!(data.spans[1].cat, "compute");
        assert_eq!(data.spans[2].cat, "sync");
        // Disabled tracer: same result, nothing collected.
        let off = Tracer::disabled();
        let (r2, _) = d.emit_trace(&off);
        assert_eq!(r2, r);
        assert!(off.take().is_empty());
    }

    #[test]
    fn gflops_conversion() {
        let mut d = Dag::new();
        d.task(Resource::Cpes, 1_450_000_000, &[], "one second");
        let r = d.schedule();
        assert!((r.secs() - 1.0).abs() < 1e-9);
        assert!((r.gflops(742_400_000_000) - 742.4).abs() < 1e-6);
        assert!((r.compute_utilization() - 1.0).abs() < 1e-12);
    }
}
