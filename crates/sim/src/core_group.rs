//! The functional 64-thread core-group runtime.
//!
//! [`CoreGroup::run`] mirrors the `athread` programming model of the
//! real machine: the "MPE side" (the caller) installs matrices in main
//! memory and dispatches to 64 CPE threads; each thread receives a
//! [`CpeCtx`] with its coordinates, its private LDM, its mesh port, and
//! DMA entry points, and runs the same SPMD closure.
//!
//! The 64 threads are a persistent [`crate::pool::CpePool`] owned by
//! the `CoreGroup`: they are spawned lazily on the first `run` and
//! parked between runs, so a sweep that calls `run` once per matrix
//! size per variant no longer pays 64 thread spawns per call.

use crate::pool::CpePool;
use crate::stats::{DmaCounters, RunStats};
use std::sync::{Barrier, Mutex};
use std::time::Instant;
use sw_arch::coord::{Coord, MESH_ROWS, N_CPES};
use sw_isa::{CommPort, ExecReport, Instr, Machine};
use sw_mem::dma::{self, MatRegion, Receipt};
use sw_mem::{Ldm, LdmBuf, MainMemory, MemError};
use sw_mesh::{Mesh, MeshPort};

/// One core group: shared main memory plus the machinery to launch
/// 64-thread functional runs.
pub struct CoreGroup {
    /// The CG's main memory. Install inputs / extract outputs here.
    pub mem: MainMemory,
    mesh_timeout: std::time::Duration,
    /// Persistent CPE workers, spawned on first use.
    pool: Option<CpePool>,
}

impl Default for CoreGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl CoreGroup {
    /// A core group with empty main memory.
    pub fn new() -> Self {
        CoreGroup {
            mem: MainMemory::new(),
            mesh_timeout: std::time::Duration::from_secs(10),
            pool: None,
        }
    }

    /// Shortens the mesh deadlock fuse (tests of failure paths).
    pub fn with_mesh_timeout(timeout: std::time::Duration) -> Self {
        CoreGroup {
            mem: MainMemory::new(),
            mesh_timeout: timeout,
            pool: None,
        }
    }

    /// Runs `f` on all 64 CPE threads (SPMD), returning traffic
    /// statistics. Panics in any CPE propagate.
    pub fn run<F>(&mut self, f: F) -> RunStats
    where
        F: Fn(&mut CpeCtx) + Sync,
    {
        let pool = self.pool.get_or_insert_with(|| CpePool::new(N_CPES));
        let mesh = Mesh::with_timeout(self.mesh_timeout);
        // Each worker takes exclusive ownership of its port for the run.
        let ports: Vec<Mutex<Option<MeshPort>>> = mesh
            .ports()
            .into_iter()
            .map(|p| Mutex::new(Some(p)))
            .collect();
        let barrier = Barrier::new(N_CPES);
        let row_barriers: Vec<Barrier> = (0..MESH_ROWS).map(|_| Barrier::new(8)).collect();
        let counters = DmaCounters::default();
        let start = Instant::now();
        let mem = &self.mem;
        pool.run(&|i: usize| {
            let port = ports[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("port taken once per run");
            let mut ctx = CpeCtx {
                coord: port.coord(),
                ldm: Ldm::new(),
                port,
                mem,
                barrier: &barrier,
                row_barriers: &row_barriers,
                counters: &counters,
            };
            f(&mut ctx);
        });
        RunStats {
            dma: counters.snapshot(),
            mesh: mesh.stats(),
            wall: start.elapsed(),
        }
    }
}

/// Per-CPE execution context handed to the SPMD closure.
pub struct CpeCtx<'a> {
    /// This CPE's mesh coordinates.
    pub coord: Coord,
    /// This CPE's 64 KB scratch pad.
    pub ldm: Ldm,
    port: MeshPort,
    mem: &'a MainMemory,
    barrier: &'a Barrier,
    row_barriers: &'a [Barrier],
    counters: &'a DmaCounters,
}

impl<'a> CpeCtx<'a> {
    /// Barrier over all 64 CPEs (the `sync` of Algorithms 1–2).
    pub fn sync_all(&self) {
        self.barrier.wait();
    }

    /// Barrier over the 8 CPEs of this CPE's mesh row (required by
    /// `ROW_MODE` DMA).
    pub fn sync_row(&self) {
        self.row_barriers[self.coord.row as usize].wait();
    }

    /// `PE_MODE` get into `buf`.
    pub fn dma_pe_get(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        let r = dma::pe_get(self.mem, region, &mut self.ldm, buf)?;
        self.counters.record(r.mode, r.bytes_cpe as u64);
        Ok(r)
    }

    /// `PE_MODE` put from `buf`.
    pub fn dma_pe_put(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        let r = dma::pe_put(self.mem, region, &self.ldm, buf)?;
        self.counters.record(r.mode, r.bytes_cpe as u64);
        Ok(r)
    }

    /// `BCAST_MODE` get (all 64 CPEs call this with the same region).
    pub fn dma_bcast_get(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        let r = dma::bcast_get(self.mem, region, &mut self.ldm, buf)?;
        self.counters.record(r.mode, r.bytes_cpe as u64);
        Ok(r)
    }

    /// `ROW_MODE` get: the 8 CPEs of this row synchronize, then each
    /// receives its interleaved share of the region stream.
    pub fn dma_row_get(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        self.sync_row();
        let r = dma::row_get(
            self.mem,
            region,
            self.coord.col as usize,
            &mut self.ldm,
            buf,
        )?;
        self.counters.record(r.mode, r.bytes_cpe as u64);
        Ok(r)
    }

    /// `ROW_MODE` put: inverse scatter, with the row synchronization.
    pub fn dma_row_put(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        self.sync_row();
        let r = dma::row_put(self.mem, region, self.coord.col as usize, &self.ldm, buf)?;
        self.counters.record(r.mode, r.bytes_cpe as u64);
        Ok(r)
    }

    /// `BROW_MODE` get (the 8 CPEs of this row receive full copies).
    pub fn dma_brow_get(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        self.sync_row();
        let r = dma::brow_get(self.mem, region, &mut self.ldm, buf)?;
        self.counters.record(r.mode, r.bytes_cpe as u64);
        Ok(r)
    }

    /// `RANK_MODE` get (all 64 CPEs receive transaction-interleaved
    /// shares).
    pub fn dma_rank_get(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        let r = dma::rank_get(self.mem, region, self.coord.id(), &mut self.ldm, buf)?;
        self.counters.record(r.mode, r.bytes_cpe as u64);
        Ok(r)
    }

    /// The register-communication port (panel broadcasts, `getr`/`getc`).
    pub fn mesh(&self) -> &MeshPort {
        &self.port
    }

    /// Executes an ISA kernel stream against this CPE's LDM and mesh
    /// port, returning the executor's cycle report.
    pub fn run_kernel(&mut self, prog: &[Instr]) -> ExecReport {
        let mut comm = MeshComm(&self.port);
        Machine::new(self.ldm.raw_mut(), &mut comm).run(prog)
    }
}

/// Adapts a mesh port to the executor's communication trait.
struct MeshComm<'p>(&'p MeshPort);

impl CommPort for MeshComm<'_> {
    fn row_bcast(&mut self, v: sw_arch::V256) {
        self.0.row_bcast(v);
    }
    fn col_bcast(&mut self, v: sw_arch::V256) {
        self.0.col_bcast(v);
    }
    fn getr(&mut self) -> sw_arch::V256 {
        self.0.getr()
    }
    fn getc(&mut self) -> sw_arch::V256 {
        self.0.getc()
    }
}
