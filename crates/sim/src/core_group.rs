//! The functional 64-thread core-group runtime.
//!
//! [`CoreGroup::run`] mirrors the `athread` programming model of the
//! real machine: the "MPE side" (the caller) installs matrices in main
//! memory and dispatches to 64 CPE threads; each thread receives a
//! [`CpeCtx`] with its coordinates, its private LDM, its mesh port, and
//! DMA entry points, and runs the same SPMD closure.
//!
//! The 64 threads are a persistent [`crate::pool::CpePool`] owned by
//! the `CoreGroup`: they are spawned lazily on the first `run` and
//! parked between runs, so a sweep that calls `run` once per matrix
//! size per variant no longer pays 64 thread spawns per call.

use crate::pool::CpePool;
use crate::stats::{DmaCounters, RunStats};
use std::sync::{Barrier, Mutex};
use std::time::Instant;
use sw_arch::coord::{Coord, MESH_ROWS, N_CPES};
use sw_isa::{CommPort, ExecReport, Instr, Machine};
use sw_mem::dma::{self, BandwidthModel, MatRegion, Receipt};
use sw_mem::{Ldm, LdmBuf, MainMemory, MemError};
use sw_mesh::{Mesh, MeshPort};
use sw_probe::metrics::Histogram;
use sw_probe::trace::{Tracer, TrackId};

/// Bucket bounds of the `sim.dma.bytes_per_descriptor` histogram (the
/// DMA-granularity distribution; 128 B is one transaction).
const DESC_BYTES_BUCKETS: [u64; 6] = [128, 512, 2048, 8192, 32768, 131072];

/// One core group: shared main memory plus the machinery to launch
/// 64-thread functional runs.
pub struct CoreGroup {
    /// The CG's main memory. Install inputs / extract outputs here.
    pub mem: MainMemory,
    mesh_timeout: std::time::Duration,
    /// Persistent CPE workers, spawned on first use.
    pool: Option<CpePool>,
    /// Simulated-time span sink; disabled (near-free) by default.
    tracer: Tracer,
    /// Charges simulated durations to traced DMA operations.
    model: BandwidthModel,
}

impl Default for CoreGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl CoreGroup {
    /// A core group with empty main memory.
    pub fn new() -> Self {
        CoreGroup {
            mem: MainMemory::new(),
            mesh_timeout: std::time::Duration::from_secs(10),
            pool: None,
            tracer: Tracer::disabled(),
            model: BandwidthModel::calibrated(),
        }
    }

    /// Shortens the mesh deadlock fuse (tests of failure paths).
    pub fn with_mesh_timeout(timeout: std::time::Duration) -> Self {
        let mut cg = Self::new();
        cg.mesh_timeout = timeout;
        cg
    }

    /// Attaches a simulated-time tracer to subsequent runs: each CPE
    /// gets its own track (process `"cpe-dma"`) carrying its DMA and
    /// kernel spans, each mesh link its own (process `"mesh"`). Span
    /// durations come from the calibrated [`BandwidthModel`] for DMA
    /// and the pipeline model's cycle report for kernels. Pass
    /// [`Tracer::disabled`] to turn tracing back off.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Runs `f` on all 64 CPE threads (SPMD), returning traffic
    /// statistics. Panics in any CPE propagate.
    pub fn run<F>(&mut self, f: F) -> RunStats
    where
        F: Fn(&mut CpeCtx) + Sync,
    {
        let pool = self.pool.get_or_insert_with(|| CpePool::new(N_CPES));
        let mesh = Mesh::with_timeout(self.mesh_timeout);
        mesh.set_tracer(&self.tracer);
        // One trace track per CPE; sentinel ids when tracing is off.
        let tracks: Vec<TrackId> = (0..N_CPES)
            .map(|i| {
                let c = Coord::from_id(i);
                self.tracer
                    .track("cpe-dma", format!("CPE ({},{})", c.row, c.col))
            })
            .collect();
        // Each worker takes exclusive ownership of its port for the run.
        let ports: Vec<Mutex<Option<MeshPort>>> = mesh
            .ports()
            .into_iter()
            .map(|p| Mutex::new(Some(p)))
            .collect();
        let barrier = Barrier::new(N_CPES);
        let row_barriers: Vec<Barrier> = (0..MESH_ROWS).map(|_| Barrier::new(8)).collect();
        let counters = DmaCounters::default();
        let bytes_hist = sw_probe::metrics::global()
            .histogram("sim.dma.bytes_per_descriptor", &DESC_BYTES_BUCKETS);
        let start = Instant::now();
        let mem = &self.mem;
        let tracer = &self.tracer;
        let model = &self.model;
        pool.run(&|i: usize| {
            let port = ports[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("port taken once per run");
            let mut ctx = CpeCtx {
                coord: port.coord(),
                ldm: Ldm::new(),
                port,
                mem,
                barrier: &barrier,
                row_barriers: &row_barriers,
                counters: &counters,
                bytes_hist: &bytes_hist,
                tracer,
                track: tracks[i],
                model,
                clock: 0,
            };
            f(&mut ctx);
        });
        let stats = RunStats {
            dma: counters.snapshot(),
            mesh: mesh.stats(),
            wall: start.elapsed(),
        };
        stats.publish(sw_probe::metrics::global());
        stats
    }
}

/// Per-CPE execution context handed to the SPMD closure.
pub struct CpeCtx<'a> {
    /// This CPE's mesh coordinates.
    pub coord: Coord,
    /// This CPE's 64 KB scratch pad.
    pub ldm: Ldm,
    port: MeshPort,
    mem: &'a MainMemory,
    barrier: &'a Barrier,
    row_barriers: &'a [Barrier],
    counters: &'a DmaCounters,
    bytes_hist: &'a Histogram,
    tracer: &'a Tracer,
    track: TrackId,
    model: &'a BandwidthModel,
    /// This CPE's simulated-time cursor: DMA and kernel spans advance
    /// it by their modelled duration, giving every CPE a consistent
    /// private timeline (resource contention between CPEs is the
    /// timing DAG's job, not the functional runtime's).
    clock: u64,
}

impl<'a> CpeCtx<'a> {
    /// Counts a completed DMA receipt and, when tracing, charges it to
    /// this CPE's timeline.
    fn note_dma(&mut self, name: &'static str, r: &Receipt) {
        self.counters.record(r.mode, r.bytes_cpe as u64);
        self.bytes_hist.observe(r.bytes_cpe as u64);
        if self.tracer.is_enabled() {
            let t0 = self.clock;
            self.clock = t0 + self.model.receipt_cycles(r);
            self.tracer.span_args(
                self.track,
                "dma",
                name,
                t0,
                self.clock,
                &[("bytes", r.bytes_cpe as u64)],
            );
        }
    }
    /// Barrier over all 64 CPEs (the `sync` of Algorithms 1–2).
    pub fn sync_all(&self) {
        self.barrier.wait();
    }

    /// Barrier over the 8 CPEs of this CPE's mesh row (required by
    /// `ROW_MODE` DMA).
    pub fn sync_row(&self) {
        self.row_barriers[self.coord.row as usize].wait();
    }

    /// `PE_MODE` get into `buf`.
    pub fn dma_pe_get(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        let r = dma::pe_get(self.mem, region, &mut self.ldm, buf)?;
        self.note_dma("pe.get", &r);
        Ok(r)
    }

    /// `PE_MODE` put from `buf`.
    pub fn dma_pe_put(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        let r = dma::pe_put(self.mem, region, &self.ldm, buf)?;
        self.note_dma("pe.put", &r);
        Ok(r)
    }

    /// `BCAST_MODE` get (all 64 CPEs call this with the same region).
    pub fn dma_bcast_get(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        let r = dma::bcast_get(self.mem, region, &mut self.ldm, buf)?;
        self.note_dma("bcast.get", &r);
        Ok(r)
    }

    /// `ROW_MODE` get: the 8 CPEs of this row synchronize, then each
    /// receives its interleaved share of the region stream.
    pub fn dma_row_get(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        self.sync_row();
        let r = dma::row_get(
            self.mem,
            region,
            self.coord.col as usize,
            &mut self.ldm,
            buf,
        )?;
        self.note_dma("row.get", &r);
        Ok(r)
    }

    /// `ROW_MODE` put: inverse scatter, with the row synchronization.
    pub fn dma_row_put(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        self.sync_row();
        let r = dma::row_put(self.mem, region, self.coord.col as usize, &self.ldm, buf)?;
        self.note_dma("row.put", &r);
        Ok(r)
    }

    /// `BROW_MODE` get (the 8 CPEs of this row receive full copies).
    pub fn dma_brow_get(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        self.sync_row();
        let r = dma::brow_get(self.mem, region, &mut self.ldm, buf)?;
        self.note_dma("brow.get", &r);
        Ok(r)
    }

    /// `RANK_MODE` get (all 64 CPEs receive transaction-interleaved
    /// shares).
    pub fn dma_rank_get(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        let r = dma::rank_get(self.mem, region, self.coord.id(), &mut self.ldm, buf)?;
        self.note_dma("rank.get", &r);
        Ok(r)
    }

    /// The register-communication port (panel broadcasts, `getr`/`getc`).
    pub fn mesh(&self) -> &MeshPort {
        &self.port
    }

    /// Executes an ISA kernel stream against this CPE's LDM and mesh
    /// port, returning the executor's cycle report.
    pub fn run_kernel(&mut self, prog: &[Instr]) -> ExecReport {
        #[cfg(debug_assertions)]
        lint_gate::check(prog);
        let mut comm = MeshComm(&self.port);
        let report = Machine::new(self.ldm.raw_mut(), &mut comm).run(prog);
        if self.tracer.is_enabled() {
            let t0 = self.clock;
            self.clock = t0 + report.cycles;
            self.tracer.span_args(
                self.track,
                "compute",
                "kernel",
                t0,
                self.clock,
                &[("instructions", report.instructions)],
            );
        }
        report
    }
}

/// Debug-build safety net: every distinct kernel stream handed to
/// [`CpeCtx::run_kernel`] is statically linted once per process before
/// its first execution. I-cache findings are excluded — the simulator
/// models no i-cache, and fully unrolled kernels exceed the budget by
/// design — so this catches real stream defects (bad registers, LDM
/// overruns, malformed branches) without outlawing unrolled kernels.
#[cfg(debug_assertions)]
mod lint_gate {
    use std::collections::HashSet;
    use std::hash::{DefaultHasher, Hash, Hasher};
    use std::sync::{Mutex, OnceLock};
    use sw_isa::Instr;

    fn seen() -> &'static Mutex<HashSet<u64>> {
        static S: OnceLock<Mutex<HashSet<u64>>> = OnceLock::new();
        S.get_or_init(|| Mutex::new(HashSet::new()))
    }

    pub(crate) fn check(prog: &[Instr]) {
        let mut h = DefaultHasher::new();
        prog.hash(&mut h);
        if !seen()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(h.finish())
        {
            return;
        }
        let mut report = sw_lint::lint_stream(prog, None);
        report
            .diagnostics
            .retain(|d| d.code != sw_lint::codes::ICACHE_OVERFLOW);
        assert!(
            report.error_count() == 0,
            "kernel stream handed to CpeCtx::run_kernel fails sw-lint:\n{}",
            report.render_text()
        );
    }
}

/// Adapts a mesh port to the executor's communication trait.
struct MeshComm<'p>(&'p MeshPort);

impl CommPort for MeshComm<'_> {
    fn row_bcast(&mut self, v: sw_arch::V256) {
        self.0.row_bcast(v);
    }
    fn col_bcast(&mut self, v: sw_arch::V256) {
        self.0.col_bcast(v);
    }
    fn getr(&mut self) -> sw_arch::V256 {
        self.0.getr()
    }
    fn getc(&mut self) -> sw_arch::V256 {
        self.0.getc()
    }
}
