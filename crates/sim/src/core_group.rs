//! The functional 64-thread core-group runtime.
//!
//! [`CoreGroup::run`] mirrors the `athread` programming model of the
//! real machine: the "MPE side" (the caller) installs matrices in main
//! memory and dispatches to 64 CPE threads; each thread receives a
//! [`CpeCtx`] with its coordinates, its private LDM, its mesh port, and
//! DMA entry points, and runs the same SPMD closure.
//!
//! The 64 threads are a persistent [`crate::pool::CpePool`] owned by
//! the `CoreGroup`: they are spawned lazily on the first `run` and
//! parked between runs, so a sweep that calls `run` once per matrix
//! size per variant no longer pays 64 thread spawns per call.
//!
//! # Failure model
//!
//! A CPE that hits a structured failure — a DMA retry budget, a mesh
//! deadlock, an injected fault it cannot recover from — calls
//! [`CpeCtx::abort`], which cancels the run's barriers (so its 63
//! peers unwind instead of hanging) and panics with a typed
//! [`CpeAbort`] payload. [`CoreGroup::try_run`] catches every worker
//! panic, downcasts the typed ones into a [`RunError`] carrying all
//! failures plus the per-CPE mesh traffic snapshot (the rendezvous
//! summary's input), and re-raises anything it does not recognize.
//! [`CoreGroup::run`] keeps the old contract: any failure panics.

use crate::barrier::RunSync;
use crate::cancel::CancelToken;
use crate::pool::CpePool;
use crate::stats::{DmaCounters, RunStats};
use std::panic::{panic_any, resume_unwind};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use sw_arch::coord::{Coord, N_CPES};
use sw_faults::{apply_ldm_flip, apply_payload_fault, DmaFault, FaultInjector};
use sw_isa::{compile_if_hot, CommPort, EngineBackend, ExecReport, Instr, Machine};
use sw_mem::dma::{self, BandwidthModel, MatRegion, Receipt};
use sw_mem::{Ldm, LdmBuf, MainMemory, MemError};
use sw_mesh::{Mesh, MeshError, MeshGridStats, MeshPort, MeshTransport};
use sw_probe::flight::{self, EventKind, FlightRecorder, Lane};
use sw_probe::metrics::Histogram;
use sw_probe::trace::{Tracer, TrackId};

/// Bucket bounds of the `sim.dma.bytes_per_descriptor` histogram (the
/// DMA-granularity distribution; 128 B is one transaction).
const DESC_BYTES_BUCKETS: [u64; 6] = [128, 512, 2048, 8192, 32768, 131072];

/// Simulated cycles charged for the first DMA retry backoff; each
/// further retry doubles it (deterministic exponential backoff).
const DMA_RETRY_BACKOFF_CYCLES: u64 = 64;

/// How variants drive the mesh inside a strip step: whole word-groups
/// per synchronization episode (the fast default) or one word at a
/// time (the historical path, kept selectable so the equivalence
/// property tests and `mesh_bench` can compare the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeshPath {
    /// Batched word-group broadcasts/receives with one accounting
    /// episode per group.
    #[default]
    Bulk,
    /// One `bcast`/`get` call per 256-bit word.
    Word,
}

/// Why one CPE aborted its run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpeError {
    /// A memory-system failure (DMA retry budget, bad descriptor, …).
    Mem(MemError),
    /// A mesh operation failed (deadlock fuse tripped).
    Mesh(MeshError),
    /// The CPE was unwound because a peer aborted first and cancelled
    /// the run's barriers.
    Cancelled,
}

impl From<MemError> for CpeError {
    fn from(e: MemError) -> Self {
        CpeError::Mem(e)
    }
}

impl From<MeshError> for CpeError {
    fn from(e: MeshError) -> Self {
        CpeError::Mesh(e)
    }
}

impl std::fmt::Display for CpeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpeError::Mem(e) => write!(f, "{e}"),
            CpeError::Mesh(e) => write!(f, "{e}"),
            CpeError::Cancelled => write!(f, "unwound after a peer CPE aborted"),
        }
    }
}

/// The typed panic payload of an aborting CPE; [`CoreGroup::try_run`]
/// downcasts these into a [`RunError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpeAbort {
    /// The aborting CPE.
    pub coord: Coord,
    /// What went wrong.
    pub error: CpeError,
}

/// A 64-thread run that did not complete cleanly.
#[derive(Debug)]
pub struct RunError {
    /// Every CPE that aborted, in CPE-id order (includes the
    /// `Cancelled` casualties of the primary failure).
    pub failures: Vec<CpeAbort>,
    /// Per-CPE mesh traffic at teardown — the input of the lint-side
    /// rendezvous summary that names the wedged row/column group.
    pub grid: MeshGridStats,
    /// Traffic statistics of the partial run.
    pub stats: RunStats,
}

impl RunError {
    /// The most informative failure: the first abort that is not a
    /// `Cancelled` casualty (falling back to the first casualty).
    pub fn primary(&self) -> &CpeAbort {
        self.failures
            .iter()
            .find(|a| a.error != CpeError::Cancelled)
            .unwrap_or(&self.failures[0])
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let p = self.primary();
        write!(
            f,
            "{} of 64 CPEs aborted; first failure at CPE ({}, {}): {}",
            self.failures.len(),
            p.coord.row,
            p.coord.col,
            p.error
        )
    }
}

impl std::error::Error for RunError {}

/// Structured CPE aborts are control flow, not crashes: they unwind as
/// panics with a [`CpeAbort`] payload, and without intervention the
/// default panic hook prints a backtrace for every one — dozens of
/// lines of noise per recovered fault. This installs (once) a hook
/// that swallows exactly those payloads and defers everything else to
/// the previously installed hook.
fn install_quiet_abort_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CpeAbort>().is_none() {
                default(info);
            }
        }));
    });
}

/// One core group: shared main memory plus the machinery to launch
/// 64-thread functional runs.
pub struct CoreGroup {
    /// The CG's main memory. Install inputs / extract outputs here.
    pub mem: MainMemory,
    mesh_timeout: std::time::Duration,
    mesh_transport: MeshTransport,
    mesh_path: MeshPath,
    engine_backend: EngineBackend,
    /// Persistent CPE workers, spawned on first use.
    pool: Option<CpePool>,
    /// Simulated-time span sink; disabled (near-free) by default.
    tracer: Tracer,
    /// Charges simulated durations to traced DMA operations.
    model: BandwidthModel,
    /// Fault oracle consulted by DMA wrappers and mesh ports; `None`
    /// (the default) adds no work to any hot path.
    injector: Option<Arc<FaultInjector>>,
    /// The always-on black box: per-CPE event rings plus the
    /// authoritative per-CPE simulated clocks and busy-lane ledgers.
    flight: Arc<FlightRecorder>,
    /// Cooperative cancellation handle for subsequent runs; `None`
    /// (the default) adds nothing to any path.
    cancel: Option<CancelToken>,
}

impl Default for CoreGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl CoreGroup {
    /// A core group with empty main memory.
    pub fn new() -> Self {
        CoreGroup {
            mem: MainMemory::new(),
            mesh_timeout: std::time::Duration::from_secs(10),
            mesh_transport: MeshTransport::default(),
            mesh_path: MeshPath::default(),
            engine_backend: EngineBackend::default(),
            pool: None,
            tracer: Tracer::disabled(),
            model: BandwidthModel::calibrated(),
            injector: None,
            flight: FlightRecorder::new(),
            cancel: None,
        }
    }

    /// The core group's flight recorder: always recording (unless
    /// disabled via [`sw_probe::flight::FlightRecorder::set_enabled`]),
    /// accumulating across runs until [`sw_probe::flight::
    /// FlightRecorder::reset`]. Its clocks are the time base of every
    /// traced span and recorded event.
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// Shortens the mesh deadlock fuse (tests of failure paths).
    pub fn with_mesh_timeout(timeout: std::time::Duration) -> Self {
        let mut cg = Self::new();
        cg.mesh_timeout = timeout;
        cg
    }

    /// Sets the mesh deadlock fuse for subsequent runs.
    pub fn set_mesh_timeout(&mut self, timeout: std::time::Duration) {
        self.mesh_timeout = timeout;
    }

    /// Selects the mesh transport for subsequent runs (the lock-free
    /// SPSC rings by default; the Mutex-channel fallback for harnesses
    /// that interleave senders arbitrarily).
    pub fn set_mesh_transport(&mut self, transport: MeshTransport) {
        self.mesh_transport = transport;
    }

    /// Selects how variants drive the mesh inside strip steps (see
    /// [`MeshPath`]); exposed to each CPE via [`CpeCtx::mesh_bulk`].
    pub fn set_mesh_path(&mut self, path: MeshPath) {
        self.mesh_path = path;
    }

    /// Selects the execution engine [`CpeCtx::run_kernel`] uses for
    /// subsequent runs (see [`EngineBackend`]); all backends are
    /// bitwise equivalent, differing only in host wall time.
    pub fn set_engine_backend(&mut self, backend: EngineBackend) {
        self.engine_backend = backend;
    }

    /// Installs (or, with `None`, removes) the fault injector consulted
    /// by every subsequent run's DMA wrappers and mesh ports.
    pub fn set_fault_injector(&mut self, injector: Option<Arc<FaultInjector>>) {
        self.injector = injector;
    }

    /// Installs (or, with `None`, removes) a cooperative cancellation
    /// token for subsequent runs. Firing the token poisons the running
    /// dispatch's barriers, so every CPE unwinds with
    /// [`CpeError::Cancelled`] at its next sync point; a token fired
    /// before the run starts cancels it at the first barrier. The core
    /// group itself stays reusable afterwards.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// The installed cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Attaches a simulated-time tracer to subsequent runs: each CPE
    /// gets its own track (process `"cpe-dma"`) carrying its DMA and
    /// kernel spans, each mesh link its own (process `"mesh"`). Span
    /// durations come from the calibrated [`BandwidthModel`] for DMA
    /// and the pipeline model's cycle report for kernels. Pass
    /// [`Tracer::disabled`] to turn tracing back off.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Runs `f` on all 64 CPE threads (SPMD), returning traffic
    /// statistics. Panics in any CPE propagate — including structured
    /// [`CpeAbort`]s, rendered as a message. Use [`CoreGroup::try_run`]
    /// to receive structured failures instead.
    pub fn run<F>(&mut self, f: F) -> RunStats
    where
        F: Fn(&mut CpeCtx) + Sync,
    {
        match self.try_run(f) {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs `f` on all 64 CPE threads (SPMD). Structured CPE aborts
    /// come back as a [`RunError`]; panics the runtime does not
    /// recognize are recorded in the published statistics
    /// (`sim.cpe.panics`, [`RunStats::panicked_cpes`]) and re-raised.
    // The Err carries the full teardown evidence (per-CPE failures +
    // mesh grid) by design; runs are far too coarse for its size to
    // matter on the happy path.
    #[allow(clippy::result_large_err)]
    pub fn try_run<F>(&mut self, f: F) -> Result<RunStats, RunError>
    where
        F: Fn(&mut CpeCtx) + Sync,
    {
        install_quiet_abort_hook();
        let pool = self.pool.get_or_insert_with(|| CpePool::new(N_CPES));
        let mesh = Mesh::with_transport(self.mesh_timeout, self.mesh_transport);
        mesh.set_tracer(&self.tracer);
        mesh.set_flight_recorder(&self.flight);
        if let Some(inj) = &self.injector {
            mesh.set_fault_injector(inj);
        }
        // One trace track per CPE; sentinel ids when tracing is off.
        let tracks: Vec<TrackId> = (0..N_CPES)
            .map(|i| {
                let c = Coord::from_id(i);
                self.tracer
                    .track("cpe-dma", format!("CPE ({},{})", c.row, c.col))
            })
            .collect();
        // Each worker takes exclusive ownership of its port for the run.
        let ports: Vec<Mutex<Option<MeshPort>>> = mesh
            .ports()
            .into_iter()
            .map(|p| Mutex::new(Some(p)))
            .collect();
        let sync = Arc::new(RunSync::new());
        // Bind the cancellation token (if any) to this run's barriers:
        // a fire from any thread — before or during the run — poisons
        // them, and every CPE unwinds at its next sync point.
        if let Some(token) = &self.cancel {
            token.attach(&sync);
        }
        let counters = DmaCounters::default();
        let bytes_hist = sw_probe::metrics::global()
            .histogram("sim.dma.bytes_per_descriptor", &DESC_BYTES_BUCKETS);
        let start = Instant::now();
        let mem = &self.mem;
        let tracer = &self.tracer;
        let model = &self.model;
        let injector = self.injector.as_ref();
        let mesh_path = self.mesh_path;
        let engine_backend = self.engine_backend;
        let flight = &*self.flight;
        let sync: &RunSync = &sync;
        let panics = pool.try_run(&|i: usize| {
            let port = ports[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("port taken once per run");
            let mut ctx = CpeCtx {
                coord: port.coord(),
                ldm: Ldm::new(),
                port,
                mem,
                sync,
                counters: &counters,
                bytes_hist: &bytes_hist,
                tracer,
                track: tracks[i],
                model,
                injector,
                mesh_path,
                engine_backend,
                flight,
                dma_ops: 0,
            };
            f(&mut ctx);
        });
        if let Some(token) = &self.cancel {
            token.detach();
        }
        let stats = RunStats {
            dma: counters.snapshot(),
            mesh: mesh.stats(),
            grid: mesh.grid_stats(),
            panicked_cpes: panics.iter().map(|(i, _)| *i).collect(),
            wall: start.elapsed(),
        };
        if panics.is_empty() {
            stats.publish(sw_probe::metrics::global());
            return Ok(stats);
        }
        let mut failures = Vec::new();
        let mut unknown = None;
        for (_, p) in panics {
            match p.downcast::<CpeAbort>() {
                Ok(a) => failures.push(*a),
                Err(p) => unknown = unknown.or(Some(p)),
            }
        }
        // Only structured aborts count as CPE panics in the metrics —
        // an unknown payload is a bug escaping, not a modelled failure,
        // but it is still attributed before re-raising.
        stats.publish(sw_probe::metrics::global());
        if let Some(p) = unknown {
            resume_unwind(p);
        }
        Err(RunError {
            failures,
            grid: mesh.grid_stats(),
            stats,
        })
    }
}

/// Per-CPE execution context handed to the SPMD closure.
pub struct CpeCtx<'a> {
    /// This CPE's mesh coordinates.
    pub coord: Coord,
    /// This CPE's 64 KB scratch pad.
    pub ldm: Ldm,
    port: MeshPort,
    mem: &'a MainMemory,
    sync: &'a RunSync,
    counters: &'a DmaCounters,
    bytes_hist: &'a Histogram,
    tracer: &'a Tracer,
    track: TrackId,
    model: &'a BandwidthModel,
    injector: Option<&'a Arc<FaultInjector>>,
    mesh_path: MeshPath,
    engine_backend: EngineBackend,
    /// The run's flight recorder. It owns this CPE's simulated-time
    /// cursor: DMA, kernel, mesh, and barrier episodes advance the
    /// clock by their modelled duration, each charged to exactly one
    /// [`Lane`], so per CPE `clock == Σ busy lanes` at all times.
    /// Barriers exchange clock maxima, keeping the 64 timelines
    /// globally comparable (resource contention between CPEs remains
    /// the timing DAG's job, not the functional runtime's).
    flight: &'a FlightRecorder,
    /// DMA operations issued by this CPE this run (the injector's
    /// deterministic per-operation coordinate).
    dma_ops: u64,
}

impl<'a> CpeCtx<'a> {
    /// This CPE's flight-recorder ring index.
    #[inline]
    fn ring(&self) -> usize {
        self.coord.id()
    }

    /// Counts a completed DMA receipt, charges its modelled duration
    /// to the DMA lane, records the issue/complete event pair, and,
    /// when tracing, emits the span.
    fn note_dma(&mut self, name: &'static str, r: &Receipt) {
        self.counters.record(r.mode, r.bytes_cpe as u64);
        self.bytes_hist.observe(r.bytes_cpe as u64);
        let code = flight::dma_op_code(name);
        self.flight
            .record(self.ring(), EventKind::DmaIssue, code, r.bytes_cpe as u64);
        let cycles = self.model.receipt_cycles(r);
        let (t0, t1) = self.flight.advance(self.ring(), Lane::Dma, cycles);
        self.flight
            .record_at(self.ring(), t1, EventKind::DmaComplete, code, cycles);
        if self.tracer.is_enabled() {
            self.tracer.span_args(
                self.track,
                "dma",
                name,
                t0,
                t1,
                &[("bytes", r.bytes_cpe as u64)],
            );
        }
    }

    /// Aborts the run from this CPE: cancels every barrier (so peers
    /// unwind promptly) and panics with the typed [`CpeAbort`] payload
    /// that [`CoreGroup::try_run`] turns into a [`RunError`].
    pub fn abort(&self, error: CpeError) -> ! {
        self.sync.cancel_all();
        panic_any(CpeAbort {
            coord: self.coord,
            error,
        })
    }

    fn cancelled(&self) -> ! {
        panic_any(CpeAbort {
            coord: self.coord,
            error: CpeError::Cancelled,
        })
    }

    /// The shared body of both barrier wrappers: exchanges clocks at
    /// the barrier (everyone leaves with the generation's maximum),
    /// charges the skipped cycles to the barrier lane, and records the
    /// arrive/release event pair. `scope` is 0 for `sync_all`, 1 for
    /// `sync_row` (the event `code`).
    fn sync_on(&self, b: &crate::barrier::CancellableBarrier, scope: u32) {
        let ring = self.ring();
        let arrived = self.flight.clock(ring);
        self.flight
            .record_at(ring, arrived, EventKind::BarrierArrive, scope, 0);
        match b.wait_clock(arrived) {
            Ok(released) => {
                let waited = self.flight.jump_to(ring, Lane::Barrier, released);
                self.flight.record_at(
                    ring,
                    released.max(arrived),
                    EventKind::BarrierRelease,
                    scope,
                    waited,
                );
            }
            Err(_) => self.cancelled(),
        }
    }

    /// Barrier over all 64 CPEs (the `sync` of Algorithms 1–2).
    /// Unwinds (with a `Cancelled` abort) if a peer aborted the run.
    pub fn sync_all(&self) {
        self.sync_on(&self.sync.all, 0);
    }

    /// Barrier over the 8 CPEs of this CPE's mesh row (required by
    /// `ROW_MODE` DMA).
    pub fn sync_row(&self) {
        self.sync_on(&self.sync.rows[self.coord.row as usize], 1);
    }

    /// The shared retry loop of every DMA wrapper. Consults the fault
    /// injector before each execution attempt: a transient failure
    /// backs off (deterministic exponential simulated-cycle cost) and
    /// retries within the spec's budget; payload faults (bit-flips,
    /// truncation) and LDM soft errors are applied to the received
    /// image of a *get* (`buf` is `Some`) after the transfer lands.
    fn dma_with_faults(
        &mut self,
        name: &'static str,
        buf: Option<LdmBuf>,
        op: impl Fn(&mut Self) -> Result<Receipt, MemError>,
    ) -> Result<Receipt, MemError> {
        let op_idx = self.dma_ops;
        self.dma_ops += 1;
        let Some(inj) = self.injector else {
            let r = op(self)?;
            self.note_dma(name, &r);
            return Ok(r);
        };
        let inj = Arc::clone(inj);
        let budget = inj.spec().dma_transient_max_retry;
        let mut retry = 0u32;
        loop {
            let fault = inj.dma_fault(self.coord.id(), op_idx, retry);
            if fault == Some(DmaFault::Transient) {
                self.flight.record(
                    self.ring(),
                    EventKind::FaultDecision,
                    flight::fault_code::DMA_TRANSIENT,
                    op_idx,
                );
                if retry >= budget {
                    inj.note_retry_exhausted();
                    return Err(MemError::RetryBudgetExhausted {
                        attempts: retry + 1,
                        what: format!("{name} (CPE {}, op {op_idx})", self.coord),
                    });
                }
                self.flight
                    .advance(self.ring(), Lane::Dma, DMA_RETRY_BACKOFF_CYCLES << retry);
                retry += 1;
                self.flight
                    .record(self.ring(), EventKind::RetryAttempt, retry, op_idx);
                continue;
            }
            let r = op(self)?;
            self.note_dma(name, &r);
            if let Some(buf) = buf {
                if let Some(f) = fault {
                    let code = match f {
                        DmaFault::Transient => unreachable!("handled above"),
                        DmaFault::BitFlip { .. } => flight::fault_code::DMA_BITFLIP,
                        DmaFault::Truncate { .. } => flight::fault_code::DMA_TRUNCATE,
                    };
                    self.flight
                        .record(self.ring(), EventKind::FaultDecision, code, op_idx);
                    apply_payload_fault(f, self.ldm.slice_mut(buf));
                }
                if let Some((word, bit)) = inj.ldm_fault(self.coord.id(), op_idx) {
                    self.flight.record(
                        self.ring(),
                        EventKind::FaultDecision,
                        flight::fault_code::LDM_BITFLIP,
                        op_idx,
                    );
                    apply_ldm_flip(word, bit, self.ldm.slice_mut(buf));
                }
            }
            inj.note_dma_recovered(retry);
            return Ok(r);
        }
    }

    /// `PE_MODE` get into `buf`.
    pub fn dma_pe_get(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        self.dma_with_faults("pe.get", Some(buf), |c| {
            dma::pe_get(c.mem, region, &mut c.ldm, buf)
        })
    }

    /// `PE_MODE` put from `buf`.
    pub fn dma_pe_put(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        self.dma_with_faults("pe.put", None, |c| dma::pe_put(c.mem, region, &c.ldm, buf))
    }

    /// `BCAST_MODE` get (all 64 CPEs call this with the same region).
    pub fn dma_bcast_get(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        self.dma_with_faults("bcast.get", Some(buf), |c| {
            dma::bcast_get(c.mem, region, &mut c.ldm, buf)
        })
    }

    /// `ROW_MODE` get: the 8 CPEs of this row synchronize, then each
    /// receives its interleaved share of the region stream.
    pub fn dma_row_get(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        self.sync_row();
        self.dma_with_faults("row.get", Some(buf), |c| {
            dma::row_get(c.mem, region, c.coord.col as usize, &mut c.ldm, buf)
        })
    }

    /// `ROW_MODE` put: inverse scatter, with the row synchronization.
    pub fn dma_row_put(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        self.sync_row();
        self.dma_with_faults("row.put", None, |c| {
            dma::row_put(c.mem, region, c.coord.col as usize, &c.ldm, buf)
        })
    }

    /// `BROW_MODE` get (the 8 CPEs of this row receive full copies).
    pub fn dma_brow_get(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        self.sync_row();
        self.dma_with_faults("brow.get", Some(buf), |c| {
            dma::brow_get(c.mem, region, &mut c.ldm, buf)
        })
    }

    /// `RANK_MODE` get (all 64 CPEs receive transaction-interleaved
    /// shares).
    pub fn dma_rank_get(&mut self, region: MatRegion, buf: LdmBuf) -> Result<Receipt, MemError> {
        self.dma_with_faults("rank.get", Some(buf), |c| {
            dma::rank_get(c.mem, region, c.coord.id(), &mut c.ldm, buf)
        })
    }

    /// The register-communication port (panel broadcasts, `getr`/`getc`).
    pub fn mesh(&self) -> &MeshPort {
        &self.port
    }

    fn mesh_fail(&self, e: MeshError) -> ! {
        self.abort(CpeError::Mesh(e))
    }

    /// Charges an `n_words` mesh episode to this CPE's mesh lane.
    /// Only the `CpeCtx` wrappers (variant strip steps) charge mesh
    /// time — mesh traffic driven from inside a kernel is already part
    /// of the kernel's cycle report, so charging it again would double
    /// count; the port still records the episode *event* either way.
    #[inline]
    fn charge_mesh(&self, n_words: usize) {
        self.flight.advance(
            self.ring(),
            Lane::Mesh,
            n_words as u64 * sw_arch::consts::MESH_TRANSIT_CYCLES,
        );
    }

    /// Row broadcast that aborts the run (structured) on deadlock.
    pub fn mesh_row_bcast(&self, v: sw_arch::V256) {
        if let Err(e) = self.port.row_bcast(v) {
            self.mesh_fail(e);
        }
        self.charge_mesh(1);
    }

    /// Column broadcast that aborts the run on deadlock.
    pub fn mesh_col_bcast(&self, v: sw_arch::V256) {
        if let Err(e) = self.port.col_bcast(v) {
            self.mesh_fail(e);
        }
        self.charge_mesh(1);
    }

    /// Row receive that aborts the run on starvation.
    pub fn mesh_getr(&self) -> sw_arch::V256 {
        match self.port.getr() {
            Ok(v) => {
                self.charge_mesh(1);
                v
            }
            Err(e) => self.mesh_fail(e),
        }
    }

    /// Column receive that aborts the run on starvation.
    pub fn mesh_getc(&self) -> sw_arch::V256 {
        match self.port.getc() {
            Ok(v) => {
                self.charge_mesh(1);
                v
            }
            Err(e) => self.mesh_fail(e),
        }
    }

    /// Whether strip steps should use the batched word-group mesh
    /// operations (the run's [`MeshPath`] is `Bulk`).
    #[inline]
    pub fn mesh_bulk(&self) -> bool {
        self.mesh_path == MeshPath::Bulk
    }

    /// Batched row broadcast of a word group; aborts the run on
    /// deadlock.
    pub fn mesh_row_bcast_words(&self, words: &[sw_arch::V256]) {
        if let Err(e) = self.port.row_bcast_words(words) {
            self.mesh_fail(e);
        }
        self.charge_mesh(words.len());
    }

    /// Batched column broadcast of a word group; aborts the run on
    /// deadlock.
    pub fn mesh_col_bcast_words(&self, words: &[sw_arch::V256]) {
        if let Err(e) = self.port.col_bcast_words(words) {
            self.mesh_fail(e);
        }
        self.charge_mesh(words.len());
    }

    /// Batched row receive into a word group; aborts on starvation.
    pub fn mesh_getr_words(&self, out: &mut [sw_arch::V256]) {
        if let Err(e) = self.port.getr_words(out) {
            self.mesh_fail(e);
        }
        self.charge_mesh(out.len());
    }

    /// Batched column receive into a word group; aborts on starvation.
    pub fn mesh_getc_words(&self, out: &mut [sw_arch::V256]) {
        if let Err(e) = self.port.getc_words(out) {
            self.mesh_fail(e);
        }
        self.charge_mesh(out.len());
    }

    /// Batched row-panel broadcast (`&[f64]`, length a multiple of 4);
    /// aborts the run on deadlock.
    pub fn mesh_row_bcast_panel(&self, panel: &[f64]) {
        if let Err(e) = self.port.row_bcast_panel(panel) {
            self.mesh_fail(e);
        }
        self.charge_mesh(panel.len() / 4);
    }

    /// Batched column-panel broadcast; aborts the run on deadlock.
    pub fn mesh_col_bcast_panel(&self, panel: &[f64]) {
        if let Err(e) = self.port.col_bcast_panel(panel) {
            self.mesh_fail(e);
        }
        self.charge_mesh(panel.len() / 4);
    }

    /// Batched panel receive from the row (`col_net == false`) or
    /// column network; aborts on starvation.
    pub fn mesh_get_panel(&self, col_net: bool, out: &mut [f64]) {
        if let Err(e) = self.port.get_panel(col_net, out) {
            self.mesh_fail(e);
        }
        self.charge_mesh(out.len() / 4);
    }

    /// Executes an ISA kernel stream against this CPE's LDM and mesh
    /// port, returning the executor's cycle report. The stream runs on
    /// the core group's configured [`EngineBackend`]; with `Compiled`,
    /// streams the hot-kernel cache has seen often enough replay a
    /// precompiled trace, the rest interpret.
    pub fn run_kernel(&mut self, prog: &[Instr]) -> ExecReport {
        #[cfg(debug_assertions)]
        lint_gate::check(prog);
        self.flight
            .record(self.ring(), EventKind::KernelStart, 0, prog.len() as u64);
        let mut comm = MeshComm {
            port: &self.port,
            sync: self.sync,
            coord: self.coord,
        };
        let mut machine = Machine::new(self.ldm.raw_mut(), &mut comm);
        let report = match self.engine_backend {
            EngineBackend::Decoded => machine.run(prog),
            EngineBackend::Batched => machine.run_backend(EngineBackend::Batched, prog),
            EngineBackend::Compiled => match compile_if_hot(prog) {
                Some(compiled) => machine.run_compiled(&compiled),
                None => machine.run(prog),
            },
        };
        let (t0, t1) = self
            .flight
            .advance(self.ring(), Lane::Compute, report.cycles);
        self.flight
            .record_at(self.ring(), t1, EventKind::KernelEnd, 0, report.cycles);
        if self.tracer.is_enabled() {
            self.tracer.span_args(
                self.track,
                "compute",
                "kernel",
                t0,
                t1,
                &[("instructions", report.instructions)],
            );
        }
        report
    }
}

/// Debug-build safety net: every distinct kernel stream handed to
/// [`CpeCtx::run_kernel`] is statically linted once per process before
/// its first execution. I-cache findings are excluded — the simulator
/// models no i-cache, and fully unrolled kernels exceed the budget by
/// design — so this catches real stream defects (bad registers, LDM
/// overruns, malformed branches) without outlawing unrolled kernels.
#[cfg(debug_assertions)]
mod lint_gate {
    use std::collections::HashSet;
    use std::hash::{DefaultHasher, Hash, Hasher};
    use std::sync::{Mutex, OnceLock};
    use sw_isa::Instr;

    fn seen() -> &'static Mutex<HashSet<u64>> {
        static S: OnceLock<Mutex<HashSet<u64>>> = OnceLock::new();
        S.get_or_init(|| Mutex::new(HashSet::new()))
    }

    pub(crate) fn check(prog: &[Instr]) {
        let mut h = DefaultHasher::new();
        prog.hash(&mut h);
        if !seen()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(h.finish())
        {
            return;
        }
        let mut report = sw_lint::lint_stream(prog, None);
        report
            .diagnostics
            .retain(|d| d.code != sw_lint::codes::ICACHE_OVERFLOW);
        assert!(
            report.error_count() == 0,
            "kernel stream handed to CpeCtx::run_kernel fails sw-lint:\n{}",
            report.render_text()
        );
    }
}

/// Adapts a mesh port to the executor's infallible communication
/// trait: a failed operation aborts the run exactly like the
/// [`CpeCtx`] mesh wrappers do.
struct MeshComm<'p> {
    port: &'p MeshPort,
    sync: &'p RunSync,
    coord: Coord,
}

impl MeshComm<'_> {
    fn fail(&self, e: MeshError) -> ! {
        self.sync.cancel_all();
        panic_any(CpeAbort {
            coord: self.coord,
            error: CpeError::Mesh(e),
        })
    }
}

impl CommPort for MeshComm<'_> {
    fn row_bcast(&mut self, v: sw_arch::V256) {
        if let Err(e) = self.port.row_bcast(v) {
            self.fail(e);
        }
    }
    fn col_bcast(&mut self, v: sw_arch::V256) {
        if let Err(e) = self.port.col_bcast(v) {
            self.fail(e);
        }
    }
    fn getr(&mut self) -> sw_arch::V256 {
        match self.port.getr() {
            Ok(v) => v,
            Err(e) => self.fail(e),
        }
    }
    fn getc(&mut self) -> sw_arch::V256 {
        match self.port.getc() {
            Ok(v) => v,
            Err(e) => self.fail(e),
        }
    }
}
