//! Run statistics of the functional simulator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use sw_mem::dma::DmaMode;
use sw_mesh::MeshStats;

/// Bytes and descriptor counts per DMA mode (totals over the transfer,
/// not per CPE — a ROW collective counts once).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaTotals {
    /// Bytes moved in `PE_MODE`.
    pub pe_bytes: u64,
    /// Bytes moved in `BCAST_MODE`.
    pub bcast_bytes: u64,
    /// Bytes moved in `ROW_MODE`.
    pub row_bytes: u64,
    /// Bytes moved in `BROW_MODE`.
    pub brow_bytes: u64,
    /// Bytes moved in `RANK_MODE`.
    pub rank_bytes: u64,
    /// Descriptors issued (collectives count once per participating
    /// CPE here, since each CPE issues its own request in our model).
    pub descriptors: u64,
}

impl DmaTotals {
    /// Sum of bytes over all modes.
    pub fn total_bytes(&self) -> u64 {
        self.pe_bytes + self.bcast_bytes + self.row_bytes + self.brow_bytes + self.rank_bytes
    }
}

/// Atomic accumulation behind [`DmaTotals`].
#[derive(Debug, Default)]
pub(crate) struct DmaCounters {
    pe: AtomicU64,
    bcast: AtomicU64,
    row: AtomicU64,
    brow: AtomicU64,
    rank: AtomicU64,
    descriptors: AtomicU64,
}

impl DmaCounters {
    pub fn record(&self, mode: DmaMode, bytes_cpe: u64) {
        let ctr = match mode {
            DmaMode::Pe => &self.pe,
            DmaMode::Bcast => &self.bcast,
            DmaMode::Row => &self.row,
            DmaMode::Brow => &self.brow,
            DmaMode::Rank => &self.rank,
        };
        ctr.fetch_add(bytes_cpe, Ordering::Relaxed);
        self.descriptors.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> DmaTotals {
        DmaTotals {
            pe_bytes: self.pe.load(Ordering::Relaxed),
            bcast_bytes: self.bcast.load(Ordering::Relaxed),
            row_bytes: self.row.load(Ordering::Relaxed),
            brow_bytes: self.brow.load(Ordering::Relaxed),
            rank_bytes: self.rank.load(Ordering::Relaxed),
            descriptors: self.descriptors.load(Ordering::Relaxed),
        }
    }
}

/// What a functional run reports.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Per-CPE DMA traffic summed over all 64 CPEs.
    pub dma: DmaTotals,
    /// Register-communication traffic.
    pub mesh: MeshStats,
    /// Host wall-clock time of the simulated run (not simulated time).
    pub wall: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_mode() {
        let c = DmaCounters::default();
        c.record(DmaMode::Pe, 100);
        c.record(DmaMode::Pe, 28);
        c.record(DmaMode::Row, 16);
        let s = c.snapshot();
        assert_eq!(s.pe_bytes, 128);
        assert_eq!(s.row_bytes, 16);
        assert_eq!(s.descriptors, 3);
        assert_eq!(s.total_bytes(), 144);
    }
}
