//! Run statistics of the functional simulator.

use std::time::Duration;
use sw_mem::dma::DmaMode;
use sw_mesh::{MeshGridStats, MeshStats};
use sw_probe::metrics::{Counter, Registry};

/// Bytes and descriptor counts per DMA mode, accumulated **per CPE**:
/// every participating CPE contributes its own `bytes_cpe` share and
/// one descriptor per call, because in this runtime each CPE issues its
/// own request (there is no MPE-side collective descriptor).
///
/// Consequences worth spelling out, since they differ per mode:
///
/// * a `ROW_MODE` collective contributes **8 descriptors**, and its
///   byte shares partition the region — the region's bytes are counted
///   once in total;
/// * a `BCAST_MODE` get contributes **64 descriptors** and counts the
///   region's bytes 64× (one full copy lands in every LDM), which is
///   exactly the replicated traffic the mode costs;
/// * `RANK_MODE` contributes 64 descriptors whose shares partition the
///   region, `BROW_MODE` 8 descriptors of one full copy each.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaTotals {
    /// Bytes moved in `PE_MODE`.
    pub pe_bytes: u64,
    /// Bytes moved in `BCAST_MODE`.
    pub bcast_bytes: u64,
    /// Bytes moved in `ROW_MODE`.
    pub row_bytes: u64,
    /// Bytes moved in `BROW_MODE`.
    pub brow_bytes: u64,
    /// Bytes moved in `RANK_MODE`.
    pub rank_bytes: u64,
    /// Descriptors issued, one per participating CPE per call (see the
    /// struct docs — a ROW collective counts 8, a BCAST 64).
    pub descriptors: u64,
}

impl DmaTotals {
    /// Sum of bytes over all modes.
    pub fn total_bytes(&self) -> u64 {
        self.pe_bytes + self.bcast_bytes + self.row_bytes + self.brow_bytes + self.rank_bytes
    }

    /// Accumulates this snapshot into `reg` under `sim.dma.*`.
    pub fn publish(&self, reg: &Registry) {
        reg.counter("sim.dma.pe.bytes").add(self.pe_bytes);
        reg.counter("sim.dma.bcast.bytes").add(self.bcast_bytes);
        reg.counter("sim.dma.row.bytes").add(self.row_bytes);
        reg.counter("sim.dma.brow.bytes").add(self.brow_bytes);
        reg.counter("sim.dma.rank.bytes").add(self.rank_bytes);
        reg.counter("sim.dma.descriptors").add(self.descriptors);
    }
}

/// Atomic accumulation behind [`DmaTotals`], on the probe crate's
/// counters. [`DmaCounters::record`] is called once per CPE per DMA
/// call with that CPE's receipt — the per-CPE accounting the
/// [`DmaTotals`] docs describe is established here, not downstream.
#[derive(Debug, Default)]
pub(crate) struct DmaCounters {
    pe: Counter,
    bcast: Counter,
    row: Counter,
    brow: Counter,
    rank: Counter,
    descriptors: Counter,
}

impl DmaCounters {
    pub fn record(&self, mode: DmaMode, bytes_cpe: u64) {
        let ctr = match mode {
            DmaMode::Pe => &self.pe,
            DmaMode::Bcast => &self.bcast,
            DmaMode::Row => &self.row,
            DmaMode::Brow => &self.brow,
            DmaMode::Rank => &self.rank,
        };
        ctr.add(bytes_cpe);
        self.descriptors.inc();
    }

    pub fn snapshot(&self) -> DmaTotals {
        DmaTotals {
            pe_bytes: self.pe.get(),
            bcast_bytes: self.bcast.get(),
            row_bytes: self.row.get(),
            brow_bytes: self.brow.get(),
            rank_bytes: self.rank.get(),
            descriptors: self.descriptors.get(),
        }
    }
}

/// What a functional run reports.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Per-CPE DMA traffic summed over all 64 CPEs.
    pub dma: DmaTotals,
    /// Register-communication traffic.
    pub mesh: MeshStats,
    /// Per-CPE mesh traffic (`cells[mesh_row][mesh_col]`), available on
    /// clean runs too — the transport-equivalence property tests compare
    /// these cell totals between mesh transports.
    pub grid: MeshGridStats,
    /// Ids of every CPE whose worker panicked this run (structured
    /// aborts and raw panics alike), in id order. Empty on a clean run.
    pub panicked_cpes: Vec<usize>,
    /// Host wall-clock time of the simulated run (not simulated time).
    pub wall: Duration,
}

impl RunStats {
    /// Accumulates the run's traffic into `reg` (`sim.dma.*`,
    /// `sim.mesh.*`, a `sim.runs` tally, and `sim.cpe.panics` when any
    /// worker panicked). [`crate::CoreGroup::run`] does this against
    /// the global registry after every run.
    pub fn publish(&self, reg: &Registry) {
        self.dma.publish(reg);
        self.mesh.publish(reg);
        reg.counter("sim.runs").inc();
        if !self.panicked_cpes.is_empty() {
            reg.counter("sim.cpe.panics")
                .add(self.panicked_cpes.len() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_mode() {
        let c = DmaCounters::default();
        c.record(DmaMode::Pe, 100);
        c.record(DmaMode::Pe, 28);
        c.record(DmaMode::Row, 16);
        let s = c.snapshot();
        assert_eq!(s.pe_bytes, 128);
        assert_eq!(s.row_bytes, 16);
        assert_eq!(s.descriptors, 3);
        assert_eq!(s.total_bytes(), 144);
    }

    #[test]
    fn collective_accounting_is_per_cpe() {
        // Pins the documented semantics: a ROW collective over a
        // 512-byte region is recorded by each of its 8 CPEs with a
        // 64-byte share — 8 descriptors, region bytes once — while a
        // BCAST of the same region is recorded by all 64 CPEs with the
        // full 512 bytes — 64 descriptors, bytes 64×.
        let c = DmaCounters::default();
        for _ in 0..8 {
            c.record(DmaMode::Row, 512 / 8);
        }
        let s = c.snapshot();
        assert_eq!(s.descriptors, 8, "ROW collective must count 8 descriptors");
        assert_eq!(s.row_bytes, 512, "ROW byte shares partition the region");

        let c = DmaCounters::default();
        for _ in 0..64 {
            c.record(DmaMode::Bcast, 512);
        }
        let s = c.snapshot();
        assert_eq!(s.descriptors, 64, "BCAST must count 64 descriptors");
        assert_eq!(s.bcast_bytes, 64 * 512, "BCAST counts every delivered copy");
    }

    #[test]
    fn publish_accumulates_into_registry() {
        let reg = Registry::new();
        let stats = RunStats {
            dma: DmaTotals {
                pe_bytes: 1024,
                row_bytes: 512,
                descriptors: 72,
                ..DmaTotals::default()
            },
            mesh: MeshStats {
                row_words_sent: 7,
                ..MeshStats::default()
            },
            grid: MeshGridStats::default(),
            panicked_cpes: Vec::new(),
            wall: Duration::ZERO,
        };
        stats.publish(&reg);
        stats.publish(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sim.dma.pe.bytes"), Some(2048));
        assert_eq!(snap.counter("sim.dma.descriptors"), Some(144));
        assert_eq!(snap.counter("sim.mesh.row.words_sent"), Some(14));
        assert_eq!(snap.counter("sim.runs"), Some(2));
    }
}
