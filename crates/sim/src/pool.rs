//! A persistent worker pool for the 64 CPE threads.
//!
//! The functional runtime used to spawn 64 fresh OS threads inside
//! every [`crate::CoreGroup::run`] call — once per DGEMM invocation,
//! i.e. once per matrix size per variant in a sweep. [`CpePool`] spawns
//! the workers once and parks them between runs, so repeated runs pay
//! two condvar broadcasts instead of 64 `clone(2)` calls.
//!
//! # Safety model
//!
//! [`CpePool::run`] type-erases the borrowed SPMD closure into a raw
//! pointer handed to the workers, then blocks until every worker has
//! finished the generation. The closure (and everything it borrows) is
//! therefore live for the entire window in which any worker can
//! dereference the pointer; workers never touch it outside a
//! generation. A panicking worker is caught, recorded, and re-raised on
//! the calling thread after the generation completes, preserving the
//! old scoped-spawn behavior ("panics in any CPE propagate").

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// The job workers run: SPMD closure over the worker index.
type Job = *const (dyn Fn(usize) + Sync);

/// Raw job pointer, sendable because the pool's run/join protocol
/// guarantees the pointee outlives every dereference.
#[derive(Clone, Copy)]
struct JobPtr(Job);
unsafe impl Send for JobPtr {}

struct Slot {
    /// Bumped once per `run`; workers use it to detect fresh work.
    generation: u64,
    /// The current generation's job (None while idle).
    job: Option<JobPtr>,
    /// Workers still executing the current generation.
    remaining: usize,
    /// Panic payloads of the generation, one per panicking worker
    /// (worker index attached). `run` re-raises the first; `try_run`
    /// hands all of them to the caller so a multi-CPE failure is fully
    /// attributable.
    panics: Vec<(usize, Box<dyn Any + Send>)>,
    /// Tells workers to exit (pool drop).
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Signals workers: new generation or shutdown.
    start: Condvar,
    /// Signals the caller: generation complete.
    done: Condvar,
}

impl Shared {
    /// Locks the slot, surviving poisoning (a worker's caught panic can
    /// never corrupt the counters it updates under the lock).
    fn lock(&self) -> MutexGuard<'_, Slot> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A pool of `n` parked worker threads running SPMD jobs.
pub(crate) struct CpePool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl CpePool {
    /// Spawns `n` workers, parked until the first [`CpePool::run`].
    pub fn new(n: usize) -> Self {
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                generation: 0,
                job: None,
                remaining: 0,
                panics: Vec::new(),
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cpe-{i}"))
                    .spawn(move || worker_loop(i, &shared))
                    .expect("failed to spawn CPE worker")
            })
            .collect();
        CpePool { shared, workers }
    }

    /// Runs `f(i)` on every worker `i`, returning once all complete.
    /// Re-raises the first worker panic on this thread. (The runtime
    /// proper goes through [`CpePool::try_run`] to attribute failures;
    /// this propagating form remains for direct pool tests.)
    #[cfg(test)]
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        let mut panics = self.try_run(f);
        if !panics.is_empty() {
            std::panic::resume_unwind(panics.remove(0).1);
        }
    }

    /// Like [`CpePool::run`], but hands every worker's panic payload
    /// (tagged with its index, in index order) back to the caller
    /// instead of re-raising. An empty vector means a clean generation.
    pub fn try_run(&self, f: &(dyn Fn(usize) + Sync)) -> Vec<(usize, Box<dyn Any + Send>)> {
        // Erase the borrow lifetime. Sound because this function blocks
        // until `remaining == 0`, i.e. until no worker can still hold
        // or dereference the pointer.
        let job: JobPtr = JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync + 'static)>(
                f,
            ) as Job
        });
        {
            let mut slot = self.shared.lock();
            assert!(
                slot.remaining == 0 && slot.job.is_none(),
                "CpePool::run re-entered"
            );
            slot.generation += 1;
            slot.job = Some(job);
            slot.remaining = self.workers.len();
            self.shared.start.notify_all();
        }
        let mut slot = self.shared.lock();
        while slot.remaining > 0 {
            slot = self
                .shared
                .done
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
        slot.job = None;
        let mut panics = std::mem::take(&mut slot.panics);
        drop(slot);
        panics.sort_by_key(|(i, _)| *i);
        panics
    }
}

impl Drop for CpePool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.lock();
            slot.shutdown = true;
            self.shared.start.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(index: usize, shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.lock();
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.generation != seen {
                    seen = slot.generation;
                    break slot.job.expect("generation bumped without a job");
                }
                slot = shared.start.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
        };
        // SAFETY: the caller blocks in `run` until this generation's
        // `remaining` hits zero, keeping the closure alive.
        let f = unsafe { &*job.0 };
        let result = catch_unwind(AssertUnwindSafe(|| f(index)));
        let mut slot = shared.lock();
        if let Err(p) = result {
            slot.panics.push((index, p));
        }
        slot.remaining -= 1;
        if slot.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn all_workers_run_each_generation() {
        let pool = CpePool::new(8);
        let hits = AtomicU64::new(0);
        for round in 1..=5u64 {
            pool.run(&|_i| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 8 * round);
        }
    }

    #[test]
    fn distinct_indices_cover_range() {
        let pool = CpePool::new(16);
        let mask = AtomicU64::new(0);
        pool.run(&|i| {
            mask.fetch_or(1 << i, Ordering::Relaxed);
        });
        assert_eq!(mask.load(Ordering::Relaxed), (1 << 16) - 1);
    }

    #[test]
    fn borrowed_state_visible_and_mutated() {
        let pool = CpePool::new(4);
        let cells: Vec<Mutex<u64>> = (0..4).map(|_| Mutex::new(0)).collect();
        let base = 100u64;
        pool.run(&|i| {
            *cells[i].lock().unwrap() = base + i as u64;
        });
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(*c.lock().unwrap(), 100 + i as u64);
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = CpePool::new(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|i| {
                if i == 2 {
                    panic!("boom from worker 2");
                }
            });
        }));
        let payload = r.expect_err("worker panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("boom"), "unexpected payload: {msg:?}");
        // The pool remains usable after a panicked generation.
        let ok = AtomicU64::new(0);
        pool.run(&|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn try_run_collects_every_panicking_worker() {
        let pool = CpePool::new(8);
        let panics = pool.try_run(&|i| {
            if i % 2 == 1 {
                panic!("odd worker {i}");
            }
        });
        let ids: Vec<usize> = panics.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![1, 3, 5, 7], "all panicking workers recorded");
        for (i, p) in &panics {
            let msg = p.downcast_ref::<String>().cloned().unwrap_or_default();
            assert_eq!(msg, format!("odd worker {i}"));
        }
        // A clean follow-up generation reports nothing.
        assert!(pool.try_run(&|_| {}).is_empty());
    }
}
