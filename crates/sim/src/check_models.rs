//! Model-check suite for the cancellable barrier (compiled only under
//! `--cfg sw_check`, where [`crate::barrier`] runs on the
//! checker-instrumented types).
//!
//! The correct models prove, across every explored interleaving under
//! the simulated C11 memory model: a release frees every waiter
//! without depending on a timed-park rescue (no lost wakeups),
//! `wait_clock` returns the generation maximum to every participant
//! (including a lagging one), cancel never strands a waiter — even
//! racing the last arrival — and the barrier is reusable across
//! generations. Each liveness property is paired with a seeded-defect
//! mutant (see the `cfg(sw_check)` block in `barrier.rs`) that the
//! checker must catch.

use crate::barrier::{BarrierCancelled, CancellableBarrier};
use std::sync::Arc;
use sw_check::models::{Expect, NamedModel};
use sw_check::{thread, Config, ViolationKind};

/// Barrier progress must never depend on a timed park expiring: any
/// forced condvar-timeout rescue is a lost wakeup.
fn forbid_rescue(cfg: &mut Config) {
    cfg.forbid_timeout_rescue = true;
}

/// Two participants cross one generation; no interleaving may need a
/// timeout rescue, race, or deadlock.
fn barrier_release() {
    let b = Arc::new(CancellableBarrier::new(2));
    let w = b.clone();
    let t = thread::spawn(move || {
        w.wait().unwrap();
    });
    b.wait().unwrap();
    t.join().unwrap();
}

/// Every participant must be released with the generation's clock
/// maximum, even when the slowest clock arrives last.
fn barrier_wait_clock_max() {
    let b = Arc::new(CancellableBarrier::new(2));
    let w = b.clone();
    let t = thread::spawn(move || {
        assert_eq!(w.wait_clock(9).unwrap(), 9, "lagging participant");
    });
    assert_eq!(b.wait_clock(5).unwrap(), 9, "leading participant");
    t.join().unwrap();
}

/// Two back-to-back generations: the count reset and the parity slots
/// must not bleed between them.
fn barrier_reuse() {
    let b = Arc::new(CancellableBarrier::new(2));
    let w = b.clone();
    let t = thread::spawn(move || {
        assert_eq!(w.wait_clock(1).unwrap(), 2);
        assert_eq!(w.wait_clock(3).unwrap(), 4);
    });
    assert_eq!(b.wait_clock(2).unwrap(), 2);
    assert_eq!(b.wait_clock(4).unwrap(), 4);
    t.join().unwrap();
}

/// Cancel must wake a blocked waiter (the barrier wants 2 arrivals and
/// only ever gets 1) and fail all later waits — with no interleaving
/// depending on the park timeout.
fn barrier_cancel_wakes() {
    let b = Arc::new(CancellableBarrier::new(2));
    let w = b.clone();
    let t = thread::spawn(move || {
        assert_eq!(w.wait(), Err(BarrierCancelled));
    });
    b.cancel();
    t.join().unwrap();
    assert_eq!(
        b.wait(),
        Err(BarrierCancelled),
        "late arrival must fail fast"
    );
}

/// Cancel racing the last arrival: either the generation completes
/// (both Ok) or the cancel wins for one or both waiters — but nobody
/// may strand, race, or need a timeout rescue.
fn barrier_cancel_vs_last_arrival() {
    let b = Arc::new(CancellableBarrier::new(2));
    let w = b.clone();
    let t = thread::spawn(move || {
        let _ = w.wait(); // Ok or Err depending on the race — both fine
    });
    let c = b.clone();
    let canceller = thread::spawn(move || {
        c.cancel();
    });
    let _ = b.wait();
    t.join().unwrap();
    canceller.join().unwrap();
}

/// Mutant: the straggler parks without re-checking under the lock.
fn barrier_mutant_park_unchecked() {
    let b = Arc::new(CancellableBarrier::new(2));
    let w = b.clone();
    let t = thread::spawn(move || {
        w.wait_mutant_park_unchecked().unwrap();
    });
    b.wait_mutant_park_unchecked().unwrap();
    t.join().unwrap();
}

/// Mutant: cancel poisons but never notifies the parked waiter.
fn barrier_mutant_cancel_no_notify() {
    let b = Arc::new(CancellableBarrier::new(2));
    let w = b.clone();
    let t = thread::spawn(move || {
        assert_eq!(w.wait(), Err(BarrierCancelled));
    });
    b.cancel_mutant_no_notify();
    t.join().unwrap();
}

/// The sim crate's registered models, consumed by the `sw-check`
/// binary and the crate's own `model_check` integration test.
pub fn models() -> Vec<NamedModel> {
    vec![
        NamedModel {
            name: "sim/barrier-release",
            about: "one generation releases both waiters with no timeout rescue",
            expect: Expect::Pass,
            tune: forbid_rescue,
            body: barrier_release,
        },
        NamedModel {
            name: "sim/barrier-wait-clock-max",
            about: "wait_clock returns the generation maximum to every participant",
            expect: Expect::Pass,
            tune: forbid_rescue,
            body: barrier_wait_clock_max,
        },
        NamedModel {
            name: "sim/barrier-reuse",
            about: "generations do not bleed: count reset and parity slots hold",
            expect: Expect::Pass,
            tune: forbid_rescue,
            body: barrier_reuse,
        },
        NamedModel {
            name: "sim/barrier-cancel",
            about: "cancel wakes a blocked waiter and fails later waits",
            expect: Expect::Pass,
            tune: forbid_rescue,
            body: barrier_cancel_wakes,
        },
        NamedModel {
            name: "sim/barrier-cancel-vs-last-arrival",
            about: "cancel racing the last arrival strands nobody",
            expect: Expect::Pass,
            tune: forbid_rescue,
            body: barrier_cancel_vs_last_arrival,
        },
        NamedModel {
            name: "sim/barrier-mutant-park-unchecked",
            about: "SEEDED DEFECT: park without under-lock re-check loses the wakeup",
            expect: Expect::Violation(ViolationKind::LostWakeup),
            tune: forbid_rescue,
            body: barrier_mutant_park_unchecked,
        },
        NamedModel {
            name: "sim/barrier-mutant-cancel-no-notify",
            about: "SEEDED DEFECT: cancel without notify strands the parked waiter",
            expect: Expect::Violation(ViolationKind::LostWakeup),
            tune: forbid_rescue,
            body: barrier_mutant_cancel_no_notify,
        },
    ]
}
