//! The SW26010 core-group simulator.
//!
//! Two execution modes share one front-end:
//!
//! * **Functional mode** ([`CoreGroup::run`]) — dispatches to a
//!   persistent pool of 64 OS threads, one per CPE, each owning a 64 KB
//!   [`sw_mem::Ldm`], a
//!   [`sw_mesh::MeshPort`] onto the register-communication mesh, and a
//!   DMA handle onto the shared main memory. Data movement and
//!   arithmetic really happen; results are bit-checkable against a host
//!   reference.
//! * **Timing mode** ([`timing`]) — a discrete-event engine over two
//!   serial resources (the DMA channel and the lock-stepped CPE
//!   cluster). DGEMM variants encode their block schedules as task DAGs
//!   whose durations come from the calibrated DMA model (`sw-mem`) and
//!   from cycle counts measured by the ISA executor (`sw-isa`); the
//!   engine computes the makespan, from which Gflops follow.
//!
//! Overlap effects — double buffering hiding DMA under compute, the
//! prologue cost the paper observes for small m in Figure 7 — *emerge*
//! from the DAG structure rather than being hard-coded.

pub(crate) mod barrier;
pub mod cancel;
#[cfg(sw_check)]
pub mod check_models;
pub mod core_group;
pub(crate) mod pool;
pub mod stats;
pub mod timing;

pub use cancel::CancelToken;
pub use core_group::{CoreGroup, CpeAbort, CpeCtx, CpeError, MeshPath, RunError};
pub use stats::{DmaTotals, RunStats};
pub use sw_mesh::MeshTransport;
pub use sw_probe::flight::{FlightRecorder, Lane};
pub use sw_probe::trace::{TraceData, Tracer};
pub use timing::{
    CritBound, CritSegment, CriticalPath, Dag, Resource, TaskId, TaskTrace, TimingResult,
};
