//! Cooperative run cancellation.
//!
//! A [`CancelToken`] is the MPE-side handle a service layer (or a
//! deadline watchdog) uses to abandon an in-flight functional run:
//! firing it poisons the run's cancellable barriers, so every CPE
//! unwinds with [`crate::CpeError::Cancelled`] at its next sync point
//! instead of computing a result nobody is waiting for. CPEs blocked
//! inside a mesh episode are not parked on a barrier; they are bounded
//! by the mesh deadlock fuse, which callers enforcing deadlines should
//! shorten to their remaining budget ([`crate::CoreGroup::
//! set_mesh_timeout`]) — the two paths together make "cancelled
//! request frees its core group promptly" a hard property.
//!
//! The token is one-shot and sticky, like the barrier poison it rides
//! on: once fired it stays fired, and a run started with an
//! already-fired token unwinds at its first barrier. The *core group*
//! stays reusable — cancellation tears down one run's barriers, which
//! are per-run state; `run_on` recovery after a cancel is pinned by
//! `crates/core/tests/recovery.rs`.
//!
//! Firing records *why* (an explicit cancel or a deadline), so the
//! caller can tell a policy outcome ("you ran out of time") from a
//! real fault — `sw-dgemm` surfaces the distinction as
//! `DgemmError::Cancelled { deadline }`.

use crate::barrier::RunSync;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, Weak};

const LIVE: u8 = 0;
const EXPLICIT: u8 = 1;
const DEADLINE: u8 = 2;

/// A clonable, one-shot cancellation handle for functional runs.
///
/// Install it with [`crate::CoreGroup::set_cancel_token`] (or
/// `DgemmRunner::cancel` in `sw-dgemm`); any clone may fire it, from
/// any thread, before or during the run.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// `LIVE` until fired; then the reason, first cause wins.
    state: AtomicU8,
    /// The barriers of the run currently executing under this token
    /// (weak: the token must not keep a finished run's sync alive).
    active: Mutex<Weak<RunSync>>,
}

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token as an explicit caller cancellation.
    pub fn cancel(&self) {
        self.fire(EXPLICIT);
    }

    /// Fires the token as a deadline expiry (watchdog path); the run's
    /// error will carry `deadline = true`.
    pub fn cancel_deadline(&self) {
        self.fire(DEADLINE);
    }

    /// Whether the token has been fired (for any reason).
    pub fn is_cancelled(&self) -> bool {
        self.inner.state.load(Ordering::Acquire) != LIVE
    }

    /// Whether the token was fired by a deadline (false while live or
    /// after an explicit cancel).
    pub fn deadline_hit(&self) -> bool {
        self.inner.state.load(Ordering::Acquire) == DEADLINE
    }

    fn fire(&self, reason: u8) {
        // First cause wins; a second fire still (re-)cancels the
        // attached run — both operations are idempotent.
        let _ =
            self.inner
                .state
                .compare_exchange(LIVE, reason, Ordering::AcqRel, Ordering::Acquire);
        let sync = self
            .inner
            .active
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .upgrade();
        if let Some(sync) = sync {
            sync.cancel_all();
        }
    }

    /// Binds the token to a starting run's barriers. Called by
    /// `CoreGroup::try_run`; re-checks the state after publishing so a
    /// fire racing the attach can never be lost.
    pub(crate) fn attach(&self, sync: &Arc<RunSync>) {
        *self.inner.active.lock().unwrap_or_else(|e| e.into_inner()) = Arc::downgrade(sync);
        if self.is_cancelled() {
            sync.cancel_all();
        }
    }

    /// Unbinds the token when its run tears down.
    pub(crate) fn detach(&self) {
        *self.inner.active.lock().unwrap_or_else(|e| e.into_inner()) = Weak::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_reason_wins_and_is_sticky() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel_deadline();
        assert!(t.is_cancelled() && t.deadline_hit());
        t.cancel(); // second fire does not rewrite the reason
        assert!(t.deadline_hit());
    }

    #[test]
    fn fire_before_attach_poisons_the_sync() {
        let t = CancelToken::new();
        t.cancel();
        let sync = Arc::new(RunSync::new());
        t.attach(&sync);
        // The barrier must already be poisoned for any waiter.
        assert!(sync.all.wait_clock(0).is_err());
        t.detach();
    }

    #[test]
    fn fire_after_attach_cancels_waiters() {
        let t = CancelToken::new();
        let sync = Arc::new(RunSync::new());
        t.attach(&sync);
        std::thread::scope(|s| {
            let h = s.spawn(|| sync.all.wait_clock(0));
            std::thread::sleep(std::time::Duration::from_millis(10));
            t.cancel();
            assert!(h.join().unwrap().is_err());
        });
    }

    #[test]
    fn detach_drops_the_run_reference() {
        let t = CancelToken::new();
        let sync = Arc::new(RunSync::new());
        t.attach(&sync);
        t.detach();
        t.cancel(); // fires into nothing; must not panic
        assert!(t.is_cancelled() && !t.deadline_hit());
    }
}
