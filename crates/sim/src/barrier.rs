//! Cancellable barriers for the 64-thread runtime.
//!
//! `std::sync::Barrier` has no way out: once a worker waits, it stays
//! until all its peers arrive. That is exactly wrong for a run in which
//! one CPE hits a structured failure (a DMA retry budget, a mesh
//! deadlock) — its 63 peers would hang on the next `sync` forever. A
//! [`CancellableBarrier`] adds a poisoned state: [`CancellableBarrier::
//! cancel`] wakes every current and future waiter with
//! [`BarrierCancelled`], which the CPE context converts into an orderly
//! unwind, letting [`crate::CoreGroup::try_run`] collect the failure
//! and return.
//!
//! The implementation is a sense-reversing barrier on atomics: arrival
//! is one `fetch_add`, the release is one generation-counter bump, and
//! waiters observe it with a spin → yield → park progression instead of
//! taking a mutex on every crossing. `sync_all` fires between every
//! strip step of every functional run, so the fast path (all 64 CPEs
//! arrive within a few microseconds of each other, the common case on a
//! many-core host) stays entirely in userspace; only stragglers fall
//! back to a condvar with a short timed park.

// Concurrency vocabulary comes from the sw-check facade: plain `std`
// re-exports in a normal build (zero-cost, the hot path is unchanged),
// checker-instrumented types under `--cfg sw_check` so this exact
// source is model-checked by `check_models`.
use sw_arch::coord::{MESH_ROWS, N_CPES};
use sw_check::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use sw_check::sync::{Condvar, Mutex};
use sw_check::time::Duration;

/// The barrier was cancelled while (or before) waiting; the run is
/// being torn down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierCancelled;

/// Busy-spin rounds (exponential, `2^k` spins each) before yielding.
/// Under the model checker the spin/yield phases shrink to one round
/// each so small models reach every phase (including the condvar park)
/// within a few scheduler steps.
#[cfg(not(sw_check))]
const SPIN_ROUNDS: u32 = 6;
#[cfg(sw_check)]
const SPIN_ROUNDS: u32 = 1;
/// `yield_now` rounds before parking on the condvar.
#[cfg(not(sw_check))]
const YIELD_ROUNDS: u32 = 10;
#[cfg(sw_check)]
const YIELD_ROUNDS: u32 = 1;
/// Timed-park quantum; bounds the cost of a missed wakeup without a
/// handshake on every release.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// A reusable barrier whose waiters can be released early by
/// [`CancellableBarrier::cancel`].
pub(crate) struct CancellableBarrier {
    n: usize,
    /// Waiters that have arrived in the current generation.
    count: AtomicUsize,
    /// Bumped when a generation completes, releasing its waiters.
    generation: AtomicU64,
    cancelled: AtomicBool,
    /// Simulated-clock maxima being gathered for the in-flight
    /// generation, indexed by generation parity. While generation `g`
    /// is collecting arrivals in slot `g & 1`, slot `(g+1) & 1` is
    /// untouched — a `g+1` arrival is only possible after `g` released
    /// and its last arrival zeroed the slot — so two slots suffice.
    clocks: [AtomicU64; 2],
    /// The released clock maximum per generation parity, published by
    /// the last arrival before it bumps `generation`.
    released: [AtomicU64; 2],
    /// Parking lot for stragglers; the lock guards nothing but the
    /// condvar protocol.
    lock: Mutex<()>,
    cv: Condvar,
}

impl CancellableBarrier {
    pub fn new(n: usize) -> Self {
        CancellableBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
            clocks: [AtomicU64::new(0), AtomicU64::new(0)],
            released: [AtomicU64::new(0), AtomicU64::new(0)],
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all `n` participants arrive (Ok) or the barrier is
    /// cancelled (Err). A cancelled barrier fails all future waits too.
    #[cfg(any(test, sw_check))]
    pub fn wait(&self) -> Result<(), BarrierCancelled> {
        self.wait_clock(0).map(|_| ())
    }

    /// [`CancellableBarrier::wait`], exchanging simulated clocks: every
    /// participant brings its own clock and all are released with the
    /// **maximum** across the generation. The flight recorder jumps
    /// each CPE's clock to the returned value (charging the skipped
    /// cycles as barrier wait), which is exactly the semantics of a
    /// lockstep `sync_all` — after it, all 64 clocks agree, making
    /// cross-CPE event timestamps comparable.
    pub fn wait_clock(&self, clock: u64) -> Result<u64, BarrierCancelled> {
        if self.cancelled.load(Ordering::Acquire) {
            return Err(BarrierCancelled);
        }
        let gen = self.generation.load(Ordering::Acquire);
        let slot = (gen & 1) as usize;
        // Deposit this participant's clock before arriving: the
        // count RMW chain orders every deposit before the last
        // arrival's harvest below.
        self.clocks[slot].fetch_max(clock, Ordering::AcqRel);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arrival: harvest the maximum and re-zero the slot
            // for generation gen+2 (which cannot start arriving until
            // this release is observed), then publish it where the
            // spinning waiters of *this* generation will look.
            let max = self.clocks[slot].swap(0, Ordering::AcqRel);
            self.released[slot].store(max, Ordering::Release);
            // Reset the count for the next generation *before*
            // publishing the release — a peer can only re-enter `wait`
            // after observing the bump, so no new arrival can race the
            // reset.
            self.count.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
            // Pair with parked waiters: taking the lock orders this
            // notify after any park-side re-check in progress.
            drop(self.lock.lock().unwrap_or_else(|e| e.into_inner()));
            self.cv.notify_all();
            return Ok(max);
        }
        let mut round = 0u32;
        loop {
            // A completed generation wins over a concurrent cancel,
            // matching the lock-based predecessor's semantics.
            if self.generation.load(Ordering::Acquire) != gen {
                // The Acquire load above synchronizes with the
                // generation bump, which the releaser ordered after
                // the `released` publish.
                return Ok(self.released[slot].load(Ordering::Acquire));
            }
            if self.cancelled.load(Ordering::Acquire) {
                return Err(BarrierCancelled);
            }
            if round < SPIN_ROUNDS {
                for _ in 0..(1u32 << round) {
                    sw_check::hint::spin_loop();
                }
                round += 1;
            } else if round < SPIN_ROUNDS + YIELD_ROUNDS {
                sw_check::thread::yield_now();
                round += 1;
            } else {
                let guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
                // Re-check under the lock so a release that fired
                // between the atomic check and the park is not missed;
                // the timed wait is belt and braces on top.
                if self.generation.load(Ordering::Acquire) == gen
                    && !self.cancelled.load(Ordering::Acquire)
                {
                    let _ = self
                        .cv
                        .wait_timeout(guard, PARK_TIMEOUT)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Poisons the barrier, waking all waiters with an error.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
        drop(self.lock.lock().unwrap_or_else(|e| e.into_inner()));
        self.cv.notify_all();
    }
}

/// Seeded defects for the model-check suite ([`crate::check_models`]):
/// mutated copies of the verified operations above, compiled only
/// under the checker cfg so production builds never contain them.
/// Every mutant must be *caught* by `sw-check` — a mutant that passes
/// means the suite lost its teeth.
#[cfg(sw_check)]
impl CancellableBarrier {
    /// `wait` with the under-lock re-check removed: a release or
    /// cancel firing between the lock-free check and the park is
    /// missed, and progress comes to depend on the timed park expiring
    /// — the checker's lost-wakeup signal.
    pub(crate) fn wait_mutant_park_unchecked(&self) -> Result<(), BarrierCancelled> {
        if self.cancelled.load(Ordering::Acquire) {
            return Err(BarrierCancelled);
        }
        let gen = self.generation.load(Ordering::Acquire);
        let slot = (gen & 1) as usize;
        self.clocks[slot].fetch_max(0, Ordering::AcqRel);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            let max = self.clocks[slot].swap(0, Ordering::AcqRel);
            self.released[slot].store(max, Ordering::Release);
            self.count.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
            drop(self.lock.lock().unwrap_or_else(|e| e.into_inner()));
            self.cv.notify_all();
            return Ok(());
        }
        let mut round = 0u32;
        loop {
            if self.generation.load(Ordering::Acquire) != gen {
                return Ok(());
            }
            if self.cancelled.load(Ordering::Acquire) {
                return Err(BarrierCancelled);
            }
            if round < SPIN_ROUNDS {
                for _ in 0..(1u32 << round) {
                    sw_check::hint::spin_loop();
                }
                round += 1;
            } else if round < SPIN_ROUNDS + YIELD_ROUNDS {
                sw_check::thread::yield_now();
                round += 1;
            } else {
                let guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
                // MUTANT: the generation/cancel re-check belongs here.
                let _ = self
                    .cv
                    .wait_timeout(guard, PARK_TIMEOUT)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// `cancel` that poisons without notifying: a parked waiter is
    /// stranded until its timed park expires, which the checker
    /// reports as a lost wakeup.
    pub(crate) fn cancel_mutant_no_notify(&self) {
        self.cancelled.store(true, Ordering::Release);
        // MUTANT: the lock + notify_all belong here.
    }
}

/// The barriers of one functional run: the 64-wide `sync_all` barrier
/// and the eight 8-wide row barriers, all sharing one cancellation.
pub(crate) struct RunSync {
    pub all: CancellableBarrier,
    pub rows: Vec<CancellableBarrier>,
}

impl RunSync {
    pub fn new() -> Self {
        RunSync {
            all: CancellableBarrier::new(N_CPES),
            rows: (0..MESH_ROWS).map(|_| CancellableBarrier::new(8)).collect(),
        }
    }

    /// Cancels every barrier of the run (a CPE is aborting).
    pub fn cancel_all(&self) {
        self.all.cancel();
        for r in &self.rows {
            r.cancel();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn barrier_releases_all_waiters() {
        let b = CancellableBarrier::new(4);
        let passed = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        b.wait().unwrap();
                        passed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(passed.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn generations_do_not_bleed_into_each_other() {
        // Hammer the reuse path: a fast thread must never slip through
        // a stale generation while a slow peer is still leaving the
        // previous one.
        let b = CancellableBarrier::new(8);
        let inside = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..500 {
                        b.wait().unwrap();
                        let seen = inside.fetch_add(1, Ordering::SeqCst);
                        assert!(seen < 8, "more waiters inside than participants");
                        b.wait().unwrap();
                        inside.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(inside.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn wait_clock_releases_every_generation_maximum() {
        // 4 participants, 200 generations; participant p brings clock
        // g*10 + p, so every release must return g*10 + 3 — including
        // across the parity flip between adjacent generations.
        let b = CancellableBarrier::new(4);
        std::thread::scope(|s| {
            for p in 0..4u64 {
                let b = &b;
                s.spawn(move || {
                    for g in 0..200u64 {
                        let got = b.wait_clock(g * 10 + p).unwrap();
                        assert_eq!(got, g * 10 + 3, "participant {p} generation {g}");
                    }
                });
            }
        });
    }

    #[test]
    fn cancel_wakes_current_and_future_waiters() {
        let b = CancellableBarrier::new(3);
        std::thread::scope(|s| {
            let h = s.spawn(|| b.wait());
            std::thread::sleep(std::time::Duration::from_millis(10));
            b.cancel();
            assert_eq!(h.join().unwrap(), Err(BarrierCancelled));
        });
        // Late arrivals fail immediately instead of hanging.
        assert_eq!(b.wait(), Err(BarrierCancelled));
    }

    #[test]
    fn cancel_racing_last_arrival_strands_nobody() {
        // The exhaustive interleaving version of this race is the
        // `sim/barrier-cancel-vs-last-arrival` model; this is the
        // tier-1 smoke test of the same property. Two waiters and a
        // canceller race: a waiter may pass (completed generation wins
        // over cancel) or fail, but every thread must return.
        for _ in 0..200 {
            let b = CancellableBarrier::new(2);
            std::thread::scope(|s| {
                let w1 = s.spawn(|| b.wait());
                let w2 = s.spawn(|| b.wait());
                s.spawn(|| b.cancel());
                for r in [w1.join().unwrap(), w2.join().unwrap()] {
                    assert!(matches!(r, Ok(()) | Err(BarrierCancelled)));
                }
            });
            // Whatever the race decided, the poison is now permanent.
            assert_eq!(b.wait(), Err(BarrierCancelled));
        }
    }

    #[test]
    fn wait_clock_maximum_arrives_with_the_laggard() {
        // Fast participants bring small clocks and park; the lagging
        // CPE shows up last carrying the generation maximum. Everyone
        // — including the parked threads woken by the laggard's
        // release — must observe the laggard's clock.
        let b = CancellableBarrier::new(4);
        std::thread::scope(|s| {
            let mut fast = Vec::new();
            for p in 0..3u64 {
                let b = &b;
                fast.push(s.spawn(move || b.wait_clock(p + 1)));
            }
            // Long enough that the fast waiters exhaust their spin and
            // yield budgets and reach the condvar park.
            std::thread::sleep(std::time::Duration::from_millis(50));
            let got = b.wait_clock(999).unwrap();
            assert_eq!(got, 999, "laggard gets its own maximum back");
            for h in fast {
                assert_eq!(h.join().unwrap(), Ok(999), "parked waiter gets the max");
            }
        });
    }

    #[test]
    fn cancel_wakes_parked_waiters() {
        // Let the waiter reach the condvar-park phase before
        // cancelling, to cover the timed-park wakeup path.
        let b = CancellableBarrier::new(2);
        std::thread::scope(|s| {
            let h = s.spawn(|| b.wait());
            std::thread::sleep(std::time::Duration::from_millis(50));
            b.cancel();
            assert_eq!(h.join().unwrap(), Err(BarrierCancelled));
        });
    }
}
