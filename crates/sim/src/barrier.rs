//! Cancellable barriers for the 64-thread runtime.
//!
//! `std::sync::Barrier` has no way out: once a worker waits, it stays
//! until all its peers arrive. That is exactly wrong for a run in which
//! one CPE hits a structured failure (a DMA retry budget, a mesh
//! deadlock) — its 63 peers would hang on the next `sync` forever. A
//! [`CancellableBarrier`] adds a poisoned state: [`CancellableBarrier::
//! cancel`] wakes every current and future waiter with
//! [`BarrierCancelled`], which the CPE context converts into an orderly
//! unwind, letting [`crate::CoreGroup::try_run`] collect the failure
//! and return.

use std::sync::{Condvar, Mutex};
use sw_arch::coord::{MESH_ROWS, N_CPES};

/// The barrier was cancelled while (or before) waiting; the run is
/// being torn down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierCancelled;

/// A reusable barrier whose waiters can be released early by
/// [`CancellableBarrier::cancel`].
pub(crate) struct CancellableBarrier {
    n: usize,
    state: Mutex<State>,
    cv: Condvar,
}

#[derive(Default)]
struct State {
    /// Waiters that have arrived in the current generation.
    count: usize,
    /// Bumped when a generation completes, releasing its waiters.
    generation: u64,
    cancelled: bool,
}

impl CancellableBarrier {
    pub fn new(n: usize) -> Self {
        CancellableBarrier {
            n,
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all `n` participants arrive (Ok) or the barrier is
    /// cancelled (Err). A cancelled barrier fails all future waits too.
    pub fn wait(&self) -> Result<(), BarrierCancelled> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.cancelled {
            return Err(BarrierCancelled);
        }
        s.count += 1;
        if s.count == self.n {
            s.count = 0;
            s.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        while s.generation == gen && !s.cancelled {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        if s.generation == gen {
            Err(BarrierCancelled)
        } else {
            Ok(())
        }
    }

    /// Poisons the barrier, waking all waiters with an error.
    pub fn cancel(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.cancelled = true;
        self.cv.notify_all();
    }
}

/// The barriers of one functional run: the 64-wide `sync_all` barrier
/// and the eight 8-wide row barriers, all sharing one cancellation.
pub(crate) struct RunSync {
    pub all: CancellableBarrier,
    pub rows: Vec<CancellableBarrier>,
}

impl RunSync {
    pub fn new() -> Self {
        RunSync {
            all: CancellableBarrier::new(N_CPES),
            rows: (0..MESH_ROWS).map(|_| CancellableBarrier::new(8)).collect(),
        }
    }

    /// Cancels every barrier of the run (a CPE is aborting).
    pub fn cancel_all(&self) {
        self.all.cancel();
        for r in &self.rows {
            r.cancel();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn barrier_releases_all_waiters() {
        let b = CancellableBarrier::new(4);
        let passed = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        b.wait().unwrap();
                        passed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(passed.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn cancel_wakes_current_and_future_waiters() {
        let b = CancellableBarrier::new(3);
        std::thread::scope(|s| {
            let h = s.spawn(|| b.wait());
            std::thread::sleep(std::time::Duration::from_millis(10));
            b.cancel();
            assert_eq!(h.join().unwrap(), Err(BarrierCancelled));
        });
        // Late arrivals fail immediately instead of hanging.
        assert_eq!(b.wait(), Err(BarrierCancelled));
    }
}
