//! Deterministic, seeded fault injection for the core-group simulator.
//!
//! A [`FaultSpec`] describes *what* can go wrong (rates and targeted
//! scenarios); a [`FaultInjector`] built from it answers, at each
//! injection site, *whether* something goes wrong — as a pure function
//! of the spec's seed, the site, the current epoch (CG-block index),
//! the recovery attempt, the asking CPE, and that CPE's per-run
//! operation index. Thread interleaving never enters the decision, so
//! the same seed and plan reproduce the same faults on every run — the
//! property the retry/ABFT determinism tests pin down.
//!
//! Injection sites (consulted by `sw-sim` and `sw-mesh`):
//!
//! * **DMA** — transient failures ([`DmaFault::Transient`], retried
//!   with bounded deterministic backoff), payload bit-flips
//!   ([`DmaFault::BitFlip`]) and truncation ([`DmaFault::Truncate`])
//!   applied to the received LDM image;
//! * **LDM** — soft-error bit-flips in a CPE's scratch pad after a
//!   transfer lands;
//! * **mesh** — dropped broadcast words and an artificial *wedge* (a
//!   CPE that silently stops sending), both of which surface as the
//!   structured mesh-deadlock error downstream;
//! * **stuck CPE** — a CPE whose every DMA fails from a given epoch
//!   onward, exhausting the retry budget and triggering graceful
//!   degradation.
//!
//! Every injected fault and every recovery action is counted; a
//! [`FaultStats`] snapshot travels in the DGEMM report and can be
//! published into the `sw-probe` metrics registry under `faults.*`.
//! When no injector is installed nothing is consulted and nothing is
//! published — the disabled path adds zero counters.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use sw_probe::metrics::{Counter, Registry};

/// Rates are expressed per-myriad: a rate of `n` means the site fires
/// with probability `n / 10_000` per decision.
pub const MYRIAD: u64 = 10_000;

/// An artificial mesh wedge: from epoch `epoch` onward, CPE `cpe`
/// silently stops broadcasting — its group peers starve and the mesh
/// deadlock fuse trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WedgeSpec {
    /// CPE id (0..64) that stops sending.
    pub cpe: usize,
    /// First epoch (CG-block index) at which the wedge is active.
    pub epoch: u64,
}

/// A stuck CPE: from epoch `epoch` onward, every DMA issued by `cpe`
/// fails transiently, exhausting the retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckSpec {
    /// CPE id (0..64) that stops responding.
    pub cpe: usize,
    /// First epoch at which the CPE is stuck.
    pub epoch: u64,
}

/// A reproducible fault plan: one seed plus rates and targeted
/// scenarios. `FaultSpec::seeded(s)` is the all-zero plan with seed
/// `s`; set the fields you want.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Root of all injection decisions.
    pub seed: u64,
    /// Per-myriad rate of transient DMA failures (retryable).
    pub dma_transient_per_myriad: u64,
    /// Transients at a site stop recurring once the in-flight retry
    /// attempt reaches this count, so a bounded retry budget always
    /// converges (a stuck CPE ignores this).
    pub dma_transient_max_retry: u32,
    /// Per-myriad rate of single-bit flips in DMA-received data.
    pub dma_bitflip_per_myriad: u64,
    /// Per-myriad rate of truncated DMA transfers (the tail of the
    /// received image is lost).
    pub dma_truncate_per_myriad: u64,
    /// Per-myriad rate of LDM soft-error bit flips after a transfer.
    pub ldm_bitflip_per_myriad: u64,
    /// Per-myriad rate of dropped mesh broadcast words.
    pub mesh_drop_per_myriad: u64,
    /// Guarantees at least one DMA bit-flip per epoch: the epoch's
    /// designated CPE flips one bit in its first DMA of attempt 0.
    /// Recomputed attempts are clean, so ABFT correction converges.
    pub bitflip_every_epoch: bool,
    /// Artificial mesh wedge, if any.
    pub wedge: Option<WedgeSpec>,
    /// Stuck CPE, if any.
    pub stuck: Option<StuckSpec>,
}

impl FaultSpec {
    /// The empty plan (no faults) with the given seed.
    pub fn seeded(seed: u64) -> Self {
        FaultSpec {
            seed,
            dma_transient_per_myriad: 0,
            dma_transient_max_retry: 2,
            dma_bitflip_per_myriad: 0,
            dma_truncate_per_myriad: 0,
            ldm_bitflip_per_myriad: 0,
            mesh_drop_per_myriad: 0,
            bitflip_every_epoch: false,
            wedge: None,
            stuck: None,
        }
    }
}

/// What the injector decided for one DMA operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaFault {
    /// The transfer fails transiently; the caller should back off and
    /// retry.
    Transient,
    /// One bit of the received image flips: doubled-word index is
    /// `word % len`, bit index in `32..64` (high mantissa / exponent /
    /// sign, so corruption is observable above rounding noise).
    BitFlip {
        /// Pseudorandom word selector (caller reduces mod buffer len).
        word: u64,
        /// Bit to flip, in `32..64`.
        bit: u32,
    },
    /// The transfer is cut short: elements from `keep_from(len)` on
    /// never arrive (the caller models the lost tail).
    Truncate {
        /// Pseudorandom cut selector (caller reduces to `1..len`).
        cut: u64,
    },
}

/// Injection-site tags, hashed into every decision.
mod site {
    pub const DMA_TRANSIENT: u64 = 0x01;
    pub const DMA_BITFLIP: u64 = 0x02;
    pub const DMA_TRUNCATE: u64 = 0x03;
    pub const LDM_BITFLIP: u64 = 0x04;
    pub const MESH_DROP: u64 = 0x05;
    pub const EPOCH_FLIP_CPE: u64 = 0x06;
    pub const FLIP_SHAPE: u64 = 0x07;
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function, used
/// here as a keyed hash so decisions are order-independent.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counts in one [`FaultStats`] group.
macro_rules! stats_counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// Injection and recovery tallies of one run. Built by
        /// [`FaultInjector::stats`]; every field is a monotonic count.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct FaultStats {
            $($(#[$doc])* pub $name: u64,)*
        }

        #[derive(Debug, Default)]
        struct LiveCounters {
            $($name: Counter,)*
        }

        impl LiveCounters {
            fn snapshot(&self) -> FaultStats {
                FaultStats { $($name: self.$name.get(),)* }
            }
        }

        impl FaultStats {
            /// Accumulates this snapshot into `reg` under `faults.*`
            /// (dots for the group separator, e.g.
            /// `faults.injected.dma_bitflip`).
            pub fn publish(&self, reg: &Registry) {
                $(reg
                    .counter(concat!("faults.", stringify!($name))
                        .replacen("_", ".", 1)
                        .as_str())
                    .add(self.$name);)*
            }

            /// Sum of all injected-fault counts.
            pub fn total_injected(&self) -> u64 {
                self.injected_dma_transient
                    + self.injected_dma_bitflip
                    + self.injected_dma_truncate
                    + self.injected_ldm_bitflip
                    + self.injected_mesh_drop
                    + self.injected_mesh_wedge
                    + self.injected_stuck_dma
            }
        }
    };
}

stats_counters! {
    /// Transient DMA failures injected.
    injected_dma_transient,
    /// DMA payload bit-flips injected.
    injected_dma_bitflip,
    /// DMA truncations injected.
    injected_dma_truncate,
    /// LDM soft-error bit-flips injected.
    injected_ldm_bitflip,
    /// Mesh broadcast words dropped.
    injected_mesh_drop,
    /// Mesh broadcasts suppressed by the wedge scenario.
    injected_mesh_wedge,
    /// DMA failures injected by the stuck-CPE scenario.
    injected_stuck_dma,
    /// ABFT checksum mismatches detected.
    detected_abft,
    /// Mesh deadlocks surfaced as structured errors.
    detected_mesh_deadlock,
    /// DMA retry budgets exhausted (surfaced as structured errors).
    detected_retry_exhausted,
    /// DMA operations that succeeded after at least one retry.
    recovered_dma_retry,
    /// CG blocks recomputed after an ABFT mismatch, then verified.
    recovered_abft_blocks,
    /// CPEs marked failed and remapped away from.
    recovered_failed_cpes,
    /// CG blocks executed in degraded mode on the surviving grid.
    recovered_degraded_blocks,
}

/// The run-time oracle built from a [`FaultSpec`]. Shared (`Arc`)
/// between the MPE-side runner, the 64 CPE threads, and the mesh
/// ports. All methods are lock-free.
#[derive(Debug)]
pub struct FaultInjector {
    spec: FaultSpec,
    epoch: AtomicU64,
    attempt: AtomicU32,
    counters: LiveCounters,
}

impl FaultInjector {
    /// Builds the shared injector for one run.
    pub fn new(spec: FaultSpec) -> Arc<Self> {
        Arc::new(FaultInjector {
            spec,
            epoch: AtomicU64::new(0),
            attempt: AtomicU32::new(0),
            counters: LiveCounters::default(),
        })
    }

    /// The plan this injector executes.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Positions the injector at a CG block (`epoch`) and recovery
    /// `attempt`. Called by the MPE-side runner between block runs —
    /// never concurrently with CPE-side decisions.
    pub fn set_epoch(&self, epoch: u64, attempt: u32) {
        self.epoch.store(epoch, Ordering::Relaxed);
        self.attempt.store(attempt, Ordering::Relaxed);
    }

    /// Current `(epoch, attempt)`.
    pub fn position(&self) -> (u64, u32) {
        (
            self.epoch.load(Ordering::Relaxed),
            self.attempt.load(Ordering::Relaxed),
        )
    }

    /// Rate decisions fold in the recovery `attempt` so a recomputed
    /// block draws fresh faults — a rate that re-fired identically on
    /// every attempt would make ABFT correction non-convergent.
    fn decide(&self, tag: u64, cpe: usize, op: u64, extra: u64, rate: u64) -> bool {
        if rate == 0 {
            return false;
        }
        let (epoch, attempt) = self.position();
        let pos = epoch.wrapping_mul(64).wrapping_add(attempt as u64);
        let h = mix(self
            .spec
            .seed
            .wrapping_add(mix(tag))
            .wrapping_add(mix(pos << 8 | cpe as u64))
            .wrapping_add(mix(op ^ extra.rotate_left(17))));
        h % MYRIAD < rate
    }

    fn draw(&self, tag: u64, cpe: usize, op: u64) -> u64 {
        let (epoch, attempt) = self.position();
        mix(self
            .spec
            .seed
            .wrapping_add(mix(tag ^ 0xD1CE))
            .wrapping_add(mix(epoch.wrapping_mul(64 + attempt as u64)))
            .wrapping_add(mix((cpe as u64) << 32 | op)))
    }

    /// Is `cpe` stuck at the current epoch?
    pub fn cpe_stuck(&self, cpe: usize) -> bool {
        match self.spec.stuck {
            Some(s) => s.cpe == cpe && self.position().0 >= s.epoch,
            None => false,
        }
    }

    /// Is `cpe` the wedged sender at the current epoch?
    pub fn cpe_wedged(&self, cpe: usize) -> bool {
        match self.spec.wedge {
            Some(w) => w.cpe == cpe && self.position().0 >= w.epoch,
            None => false,
        }
    }

    /// Consulted once per DMA execution attempt: `op` is the CPE's
    /// per-run operation index, `retry` the in-flight retry count.
    /// Returns the fault to apply, if any, and counts it.
    pub fn dma_fault(&self, cpe: usize, op: u64, retry: u32) -> Option<DmaFault> {
        if self.cpe_stuck(cpe) {
            self.counters.injected_stuck_dma.inc();
            return Some(DmaFault::Transient);
        }
        if retry < self.spec.dma_transient_max_retry
            && self.decide(
                site::DMA_TRANSIENT,
                cpe,
                op,
                retry as u64,
                self.spec.dma_transient_per_myriad,
            )
        {
            self.counters.injected_dma_transient.inc();
            return Some(DmaFault::Transient);
        }
        // Payload corruption applies to the attempt that completes;
        // the guaranteed per-epoch flip targets attempt 0 only, so a
        // recomputed block is clean and correction converges.
        let (epoch, attempt) = self.position();
        let epoch_flip = self.spec.bitflip_every_epoch
            && attempt == 0
            && cpe as u64 == mix(self.spec.seed ^ mix(site::EPOCH_FLIP_CPE ^ epoch)) % 64
            && op == 0;
        if epoch_flip
            || self.decide(
                site::DMA_BITFLIP,
                cpe,
                op,
                0,
                self.spec.dma_bitflip_per_myriad,
            )
        {
            self.counters.injected_dma_bitflip.inc();
            let shape = self.draw(site::FLIP_SHAPE, cpe, op);
            return Some(DmaFault::BitFlip {
                word: shape >> 8,
                bit: 32 + (shape & 0x1F) as u32,
            });
        }
        if self.decide(
            site::DMA_TRUNCATE,
            cpe,
            op,
            1,
            self.spec.dma_truncate_per_myriad,
        ) {
            self.counters.injected_dma_truncate.inc();
            return Some(DmaFault::Truncate {
                cut: self.draw(site::DMA_TRUNCATE, cpe, op),
            });
        }
        None
    }

    /// Consulted after a transfer lands: should an LDM soft error flip
    /// a bit of the received image? Returns `(word, bit)` selectors.
    pub fn ldm_fault(&self, cpe: usize, op: u64) -> Option<(u64, u32)> {
        if self.decide(
            site::LDM_BITFLIP,
            cpe,
            op,
            2,
            self.spec.ldm_bitflip_per_myriad,
        ) {
            self.counters.injected_ldm_bitflip.inc();
            let shape = self.draw(site::LDM_BITFLIP, cpe, op);
            Some((shape >> 8, 32 + (shape & 0x1F) as u32))
        } else {
            None
        }
    }

    /// Consulted per broadcast: should this CPE's `send`-th broadcast
    /// word be dropped (not delivered to one mate)?
    pub fn mesh_drop(&self, cpe: usize, send: u64) -> bool {
        let hit = self.decide(
            site::MESH_DROP,
            cpe,
            send,
            3,
            self.spec.mesh_drop_per_myriad,
        );
        if hit {
            self.counters.injected_mesh_drop.inc();
        }
        hit
    }

    /// Counts a broadcast suppressed by the wedge scenario.
    pub fn note_wedge_suppression(&self) {
        self.counters.injected_mesh_wedge.inc();
    }

    /// Counts `n` broadcasts suppressed by the wedge scenario at once —
    /// the batched mesh path's equivalent of `n` calls to
    /// [`FaultInjector::note_wedge_suppression`], so `faults.*` totals
    /// stay identical between the per-word and bulk transports.
    pub fn note_wedge_suppressions(&self, n: u64) {
        self.counters.injected_mesh_wedge.add(n);
    }

    /// Counts an ABFT checksum mismatch detection.
    pub fn note_abft_detected(&self) {
        self.counters.detected_abft.inc();
    }

    /// Counts a mesh deadlock surfaced as a structured error.
    pub fn note_mesh_deadlock(&self) {
        self.counters.detected_mesh_deadlock.inc();
    }

    /// Counts a DMA retry budget exhaustion.
    pub fn note_retry_exhausted(&self) {
        self.counters.detected_retry_exhausted.inc();
    }

    /// Counts a DMA operation that succeeded after `retries` > 0.
    pub fn note_dma_recovered(&self, retries: u32) {
        if retries > 0 {
            self.counters.recovered_dma_retry.inc();
        }
    }

    /// Counts a CG block recomputed after an ABFT mismatch.
    pub fn note_abft_corrected(&self) {
        self.counters.recovered_abft_blocks.inc();
    }

    /// Counts a CPE marked failed.
    pub fn note_cpe_failed(&self) {
        self.counters.recovered_failed_cpes.inc();
    }

    /// Counts a CG block executed on the surviving grid.
    pub fn note_degraded_block(&self) {
        self.counters.recovered_degraded_blocks.inc();
    }

    /// Snapshot of all injection/recovery tallies.
    pub fn stats(&self) -> FaultStats {
        self.counters.snapshot()
    }
}

/// Applies a [`DmaFault`] payload effect to a received LDM image.
/// `Transient` is the caller's business (retry); `BitFlip` flips one
/// bit of one double; `Truncate` zeroes the lost tail (the transfer
/// engine clears its landing zone before a cut transfer, so the tail
/// reads as zeros rather than stale data).
pub fn apply_payload_fault(fault: DmaFault, data: &mut [f64]) {
    if data.is_empty() {
        return;
    }
    match fault {
        DmaFault::Transient => {}
        DmaFault::BitFlip { word, bit } => {
            let i = (word % data.len() as u64) as usize;
            data[i] = f64::from_bits(data[i].to_bits() ^ (1u64 << bit));
        }
        DmaFault::Truncate { cut } => {
            let keep = (1 + (cut % (data.len() as u64)) as usize).min(data.len());
            for x in &mut data[keep..] {
                *x = 0.0;
            }
        }
    }
}

/// Flips bit `bit` of double `word % len` in `data` (the LDM
/// soft-error effect).
pub fn apply_ldm_flip(word: u64, bit: u32, data: &mut [f64]) {
    if data.is_empty() {
        return;
    }
    let i = (word % data.len() as u64) as usize;
    data[i] = f64::from_bits(data[i].to_bits() ^ (1u64 << bit));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_spec(seed: u64) -> FaultSpec {
        FaultSpec {
            dma_transient_per_myriad: 500,
            dma_bitflip_per_myriad: 300,
            dma_truncate_per_myriad: 100,
            ldm_bitflip_per_myriad: 200,
            mesh_drop_per_myriad: 50,
            ..FaultSpec::seeded(seed)
        }
    }

    #[test]
    fn decisions_are_deterministic_and_order_independent() {
        let a = FaultInjector::new(busy_spec(42));
        let b = FaultInjector::new(busy_spec(42));
        a.set_epoch(3, 1);
        b.set_epoch(3, 1);
        // Query b in reverse order: pure functions of the coordinates.
        let fwd: Vec<_> = (0..200).map(|op| a.dma_fault(7, op, 0)).collect();
        let rev: Vec<_> = (0..200)
            .rev()
            .map(|op| b.dma_fault(7, op, 0))
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        assert_eq!(fwd, rev);
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total_injected() > 0, "rates high enough to fire");
    }

    #[test]
    fn seeds_differ() {
        let a = FaultInjector::new(busy_spec(1));
        let b = FaultInjector::new(busy_spec(2));
        let fa: Vec<_> = (0..400).map(|op| a.dma_fault(0, op, 0)).collect();
        let fb: Vec<_> = (0..400).map(|op| b.dma_fault(0, op, 0)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let inj = FaultInjector::new(FaultSpec::seeded(9));
        for cpe in 0..64 {
            for op in 0..50 {
                assert_eq!(inj.dma_fault(cpe, op, 0), None);
                assert_eq!(inj.ldm_fault(cpe, op), None);
                assert!(!inj.mesh_drop(cpe, op));
            }
        }
        assert_eq!(inj.stats(), FaultStats::default());
        assert_eq!(inj.stats().total_injected(), 0);
    }

    #[test]
    fn epoch_flip_fires_once_per_epoch_on_attempt_zero_only() {
        let spec = FaultSpec {
            bitflip_every_epoch: true,
            ..FaultSpec::seeded(7)
        };
        let inj = FaultInjector::new(spec);
        for epoch in 0..16u64 {
            inj.set_epoch(epoch, 0);
            let hits: Vec<_> = (0..64)
                .filter(|&cpe| matches!(inj.dma_fault(cpe, 0, 0), Some(DmaFault::BitFlip { .. })))
                .collect();
            assert_eq!(hits.len(), 1, "epoch {epoch}: exactly one designated CPE");
            // The recomputation attempt is clean.
            inj.set_epoch(epoch, 1);
            assert!((0..64).all(|cpe| inj.dma_fault(cpe, 0, 0).is_none()));
        }
    }

    #[test]
    fn transients_respect_retry_ceiling() {
        let spec = FaultSpec {
            dma_transient_per_myriad: MYRIAD, // always
            dma_transient_max_retry: 2,
            ..FaultSpec::seeded(3)
        };
        let inj = FaultInjector::new(spec);
        assert_eq!(inj.dma_fault(5, 0, 0), Some(DmaFault::Transient));
        assert_eq!(inj.dma_fault(5, 0, 1), Some(DmaFault::Transient));
        assert_eq!(inj.dma_fault(5, 0, 2), None, "retry 2 clears the ceiling");
    }

    #[test]
    fn recovery_attempts_redraw_rate_faults() {
        // A rate-based decision must not re-fire identically on every
        // recompute attempt, or correction could never converge.
        let inj = FaultInjector::new(busy_spec(12));
        let per_attempt: Vec<Vec<Option<DmaFault>>> = (0..4u32)
            .map(|attempt| {
                inj.set_epoch(5, attempt);
                (0..64).map(|cpe| inj.dma_fault(cpe, 0, 0)).collect()
            })
            .collect();
        assert!(
            per_attempt.windows(2).any(|w| w[0] != w[1]),
            "attempts must draw independently"
        );
    }

    #[test]
    fn stuck_cpe_never_clears() {
        let spec = FaultSpec {
            stuck: Some(StuckSpec { cpe: 11, epoch: 2 }),
            ..FaultSpec::seeded(4)
        };
        let inj = FaultInjector::new(spec);
        inj.set_epoch(1, 0);
        assert_eq!(inj.dma_fault(11, 0, 9), None, "not yet stuck");
        inj.set_epoch(2, 0);
        for retry in 0..10 {
            assert_eq!(inj.dma_fault(11, 0, retry), Some(DmaFault::Transient));
        }
        assert_eq!(inj.dma_fault(12, 0, 0), None, "other CPEs unaffected");
        assert!(inj.cpe_stuck(11));
    }

    #[test]
    fn wedge_targets_one_cpe_from_its_epoch() {
        let spec = FaultSpec {
            wedge: Some(WedgeSpec { cpe: 20, epoch: 1 }),
            ..FaultSpec::seeded(5)
        };
        let inj = FaultInjector::new(spec);
        inj.set_epoch(0, 0);
        assert!(!inj.cpe_wedged(20));
        inj.set_epoch(1, 0);
        assert!(inj.cpe_wedged(20));
        assert!(!inj.cpe_wedged(21));
    }

    #[test]
    fn payload_faults_apply_deterministically() {
        let mut a = vec![1.0f64; 8];
        apply_payload_fault(DmaFault::BitFlip { word: 10, bit: 63 }, &mut a);
        assert_eq!(a[2], -1.0, "sign flip of word 10 % 8");
        let mut b = vec![2.0f64; 8];
        apply_payload_fault(DmaFault::Truncate { cut: 11 }, &mut b);
        assert_eq!(&b[..4], &[2.0; 4]);
        assert_eq!(&b[4..], &[0.0; 4], "tail beyond the cut is lost");
        let mut c = vec![1.5f64; 4];
        apply_ldm_flip(1, 51, &mut c);
        assert_ne!(c[1], 1.5);
    }

    #[test]
    fn stats_publish_under_faults_namespace() {
        let inj = FaultInjector::new(busy_spec(6));
        for op in 0..100 {
            let _ = inj.dma_fault(3, op, 0);
        }
        inj.note_abft_detected();
        inj.note_abft_corrected();
        let reg = Registry::new();
        inj.stats().publish(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("faults.detected.abft"), Some(1));
        assert_eq!(snap.counter("faults.recovered.abft_blocks"), Some(1));
        assert!(snap.counter("faults.injected.dma_transient").is_some());
    }
}
