//! Register identifiers.

use sw_arch::consts::VREG_COUNT;

/// Number of integer scratch registers the kernel model exposes.
pub const IREG_COUNT: usize = 8;

/// One of the 32 256-bit vector registers of a CPE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VReg(pub u8);

impl VReg {
    /// Index into the register file.
    #[inline]
    pub fn idx(self) -> usize {
        debug_assert!(
            (self.0 as usize) < VREG_COUNT,
            "vreg {} out of range",
            self.0
        );
        self.0 as usize
    }
}

/// One of the integer registers available to the kernel model (address
/// arithmetic, loop counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IReg(pub u8);

impl IReg {
    /// Index into the integer register file.
    #[inline]
    pub fn idx(self) -> usize {
        debug_assert!(
            (self.0 as usize) < IREG_COUNT,
            "ireg {} out of range",
            self.0
        );
        self.0 as usize
    }
}

impl std::fmt::Display for VReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl std::fmt::Display for IReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}
