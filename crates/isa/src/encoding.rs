//! Fixed 32-bit binary encoding of the modelled instruction set.
//!
//! The SW RISC family uses fixed-width 32-bit instruction words; this
//! module defines a concrete encoding for the modelled subset so that
//! code-size accounting ([`crate::looped::icache_footprint_bytes`]) is
//! grounded and kernels can be persisted/compared as artifacts.
//!
//! Layout (MSB → LSB):
//!
//! ```text
//! [31:26] opcode
//! [25:21] rd   (vector or integer destination)
//! [20:16] ra   (first source)
//! [15:11] rb   (second source)
//! [10: 6] rc   (third source, vmad addend)
//! [ 5: 0] unused
//! ```
//!
//! Memory and branch forms replace `[15:0]` with a signed 13-bit
//! displacement / unsigned 16-bit target:
//!
//! ```text
//! mem:    [31:26] opcode  [25:21] rd/rs  [20:16] base  [15:0] disp (i16, doubles)
//! branch: [31:26] opcode  [25:21] rs     [20:16] 0     [15:0] target (u16, instr index)
//! ```
//!
//! The displacement field bounds LDM offsets at ±32767 doubles — far
//! beyond the 8192-double scratch pad — and branch targets at 65535,
//! comfortably above any loop-form kernel (the icache caps programs at
//! 4096 instructions anyway).

use crate::instr::{Instr, Net};
use crate::regs::{IReg, VReg};

/// Encoding/decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A displacement outside the signed 16-bit field.
    DispOverflow(i64),
    /// A branch target outside the unsigned 16-bit field.
    TargetOverflow(usize),
    /// An unknown opcode met while decoding.
    BadOpcode(u8),
}

// Opcodes. Communication loads carry the network in bit 0 of the
// opcode pair (row = even, col = odd).
const OP_VMAD: u8 = 0x01;
const OP_VLDD: u8 = 0x02;
const OP_VSTD: u8 = 0x03;
const OP_LDDE: u8 = 0x04;
const OP_VLDR_ROW: u8 = 0x06;
const OP_VLDR_COL: u8 = 0x07;
const OP_LDDEC_ROW: u8 = 0x08;
const OP_LDDEC_COL: u8 = 0x09;
const OP_GETR: u8 = 0x0a;
const OP_GETC: u8 = 0x0b;
const OP_VCLR: u8 = 0x0c;
const OP_ADDL: u8 = 0x0d;
const OP_SETL: u8 = 0x0e;
const OP_BNE: u8 = 0x0f;
const OP_NOP: u8 = 0x00;

fn mem_word(op: u8, r: u8, base: u8, disp: i64) -> Result<u32, CodecError> {
    let d = i16::try_from(disp).map_err(|_| CodecError::DispOverflow(disp))?;
    Ok(((op as u32) << 26) | ((r as u32) << 21) | ((base as u32) << 16) | (d as u16 as u32))
}

/// Encodes one instruction.
pub fn encode(i: &Instr) -> Result<u32, CodecError> {
    Ok(match *i {
        Instr::Vmad { a, b, c, d } => {
            ((OP_VMAD as u32) << 26)
                | ((d.0 as u32) << 21)
                | ((a.0 as u32) << 16)
                | ((b.0 as u32) << 11)
                | ((c.0 as u32) << 6)
        }
        Instr::Vldd { d, base, off } => mem_word(OP_VLDD, d.0, base.0, off)?,
        Instr::Vstd { s, base, off } => mem_word(OP_VSTD, s.0, base.0, off)?,
        Instr::Ldde { d, base, off } => mem_word(OP_LDDE, d.0, base.0, off)?,
        Instr::Vldr { d, base, off, net } => {
            let op = if net == Net::Row {
                OP_VLDR_ROW
            } else {
                OP_VLDR_COL
            };
            mem_word(op, d.0, base.0, off)?
        }
        Instr::Lddec { d, base, off, net } => {
            let op = if net == Net::Row {
                OP_LDDEC_ROW
            } else {
                OP_LDDEC_COL
            };
            mem_word(op, d.0, base.0, off)?
        }
        Instr::Getr { d } => ((OP_GETR as u32) << 26) | ((d.0 as u32) << 21),
        Instr::Getc { d } => ((OP_GETC as u32) << 26) | ((d.0 as u32) << 21),
        Instr::Vclr { d } => ((OP_VCLR as u32) << 26) | ((d.0 as u32) << 21),
        Instr::Addl { d, s, imm } => mem_word(OP_ADDL, d.0, s.0, imm)?,
        Instr::Setl { d, imm } => mem_word(OP_SETL, d.0, 0, imm)?,
        Instr::Bne { s, target } => {
            let t = u16::try_from(target).map_err(|_| CodecError::TargetOverflow(target))?;
            ((OP_BNE as u32) << 26) | ((s.0 as u32) << 21) | (t as u32)
        }
        Instr::Nop => (OP_NOP as u32) << 26,
    })
}

/// Decodes one instruction word.
pub fn decode(w: u32) -> Result<Instr, CodecError> {
    let op = (w >> 26) as u8;
    let rd = ((w >> 21) & 0x1f) as u8;
    let ra = ((w >> 16) & 0x1f) as u8;
    let rb = ((w >> 11) & 0x1f) as u8;
    let rc = ((w >> 6) & 0x1f) as u8;
    let disp = (w & 0xffff) as u16 as i16 as i64;
    let target = (w & 0xffff) as usize;
    Ok(match op {
        OP_VMAD => Instr::Vmad {
            a: VReg(ra),
            b: VReg(rb),
            c: VReg(rc),
            d: VReg(rd),
        },
        OP_VLDD => Instr::Vldd {
            d: VReg(rd),
            base: IReg(ra),
            off: disp,
        },
        OP_VSTD => Instr::Vstd {
            s: VReg(rd),
            base: IReg(ra),
            off: disp,
        },
        OP_LDDE => Instr::Ldde {
            d: VReg(rd),
            base: IReg(ra),
            off: disp,
        },
        OP_VLDR_ROW => Instr::Vldr {
            d: VReg(rd),
            base: IReg(ra),
            off: disp,
            net: Net::Row,
        },
        OP_VLDR_COL => Instr::Vldr {
            d: VReg(rd),
            base: IReg(ra),
            off: disp,
            net: Net::Col,
        },
        OP_LDDEC_ROW => Instr::Lddec {
            d: VReg(rd),
            base: IReg(ra),
            off: disp,
            net: Net::Row,
        },
        OP_LDDEC_COL => Instr::Lddec {
            d: VReg(rd),
            base: IReg(ra),
            off: disp,
            net: Net::Col,
        },
        OP_GETR => Instr::Getr { d: VReg(rd) },
        OP_GETC => Instr::Getc { d: VReg(rd) },
        OP_VCLR => Instr::Vclr { d: VReg(rd) },
        OP_ADDL => Instr::Addl {
            d: IReg(rd),
            s: IReg(ra),
            imm: disp,
        },
        OP_SETL => Instr::Setl {
            d: IReg(rd),
            imm: disp,
        },
        OP_BNE => Instr::Bne {
            s: IReg(rd),
            target,
        },
        OP_NOP => Instr::Nop,
        other => return Err(CodecError::BadOpcode(other)),
    })
}

/// Encodes a whole stream (little-endian words).
pub fn assemble(prog: &[Instr]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(prog.len() * 4);
    for i in prog {
        out.extend_from_slice(&encode(i)?.to_le_bytes());
    }
    Ok(out)
}

/// Decodes a byte image back into a stream.
pub fn disassemble(bytes: &[u8]) -> Result<Vec<Instr>, CodecError> {
    assert!(
        bytes.len().is_multiple_of(4),
        "instruction image must be whole 32-bit words"
    );
    bytes
        .chunks_exact(4)
        .map(|c| decode(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
    use crate::looped::gen_block_kernel_looped;

    fn all_forms() -> Vec<Instr> {
        vec![
            Instr::Vmad {
                a: VReg(3),
                b: VReg(7),
                c: VReg(31),
                d: VReg(16),
            },
            Instr::Vldd {
                d: VReg(1),
                base: IReg(0),
                off: 8188,
            },
            Instr::Vstd {
                s: VReg(2),
                base: IReg(0),
                off: -4,
            },
            Instr::Ldde {
                d: VReg(8),
                base: IReg(1),
                off: 8000,
            },
            Instr::Vldr {
                d: VReg(0),
                base: IReg(0),
                off: 16,
                net: Net::Row,
            },
            Instr::Vldr {
                d: VReg(0),
                base: IReg(0),
                off: 16,
                net: Net::Col,
            },
            Instr::Lddec {
                d: VReg(4),
                base: IReg(0),
                off: 3000,
                net: Net::Col,
            },
            Instr::Lddec {
                d: VReg(4),
                base: IReg(0),
                off: 3000,
                net: Net::Row,
            },
            Instr::Getr { d: VReg(5) },
            Instr::Getc { d: VReg(6) },
            Instr::Vclr { d: VReg(13) },
            Instr::Addl {
                d: IReg(6),
                s: IReg(6),
                imm: -96,
            },
            Instr::Setl {
                d: IReg(3),
                imm: 24,
            },
            Instr::Bne {
                s: IReg(3),
                target: 65535,
            },
            Instr::Nop,
        ]
    }

    #[test]
    fn roundtrip_every_form() {
        for i in all_forms() {
            let w = encode(&i).unwrap();
            assert_eq!(decode(w).unwrap(), i, "word {w:#010x}");
        }
    }

    #[test]
    fn roundtrip_generated_kernels() {
        let cfg = BlockKernelCfg {
            pm: 16,
            pn: 8,
            pk: 16,
            a_src: Operand::LdmBcast(Net::Row),
            b_src: Operand::Recv(Net::Col),
            a_base: 0,
            b_base: 2048,
            c_base: 4096,
            alpha_addr: 8000,
        };
        for prog in [
            gen_block_kernel(&cfg, KernelStyle::Scheduled),
            gen_block_kernel(&cfg, KernelStyle::Naive),
            gen_block_kernel_looped(&cfg, KernelStyle::Scheduled, 2),
        ] {
            let img = assemble(&prog).unwrap();
            assert_eq!(img.len(), prog.len() * 4);
            assert_eq!(disassemble(&img).unwrap(), prog);
        }
    }

    #[test]
    fn overflow_rejected() {
        let too_far = Instr::Vldd {
            d: VReg(0),
            base: IReg(0),
            off: 40000,
        };
        assert!(matches!(
            encode(&too_far),
            Err(CodecError::DispOverflow(40000))
        ));
        let too_long = Instr::Bne {
            s: IReg(0),
            target: 70000,
        };
        assert!(matches!(
            encode(&too_long),
            Err(CodecError::TargetOverflow(70000))
        ));
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(matches!(
            decode(0x3f << 26),
            Err(CodecError::BadOpcode(0x3f))
        ));
    }

    #[test]
    fn negative_displacements_survive() {
        let i = Instr::Addl {
            d: IReg(1),
            s: IReg(1),
            imm: -1,
        };
        assert_eq!(decode(encode(&i).unwrap()).unwrap(), i);
    }
}
