//! Loop-form kernel generation under the 16 KB instruction cache.
//!
//! The generators in [`crate::kernels`] fully unroll the k-loop, which
//! is convenient for analysis but unreal on hardware: at the paper's
//! production shape the unrolled stream is ≈100 KB of code against the
//! CPE's 16 KB instruction cache (§II). The real kernel keeps the
//! Algorithm 3 pair pattern inside a branch loop.
//!
//! [`gen_block_kernel_looped`] emits that form: per register tile, a
//! pointer-based k-loop whose body covers `unroll` k-iterations, with
//! the pointer updates, the trip-count decrement and the backward
//! branch folded into the free P1 slots of the pair schedule — so the
//! steady state stays at 16 cycles per k-iteration plus only the
//! taken-branch bubble per `unroll` iterations.
//!
//! The loop form is bitwise-equivalent to the unrolled form (tests
//! below) and within a few percent of its cycle count; the timing model
//! uses the unrolled count, which over-approximates real hardware by
//! less than the branch bubble (SW loop branches are trivially
//! predicted).

// Register arrays are index-coupled to the instruction encoding; indexed
// loops are clearer than iterator chains here.
#![allow(clippy::needless_range_loop)]

use crate::instr::{Instr, Net};
use crate::kernels::{BlockKernelCfg, KernelStyle, Operand};
use crate::regs::{IReg, VReg};
use sw_arch::consts::{ICACHE_BYTES, INSTR_BYTES};

// Register allocation mirrors `kernels.rs`.
const RA: [VReg; 4] = [VReg(0), VReg(1), VReg(2), VReg(3)];
const RB: [VReg; 4] = [VReg(4), VReg(5), VReg(6), VReg(7)];
const VALPHA: VReg = VReg(8);
const TMP: [VReg; 4] = [VReg(9), VReg(10), VReg(11), VReg(12)];
const VZERO: VReg = VReg(13);
#[inline]
fn rc(i: usize, j: usize) -> VReg {
    VReg((16 + 4 * i + j) as u8)
}

/// Zero-valued base register for absolute (epilogue) addressing.
const BASE: IReg = IReg(0);
/// Walks the A panel (advances by `pm` doubles per k).
const A_PTR: IReg = IReg(1);
/// Walks the B panel (advances by 1 double per k).
const B_PTR: IReg = IReg(2);
/// Loop trip counter.
const KCNT: IReg = IReg(3);

/// Encoded code size of a stream, in bytes.
pub fn icache_footprint_bytes(prog: &[Instr]) -> usize {
    prog.len() * INSTR_BYTES
}

/// True when the stream fits the CPE's 16 KB instruction cache.
pub fn fits_icache(prog: &[Instr]) -> bool {
    icache_footprint_bytes(prog) <= ICACHE_BYTES
}

/// Generates the loop-form block kernel. `unroll` k-iterations share
/// one backward branch; `cfg.pk` must be a multiple of `unroll`.
pub fn gen_block_kernel_looped(
    cfg: &BlockKernelCfg,
    style: KernelStyle,
    unroll: usize,
) -> Vec<Instr> {
    cfg.validate().expect("invalid kernel configuration");
    assert!(unroll >= 1, "unroll must be at least 1");
    assert!(
        cfg.pk.is_multiple_of(unroll),
        "pk = {} must be a multiple of the unroll factor {unroll}",
        cfg.pk
    );

    let mut prog = Vec::new();
    prog.push(Instr::Setl { d: BASE, imm: 0 });
    prog.push(Instr::Ldde {
        d: VALPHA,
        base: BASE,
        off: cfg.alpha_addr as i64,
    });
    prog.push(Instr::Vclr { d: VZERO });
    for r0 in (0..cfg.pm).step_by(16) {
        for j0 in (0..cfg.pn).step_by(4) {
            match style {
                KernelStyle::Naive => gen_tile_naive_looped(cfg, r0, j0, &mut prog),
                KernelStyle::Scheduled => gen_tile_scheduled_looped(cfg, r0, j0, unroll, &mut prog),
            }
            gen_tile_epilogue(cfg, r0, j0, &mut prog);
        }
    }
    prog
}

/// Pointer-relative A word load: `A_PTR` points at the first row of
/// this tile's current k-column.
fn load_a(cfg: &BlockKernelCfg, d: VReg, off: i64, i: usize) -> Instr {
    let off = off + 4 * i as i64;
    match cfg.a_src {
        Operand::Ldm => Instr::Vldd {
            d,
            base: A_PTR,
            off,
        },
        Operand::LdmBcast(net) => Instr::Vldr {
            d,
            base: A_PTR,
            off,
            net,
        },
        Operand::Recv(Net::Row) => Instr::Getr { d },
        Operand::Recv(Net::Col) => Instr::Getc { d },
    }
}

/// Pointer-relative B scalar load: `B_PTR` points at element
/// `(k, j0)`.
fn load_b(cfg: &BlockKernelCfg, d: VReg, off: i64, j: usize) -> Instr {
    let off = off + (j * cfg.pk) as i64;
    match cfg.b_src {
        Operand::Ldm => Instr::Ldde {
            d,
            base: B_PTR,
            off,
        },
        Operand::LdmBcast(net) => Instr::Lddec {
            d,
            base: B_PTR,
            off,
            net,
        },
        Operand::Recv(Net::Row) => Instr::Getr { d },
        Operand::Recv(Net::Col) => Instr::Getc { d },
    }
}

fn tile_pointer_setup(
    cfg: &BlockKernelCfg,
    r0: usize,
    j0: usize,
    trips: usize,
    prog: &mut Vec<Instr>,
) {
    prog.push(Instr::Setl {
        d: A_PTR,
        imm: (cfg.a_base + r0) as i64,
    });
    prog.push(Instr::Setl {
        d: B_PTR,
        imm: (cfg.b_base + j0 * cfg.pk) as i64,
    });
    prog.push(Instr::Setl {
        d: KCNT,
        imm: trips as i64,
    });
}

/// Naive loop: one k-iteration per trip, loads next to uses, explicit
/// pointer bumps and the backward branch at the end — exactly what a
/// straightforward compiler emits.
fn gen_tile_naive_looped(cfg: &BlockKernelCfg, r0: usize, j0: usize, prog: &mut Vec<Instr>) {
    tile_pointer_setup(cfg, r0, j0, cfg.pk, prog);
    // Peeled k = 0 (accumulator init from VZERO); the loop body proper
    // covers k = 1..pk.
    for (i, &ra) in RA.iter().enumerate() {
        prog.push(load_a(cfg, ra, 0, i));
    }
    for j in 0..4 {
        prog.push(load_b(cfg, RB[j], 0, j));
        for i in 0..4 {
            prog.push(Instr::Vmad {
                a: RA[i],
                b: RB[j],
                c: VZERO,
                d: rc(i, j),
            });
        }
    }
    prog.push(Instr::Addl {
        d: A_PTR,
        s: A_PTR,
        imm: cfg.pm as i64,
    });
    prog.push(Instr::Addl {
        d: B_PTR,
        s: B_PTR,
        imm: 1,
    });
    prog.push(Instr::Addl {
        d: KCNT,
        s: KCNT,
        imm: -1,
    });
    // Loop body: k = 1..pk.
    let head = prog.len();
    for (i, &ra) in RA.iter().enumerate() {
        prog.push(load_a(cfg, ra, 0, i));
    }
    for j in 0..4 {
        prog.push(load_b(cfg, RB[j], 0, j));
        for i in 0..4 {
            prog.push(Instr::Vmad {
                a: RA[i],
                b: RB[j],
                c: rc(i, j),
                d: rc(i, j),
            });
        }
    }
    prog.push(Instr::Addl {
        d: A_PTR,
        s: A_PTR,
        imm: cfg.pm as i64,
    });
    prog.push(Instr::Addl {
        d: B_PTR,
        s: B_PTR,
        imm: 1,
    });
    prog.push(Instr::Addl {
        d: KCNT,
        s: KCNT,
        imm: -1,
    });
    prog.push(Instr::Bne {
        s: KCNT,
        target: head,
    });
}

/// The Algorithm 3 `vmad` order (same as the unrolled generator).
const VMAD_ORDER: [(usize, usize); 16] = [
    (0, 0),
    (0, 1),
    (1, 0),
    (1, 1),
    (0, 2),
    (2, 0),
    (0, 3),
    (3, 0),
    (1, 2),
    (1, 3),
    (2, 1),
    (3, 1),
    (2, 2),
    (2, 3),
    (3, 2),
    (3, 3),
];

/// Scheduled loop: `unroll` Algorithm 3 iterations per trip. Within
/// the body, k-offsets grow (`u·pm` for A, `u` for B); the pointer
/// bumps sit in the `addl` slots of the *last* unrolled iteration, so
/// the next-k loads of that iteration (pairs 7+) already use the new
/// pointers with wrapped offsets, and the trip decrement plus the
/// backward branch occupy two of its `nop` slots.
fn gen_tile_scheduled_looped(
    cfg: &BlockKernelCfg,
    r0: usize,
    j0: usize,
    unroll: usize,
    prog: &mut Vec<Instr>,
) {
    let trips = cfg.pk / unroll;
    // The final trip is peeled so the loop body can unconditionally
    // software-pipeline the next iteration's loads: inside the loop
    // every "next k" exists, and the peeled tail replaces the dangling
    // next-loads with nops exactly like the unrolled generator. The
    // peel is also what keeps broadcaster/receiver mesh transcripts
    // identical to the unrolled form.
    tile_pointer_setup(cfg, r0, j0, trips - 1, prog);
    // Pre-zero the accumulators (the loop body cannot special-case
    // k = 0 the way the unrolled generator does).
    for i in 0..4 {
        for j in 0..4 {
            prog.push(Instr::Vclr { d: rc(i, j) });
        }
    }
    // Preload A0..A2 / B0..B2 of k = 0.
    for i in 0..3 {
        prog.push(load_a(cfg, RA[i], 0, i));
    }
    for j in 0..3 {
        prog.push(load_b(cfg, RB[j], 0, j));
    }
    // Steady-state loop: trips - 1 bodies (skipped entirely when the
    // tile has a single trip).
    if trips > 1 {
        let head = prog.len();
        emit_body(cfg, unroll, false, Some(head), prog);
    }
    // Peeled final trip.
    emit_body(cfg, unroll, true, None, prog);
}

/// Emits one `unroll`-iteration body of the scheduled loop.
///
/// `final_trip` suppresses the next-k loads of the last unrolled
/// iteration (there is no next k) and the loop-control instructions;
/// `loop_head` is the `bne` target for the steady-state body.
fn emit_body(
    cfg: &BlockKernelCfg,
    unroll: usize,
    final_trip: bool,
    loop_head: Option<usize>,
    prog: &mut Vec<Instr>,
) {
    for u in 0..unroll {
        let last_u = u + 1 == unroll;
        // Offsets of the current iteration relative to the body-entry
        // pointers.
        let a_cur = (u * cfg.pm) as i64;
        let b_cur = u as i64;
        // Offsets of the next iteration: on the last unrolled
        // iteration the pointers have already advanced by a full body
        // (pairs 3–4), so the next-k offsets wrap to 0.
        let (a_next, b_next) = if last_u {
            (0, 0)
        } else {
            (a_cur + cfg.pm as i64, b_cur + 1)
        };
        let skip_next = final_trip && last_u;
        for (pair, &(ai, bj)) in VMAD_ORDER.iter().enumerate() {
            prog.push(Instr::Vmad {
                a: RA[ai],
                b: RB[bj],
                c: rc(ai, bj),
                d: rc(ai, bj),
            });
            let p1 = match pair {
                0 => load_a(cfg, RA[3], a_cur, 3),
                1 => load_b(cfg, RB[3], b_cur, 3),
                2 if last_u && !final_trip => Instr::Addl {
                    d: A_PTR,
                    s: A_PTR,
                    imm: (unroll * cfg.pm) as i64,
                },
                3 if last_u && !final_trip => Instr::Addl {
                    d: B_PTR,
                    s: B_PTR,
                    imm: unroll as i64,
                },
                4 if last_u && !final_trip => Instr::Addl {
                    d: KCNT,
                    s: KCNT,
                    imm: -1,
                },
                6 if !skip_next => load_a(cfg, RA[0], a_next, 0),
                8 if !skip_next => load_b(cfg, RB[0], b_next, 0),
                9 if !skip_next => load_a(cfg, RA[1], a_next, 1),
                11 if !skip_next => load_b(cfg, RB[1], b_next, 1),
                13 if !skip_next => load_a(cfg, RA[2], a_next, 2),
                14 if !skip_next => load_b(cfg, RB[2], b_next, 2),
                15 if last_u && !final_trip => Instr::Bne {
                    s: KCNT,
                    target: loop_head.expect("steady-state body has a head"),
                },
                _ => Instr::Nop,
            };
            prog.push(p1);
        }
    }
}

/// Same α-epilogue as the unrolled generator (absolute addressing).
fn gen_tile_epilogue(cfg: &BlockKernelCfg, r0: usize, j0: usize, prog: &mut Vec<Instr>) {
    let c_off = |r: usize, j: usize| (cfg.c_base + (j0 + j) * cfg.pm + r0 + r) as i64;
    for j in 0..4 {
        for i in 0..4 {
            prog.push(Instr::Vldd {
                d: TMP[i],
                base: BASE,
                off: c_off(4 * i, j),
            });
        }
        for i in 0..4 {
            prog.push(Instr::Vmad {
                a: rc(i, j),
                b: VALPHA,
                c: TMP[i],
                d: TMP[i],
            });
        }
        for i in 0..4 {
            prog.push(Instr::Vstd {
                s: TMP[i],
                base: BASE,
                off: c_off(4 * i, j),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::NullComm;
    use crate::kernels::gen_block_kernel;
    use crate::machine::Machine;

    fn cfg(pm: usize, pn: usize, pk: usize) -> BlockKernelCfg {
        BlockKernelCfg {
            pm,
            pn,
            pk,
            a_src: Operand::Ldm,
            b_src: Operand::Ldm,
            a_base: 0,
            b_base: 4096,
            c_base: 6144,
            alpha_addr: 8000,
        }
    }

    fn fill(alpha: f64, c: &BlockKernelCfg) -> Vec<f64> {
        let mut x = 0.4321f64;
        let mut ldm = vec![0.0; 8192];
        for v in ldm.iter_mut().take(c.c_base + c.pm * c.pn) {
            x = (x * 877.0 + 0.123).fract() - 0.5;
            *v = x;
        }
        ldm[c.alpha_addr] = alpha;
        ldm
    }

    #[test]
    fn looped_scheduled_matches_unrolled_bitwise() {
        for unroll in [1usize, 2, 4, 8] {
            let c = cfg(16, 8, 16);
            let mut l1 = fill(1.5, &c);
            let mut l2 = l1.clone();
            let mut comm = NullComm;
            Machine::new(&mut l1, &mut comm).run(&gen_block_kernel(&c, KernelStyle::Scheduled));
            Machine::new(&mut l2, &mut comm).run(&gen_block_kernel_looped(
                &c,
                KernelStyle::Scheduled,
                unroll,
            ));
            assert_eq!(l1, l2, "unroll {unroll} diverged");
        }
    }

    #[test]
    fn looped_naive_matches_unrolled_bitwise() {
        let c = cfg(32, 12, 32);
        let mut l1 = fill(-0.75, &c);
        let mut l2 = l1.clone();
        let mut comm = NullComm;
        Machine::new(&mut l1, &mut comm).run(&gen_block_kernel(&c, KernelStyle::Naive));
        Machine::new(&mut l2, &mut comm).run(&gen_block_kernel_looped(&c, KernelStyle::Naive, 1));
        assert_eq!(l1, l2);
    }

    #[test]
    fn production_unrolled_busts_icache_looped_fits() {
        let c = cfg(16, 32, 96);
        let unrolled = gen_block_kernel(&c, KernelStyle::Scheduled);
        let looped = gen_block_kernel_looped(&c, KernelStyle::Scheduled, 4);
        assert!(
            !fits_icache(&unrolled),
            "unrolled stream is {} B — expected to exceed the 16 KB icache",
            icache_footprint_bytes(&unrolled)
        );
        assert!(
            fits_icache(&looped),
            "looped stream is {} B — must fit the 16 KB icache",
            icache_footprint_bytes(&looped)
        );
    }

    #[test]
    fn looped_scheduled_cycle_overhead_is_small() {
        let c = cfg(16, 32, 96);
        let mut comm = NullComm;
        let mut l1 = fill(1.0, &c);
        let mut l2 = l1.clone();
        let ru =
            Machine::new(&mut l1, &mut comm).run(&gen_block_kernel(&c, KernelStyle::Scheduled));
        let rl = Machine::new(&mut l2, &mut comm).run(&gen_block_kernel_looped(
            &c,
            KernelStyle::Scheduled,
            4,
        ));
        let overhead = rl.cycles as f64 / ru.cycles as f64;
        assert!(
            (1.0..1.15).contains(&overhead),
            "looped/unrolled cycles = {overhead:.3} (looped {} vs unrolled {})",
            rl.cycles,
            ru.cycles
        );
        assert_eq!(ru.vmads, rl.vmads);
    }

    #[test]
    fn looped_comm_transcript_matches_unrolled() {
        let c = BlockKernelCfg {
            a_src: Operand::LdmBcast(Net::Row),
            b_src: Operand::LdmBcast(Net::Col),
            ..cfg(16, 8, 16)
        };
        let mut c1 = crate::comm::ScriptedComm::default();
        let mut c2 = crate::comm::ScriptedComm::default();
        let mut l1 = fill(1.0, &c);
        let mut l2 = l1.clone();
        Machine::new(&mut l1, &mut c1).run(&gen_block_kernel(&c, KernelStyle::Scheduled));
        Machine::new(&mut l2, &mut c2).run(&gen_block_kernel_looped(&c, KernelStyle::Scheduled, 2));
        assert_eq!(c1.row_out, c2.row_out);
        assert_eq!(c1.col_out, c2.col_out);
    }

    #[test]
    #[should_panic]
    fn unroll_must_divide_pk() {
        let c = cfg(16, 8, 16);
        let _ = gen_block_kernel_looped(&c, KernelStyle::Scheduled, 3);
    }
}
