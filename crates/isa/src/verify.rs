//! Static verification of kernel streams.
//!
//! Generated and hand-scheduled kernels are checked before they ever
//! execute: [`check`] walks a stream and reports structural problems
//! that on real hardware would be silent corruption, a wedged mesh, or
//! an icache thrash. The generator tests run every emitted kernel
//! through it.

use crate::instr::{Instr, Net};
use crate::looped::{fits_icache, icache_footprint_bytes};
use sw_arch::consts::VREG_COUNT;

/// One verification finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Issue {
    /// A vector register index ≥ 32.
    BadVReg {
        /// Instruction index.
        at: usize,
        /// Offending register index.
        reg: u8,
    },
    /// A vector memory access with a statically-known misaligned
    /// address (base register never written ⇒ offset must be 256-bit
    /// aligned).
    Misaligned {
        /// Instruction index.
        at: usize,
        /// The static offset.
        off: i64,
    },
    /// A register is read before any instruction writes it (only
    /// flagged for the kernel's scratch conventions, v0–v15; reading
    /// preserved registers is legal).
    ReadBeforeWrite {
        /// Instruction index.
        at: usize,
        /// Offending register index.
        reg: u8,
    },
    /// A branch targets an instruction index outside the stream.
    BadBranchTarget {
        /// Instruction index.
        at: usize,
        /// The bogus target.
        target: usize,
    },
    /// The stream exceeds the 16 KB instruction cache.
    IcacheOverflow {
        /// Encoded size in bytes.
        bytes: usize,
    },
    /// Broadcasts and receives on one network inside a single
    /// (branch-free) stream — a CPE never receives its own broadcast,
    /// so a stream that does both on the same network in the same role
    /// is almost certainly a role-assignment bug.
    MixedCommRole {
        /// The network used both ways.
        net: Net,
    },
}

/// Statically checks a kernel stream. An empty result means the stream
/// passes.
pub fn check(prog: &[Instr]) -> Vec<Issue> {
    let mut issues = Vec::new();
    let mut vwritten = [false; VREG_COUNT];
    let has_branch = prog.iter().any(|i| matches!(i, Instr::Bne { .. }));
    let mut sent = [false; 2];
    let mut received = [false; 2];

    for (at, instr) in prog.iter().enumerate() {
        // Register indices.
        for r in instr.vsrcs().into_iter().chain(instr.vdst()) {
            if r.0 as usize >= VREG_COUNT {
                issues.push(Issue::BadVReg { at, reg: r.0 });
            }
        }
        // Read-before-write on the scratch registers (v0..v16). With
        // branches the linear scan over-approximates; skip then.
        if !has_branch {
            for r in instr.vsrcs() {
                if (r.0 as usize) < 16 && !vwritten[r.idx()] {
                    issues.push(Issue::ReadBeforeWrite { at, reg: r.0 });
                }
            }
            if let Some(d) = instr.vdst() {
                if (d.0 as usize) < VREG_COUNT {
                    vwritten[d.idx()] = true;
                }
            }
        }
        // Static alignment (only decidable when the base register is
        // the conventional zero register r0 and never reassigned —
        // cheap and catches the absolute-addressing generators).
        match *instr {
            Instr::Vldd { base, off, .. }
            | Instr::Vstd { base, off, .. }
            | Instr::Vldr { base, off, .. }
                if base.0 == 0 && off % 4 != 0 =>
            {
                issues.push(Issue::Misaligned { at, off });
            }
            Instr::Bne { target, .. } if target >= prog.len() => {
                issues.push(Issue::BadBranchTarget { at, target });
            }
            _ => {}
        }
        // Communication roles.
        match instr {
            Instr::Vldr { net, .. } | Instr::Lddec { net, .. } => {
                sent[net_idx(*net)] = true;
            }
            Instr::Getr { .. } => received[0] = true,
            Instr::Getc { .. } => received[1] = true,
            _ => {}
        }
    }
    for (i, net) in [(0, Net::Row), (1, Net::Col)] {
        if sent[i] && received[i] {
            issues.push(Issue::MixedCommRole { net });
        }
    }
    if !fits_icache(prog) {
        issues.push(Issue::IcacheOverflow {
            bytes: icache_footprint_bytes(prog),
        });
    }
    issues
}

fn net_idx(net: Net) -> usize {
    match net {
        Net::Row => 0,
        Net::Col => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
    use crate::looped::gen_block_kernel_looped;
    use crate::regs::{IReg, VReg};
    use crate::sched::list_schedule;

    fn cfg(a: Operand, b: Operand) -> BlockKernelCfg {
        BlockKernelCfg {
            pm: 16,
            pn: 8,
            pk: 16,
            a_src: a,
            b_src: b,
            a_base: 0,
            b_base: 2048,
            c_base: 4096,
            alpha_addr: 8000,
        }
    }

    #[test]
    fn generated_kernels_pass() {
        for a in [
            Operand::Ldm,
            Operand::LdmBcast(Net::Row),
            Operand::Recv(Net::Row),
        ] {
            for b in [
                Operand::Ldm,
                Operand::LdmBcast(Net::Col),
                Operand::Recv(Net::Col),
            ] {
                let c = cfg(a, b);
                for style in [KernelStyle::Naive, KernelStyle::Scheduled] {
                    let unrolled = gen_block_kernel(&c, style);
                    assert_eq!(check(&unrolled), vec![], "{a:?}/{b:?}/{style:?} unrolled");
                    let looped = gen_block_kernel_looped(&c, style, 2);
                    assert_eq!(check(&looped), vec![], "{a:?}/{b:?}/{style:?} looped");
                }
                let auto = list_schedule(&gen_block_kernel(&c, KernelStyle::Naive));
                assert_eq!(check(&auto), vec![], "{a:?}/{b:?} list-scheduled");
            }
        }
    }

    #[test]
    fn misalignment_flagged() {
        let prog = [Instr::Vldd {
            d: VReg(0),
            base: IReg(0),
            off: 6,
        }];
        assert!(matches!(check(&prog)[0], Issue::Misaligned { off: 6, .. }));
    }

    #[test]
    fn read_before_write_flagged() {
        let prog = [Instr::Vmad {
            a: VReg(0),
            b: VReg(1),
            c: VReg(2),
            d: VReg(2),
        }];
        let issues = check(&prog);
        assert!(issues
            .iter()
            .any(|i| matches!(i, Issue::ReadBeforeWrite { reg: 0, .. })));
    }

    #[test]
    fn bad_branch_flagged() {
        let prog = [
            Instr::Setl { d: IReg(1), imm: 1 },
            Instr::Bne {
                s: IReg(1),
                target: 99,
            },
        ];
        assert!(check(&prog)
            .iter()
            .any(|i| matches!(i, Issue::BadBranchTarget { target: 99, .. })));
    }

    #[test]
    fn mixed_role_flagged() {
        let prog = [
            Instr::Vldr {
                d: VReg(0),
                base: IReg(0),
                off: 0,
                net: Net::Row,
            },
            Instr::Getr { d: VReg(1) },
        ];
        assert!(check(&prog)
            .iter()
            .any(|i| matches!(i, Issue::MixedCommRole { net: Net::Row })));
    }

    #[test]
    fn icache_overflow_flagged() {
        let c = BlockKernelCfg {
            pm: 16,
            pn: 32,
            pk: 96,
            ..cfg(Operand::Ldm, Operand::Ldm)
        };
        let unrolled = gen_block_kernel(&c, KernelStyle::Scheduled);
        let issues = check(&unrolled);
        assert!(
            issues
                .iter()
                .all(|i| matches!(i, Issue::IcacheOverflow { .. })),
            "production unrolled kernel should only trip the icache check: {issues:?}"
        );
        assert!(!issues.is_empty());
        // And the looped production kernel passes completely.
        assert_eq!(
            check(&gen_block_kernel_looped(&c, KernelStyle::Scheduled, 4)),
            vec![]
        );
    }
}
