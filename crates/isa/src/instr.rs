//! The modelled subset of the SW26010 CPE instruction set.
//!
//! All LDM addresses are expressed as `iregs[base] + off`, in units of
//! `f64` elements. Vector memory operations require 256-bit (4-double)
//! alignment, like the hardware.
//!
//! The paper names four register-communication instructions (§III-B):
//! `vldr` (load 256-bit + row broadcast), `lddec` (load 64-bit, splat,
//! column broadcast), `getr` and `getc` (receive from the row/column
//! network). After the ROW-mode data-thread remapping (§IV-A), A is
//! broadcast along *columns* and B along *rows*; the hardware reaches
//! the other network with its full put/get instruction family, which we
//! model by parameterizing the broadcast direction ([`Net`]) on the same
//! mnemonics.

use crate::regs::{IReg, VReg};

/// Which mesh network a communication instruction uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Net {
    /// The row network (all CPEs of the sender's mesh row).
    Row,
    /// The column network.
    Col,
}

/// One CPE instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `vmad d, a, b, c` — 256-bit fused multiply-add `d = a*b + c`
    /// (the paper writes `vmad rA, rB, rC, rC` for the accumulating
    /// form). Pipeline P0, RAW latency 6.
    Vmad { a: VReg, b: VReg, c: VReg, d: VReg },
    /// 256-bit LDM load. Pipeline P1, RAW latency 4.
    Vldd { d: VReg, base: IReg, off: i64 },
    /// 256-bit LDM store. Pipeline P1.
    Vstd { s: VReg, base: IReg, off: i64 },
    /// Scalar LDM load splat into all 4 lanes (no broadcast). P1,
    /// latency 4.
    Ldde { d: VReg, base: IReg, off: i64 },
    /// 256-bit LDM load + broadcast on `net`, local copy kept in `d`
    /// (`vldr` when `net == Row`). P1, latency 4.
    Vldr {
        d: VReg,
        base: IReg,
        off: i64,
        net: Net,
    },
    /// Scalar LDM load, splat, broadcast on `net`, local copy kept
    /// (`lddec` when `net == Col`). P1, latency 4.
    Lddec {
        d: VReg,
        base: IReg,
        off: i64,
        net: Net,
    },
    /// Receive one word from the row network into `d` (`getr`). P1,
    /// latency 4.
    Getr { d: VReg },
    /// Receive one word from the column network into `d` (`getc`). P1,
    /// latency 4.
    Getc { d: VReg },
    /// Zero a vector register. P1, latency 1.
    Vclr { d: VReg },
    /// Integer add-immediate `d = s + imm`. P1, latency 1.
    Addl { d: IReg, s: IReg, imm: i64 },
    /// Load-immediate `d = imm`. P1, latency 1.
    Setl { d: IReg, imm: i64 },
    /// Branch to instruction index `target` when `iregs[s] != 0`. P1;
    /// a taken branch costs [`BRANCH_TAKEN_PENALTY`] bubble cycles.
    Bne { s: IReg, target: usize },
    /// No-operation, consuming a P1 issue slot. The scheduled kernel
    /// inserts these to keep the in-order issue pattern aligned
    /// (Algorithm 3, §IV-C).
    Nop,
}

/// Bubble cycles after a taken branch (in-order pipeline refill).
pub const BRANCH_TAKEN_PENALTY: u64 = 2;

/// Issue pipeline of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pipe {
    /// Floating-point pipeline.
    P0,
    /// Integer / memory / register-communication pipeline.
    P1,
}

/// The source registers of one instruction, as a fixed-size inline set
/// (an instruction reads at most three registers of a kind). Replaces
/// the old `Vec` returns of [`Instr::vsrcs`]/[`Instr::isrcs`]: the
/// executor walks sources once per dynamically executed instruction,
/// and a heap allocation there dominated interpreter time.
#[derive(Debug, Clone, Copy)]
pub struct Srcs<R> {
    regs: [R; 3],
    len: u8,
}

impl<R: Copy + PartialEq> Srcs<R> {
    #[inline]
    fn new(regs: [R; 3], len: u8) -> Self {
        Srcs { regs, len }
    }

    /// The sources as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[R] {
        &self.regs[..self.len as usize]
    }

    /// Number of sources (0..=3).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the instruction reads no register of this kind.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when `r` is among the sources.
    #[inline]
    pub fn contains(&self, r: R) -> bool {
        self.as_slice().contains(&r)
    }
}

impl<R: Copy> IntoIterator for Srcs<R> {
    type Item = R;
    type IntoIter = std::iter::Take<std::array::IntoIter<R, 3>>;

    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.regs.into_iter().take(self.len as usize)
    }
}

impl<R: Copy + PartialEq> PartialEq for Srcs<R> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Instr {
    /// Which pipeline the instruction issues on.
    #[inline]
    pub fn pipe(&self) -> Pipe {
        match self {
            Instr::Vmad { .. } => Pipe::P0,
            _ => Pipe::P1,
        }
    }

    /// True for the fused multiply-add (used by occupancy statistics).
    #[inline]
    pub fn is_vmad(&self) -> bool {
        matches!(self, Instr::Vmad { .. })
    }

    /// Result latency in cycles (issue → dependent may issue).
    #[inline]
    pub fn latency(&self) -> u64 {
        use sw_arch::consts::{
            INT_OP_LATENCY, LDM_LOAD_LATENCY, REGCOMM_RAW_LATENCY, VMAD_RAW_LATENCY,
        };
        match self {
            Instr::Vmad { .. } => VMAD_RAW_LATENCY,
            Instr::Vldd { .. } | Instr::Ldde { .. } => LDM_LOAD_LATENCY,
            Instr::Vldr { .. } | Instr::Lddec { .. } | Instr::Getr { .. } | Instr::Getc { .. } => {
                REGCOMM_RAW_LATENCY
            }
            Instr::Addl { .. } | Instr::Setl { .. } | Instr::Vclr { .. } => INT_OP_LATENCY,
            Instr::Vstd { .. } | Instr::Bne { .. } | Instr::Nop => 0,
        }
    }

    /// Vector register written, if any.
    pub fn vdst(&self) -> Option<VReg> {
        match *self {
            Instr::Vmad { d, .. }
            | Instr::Vldd { d, .. }
            | Instr::Ldde { d, .. }
            | Instr::Vldr { d, .. }
            | Instr::Lddec { d, .. }
            | Instr::Getr { d }
            | Instr::Getc { d }
            | Instr::Vclr { d } => Some(d),
            _ => None,
        }
    }

    /// Vector registers read (allocation-free).
    #[inline]
    pub fn vsrcs(&self) -> Srcs<VReg> {
        match *self {
            Instr::Vmad { a, b, c, .. } => Srcs::new([a, b, c], 3),
            Instr::Vstd { s, .. } => Srcs::new([s, s, s], 1),
            _ => Srcs::new([VReg(0); 3], 0),
        }
    }

    /// Integer register written, if any.
    pub fn idst(&self) -> Option<IReg> {
        match *self {
            Instr::Addl { d, .. } | Instr::Setl { d, .. } => Some(d),
            _ => None,
        }
    }

    /// Integer registers read (allocation-free; at most one).
    #[inline]
    pub fn isrcs(&self) -> Srcs<IReg> {
        match *self {
            Instr::Vldd { base, .. }
            | Instr::Vstd { base, .. }
            | Instr::Ldde { base, .. }
            | Instr::Vldr { base, .. }
            | Instr::Lddec { base, .. } => Srcs::new([base; 3], 1),
            Instr::Addl { s, .. } | Instr::Bne { s, .. } => Srcs::new([s; 3], 1),
            _ => Srcs::new([IReg(0); 3], 0),
        }
    }
}

impl std::fmt::Display for Instr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Instr::Vmad { a, b, c, d } => write!(f, "vmad {d}, {a}, {b}, {c}"),
            Instr::Vldd { d, base, off } => write!(f, "vldd {d}, {off}({base})"),
            Instr::Vstd { s, base, off } => write!(f, "vstd {s}, {off}({base})"),
            Instr::Ldde { d, base, off } => write!(f, "ldde {d}, {off}({base})"),
            Instr::Vldr { d, base, off, net } => write!(f, "vldr[{net:?}] {d}, {off}({base})"),
            Instr::Lddec { d, base, off, net } => write!(f, "lddec[{net:?}] {d}, {off}({base})"),
            Instr::Getr { d } => write!(f, "getr {d}"),
            Instr::Getc { d } => write!(f, "getc {d}"),
            Instr::Vclr { d } => write!(f, "vclr {d}"),
            Instr::Addl { d, s, imm } => write!(f, "addl {d}, {s}, {imm}"),
            Instr::Setl { d, imm } => write!(f, "setl {d}, {imm}"),
            Instr::Bne { s, target } => write!(f, "bne {s}, @{target}"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipes_and_latencies_match_paper() {
        let vmad = Instr::Vmad {
            a: VReg(0),
            b: VReg(1),
            c: VReg(2),
            d: VReg(2),
        };
        assert_eq!(vmad.pipe(), Pipe::P0);
        assert_eq!(vmad.latency(), 6);
        let getr = Instr::Getr { d: VReg(0) };
        assert_eq!(getr.pipe(), Pipe::P1);
        assert_eq!(getr.latency(), 4);
    }

    #[test]
    fn deps_extracted() {
        let i = Instr::Vmad {
            a: VReg(1),
            b: VReg(2),
            c: VReg(3),
            d: VReg(3),
        };
        assert_eq!(i.vdst(), Some(VReg(3)));
        assert_eq!(i.vsrcs().as_slice(), &[VReg(1), VReg(2), VReg(3)]);
        let a = Instr::Addl {
            d: IReg(1),
            s: IReg(2),
            imm: 4,
        };
        assert_eq!(a.idst(), Some(IReg(1)));
        assert_eq!(a.isrcs().as_slice(), &[IReg(2)]);
    }

    #[test]
    fn src_sets_are_inline_and_iterable() {
        let store = Instr::Vstd {
            s: VReg(5),
            base: IReg(2),
            off: 0,
        };
        assert_eq!(store.vsrcs().len(), 1);
        assert!(store.vsrcs().contains(VReg(5)));
        assert!(!store.vsrcs().contains(VReg(4)));
        assert_eq!(store.isrcs().as_slice(), &[IReg(2)]);
        let nop = Instr::Nop;
        assert!(nop.vsrcs().is_empty());
        assert!(nop.isrcs().is_empty());
        assert_eq!(nop.vsrcs().into_iter().count(), 0);
        let collected: Vec<VReg> = Instr::Vmad {
            a: VReg(1),
            b: VReg(2),
            c: VReg(3),
            d: VReg(3),
        }
        .vsrcs()
        .into_iter()
        .collect();
        assert_eq!(collected, vec![VReg(1), VReg(2), VReg(3)]);
    }
}
