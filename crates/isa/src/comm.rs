//! Communication back-ends for the executor.
//!
//! The executor is generic over [`CommPort`] so the same kernel stream
//! can run (a) inside the 64-thread functional runtime against the real
//! mesh, (b) against a scripted transcript for single-threaded
//! validation, or (c) against a sink when only cycle counts matter.

use std::collections::VecDeque;
use sw_arch::V256;

/// What the executor needs from the register-communication network.
pub trait CommPort {
    /// Broadcast `v` to the other CPEs of this CPE's mesh row.
    fn row_bcast(&mut self, v: V256);
    /// Broadcast `v` to the other CPEs of this CPE's mesh column.
    fn col_bcast(&mut self, v: V256);
    /// Receive one word from the row network.
    fn getr(&mut self) -> V256;
    /// Receive one word from the column network.
    fn getc(&mut self) -> V256;
}

/// Panics on any communication — for kernels that are purely local.
#[derive(Debug, Default)]
pub struct NullComm;

impl CommPort for NullComm {
    fn row_bcast(&mut self, _v: V256) {
        panic!("kernel attempted row broadcast with NullComm");
    }
    fn col_bcast(&mut self, _v: V256) {
        panic!("kernel attempted column broadcast with NullComm");
    }
    fn getr(&mut self) -> V256 {
        panic!("kernel attempted getr with NullComm");
    }
    fn getc(&mut self) -> V256 {
        panic!("kernel attempted getc with NullComm");
    }
}

/// Discards broadcasts and serves zeros on receive — for pure cycle
/// counting where data does not matter.
#[derive(Debug, Default)]
pub struct SinkComm;

impl CommPort for SinkComm {
    fn row_bcast(&mut self, _v: V256) {}
    fn col_bcast(&mut self, _v: V256) {}
    fn getr(&mut self) -> V256 {
        V256::ZERO
    }
    fn getc(&mut self) -> V256 {
        V256::ZERO
    }
}

/// Replays a pre-computed transcript: `getr`/`getc` pop from scripted
/// queues, broadcasts are recorded. Lets a *single* thread validate a
/// kernel that expects its partners' traffic.
#[derive(Debug, Default)]
pub struct ScriptedComm {
    /// Words the row network will deliver, in order.
    pub row_in: VecDeque<V256>,
    /// Words the column network will deliver, in order.
    pub col_in: VecDeque<V256>,
    /// Row broadcasts the kernel performed.
    pub row_out: Vec<V256>,
    /// Column broadcasts the kernel performed.
    pub col_out: Vec<V256>,
}

impl ScriptedComm {
    /// Scripts the row network to deliver `panel` (length multiple of 4)
    /// as consecutive 256-bit words.
    pub fn script_row_panel(&mut self, panel: &[f64]) {
        assert_eq!(panel.len() % 4, 0);
        for c in panel.chunks_exact(4) {
            self.row_in.push_back(V256::load(c));
        }
    }

    /// Scripts the column network to deliver each element of `scalars`
    /// splatted (what a remote `lddec` broadcast delivers).
    pub fn script_col_scalars(&mut self, scalars: &[f64]) {
        for &x in scalars {
            self.col_in.push_back(V256::splat(x));
        }
    }

    /// Scripts the column network to deliver `panel` as 256-bit words.
    pub fn script_col_panel(&mut self, panel: &[f64]) {
        assert_eq!(panel.len() % 4, 0);
        for c in panel.chunks_exact(4) {
            self.col_in.push_back(V256::load(c));
        }
    }

    /// Scripts the row network to deliver splatted scalars.
    pub fn script_row_scalars(&mut self, scalars: &[f64]) {
        for &x in scalars {
            self.row_in.push_back(V256::splat(x));
        }
    }
}

impl CommPort for ScriptedComm {
    fn row_bcast(&mut self, v: V256) {
        self.row_out.push(v);
    }
    fn col_bcast(&mut self, v: V256) {
        self.col_out.push(v);
    }
    fn getr(&mut self) -> V256 {
        self.row_in
            .pop_front()
            .expect("scripted row transcript exhausted")
    }
    fn getc(&mut self) -> V256 {
        self.col_in
            .pop_front()
            .expect("scripted column transcript exhausted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_replays_in_order() {
        let mut c = ScriptedComm::default();
        c.script_row_panel(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        c.script_col_scalars(&[9.0]);
        assert_eq!(c.getr(), V256::new([1.0, 2.0, 3.0, 4.0]));
        assert_eq!(c.getr(), V256::new([5.0, 6.0, 7.0, 8.0]));
        assert_eq!(c.getc(), V256::splat(9.0));
        c.row_bcast(V256::splat(1.0));
        assert_eq!(c.row_out.len(), 1);
    }

    #[test]
    #[should_panic]
    fn scripted_exhaustion_panics() {
        let mut c = ScriptedComm::default();
        let _ = c.getr();
    }

    #[test]
    fn sink_returns_zero() {
        let mut s = SinkComm;
        s.row_bcast(V256::splat(1.0));
        assert_eq!(s.getc(), V256::ZERO);
    }
}
