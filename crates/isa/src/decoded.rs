//! Predecoded instruction streams.
//!
//! The executor used to re-derive pipe, latency, and source/destination
//! registers from the [`Instr`] enum on every *dynamically executed*
//! instruction — hundreds of millions of times per timing sweep, with a
//! heap-allocated `Vec` per source query before the [`crate::instr::Srcs`]
//! rework. [`DecodedProgram`] moves all of that to decode time: each
//! static instruction is expanded once into a flat [`DecodedInstr`]
//! record with fixed-size register arrays and pre-resolved pipe and
//! latency, and the interpreter loop (`Machine::run_decoded`) reads
//! those fields with zero per-instruction allocation or matching on
//! metadata.
//!
//! Decoding is purely structural — it inspects no data values — so a
//! decoded program is interchangeable with its source stream: the
//! interpreter produces bitwise-identical numerics and an identical
//! [`crate::ExecReport`].

use crate::instr::{Instr, Pipe};

/// Sentinel for "no register" in the compact index fields.
pub(crate) const NO_REG: u8 = u8::MAX;

/// One instruction with its issue metadata resolved at decode time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecodedInstr {
    /// The original instruction (drives the execute stage).
    pub op: Instr,
    /// Pre-resolved issue pipe.
    pub pipe: Pipe,
    /// Pre-resolved result latency in cycles.
    pub latency: u64,
    /// Vector sources, `vsrcs[..n_vsrcs]` valid.
    pub vsrcs: [u8; 3],
    /// Number of valid vector sources.
    pub n_vsrcs: u8,
    /// Integer source register index, or [`NO_REG`] (the ISA reads at
    /// most one integer register per instruction).
    pub isrc: u8,
    /// Vector destination register index, or [`NO_REG`].
    pub vdst: u8,
    /// Integer destination register index, or [`NO_REG`].
    pub idst: u8,
    /// Pre-extracted immediate: the LDM offset of memory instructions,
    /// the literal of `setl`/`addl`, the target of `bne`, 0 otherwise.
    /// Fused batch execution reads operands from these flat fields
    /// instead of re-matching on [`Instr`] per dynamic instruction.
    pub imm: i64,
}

impl DecodedInstr {
    fn decode(instr: Instr) -> Self {
        let vs = instr.vsrcs();
        let mut vsrcs = [NO_REG; 3];
        for (slot, r) in vsrcs.iter_mut().zip(vs.as_slice()) {
            *slot = r.0;
        }
        let is = instr.isrcs();
        debug_assert!(is.len() <= 1, "ISA invariant: at most one integer source");
        let imm = match instr {
            Instr::Vldd { off, .. }
            | Instr::Vstd { off, .. }
            | Instr::Ldde { off, .. }
            | Instr::Vldr { off, .. }
            | Instr::Lddec { off, .. } => off,
            Instr::Addl { imm, .. } | Instr::Setl { imm, .. } => imm,
            Instr::Bne { target, .. } => target as i64,
            _ => 0,
        };
        DecodedInstr {
            op: instr,
            pipe: instr.pipe(),
            latency: instr.latency(),
            vsrcs,
            n_vsrcs: vs.len() as u8,
            isrc: is.as_slice().first().map_or(NO_REG, |r| r.0),
            vdst: instr.vdst().map_or(NO_REG, |r| r.0),
            idst: instr.idst().map_or(NO_REG, |r| r.0),
            imm,
        }
    }
}

/// An instruction stream decoded once for repeated zero-allocation
/// interpretation.
///
/// Build it with [`DecodedProgram::new`] and run it with
/// [`crate::Machine::run_decoded`]; `Machine::run` decodes internally
/// for one-shot use.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    pub(crate) instrs: Vec<DecodedInstr>,
}

impl DecodedProgram {
    /// Decodes `prog`. Pure and cheap relative to even a single
    /// interpretation: one pass, no data inspected.
    pub fn new(prog: &[Instr]) -> Self {
        DecodedProgram {
            instrs: prog.iter().map(|&i| DecodedInstr::decode(i)).collect(),
        }
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True for the empty program.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

impl From<&[Instr]> for DecodedProgram {
    fn from(prog: &[Instr]) -> Self {
        DecodedProgram::new(prog)
    }
}

/// How a batch op executes: one scalar dispatch, or a fused run of a
/// single opcode handled by a specialized loop in `exec_batched`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BatchKind {
    /// Unfused: one instruction through the generic dispatch arm. Only
    /// `bne` lands here — it is the one instruction that can redirect
    /// control flow off the op grid.
    One,
    /// `n` consecutive instructions that fuse with nothing (mixed
    /// opcodes, no branches), executed by the generic dispatch arm in
    /// one op. Coalescing them keeps the per-op overhead of a stream
    /// with no fusible runs (e.g. the software-pipelined Algorithm 3
    /// schedule, which interleaves loads and `vmad`s by design) at one
    /// dispatch per *stretch* instead of one per instruction.
    Strip,
    /// `n >= 2` consecutive `vmad`s (P0, fixed 6-cycle latency).
    VmadRun,
    /// `n >= 2` consecutive `vldd`s (P1 loads, 4-cycle latency).
    VlddRun,
    /// `n >= 2` consecutive `vstd`s (P1 stores, no destination).
    VstdRun,
}

/// One fused micro-op: `n` consecutive static instructions starting at
/// `pc0`, all of the same fusible opcode (or a single instruction of
/// any opcode when `kind == One`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchOp {
    pub kind: BatchKind,
    pub pc0: u32,
    pub n: u32,
    /// For load/store runs: the run is register- *and*
    /// address-contiguous (same base register, destinations/sources
    /// stepping by one register, offsets stepping by four doubles), so
    /// its data movement collapses into one wide
    /// `V256::load_seq`/`store_seq` call. Decided at decode time.
    pub seq: bool,
}

/// A decoded program regrouped into fused micro-ops for batch
/// execution.
///
/// The fusion pass runs at decode time and is purely structural: it
/// finds maximal runs of adjacent `vmad`/`vldd`/`vstd` instructions —
/// the bodies the §IV register-blocked kernels are made of — and emits
/// one [`BatchOp`] per run so `Machine::run_batched` can execute each
/// run through a tight single-opcode loop (whole-`V256` operations,
/// no per-element opcode dispatch). Runs never extend across a branch
/// target, so control flow always lands on an op boundary; `op_at`
/// maps each op-starting pc to its op index for taken branches.
///
/// Fusion changes neither values nor timing: every element of a run
/// still passes through the same scoreboard, dual-issue slotting, and
/// stall-probe accounting as the one-at-a-time interpreter, so the
/// [`crate::ExecReport`] and stall attribution are identical bit for
/// bit (pinned by the engine-equivalence property suite).
#[derive(Debug, Clone)]
pub struct BatchedProgram {
    pub(crate) instrs: Vec<DecodedInstr>,
    pub(crate) ops: Vec<BatchOp>,
    /// `op_at[pc]` = index of the op starting at `pc`, `u32::MAX` for
    /// pcs interior to a fused run or strip (never branch targets, by
    /// construction). Length `len + 1`; `op_at[len] == ops.len()` so a
    /// branch past the end terminates cleanly.
    pub(crate) op_at: Vec<u32>,
}

fn fuse_kind(op: &Instr) -> Option<BatchKind> {
    match op {
        Instr::Vmad { .. } => Some(BatchKind::VmadRun),
        Instr::Vldd { .. } => Some(BatchKind::VlddRun),
        Instr::Vstd { .. } => Some(BatchKind::VstdRun),
        _ => None,
    }
}

impl BatchedProgram {
    /// Decodes and fuses `prog` in one pass over the stream.
    pub fn new(prog: &[Instr]) -> Self {
        Self::from_decoded(DecodedProgram::new(prog))
    }

    /// Fuses an already-decoded program.
    pub fn from_decoded(decoded: DecodedProgram) -> Self {
        let instrs = decoded.instrs;
        let len = instrs.len();
        // Branch targets break runs: control flow must land on an op
        // boundary. (Targets past the end need no barrier — they
        // terminate execution.)
        let mut barrier = vec![false; len + 1];
        for di in &instrs {
            if matches!(di.op, Instr::Bne { .. }) {
                let t = di.imm as usize;
                if t <= len {
                    barrier[t] = true;
                }
            }
        }
        let mut ops: Vec<BatchOp> = Vec::new();
        let mut op_at = vec![u32::MAX; len + 1];
        let mut pc = 0usize;
        while pc < len {
            let mut n = 1usize;
            let kind = match fuse_kind(&instrs[pc].op) {
                Some(k) => {
                    while pc + n < len
                        && !barrier[pc + n]
                        && fuse_kind(&instrs[pc + n].op) == Some(k)
                    {
                        n += 1;
                    }
                    if n >= 2 {
                        k
                    } else {
                        BatchKind::One
                    }
                }
                None => BatchKind::One,
            };
            if kind == BatchKind::One && !matches!(instrs[pc].op, Instr::Bne { .. }) {
                // Unfusible non-branch instruction: coalesce with a
                // preceding strip unless a branch target forces an op
                // boundary here.
                if !barrier[pc] {
                    if let Some(last) = ops.last_mut() {
                        if last.kind == BatchKind::Strip
                            && last.pc0 as usize + last.n as usize == pc
                        {
                            last.n += 1;
                            pc += 1;
                            continue;
                        }
                    }
                }
                op_at[pc] = ops.len() as u32;
                ops.push(BatchOp {
                    kind: BatchKind::Strip,
                    pc0: pc as u32,
                    n: 1,
                    seq: false,
                });
                pc += 1;
                continue;
            }
            let seq = match kind {
                BatchKind::VlddRun => (1..n).all(|e| {
                    let (p, q) = (&instrs[pc], &instrs[pc + e]);
                    q.isrc == p.isrc && q.vdst == p.vdst + e as u8 && q.imm == p.imm + 4 * e as i64
                }),
                BatchKind::VstdRun => (1..n).all(|e| {
                    let (p, q) = (&instrs[pc], &instrs[pc + e]);
                    q.isrc == p.isrc
                        && q.vsrcs[0] == p.vsrcs[0] + e as u8
                        && q.imm == p.imm + 4 * e as i64
                }),
                _ => false,
            };
            ops.push(BatchOp {
                kind,
                pc0: pc as u32,
                n: n as u32,
                seq,
            });
            op_at[pc] = (ops.len() - 1) as u32;
            pc += n;
        }
        op_at[len] = ops.len() as u32;
        BatchedProgram { instrs, ops, op_at }
    }

    /// Number of static instructions (not ops).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True for the empty program.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of fused micro-ops (`<= len()`); exposed for tests and
    /// diagnostics.
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }
}

impl From<&[Instr]> for BatchedProgram {
    fn from(prog: &[Instr]) -> Self {
        BatchedProgram::new(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::{IReg, VReg};

    #[test]
    fn decode_resolves_metadata() {
        let p = DecodedProgram::new(&[
            Instr::Vmad {
                a: VReg(1),
                b: VReg(2),
                c: VReg(3),
                d: VReg(4),
            },
            Instr::Vldd {
                d: VReg(0),
                base: IReg(1),
                off: 8,
            },
            Instr::Bne {
                s: IReg(3),
                target: 0,
            },
            Instr::Nop,
        ]);
        assert_eq!(p.len(), 4);
        let v = &p.instrs[0];
        assert_eq!(v.pipe, Pipe::P0);
        assert_eq!(v.latency, 6);
        assert_eq!(&v.vsrcs[..v.n_vsrcs as usize], &[1, 2, 3]);
        assert_eq!(v.vdst, 4);
        assert_eq!(v.isrc, NO_REG);
        assert_eq!(v.idst, NO_REG);
        let l = &p.instrs[1];
        assert_eq!(l.pipe, Pipe::P1);
        assert_eq!(l.latency, 4);
        assert_eq!(l.n_vsrcs, 0);
        assert_eq!(l.isrc, 1);
        assert_eq!(l.vdst, 0);
        let b = &p.instrs[2];
        assert_eq!(b.isrc, 3);
        assert_eq!(b.latency, 0);
        let n = &p.instrs[3];
        assert_eq!(n.n_vsrcs, 0);
        assert_eq!(n.isrc, NO_REG);
        assert_eq!(n.vdst, NO_REG);
        assert_eq!(n.idst, NO_REG);
        assert!(DecodedProgram::new(&[]).is_empty());
    }

    #[test]
    fn decode_extracts_immediates() {
        let p = DecodedProgram::new(&[
            Instr::Vldd {
                d: VReg(0),
                base: IReg(1),
                off: 8,
            },
            Instr::Setl {
                d: IReg(2),
                imm: -5,
            },
            Instr::Addl {
                d: IReg(2),
                s: IReg(2),
                imm: 3,
            },
            Instr::Bne {
                s: IReg(2),
                target: 1,
            },
            Instr::Nop,
        ]);
        let imms: Vec<i64> = p.instrs.iter().map(|d| d.imm).collect();
        assert_eq!(imms, vec![8, -5, 3, 1, 0]);
    }

    #[test]
    fn fusion_finds_maximal_runs() {
        let vldd = |d: u8, off: i64| Instr::Vldd {
            d: VReg(d),
            base: IReg(0),
            off,
        };
        let vmad = |d: u8| Instr::Vmad {
            a: VReg(0),
            b: VReg(1),
            c: VReg(d),
            d: VReg(d),
        };
        // 3 loads, 1 int op, 2 vmads, 1 store (single, stays One).
        let prog = vec![
            vldd(0, 0),
            vldd(1, 4),
            vldd(2, 8),
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: 1,
            },
            vmad(4),
            vmad(5),
            Instr::Vstd {
                s: VReg(4),
                base: IReg(0),
                off: 16,
            },
        ];
        let b = BatchedProgram::new(&prog);
        assert_eq!(b.len(), 7);
        let kinds: Vec<(BatchKind, u32)> = b.ops.iter().map(|o| (o.kind, o.n)).collect();
        assert_eq!(
            kinds,
            vec![
                (BatchKind::VlddRun, 3),
                (BatchKind::Strip, 1),
                (BatchKind::VmadRun, 2),
                (BatchKind::Strip, 1),
            ]
        );
        // The load run is register- and address-contiguous.
        assert!(b.ops[0].seq);
        assert!(!b.ops[2].seq, "vmad runs carry no seq flag");
        // op_at marks op starts and the end sentinel, MAX inside runs.
        assert_eq!(b.op_at[0], 0);
        assert_eq!(b.op_at[1], u32::MAX);
        assert_eq!(b.op_at[3], 1);
        assert_eq!(b.op_at[4], 2);
        assert_eq!(b.op_at[6], 3);
        assert_eq!(b.op_at[7], 4);
    }

    #[test]
    fn fusion_breaks_runs_at_branch_targets() {
        let vmad = |d: u8| Instr::Vmad {
            a: VReg(0),
            b: VReg(1),
            c: VReg(d),
            d: VReg(d),
        };
        // Branch back into the middle of what would otherwise be one
        // 4-long vmad run: the target must start its own op.
        let prog = vec![
            vmad(4),
            vmad(5),
            vmad(6),
            vmad(7),
            Instr::Addl {
                d: IReg(7),
                s: IReg(7),
                imm: -1,
            },
            Instr::Bne {
                s: IReg(7),
                target: 2,
            },
        ];
        let b = BatchedProgram::new(&prog);
        let kinds: Vec<(BatchKind, u32, u32)> =
            b.ops.iter().map(|o| (o.kind, o.pc0, o.n)).collect();
        assert_eq!(
            kinds,
            vec![
                (BatchKind::VmadRun, 0, 2),
                (BatchKind::VmadRun, 2, 2),
                (BatchKind::Strip, 4, 1),
                (BatchKind::One, 5, 1),
            ]
        );
        assert_eq!(b.op_at[2], 1, "branch target starts an op");
        assert_eq!(b.n_ops(), 4);
    }

    #[test]
    fn mixed_stretches_coalesce_into_strips() {
        let addl = |d: u8| Instr::Addl {
            d: IReg(d),
            s: IReg(d),
            imm: 1,
        };
        // No fusible run anywhere: the whole stream is one strip.
        let prog = vec![
            addl(1),
            Instr::Ldde {
                d: VReg(0),
                base: IReg(0),
                off: 0,
            },
            addl(2),
        ];
        let b = BatchedProgram::new(&prog);
        assert_eq!(b.n_ops(), 1);
        assert_eq!(b.ops[0].kind, BatchKind::Strip);
        assert_eq!(b.ops[0].n, 3);
        assert_eq!(b.op_at[0], 0);
        assert_eq!(b.op_at[1], u32::MAX, "strip interiors have no op entry");

        // A branch target inside the stretch forces an op boundary so
        // the jump lands on an op start.
        let prog = vec![
            addl(1),
            addl(2),
            Instr::Bne {
                s: IReg(2),
                target: 1,
            },
        ];
        let b = BatchedProgram::new(&prog);
        let kinds: Vec<(BatchKind, u32, u32)> =
            b.ops.iter().map(|o| (o.kind, o.pc0, o.n)).collect();
        assert_eq!(
            kinds,
            vec![
                (BatchKind::Strip, 0, 1),
                (BatchKind::Strip, 1, 1),
                (BatchKind::One, 2, 1),
            ]
        );
        assert_eq!(b.op_at[1], 1, "branch target starts an op");
    }

    #[test]
    fn non_contiguous_runs_fuse_without_seq() {
        // Same opcode, but destinations skip a register: still one
        // fused run (timing-wise), not a wide contiguous copy.
        let prog = vec![
            Instr::Vldd {
                d: VReg(0),
                base: IReg(0),
                off: 0,
            },
            Instr::Vldd {
                d: VReg(2),
                base: IReg(0),
                off: 4,
            },
        ];
        let b = BatchedProgram::new(&prog);
        assert_eq!(b.ops[0].kind, BatchKind::VlddRun);
        assert_eq!(b.ops[0].n, 2);
        assert!(!b.ops[0].seq);
    }
}
