//! Predecoded instruction streams.
//!
//! The executor used to re-derive pipe, latency, and source/destination
//! registers from the [`Instr`] enum on every *dynamically executed*
//! instruction — hundreds of millions of times per timing sweep, with a
//! heap-allocated `Vec` per source query before the [`crate::instr::Srcs`]
//! rework. [`DecodedProgram`] moves all of that to decode time: each
//! static instruction is expanded once into a flat [`DecodedInstr`]
//! record with fixed-size register arrays and pre-resolved pipe and
//! latency, and the interpreter loop (`Machine::run_decoded`) reads
//! those fields with zero per-instruction allocation or matching on
//! metadata.
//!
//! Decoding is purely structural — it inspects no data values — so a
//! decoded program is interchangeable with its source stream: the
//! interpreter produces bitwise-identical numerics and an identical
//! [`crate::ExecReport`].

use crate::instr::{Instr, Pipe};

/// Sentinel for "no register" in the compact index fields.
pub(crate) const NO_REG: u8 = u8::MAX;

/// One instruction with its issue metadata resolved at decode time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecodedInstr {
    /// The original instruction (drives the execute stage).
    pub op: Instr,
    /// Pre-resolved issue pipe.
    pub pipe: Pipe,
    /// Pre-resolved result latency in cycles.
    pub latency: u64,
    /// Vector sources, `vsrcs[..n_vsrcs]` valid.
    pub vsrcs: [u8; 3],
    /// Number of valid vector sources.
    pub n_vsrcs: u8,
    /// Integer source register index, or [`NO_REG`] (the ISA reads at
    /// most one integer register per instruction).
    pub isrc: u8,
    /// Vector destination register index, or [`NO_REG`].
    pub vdst: u8,
    /// Integer destination register index, or [`NO_REG`].
    pub idst: u8,
}

impl DecodedInstr {
    fn decode(instr: Instr) -> Self {
        let vs = instr.vsrcs();
        let mut vsrcs = [NO_REG; 3];
        for (slot, r) in vsrcs.iter_mut().zip(vs.as_slice()) {
            *slot = r.0;
        }
        let is = instr.isrcs();
        debug_assert!(is.len() <= 1, "ISA invariant: at most one integer source");
        DecodedInstr {
            op: instr,
            pipe: instr.pipe(),
            latency: instr.latency(),
            vsrcs,
            n_vsrcs: vs.len() as u8,
            isrc: is.as_slice().first().map_or(NO_REG, |r| r.0),
            vdst: instr.vdst().map_or(NO_REG, |r| r.0),
            idst: instr.idst().map_or(NO_REG, |r| r.0),
        }
    }
}

/// An instruction stream decoded once for repeated zero-allocation
/// interpretation.
///
/// Build it with [`DecodedProgram::new`] and run it with
/// [`crate::Machine::run_decoded`]; `Machine::run` decodes internally
/// for one-shot use.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    pub(crate) instrs: Vec<DecodedInstr>,
}

impl DecodedProgram {
    /// Decodes `prog`. Pure and cheap relative to even a single
    /// interpretation: one pass, no data inspected.
    pub fn new(prog: &[Instr]) -> Self {
        DecodedProgram {
            instrs: prog.iter().map(|&i| DecodedInstr::decode(i)).collect(),
        }
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True for the empty program.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

impl From<&[Instr]> for DecodedProgram {
    fn from(prog: &[Instr]) -> Self {
        DecodedProgram::new(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::{IReg, VReg};

    #[test]
    fn decode_resolves_metadata() {
        let p = DecodedProgram::new(&[
            Instr::Vmad {
                a: VReg(1),
                b: VReg(2),
                c: VReg(3),
                d: VReg(4),
            },
            Instr::Vldd {
                d: VReg(0),
                base: IReg(1),
                off: 8,
            },
            Instr::Bne {
                s: IReg(3),
                target: 0,
            },
            Instr::Nop,
        ]);
        assert_eq!(p.len(), 4);
        let v = &p.instrs[0];
        assert_eq!(v.pipe, Pipe::P0);
        assert_eq!(v.latency, 6);
        assert_eq!(&v.vsrcs[..v.n_vsrcs as usize], &[1, 2, 3]);
        assert_eq!(v.vdst, 4);
        assert_eq!(v.isrc, NO_REG);
        assert_eq!(v.idst, NO_REG);
        let l = &p.instrs[1];
        assert_eq!(l.pipe, Pipe::P1);
        assert_eq!(l.latency, 4);
        assert_eq!(l.n_vsrcs, 0);
        assert_eq!(l.isrc, 1);
        assert_eq!(l.vdst, 0);
        let b = &p.instrs[2];
        assert_eq!(b.isrc, 3);
        assert_eq!(b.latency, 0);
        let n = &p.instrs[3];
        assert_eq!(n.n_vsrcs, 0);
        assert_eq!(n.isrc, NO_REG);
        assert_eq!(n.vdst, NO_REG);
        assert_eq!(n.idst, NO_REG);
        assert!(DecodedProgram::new(&[]).is_empty());
    }
}
