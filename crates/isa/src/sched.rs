//! A greedy list scheduler for branch-free kernel streams.
//!
//! The paper's conclusion notes that hand-writing the Algorithm 3
//! schedule "hinders productivity" and proposes automatic code
//! generation as future work. This module is that extension: it takes a
//! naively ordered stream (e.g. [`crate::kernels::KernelStyle::Naive`]
//! output), builds the dependence DAG, and re-orders it with a
//! critical-path-priority list scheduler targeting the dual-issue
//! in-order pipeline.
//!
//! The result is provably equivalent (same dependences, same mesh
//! traffic order) and — measured on the executor — recovers most of the
//! hand schedule's gain; the `kernel_pipeline` bench compares all
//! three.
//!
//! Dependences preserved:
//! * RAW / WAW / WAR on vector and integer registers,
//! * total order among LDM stores and any load relative to a store
//!   (no alias analysis — panels may overlap),
//! * total order among communication instructions (mesh FIFO order is
//!   semantic).

use crate::instr::{Instr, Pipe};

/// Re-orders a branch-free instruction stream for better dual-issue
/// pairing. Panics if the stream contains a branch.
pub fn list_schedule(prog: &[Instr]) -> Vec<Instr> {
    assert!(
        !prog.iter().any(|i| matches!(i, Instr::Bne { .. })),
        "list_schedule handles branch-free streams only"
    );
    let n = prog.len();
    if n == 0 {
        return Vec::new();
    }

    // --- Build the dependence DAG. ---
    // succs[i] = (j, min_delay) edges; preds counted for readiness.
    let mut succs: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    let mut pred_count = vec![0usize; n];
    let add_edge = |succs: &mut Vec<Vec<(usize, u64)>>,
                    pred_count: &mut Vec<usize>,
                    from: usize,
                    to: usize,
                    delay: u64| {
        succs[from].push((to, delay));
        pred_count[to] += 1;
    };

    // Last writer and readers per register.
    let mut vwriter: Vec<Option<usize>> = vec![None; 32];
    let mut vreaders: Vec<Vec<usize>> = vec![Vec::new(); 32];
    let mut iwriter: Vec<Option<usize>> = vec![None; 8];
    let mut ireaders: Vec<Vec<usize>> = vec![Vec::new(); 8];
    let mut last_store: Option<usize> = None;
    let mut loads_since_store: Vec<usize> = Vec::new();
    let mut last_comm: Option<usize> = None;

    for (idx, instr) in prog.iter().enumerate() {
        // RAW edges.
        for r in instr.vsrcs() {
            if let Some(w) = vwriter[r.idx()] {
                add_edge(&mut succs, &mut pred_count, w, idx, prog[w].latency());
            }
            vreaders[r.idx()].push(idx);
        }
        for r in instr.isrcs() {
            if let Some(w) = iwriter[r.idx()] {
                add_edge(&mut succs, &mut pred_count, w, idx, prog[w].latency());
            }
            ireaders[r.idx()].push(idx);
        }
        // WAW + WAR edges.
        if let Some(d) = instr.vdst() {
            if let Some(w) = vwriter[d.idx()] {
                add_edge(&mut succs, &mut pred_count, w, idx, prog[w].latency());
            }
            for &r in &vreaders[d.idx()] {
                if r != idx {
                    add_edge(&mut succs, &mut pred_count, r, idx, 1);
                }
            }
            vwriter[d.idx()] = Some(idx);
            vreaders[d.idx()].clear();
        }
        if let Some(d) = instr.idst() {
            if let Some(w) = iwriter[d.idx()] {
                add_edge(&mut succs, &mut pred_count, w, idx, prog[w].latency());
            }
            for &r in &ireaders[d.idx()] {
                if r != idx {
                    add_edge(&mut succs, &mut pred_count, r, idx, 1);
                }
            }
            iwriter[d.idx()] = Some(idx);
            ireaders[d.idx()].clear();
        }
        // Memory chain (conservative, no alias analysis).
        let is_store = matches!(instr, Instr::Vstd { .. });
        let is_load = matches!(
            instr,
            Instr::Vldd { .. } | Instr::Ldde { .. } | Instr::Vldr { .. } | Instr::Lddec { .. }
        );
        if is_store {
            if let Some(s) = last_store {
                add_edge(&mut succs, &mut pred_count, s, idx, 1);
            }
            for &l in &loads_since_store {
                add_edge(&mut succs, &mut pred_count, l, idx, 1);
            }
            last_store = Some(idx);
            loads_since_store.clear();
        } else if is_load {
            if let Some(s) = last_store {
                add_edge(&mut succs, &mut pred_count, s, idx, 1);
            }
            loads_since_store.push(idx);
        }
        // Communication chain: mesh FIFO order is part of the semantics.
        let is_comm = matches!(
            instr,
            Instr::Vldr { .. } | Instr::Lddec { .. } | Instr::Getr { .. } | Instr::Getc { .. }
        );
        if is_comm {
            if let Some(c) = last_comm {
                add_edge(&mut succs, &mut pred_count, c, idx, 1);
            }
            last_comm = Some(idx);
        }
    }

    // --- Priorities: latency-weighted critical path to any sink. ---
    let mut priority = vec![0u64; n];
    for i in (0..n).rev() {
        let mut best = prog[i].latency().max(1);
        for &(j, delay) in &succs[i] {
            best = best.max(delay.max(1) + priority[j]);
        }
        priority[i] = best;
    }

    // --- Greedy cycle-by-cycle selection. ---
    let mut ready_at = vec![0u64; n]; // earliest cycle each instr may issue
    let mut remaining_preds = pred_count;
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_preds[i] == 0).collect();
    let mut out = Vec::with_capacity(n);
    let mut emitted = vec![false; n];
    let mut cycle: u64 = 0;

    while out.len() < n {
        // Candidates issueable this cycle, by pipe.
        let pick =
            |pipe: Pipe, ready: &Vec<usize>, ready_at: &Vec<u64>, cycle: u64| -> Option<usize> {
                ready
                    .iter()
                    .copied()
                    .filter(|&i| prog[i].pipe() == pipe && ready_at[i] <= cycle)
                    .max_by_key(|&i| (priority[i], std::cmp::Reverse(i)))
            };
        let p0 = pick(Pipe::P0, &ready, &ready_at, cycle);
        let p1 = pick(Pipe::P1, &ready, &ready_at, cycle);

        // Emission order within the cycle: a same-cycle WAR pair must
        // place the reader first. The P1 op is usually the writer
        // (loads), so default to P0 first, unless the P0 instruction
        // writes a register the P1 instruction reads.
        let mut chosen: Vec<usize> = Vec::new();
        match (p0, p1) {
            (Some(a), Some(b)) => {
                let p0_writes_p1_src = prog[a].vdst().is_some_and(|d| prog[b].vsrcs().contains(d));
                if p0_writes_p1_src {
                    chosen.push(b);
                    chosen.push(a);
                } else {
                    chosen.push(a);
                    chosen.push(b);
                }
            }
            (Some(a), None) => chosen.push(a),
            (None, Some(b)) => chosen.push(b),
            (None, None) => {}
        }

        if chosen.is_empty() {
            // Nothing issueable: advance to the next readiness horizon.
            cycle = ready
                .iter()
                .copied()
                .map(|i| ready_at[i])
                .filter(|&t| t > cycle)
                .min()
                .unwrap_or(cycle + 1);
            continue;
        }

        for i in chosen {
            emitted[i] = true;
            out.push(prog[i]);
            ready.retain(|&x| x != i);
            for &(j, delay) in &succs[i] {
                ready_at[j] =
                    ready_at[j].max(cycle + delay.max(if delay == 0 { 0 } else { delay }));
                remaining_preds[j] -= 1;
                if remaining_preds[j] == 0 {
                    ready.push(j);
                }
            }
        }
        cycle += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{NullComm, ScriptedComm};
    use crate::instr::Net;
    use crate::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
    use crate::machine::Machine;

    fn cfg() -> BlockKernelCfg {
        BlockKernelCfg {
            pm: 16,
            pn: 16,
            pk: 32,
            a_src: Operand::Ldm,
            b_src: Operand::Ldm,
            a_base: 0,
            b_base: 2048,
            c_base: 4096,
            alpha_addr: 8000,
        }
    }

    fn fill(len: usize) -> Vec<f64> {
        let mut x = 0.91f64;
        (0..len)
            .map(|_| {
                x = (x * 913.0 + 0.531).fract() - 0.5;
                x
            })
            .collect()
    }

    #[test]
    fn schedule_preserves_semantics() {
        let c = cfg();
        let naive = gen_block_kernel(&c, KernelStyle::Naive);
        let auto = list_schedule(&naive);
        assert_eq!(naive.len(), auto.len());
        let mut l1 = fill(8192);
        l1[c.alpha_addr] = 1.75;
        let mut l2 = l1.clone();
        let mut comm = NullComm;
        Machine::new(&mut l1, &mut comm).run(&naive);
        Machine::new(&mut l2, &mut comm).run(&auto);
        assert_eq!(l1, l2, "auto-scheduled kernel changed the numerical result");
    }

    #[test]
    fn schedule_improves_cycles() {
        let c = cfg();
        let naive = gen_block_kernel(&c, KernelStyle::Naive);
        let auto = list_schedule(&naive);
        let mut l1 = fill(8192);
        l1[c.alpha_addr] = 1.0;
        let mut l2 = l1.clone();
        let mut comm = NullComm;
        let rn = Machine::new(&mut l1, &mut comm).run(&naive);
        let ra = Machine::new(&mut l2, &mut comm).run(&auto);
        assert!(
            ra.cycles < rn.cycles * 3 / 4,
            "list scheduling should cut ≥25% of cycles: naive {} vs auto {}",
            rn.cycles,
            ra.cycles
        );
    }

    #[test]
    fn schedule_preserves_mesh_traffic_order() {
        let c = BlockKernelCfg {
            a_src: Operand::LdmBcast(Net::Row),
            b_src: Operand::LdmBcast(Net::Col),
            ..cfg()
        };
        let naive = gen_block_kernel(&c, KernelStyle::Naive);
        let auto = list_schedule(&naive);
        let mut l1 = fill(8192);
        l1[c.alpha_addr] = 1.0;
        let mut l2 = l1.clone();
        let mut c1 = ScriptedComm::default();
        let mut c2 = ScriptedComm::default();
        Machine::new(&mut l1, &mut c1).run(&naive);
        Machine::new(&mut l2, &mut c2).run(&auto);
        assert_eq!(c1.row_out, c2.row_out);
        assert_eq!(c1.col_out, c2.col_out);
    }

    #[test]
    #[should_panic]
    fn branches_rejectedableness() {
        let prog = [Instr::Bne {
            s: crate::regs::IReg(0),
            target: 0,
        }];
        let _ = list_schedule(&prog);
    }

    #[test]
    fn empty_stream_ok() {
        assert!(list_schedule(&[]).is_empty());
    }
}
