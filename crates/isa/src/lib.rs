//! The CPE instruction set, pipeline model, and DGEMM micro-kernels.
//!
//! A CPE has two in-order issue pipelines (§II, §IV-C):
//!
//! * **P0** — the floating-point pipeline, executing the 256-bit fused
//!   multiply-add `vmad` (RAW latency 6 cycles);
//! * **P1** — everything else: integer ALU ops, LDM loads/stores, and
//!   the register-communication instructions `vldr`, `lddec`, `getr`,
//!   `getc` (RAW latency 4 cycles).
//!
//! One instruction per pipeline can issue per cycle, so a `vmad` can be
//! issued *together with* a register-communication or integer
//! instruction — the fact the paper's instruction-scheduling
//! optimization (§IV-C, Algorithm 3) exploits to hide all LDM/mesh
//! latency behind arithmetic.
//!
//! This crate provides:
//!
//! * [`instr::Instr`] — the subset of the SW26010 CPE ISA the DGEMM
//!   kernels need;
//! * [`machine::Machine`] — a cycle-accurate, functional, dual-issue
//!   in-order executor (used both to *validate* kernels numerically and
//!   to *count* their cycles for the timing model);
//! * [`kernels`] — programmatic generators for the register-blocked
//!   micro-kernel in its naive and hand-scheduled (Algorithm 3) forms;
//! * [`sched`] — a greedy list scheduler that software-pipelines a
//!   naive stream automatically (the paper's future-work "automatic
//!   code generation" direction).

pub mod comm;
pub mod compile;
pub mod decoded;
pub mod encoding;
pub mod instr;
pub mod kernels;
pub mod looped;
pub mod machine;
pub mod regs;
pub mod sched;
pub mod tiling;

pub use comm::{CommPort, NullComm, ScriptedComm, SinkComm};
pub use compile::{compile_if_hot, CompiledProgram, HOT_KERNEL_THRESHOLD};
pub use decoded::{BatchedProgram, DecodedProgram};
pub use instr::{Instr, Net};
pub use kernels::{BlockKernelCfg, Operand};
pub use looped::{fits_icache, gen_block_kernel_looped, icache_footprint_bytes};
pub use machine::{BudgetExceeded, EngineBackend, ExecReport, Machine, MAX_EXECUTED};
pub use regs::{IReg, VReg};
pub use sw_probe::stall::{PipeBreakdown, StallKind, StallReport};
