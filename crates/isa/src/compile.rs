//! Trace compilation of straight-line kernels.
//!
//! The generated §IV micro-kernels are fully unrolled and branch-free,
//! and the executor's timing never depends on data values. For such
//! streams the whole [`ExecReport`]/[`StallReport`] pair is a pure
//! function of the instruction sequence, computable once at compile
//! time — and the numeric side collapses to a straight-line table of
//! effects (fused FMA runs, wide contiguous load/store copies,
//! broadcasts) with every LDM address resolved ahead of time. A
//! [`CompiledProgram`] is that table; `Machine::run_compiled` replays
//! it in program order (bitwise identical to interpretation, since all
//! engines apply effects in program order) and returns the precomputed
//! reports.
//!
//! Programs containing `bne` are not traced: the compiled backend
//! keeps the decoded form and falls back to the interpreter, so
//! selection is always safe.
//!
//! # Hot-kernel cache
//!
//! [`compile_if_hot`] is the backend's selection policy: it keys
//! streams by (length, hash) — the same identity the PR 1 timing cache
//! uses — counts sightings, and compiles a stream once it has been
//! seen [`HOT_KERNEL_THRESHOLD`] times, amortizing the one-time
//! compile pass over all later replays. Tallies are exported through
//! the global metrics registry (`isa.jit.*`).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

use crate::decoded::DecodedProgram;
use crate::instr::{Instr, Net};
use crate::machine::{straightline_timing, ExecReport};
use crate::regs::IREG_COUNT;
use sw_probe::stall::StallReport;

/// Sightings of a stream (via [`compile_if_hot`]) before it is
/// compiled: the first run interprets, the second compiles and
/// replays. Low because a trace pays for itself after roughly one
/// replay; the threshold exists so one-shot streams never compile.
pub const HOT_KERNEL_THRESHOLD: u64 = 2;

/// An integer register's value as a symbolic constant: either fully
/// known (written by `setl` on the trace) or the register's value at
/// run entry plus a folded constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IVal {
    /// Entry value of register `.0` plus `.1`.
    InitPlus(u8, i64),
    /// A compile-time constant.
    Known(i64),
}

impl IVal {
    /// Concrete value given the register file at run entry.
    pub(crate) fn resolve(self, entry: &[i64; IREG_COUNT]) -> i64 {
        match self {
            IVal::Known(v) => v,
            IVal::InitPlus(r, d) => entry[r as usize] + d,
        }
    }
}

/// An LDM address, resolved at compile time when the base register
/// folded to a constant, else deferred to run entry.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Addr {
    /// Fully resolved (sign/alignment checked at compile time; bounds
    /// via the trace-wide `abs_end` check).
    Abs(usize),
    /// Entry value of `reg` plus `delta`; checked on every run.
    Dyn { reg: u8, delta: i64 },
}

/// One replay step. Integer ALU ops and `nop`s have no step — their
/// combined outcome is the `final_iregs` summary.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Step {
    /// `n` FMAs `fmas[start..start+n]`, each `[a, b, c, d]`:
    /// `v[d] = v[a].fma(v[b], v[c])`.
    FmaRun { start: u32, n: u32 },
    /// `n` register/address-contiguous vector loads from `addr` into
    /// `d0..d0+n` (one `V256::load_seq`).
    LoadSeq { d0: u8, addr: usize, n: u32 },
    /// The store mirror of [`Step::LoadSeq`].
    StoreSeq { s0: u8, addr: usize, n: u32 },
    /// A vector load whose address needs run-entry resolution.
    Load { d: u8, addr: Addr },
    /// A vector store whose address needs run-entry resolution.
    Store { s: u8, addr: Addr },
    /// `ldde`: scalar load splatted into all lanes.
    Splat { d: u8, addr: Addr },
    /// `vldr`: vector load + row/col broadcast.
    BcastV { d: u8, addr: Addr, col: bool },
    /// `lddec`: scalar splat + row/col broadcast.
    BcastS { d: u8, addr: Addr, col: bool },
    /// `getr`.
    Getr { d: u8 },
    /// `getc`.
    Getc { d: u8 },
    /// `vclr`.
    Clr { d: u8 },
}

/// The compiled form of a straight-line program: the effect table plus
/// the precomputed timing of one full run.
#[derive(Debug, Clone)]
pub(crate) struct Trace {
    pub steps: Vec<Step>,
    /// Side table for [`Step::FmaRun`].
    pub fmas: Vec<[u8; 4]>,
    /// The report every replay returns (timing is stream-pure).
    pub report: ExecReport,
    /// The attribution every probed replay returns.
    pub stalls: StallReport,
    /// Integer register file at run exit, symbolic in the entry file.
    pub final_iregs: [IVal; IREG_COUNT],
    /// One past the highest compile-time-resolved LDM index any step
    /// touches; a single bounds check per replay covers them all.
    pub abs_end: usize,
}

/// A program compiled for the `EngineBackend::Compiled` engine.
///
/// Holds the decoded form unconditionally — branchy programs (no
/// trace) and budget-limited runs execute through it — plus the trace
/// for straight-line replay.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    decoded: DecodedProgram,
    trace: Option<Trace>,
}

impl CompiledProgram {
    /// Decodes and (when branch-free) trace-compiles `prog`.
    pub fn new(prog: &[Instr]) -> Self {
        let decoded = DecodedProgram::new(prog);
        let trace = compile_trace(prog, &decoded);
        CompiledProgram { decoded, trace }
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.decoded.len()
    }

    /// True for the empty program.
    pub fn is_empty(&self) -> bool {
        self.decoded.is_empty()
    }

    /// True when the program compiled to a replayable trace (i.e. it
    /// is branch-free); false means every run takes the decoded
    /// fallback.
    pub fn is_traced(&self) -> bool {
        self.trace.is_some()
    }

    pub(crate) fn decoded(&self) -> &DecodedProgram {
        &self.decoded
    }

    pub(crate) fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }
}

impl From<&[Instr]> for CompiledProgram {
    fn from(prog: &[Instr]) -> Self {
        CompiledProgram::new(prog)
    }
}

/// Folds `base + off` through the symbolic integer state. Sign and
/// alignment of compile-time-resolved addresses are asserted here —
/// the same panics the interpreter raises at run time, just earlier.
fn addr_of(iregs: &[IVal; IREG_COUNT], base: u8, off: i64, vector: bool) -> Addr {
    match iregs[base as usize] {
        IVal::Known(v) => {
            let a = v + off;
            assert!(a >= 0, "negative LDM address {a}");
            let a = a as usize;
            if vector {
                assert!(
                    a.is_multiple_of(4),
                    "vector LDM access at {a} is not 256-bit aligned"
                );
            }
            Addr::Abs(a)
        }
        IVal::InitPlus(r, d) => Addr::Dyn {
            reg: r,
            delta: d + off,
        },
    }
}

fn compile_trace(prog: &[Instr], decoded: &DecodedProgram) -> Option<Trace> {
    if prog.iter().any(|i| matches!(i, Instr::Bne { .. })) {
        return None;
    }
    let mut iregs: [IVal; IREG_COUNT] = std::array::from_fn(|i| IVal::InitPlus(i as u8, 0));
    let mut steps: Vec<Step> = Vec::new();
    let mut fmas: Vec<[u8; 4]> = Vec::new();
    let mut abs_end = 0usize;
    let touch = |a: Addr, doubles: usize, abs_end: &mut usize| {
        if let Addr::Abs(a) = a {
            *abs_end = (*abs_end).max(a + doubles);
        }
    };

    for instr in prog {
        match *instr {
            Instr::Vmad { a, b, c, d } => {
                fmas.push([a.0, b.0, c.0, d.0]);
                match steps.last_mut() {
                    Some(Step::FmaRun { start, n }) if (*start + *n) as usize == fmas.len() - 1 => {
                        *n += 1;
                    }
                    _ => steps.push(Step::FmaRun {
                        start: fmas.len() as u32 - 1,
                        n: 1,
                    }),
                }
            }
            Instr::Vldd { d, base, off } => {
                let a = addr_of(&iregs, base.0, off, true);
                touch(a, 4, &mut abs_end);
                match a {
                    Addr::Abs(a) => match steps.last_mut() {
                        Some(Step::LoadSeq { d0, addr, n })
                            if *d0 as usize + *n as usize == d.0 as usize
                                && *addr + 4 * *n as usize == a =>
                        {
                            *n += 1;
                        }
                        _ => steps.push(Step::LoadSeq {
                            d0: d.0,
                            addr: a,
                            n: 1,
                        }),
                    },
                    Addr::Dyn { .. } => steps.push(Step::Load { d: d.0, addr: a }),
                }
            }
            Instr::Vstd { s, base, off } => {
                let a = addr_of(&iregs, base.0, off, true);
                touch(a, 4, &mut abs_end);
                match a {
                    Addr::Abs(a) => match steps.last_mut() {
                        Some(Step::StoreSeq { s0, addr, n })
                            if *s0 as usize + *n as usize == s.0 as usize
                                && *addr + 4 * *n as usize == a =>
                        {
                            *n += 1;
                        }
                        _ => steps.push(Step::StoreSeq {
                            s0: s.0,
                            addr: a,
                            n: 1,
                        }),
                    },
                    Addr::Dyn { .. } => steps.push(Step::Store { s: s.0, addr: a }),
                }
            }
            Instr::Ldde { d, base, off } => {
                let a = addr_of(&iregs, base.0, off, false);
                touch(a, 1, &mut abs_end);
                steps.push(Step::Splat { d: d.0, addr: a });
            }
            Instr::Vldr { d, base, off, net } => {
                let a = addr_of(&iregs, base.0, off, true);
                touch(a, 4, &mut abs_end);
                steps.push(Step::BcastV {
                    d: d.0,
                    addr: a,
                    col: net == Net::Col,
                });
            }
            Instr::Lddec { d, base, off, net } => {
                let a = addr_of(&iregs, base.0, off, false);
                touch(a, 1, &mut abs_end);
                steps.push(Step::BcastS {
                    d: d.0,
                    addr: a,
                    col: net == Net::Col,
                });
            }
            Instr::Getr { d } => steps.push(Step::Getr { d: d.0 }),
            Instr::Getc { d } => steps.push(Step::Getc { d: d.0 }),
            Instr::Vclr { d } => steps.push(Step::Clr { d: d.0 }),
            Instr::Addl { d, s, imm } => {
                iregs[d.0 as usize] = match iregs[s.0 as usize] {
                    IVal::Known(v) => IVal::Known(v + imm),
                    IVal::InitPlus(r, delta) => IVal::InitPlus(r, delta + imm),
                };
            }
            Instr::Setl { d, imm } => {
                iregs[d.0 as usize] = IVal::Known(imm);
            }
            Instr::Nop => {}
            Instr::Bne { .. } => unreachable!("branchy programs are rejected above"),
        }
    }
    let (report, stalls) = straightline_timing(&decoded.instrs);
    Some(Trace {
        steps,
        fmas,
        report,
        stalls,
        final_iregs: iregs,
        abs_end,
    })
}

// ---------------------------------------------------------------------------
// Hot-kernel JIT cache
// ---------------------------------------------------------------------------

/// Metric: streams compiled (transitioned cold → hot).
pub const JIT_COMPILES_METRIC: &str = "isa.jit.compiles";
/// Metric: sightings served by an already-compiled trace.
pub const JIT_HOT_HITS_METRIC: &str = "isa.jit.hot_hits";
/// Metric: sightings below the hot threshold (interpreted runs).
pub const JIT_COLD_METRIC: &str = "isa.jit.cold_sightings";

fn jit_compiles() -> &'static sw_probe::Counter {
    static C: OnceLock<Arc<sw_probe::Counter>> = OnceLock::new();
    C.get_or_init(|| sw_probe::metrics::global().counter(JIT_COMPILES_METRIC))
}

fn jit_hot_hits() -> &'static sw_probe::Counter {
    static C: OnceLock<Arc<sw_probe::Counter>> = OnceLock::new();
    C.get_or_init(|| sw_probe::metrics::global().counter(JIT_HOT_HITS_METRIC))
}

fn jit_cold() -> &'static sw_probe::Counter {
    static C: OnceLock<Arc<sw_probe::Counter>> = OnceLock::new();
    C.get_or_init(|| sw_probe::metrics::global().counter(JIT_COLD_METRIC))
}

struct JitEntry {
    sightings: u64,
    compiled: Option<Arc<CompiledProgram>>,
}

fn jit_cache() -> &'static Mutex<HashMap<(usize, u64), JitEntry>> {
    static CACHE: OnceLock<Mutex<HashMap<(usize, u64), JitEntry>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn stream_key(prog: &[Instr]) -> (usize, u64) {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    prog.hash(&mut h);
    (prog.len(), h.finish())
}

/// Records a sighting of `prog` and returns its compiled form once the
/// stream is hot — seen at least [`HOT_KERNEL_THRESHOLD`] times since
/// the last [`jit_cache_reset`]. Below the threshold returns `None`
/// (callers interpret). Compilation happens exactly once per distinct
/// stream; later sightings share the `Arc`.
pub fn compile_if_hot(prog: &[Instr]) -> Option<Arc<CompiledProgram>> {
    let key = stream_key(prog);
    let mut cache = jit_cache().lock().unwrap_or_else(|e| e.into_inner());
    let entry = cache.entry(key).or_insert(JitEntry {
        sightings: 0,
        compiled: None,
    });
    entry.sightings += 1;
    if entry.sightings < HOT_KERNEL_THRESHOLD {
        jit_cold().inc();
        return None;
    }
    if entry.compiled.is_none() {
        jit_compiles().inc();
        entry.compiled = Some(Arc::new(CompiledProgram::new(prog)));
    } else {
        jit_hot_hits().inc();
    }
    entry.compiled.clone()
}

/// Snapshot of the hot-kernel cache counters (process-wide):
/// `(compiles, hot_hits, cold_sightings)`.
pub fn jit_cache_stats() -> (u64, u64, u64) {
    (jit_compiles().get(), jit_hot_hits().get(), jit_cold().get())
}

/// Empties the hot-kernel cache and zeroes its counters. Only for
/// benchmarks and tests that need cold-start conditions.
pub fn jit_cache_reset() {
    jit_cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
    jit_compiles().reset();
    jit_hot_hits().reset();
    jit_cold().reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::{IReg, VReg};

    #[test]
    fn branchy_programs_do_not_trace() {
        let prog = vec![
            Instr::Setl { d: IReg(1), imm: 1 },
            Instr::Bne {
                s: IReg(1),
                target: 2,
            },
        ];
        let c = CompiledProgram::new(&prog);
        assert!(!c.is_traced());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn straightline_program_traces_with_folded_addresses() {
        // setl r1 = 8; two contiguous loads off r1; an fma; a store.
        let prog = vec![
            Instr::Setl { d: IReg(1), imm: 8 },
            Instr::Vldd {
                d: VReg(0),
                base: IReg(1),
                off: 0,
            },
            Instr::Vldd {
                d: VReg(1),
                base: IReg(1),
                off: 4,
            },
            Instr::Vmad {
                a: VReg(0),
                b: VReg(1),
                c: VReg(2),
                d: VReg(2),
            },
            Instr::Vstd {
                s: VReg(2),
                base: IReg(1),
                off: 8,
            },
        ];
        let c = CompiledProgram::new(&prog);
        let tr = c.trace().expect("branch-free program must trace");
        // Two contiguous loads fused into one LoadSeq at abs addr 8.
        assert!(matches!(
            tr.steps[0],
            Step::LoadSeq {
                d0: 0,
                addr: 8,
                n: 2
            }
        ));
        assert!(matches!(tr.steps[1], Step::FmaRun { start: 0, n: 1 }));
        assert!(matches!(
            tr.steps[2],
            Step::StoreSeq {
                s0: 2,
                addr: 16,
                n: 1
            }
        ));
        assert_eq!(tr.abs_end, 20);
        assert_eq!(tr.final_iregs[1], IVal::Known(8));
        assert_eq!(tr.final_iregs[2], IVal::InitPlus(2, 0));
        assert_eq!(tr.report.instructions, 5);
        assert_eq!(tr.report.vmads, 1);
        tr.stalls.check().unwrap();
        assert_eq!(tr.stalls.cycles, tr.report.cycles);
    }

    #[test]
    fn unwritten_base_registers_defer_to_run_entry() {
        let prog = vec![Instr::Vldd {
            d: VReg(0),
            base: IReg(3),
            off: 4,
        }];
        let tr = CompiledProgram::new(&prog);
        let tr = tr.trace().unwrap();
        assert!(matches!(
            tr.steps[0],
            Step::Load {
                d: 0,
                addr: Addr::Dyn { reg: 3, delta: 4 }
            }
        ));
        assert_eq!(tr.abs_end, 0, "dynamic addresses don't enter abs_end");
    }

    #[test]
    fn hot_threshold_gates_compilation() {
        jit_cache_reset();
        let prog = vec![Instr::Vclr { d: VReg(0) }, Instr::Nop];
        assert!(compile_if_hot(&prog).is_none(), "first sighting stays cold");
        let c = compile_if_hot(&prog).expect("second sighting compiles");
        assert!(c.is_traced());
        let again = compile_if_hot(&prog).expect("third sighting hits");
        assert!(Arc::ptr_eq(&c, &again), "hot hits share the compiled Arc");
        let (compiles, hot_hits, cold) = jit_cache_stats();
        assert_eq!(compiles, 1);
        assert_eq!(hot_hits, 1);
        assert_eq!(cold, 1);
        jit_cache_reset();
        assert_eq!(jit_cache_stats(), (0, 0, 0));
    }
}
