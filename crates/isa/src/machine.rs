//! The cycle-accurate, functional CPE executor.
//!
//! [`Machine`] executes an instruction stream against an LDM slice and a
//! [`CommPort`], producing both the numerical effects *and* an
//! [`ExecReport`] with the cycle count a dual-issue in-order CPE would
//! take:
//!
//! * one instruction per pipeline (P0 = float, P1 = everything else)
//!   may issue per cycle, in program order;
//! * an instruction stalls until its source registers are ready (RAW:
//!   `vmad` 6 cycles, loads/register communication 4, integer ops 1)
//!   and until a pending write to its destination completes (WAW);
//! * a taken branch costs [`crate::instr::BRANCH_TAKEN_PENALTY`] refill
//!   cycles.
//!
//! Because issue order is program order, *instruction scheduling* —
//! not out-of-order hardware — decides how much of the P1 latency hides
//! under `vmad`s, which is precisely the effect §IV-C measures (a
//! 113.9 % speed-up from reordering alone).
//!
//! # Execution engine
//!
//! The hot path is [`Machine::run_decoded`]: it interprets a
//! [`DecodedProgram`] whose per-instruction metadata (pipe, latency,
//! source/destination register indices) was resolved once at decode
//! time, so the dynamic loop performs no heap allocation and no
//! metadata re-derivation. [`Machine::run`] decodes internally for
//! one-shot use. [`Machine::run_reference`] preserves the original
//! direct-from-[`Instr`] interpreter as a golden model: equivalence
//! tests assert the two produce bitwise-identical numerics and
//! field-for-field identical [`ExecReport`]s.

use crate::comm::CommPort;
use crate::compile::{Addr, CompiledProgram, Step};
use crate::decoded::{BatchKind, BatchedProgram, DecodedInstr, DecodedProgram, NO_REG};
use crate::instr::{Instr, Pipe, BRANCH_TAKEN_PENALTY};
use crate::regs::{IReg, IREG_COUNT};
use sw_arch::consts::VREG_COUNT;
use sw_arch::V256;
use sw_probe::stall::{StallKind, StallReport};

/// Result latency that marks a producer as a *load-class* instruction
/// (LDM loads and register-communication receives all complete in 4
/// cycles); stalls on such producers are attributed to
/// [`StallKind::LoadUse`], everything else to [`StallKind::Raw`].
const LOAD_LATENCY: u64 = 4;

/// Incremental per-pipe cycle attribution, updated at every issue.
///
/// The invariant (checked by `finish` in debug builds and pinned by
/// property tests): after the run, each pipe's buckets sum exactly to
/// `ExecReport::cycles`. The accounting is interval arithmetic over
/// the issue timeline — no per-cycle loop:
///
/// * `attributed[p]` — the first cycle of pipe `p` not yet classified;
/// * branch-refill windows (`[t+1, t+1+BRANCH_TAKEN_PENALTY)` after a
///   taken branch at `t`) are tracked as a running total; they always
///   fall inside both pipes' current gaps, so the pending total since
///   a pipe's last issue is exactly its loop-overhead share;
/// * at an issue on pipe `p` at cycle `t`, the gap
///   `[attributed[p], t)` splits into refill (loop overhead), the
///   operand-hazard window `[max(attributed, cur0), t_ready)` (RAW or
///   load-use, by the binding producer's class, load preferred on
///   ties), and the remainder (pipe conflict: the in-order front end
///   was busy elsewhere or the slot was taken);
/// * the tail `[attributed[p], cycles)` after the last issue is
///   refill (clamped to the run's end) plus pipe conflict.
#[derive(Debug)]
struct StallProbe {
    report: StallReport,
    attributed: [u64; 2],
    refill_snap: [u64; 2],
    refill_cum: u64,
    refill_last_end: u64,
    vload: [bool; VREG_COUNT],
}

impl Default for StallProbe {
    fn default() -> Self {
        StallProbe {
            report: StallReport::default(),
            attributed: [0; 2],
            refill_snap: [0; 2],
            refill_cum: 0,
            refill_last_end: 0,
            vload: [false; VREG_COUNT],
        }
    }
}

/// Tracks the strongest not-yet-ready operand constraint: the latest
/// ready time wins; at equal times a load-class producer wins (the
/// scheduling literature's convention, and the paper's §5.3 focus).
#[inline]
fn consider(best: &mut (u64, bool), ready: u64, is_load: bool) {
    if ready > best.0 {
        *best = (ready, is_load);
    } else if ready == best.0 && is_load {
        best.1 = true;
    }
}

impl StallProbe {
    /// Classifies the gap behind an issue on `pipe` at cycle `t`.
    /// `cur0` is the front-end cycle when this instruction's
    /// processing began; `(t_ready, ready_is_load)` the binding
    /// operand constraint.
    #[inline]
    fn on_issue(&mut self, pipe: Pipe, t: u64, cur0: u64, ready: (u64, bool)) {
        let p = pipe as usize;
        let a = self.attributed[p];
        let refill = self.refill_cum - self.refill_snap[p];
        let hazard = t.min(ready.0).saturating_sub(a.max(cur0));
        let gap = t - a;
        debug_assert!(refill + hazard <= gap, "attribution exceeds the gap");
        let b = &mut self.report.pipes[p];
        b.add(StallKind::LoopOverhead, refill);
        b.add(
            if ready.1 {
                StallKind::LoadUse
            } else {
                StallKind::Raw
            },
            hazard,
        );
        b.add(StallKind::PipeConflict, gap - refill - hazard);
        b.issue += 1;
        self.attributed[p] = t + 1;
        self.refill_snap[p] = self.refill_cum;
    }

    /// Opens a refill window after a branch taken at issue cycle `t`.
    #[inline]
    fn on_taken_branch(&mut self, t: u64) {
        self.refill_cum += BRANCH_TAKEN_PENALTY;
        self.refill_last_end = t + 1 + BRANCH_TAKEN_PENALTY;
    }

    /// Records the producer class of a vector-register write.
    #[inline]
    fn on_vdst_write(&mut self, r: u8, is_load: bool) {
        self.vload[r as usize] = is_load;
    }

    /// Attributes each pipe's tail and seals the report.
    fn finish(&mut self, cycles: u64) -> StallReport {
        self.report.cycles = cycles;
        for p in 0..2 {
            debug_assert!(self.attributed[p] <= cycles);
            let tail = cycles - self.attributed[p];
            let pending = self.refill_cum - self.refill_snap[p];
            // Only the last window can outlive the run (a taken branch
            // as the final dynamic instruction).
            let overshoot = self.refill_last_end.saturating_sub(cycles);
            let refill = pending.saturating_sub(overshoot).min(tail);
            let b = &mut self.report.pipes[p];
            b.add(StallKind::LoopOverhead, refill);
            b.add(StallKind::PipeConflict, tail - refill);
        }
        debug_assert!(self.report.check().is_ok(), "{:?}", self.report.check());
        self.report
    }
}

/// Default cap on executed instructions, so a malformed loop fails fast
/// instead of hanging the test suite. Override per machine with
/// [`Machine::set_budget`].
pub const MAX_EXECUTED: u64 = 200_000_000;

/// The executor's instruction budget was exhausted: the program executed
/// more dynamic instructions than allowed, which in this ISA (whose only
/// back-edge is `bne`) almost always means a runaway loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Program counter of the instruction that exceeded the budget.
    pub pc: usize,
    /// The instruction at that pc.
    pub instr: Instr,
    /// Dynamic instructions executed when the budget tripped.
    pub executed: u64,
    /// The budget that was in force.
    pub budget: u64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "instruction budget exhausted after {} executed (budget {}) at pc {}: `{}` — runaway loop?",
            self.executed, self.budget, self.pc, self.instr
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Cycle and issue statistics of one program run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecReport {
    /// Total cycles from first issue to last issue (inclusive).
    pub cycles: u64,
    /// Instructions executed (dynamic count).
    pub instructions: u64,
    /// `vmad`s executed.
    pub vmads: u64,
    /// Cycles in which both pipelines issued.
    pub dual_issue_cycles: u64,
    /// Taken branches.
    pub taken_branches: u64,
}

impl ExecReport {
    /// Fraction of cycles that retired a `vmad` — the paper reports 97 %
    /// for the scheduled kernel.
    pub fn vmad_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.vmads as f64 / self.cycles as f64
        }
    }

    /// Double-precision flops performed (8 per `vmad`).
    pub fn flops(&self) -> u64 {
        self.vmads * 8
    }
}

/// Which execution engine runs a kernel stream.
///
/// All three produce bitwise-identical numerics, field-for-field
/// identical [`ExecReport`]s, and identical stall attribution (pinned
/// by the engine-equivalence property suite); they differ only in host
/// wall time. Selected per [`Machine`] call site and plumbed through
/// `CpeCtx`/`DgemmRunner` in the higher layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineBackend {
    /// The predecoded one-instruction-at-a-time interpreter.
    #[default]
    Decoded,
    /// Decode-time fusion of adjacent `vmad`/`vldd`/`vstd` runs into
    /// wide micro-ops with specialized single-opcode dispatch loops.
    Batched,
    /// Trace compilation: straight-line programs are translated once
    /// into an effect table with precomputed timing, then replayed;
    /// branchy streams fall back to the decoded engine.
    Compiled,
}

impl EngineBackend {
    /// All backends, in escalation order.
    pub const ALL: [EngineBackend; 3] = [
        EngineBackend::Decoded,
        EngineBackend::Batched,
        EngineBackend::Compiled,
    ];

    /// CLI/JSON-stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            EngineBackend::Decoded => "decoded",
            EngineBackend::Batched => "batched",
            EngineBackend::Compiled => "compiled",
        }
    }
}

impl std::str::FromStr for EngineBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "decoded" => Ok(EngineBackend::Decoded),
            "batched" => Ok(EngineBackend::Batched),
            "compiled" => Ok(EngineBackend::Compiled),
            other => Err(format!(
                "unknown engine backend `{other}` (expected decoded|batched|compiled)"
            )),
        }
    }
}

impl std::fmt::Display for EngineBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One CPE: register files, an LDM view, and a communication port.
pub struct Machine<'a, C: CommPort> {
    /// Vector register file.
    pub vregs: [V256; VREG_COUNT],
    /// Integer register file.
    pub iregs: [i64; IREG_COUNT],
    ldm: &'a mut [f64],
    comm: &'a mut C,
    budget: u64,
}

impl<'a, C: CommPort> Machine<'a, C> {
    /// A machine with zeroed registers over the given LDM and port.
    pub fn new(ldm: &'a mut [f64], comm: &'a mut C) -> Self {
        Machine {
            vregs: [V256::ZERO; VREG_COUNT],
            iregs: [0; IREG_COUNT],
            ldm,
            comm,
            budget: MAX_EXECUTED,
        }
    }

    /// Overrides the dynamic-instruction budget (default
    /// [`MAX_EXECUTED`]). Tests of the runaway-loop guard use a tiny
    /// budget.
    pub fn set_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    fn addr(&self, base: crate::regs::IReg, off: i64) -> usize {
        let a = self.iregs[base.idx()] + off;
        assert!(a >= 0, "negative LDM address {a}");
        let a = a as usize;
        assert!(
            a < self.ldm.len(),
            "LDM address {a} beyond scratch pad ({} doubles)",
            self.ldm.len()
        );
        a
    }

    fn vaddr(&self, base: crate::regs::IReg, off: i64) -> usize {
        let a = self.addr(base, off);
        assert!(
            a.is_multiple_of(4),
            "vector LDM access at {a} is not 256-bit aligned"
        );
        assert!(
            a + 4 <= self.ldm.len(),
            "vector LDM access at {a} runs off the scratch pad"
        );
        a
    }

    /// Runs the program to completion, returning issue statistics.
    /// Panics (with the offending pc and instruction) if the
    /// instruction budget is exhausted; use [`Machine::try_run`] to
    /// handle that case as a value.
    pub fn run(&mut self, prog: &[Instr]) -> ExecReport {
        match self.try_run(prog) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`Machine::run`], returning a structured error instead of
    /// panicking when the instruction budget is exhausted.
    pub fn try_run(&mut self, prog: &[Instr]) -> Result<ExecReport, BudgetExceeded> {
        self.try_run_decoded(&DecodedProgram::new(prog))
    }

    /// Runs a predecoded program (the zero-allocation hot path; decode
    /// once with [`DecodedProgram::new`], run many times). Panics on
    /// budget exhaustion like [`Machine::run`].
    pub fn run_decoded(&mut self, prog: &DecodedProgram) -> ExecReport {
        match self.try_run_decoded(prog) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs a predecoded program, returning a structured error when the
    /// instruction budget is exhausted.
    pub fn try_run_decoded(&mut self, prog: &DecodedProgram) -> Result<ExecReport, BudgetExceeded> {
        self.exec_decoded::<false>(prog, &mut StallProbe::default())
            .map(|(report, _)| report)
    }

    /// Like [`Machine::run`], but additionally classifies every
    /// simulated cycle of each pipe (issue, RAW, load-use, pipe
    /// conflict, loop overhead). Panics on budget exhaustion.
    pub fn run_probed(&mut self, prog: &[Instr]) -> (ExecReport, StallReport) {
        self.run_decoded_probed(&DecodedProgram::new(prog))
    }

    /// Probed run over a predecoded program; panics on budget
    /// exhaustion like [`Machine::run_decoded`].
    pub fn run_decoded_probed(&mut self, prog: &DecodedProgram) -> (ExecReport, StallReport) {
        match self.try_run_decoded_probed(prog) {
            Ok(pair) => pair,
            Err(e) => panic!("{e}"),
        }
    }

    /// Probed run returning a structured error when the instruction
    /// budget is exhausted.
    pub fn try_run_decoded_probed(
        &mut self,
        prog: &DecodedProgram,
    ) -> Result<(ExecReport, StallReport), BudgetExceeded> {
        self.exec_decoded::<true>(prog, &mut StallProbe::default())
    }

    /// Runs a fused [`BatchedProgram`]; panics on budget exhaustion
    /// like [`Machine::run`].
    pub fn run_batched(&mut self, prog: &BatchedProgram) -> ExecReport {
        match self.try_run_batched(prog) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs a fused [`BatchedProgram`], returning a structured error
    /// when the instruction budget is exhausted.
    pub fn try_run_batched(&mut self, prog: &BatchedProgram) -> Result<ExecReport, BudgetExceeded> {
        self.exec_batched::<false>(prog, &mut StallProbe::default())
            .map(|(report, _)| report)
    }

    /// Probed batched run; panics on budget exhaustion.
    pub fn run_batched_probed(&mut self, prog: &BatchedProgram) -> (ExecReport, StallReport) {
        match self.try_run_batched_probed(prog) {
            Ok(pair) => pair,
            Err(e) => panic!("{e}"),
        }
    }

    /// Probed batched run returning a structured error when the
    /// instruction budget is exhausted.
    pub fn try_run_batched_probed(
        &mut self,
        prog: &BatchedProgram,
    ) -> Result<(ExecReport, StallReport), BudgetExceeded> {
        self.exec_batched::<true>(prog, &mut StallProbe::default())
    }

    /// Runs a trace-compiled program; panics on budget exhaustion.
    pub fn run_compiled(&mut self, prog: &CompiledProgram) -> ExecReport {
        match self.try_run_compiled(prog) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs a trace-compiled program, returning a structured error
    /// when the instruction budget is exhausted.
    pub fn try_run_compiled(
        &mut self,
        prog: &CompiledProgram,
    ) -> Result<ExecReport, BudgetExceeded> {
        self.exec_compiled::<false>(prog).map(|(report, _)| report)
    }

    /// Probed compiled run; panics on budget exhaustion.
    pub fn run_compiled_probed(&mut self, prog: &CompiledProgram) -> (ExecReport, StallReport) {
        match self.try_run_compiled_probed(prog) {
            Ok(pair) => pair,
            Err(e) => panic!("{e}"),
        }
    }

    /// Probed compiled run returning a structured error when the
    /// instruction budget is exhausted.
    pub fn try_run_compiled_probed(
        &mut self,
        prog: &CompiledProgram,
    ) -> Result<(ExecReport, StallReport), BudgetExceeded> {
        self.exec_compiled::<true>(prog)
    }

    /// One-shot convenience: runs `prog` on the selected backend,
    /// building the backend's program representation internally. Hot
    /// paths should instead build a [`BatchedProgram`] /
    /// [`CompiledProgram`] once and reuse it across runs.
    pub fn run_backend(&mut self, backend: EngineBackend, prog: &[Instr]) -> ExecReport {
        match self.try_run_backend(backend, prog) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`Machine::run_backend`], returning a structured error on
    /// budget exhaustion.
    pub fn try_run_backend(
        &mut self,
        backend: EngineBackend,
        prog: &[Instr],
    ) -> Result<ExecReport, BudgetExceeded> {
        match backend {
            EngineBackend::Decoded => self.try_run_decoded(&DecodedProgram::new(prog)),
            EngineBackend::Batched => self.try_run_batched(&BatchedProgram::new(prog)),
            EngineBackend::Compiled => self.try_run_compiled(&CompiledProgram::new(prog)),
        }
    }

    /// One-shot probed run on the selected backend; panics on budget
    /// exhaustion.
    pub fn run_backend_probed(
        &mut self,
        backend: EngineBackend,
        prog: &[Instr],
    ) -> (ExecReport, StallReport) {
        let result = match backend {
            EngineBackend::Decoded => self.try_run_decoded_probed(&DecodedProgram::new(prog)),
            EngineBackend::Batched => self.try_run_batched_probed(&BatchedProgram::new(prog)),
            EngineBackend::Compiled => self.try_run_compiled_probed(&CompiledProgram::new(prog)),
        };
        match result {
            Ok(pair) => pair,
            Err(e) => panic!("{e}"),
        }
    }

    /// The decoded-stream engine. With `PROBE = false` every
    /// attribution touch point is compiled out (the const generic is
    /// the "cheap branch" the probes hide behind), so the unprobed
    /// fig6 sweep pays nothing measurable — `engine_bench` asserts
    /// <2% against the recorded baseline.
    fn exec_decoded<const PROBE: bool>(
        &mut self,
        prog: &DecodedProgram,
        probe: &mut StallProbe,
    ) -> Result<(ExecReport, StallReport), BudgetExceeded> {
        let instrs = prog.instrs.as_slice();
        let mut report = ExecReport::default();
        // Scoreboard: the cycle at which each register's pending write
        // completes.
        let mut vready = [0u64; VREG_COUNT];
        let mut iready = [0u64; IREG_COUNT];
        // Issue state: current cycle and which pipes issued in it.
        let mut cur: u64 = 0;
        let mut p0_used = false;
        let mut p1_used = false;
        let mut last_issue: u64 = 0;
        let mut pc = 0usize;

        while pc < instrs.len() {
            let di = &instrs[pc];
            report.instructions += 1;
            if report.instructions > self.budget {
                return Err(BudgetExceeded {
                    pc,
                    instr: di.op,
                    executed: report.instructions,
                    budget: self.budget,
                });
            }

            // Earliest legal issue cycle: in order, sources ready (RAW),
            // destination write drained (WAW).
            let cur0 = cur;
            let mut t = cur;
            let mut ready = (0u64, false);
            for &r in &di.vsrcs[..di.n_vsrcs as usize] {
                let rt = vready[r as usize];
                t = t.max(rt);
                if PROBE {
                    consider(&mut ready, rt, probe.vload[r as usize]);
                }
            }
            if di.isrc != NO_REG {
                let rt = iready[di.isrc as usize];
                t = t.max(rt);
                if PROBE {
                    consider(&mut ready, rt, false);
                }
            }
            if di.vdst != NO_REG {
                let rt = vready[di.vdst as usize];
                t = t.max(rt);
                if PROBE {
                    consider(&mut ready, rt, probe.vload[di.vdst as usize]);
                }
            }
            if di.idst != NO_REG {
                let rt = iready[di.idst as usize];
                t = t.max(rt);
                if PROBE {
                    consider(&mut ready, rt, false);
                }
            }
            // Find a free slot on the instruction's pipe.
            loop {
                if t > cur {
                    cur = t;
                    p0_used = false;
                    p1_used = false;
                }
                let used = match di.pipe {
                    Pipe::P0 => &mut p0_used,
                    Pipe::P1 => &mut p1_used,
                };
                if !*used {
                    *used = true;
                    break;
                }
                t += 1;
            }
            if p0_used && p1_used {
                report.dual_issue_cycles += 1;
            }
            last_issue = last_issue.max(t);
            if PROBE {
                probe.on_issue(di.pipe, t, cur0, ready);
            }

            // Retire: update the scoreboard and perform the effect.
            if di.vdst != NO_REG {
                vready[di.vdst as usize] = t + di.latency;
                if PROBE {
                    probe.on_vdst_write(di.vdst, di.latency == LOAD_LATENCY);
                }
            }
            if di.idst != NO_REG {
                iready[di.idst as usize] = t + di.latency;
            }
            let mut next_pc = pc + 1;
            match di.op {
                Instr::Vmad { a, b, c, d } => {
                    report.vmads += 1;
                    self.vregs[d.idx()] =
                        self.vregs[a.idx()].fma(self.vregs[b.idx()], self.vregs[c.idx()]);
                }
                Instr::Vldd { d, base, off } => {
                    let a = self.vaddr(base, off);
                    self.vregs[d.idx()] = V256::load(&self.ldm[a..]);
                }
                Instr::Vstd { s, base, off } => {
                    let a = self.vaddr(base, off);
                    self.vregs[s.idx()].store(&mut self.ldm[a..a + 4]);
                }
                Instr::Ldde { d, base, off } => {
                    let a = self.addr(base, off);
                    self.vregs[d.idx()] = V256::splat(self.ldm[a]);
                }
                Instr::Vldr { d, base, off, net } => {
                    let a = self.vaddr(base, off);
                    let v = V256::load(&self.ldm[a..]);
                    match net {
                        crate::instr::Net::Row => self.comm.row_bcast(v),
                        crate::instr::Net::Col => self.comm.col_bcast(v),
                    }
                    self.vregs[d.idx()] = v;
                }
                Instr::Lddec { d, base, off, net } => {
                    let a = self.addr(base, off);
                    let v = V256::splat(self.ldm[a]);
                    match net {
                        crate::instr::Net::Row => self.comm.row_bcast(v),
                        crate::instr::Net::Col => self.comm.col_bcast(v),
                    }
                    self.vregs[d.idx()] = v;
                }
                Instr::Getr { d } => {
                    self.vregs[d.idx()] = self.comm.getr();
                }
                Instr::Getc { d } => {
                    self.vregs[d.idx()] = self.comm.getc();
                }
                Instr::Vclr { d } => {
                    self.vregs[d.idx()] = V256::ZERO;
                }
                Instr::Addl { d, s, imm } => {
                    self.iregs[d.idx()] = self.iregs[s.idx()] + imm;
                }
                Instr::Setl { d, imm } => {
                    self.iregs[d.idx()] = imm;
                }
                Instr::Bne { s, target } => {
                    if self.iregs[s.idx()] != 0 {
                        report.taken_branches += 1;
                        next_pc = target;
                        // Pipeline refill bubble: nothing issues until
                        // the fetch redirect completes.
                        cur = t + 1 + BRANCH_TAKEN_PENALTY;
                        p0_used = false;
                        p1_used = false;
                        if PROBE {
                            probe.on_taken_branch(t);
                        }
                    }
                }
                Instr::Nop => {}
            }
            pc = next_pc;
        }
        report.cycles = if report.instructions == 0 {
            0
        } else {
            last_issue + 1
        };
        let stall = if PROBE {
            probe.finish(report.cycles)
        } else {
            StallReport::default()
        };
        Ok((report, stall))
    }

    /// The fused-run engine. Each [`BatchKind`] run executes through a
    /// loop specialized to one opcode — operands read from the flat
    /// [`DecodedInstr`] fields, no per-element opcode dispatch — while
    /// keeping scoreboard updates, dual-issue slotting, and stall
    /// attribution per element, so reports and numerics are bitwise
    /// identical to the decoded engine. Register/address-contiguous
    /// load/store runs additionally collapse their data movement into
    /// one wide `V256::load_seq`/`store_seq` call (timing reads no
    /// data and loads/stores touch disjoint state, so the wide copy
    /// commutes with the issue accounting).
    // `pc` ranges are indexed, not iterated: `pc` is also a value
    // (budget-error sites, branch landings), and the fused loops must
    // mirror the decoded interpreter's pc arithmetic line for line.
    #[allow(clippy::needless_range_loop)]
    fn exec_batched<const PROBE: bool>(
        &mut self,
        prog: &BatchedProgram,
        probe: &mut StallProbe,
    ) -> Result<(ExecReport, StallReport), BudgetExceeded> {
        let instrs = prog.instrs.as_slice();
        let ops = prog.ops.as_slice();
        let mut report = ExecReport::default();
        let mut vready = [0u64; VREG_COUNT];
        let mut iready = [0u64; IREG_COUNT];
        let mut cur: u64 = 0;
        let mut p0_used = false;
        let mut p1_used = false;
        let mut last_issue: u64 = 0;
        let mut oi = 0usize;

        while oi < ops.len() {
            let op = ops[oi];
            let pc0 = op.pc0 as usize;
            let n = op.n as usize;
            match op.kind {
                BatchKind::VmadRun => {
                    // P0-only run: three vector sources, WAW on the
                    // destination, fixed vmad latency.
                    for pc in pc0..pc0 + n {
                        let di = &instrs[pc];
                        report.instructions += 1;
                        if report.instructions > self.budget {
                            return Err(BudgetExceeded {
                                pc,
                                instr: di.op,
                                executed: report.instructions,
                                budget: self.budget,
                            });
                        }
                        let a = di.vsrcs[0] as usize;
                        let b = di.vsrcs[1] as usize;
                        let c = di.vsrcs[2] as usize;
                        let d = di.vdst as usize;
                        let cur0 = cur;
                        let mut t = cur
                            .max(vready[a])
                            .max(vready[b])
                            .max(vready[c])
                            .max(vready[d]);
                        let mut ready = (0u64, false);
                        if PROBE {
                            consider(&mut ready, vready[a], probe.vload[a]);
                            consider(&mut ready, vready[b], probe.vload[b]);
                            consider(&mut ready, vready[c], probe.vload[c]);
                            consider(&mut ready, vready[d], probe.vload[d]);
                        }
                        if t == cur && p0_used {
                            t += 1;
                        }
                        if t > cur {
                            cur = t;
                            p1_used = false;
                        }
                        p0_used = true;
                        if p1_used {
                            report.dual_issue_cycles += 1;
                        }
                        last_issue = last_issue.max(t);
                        if PROBE {
                            probe.on_issue(Pipe::P0, t, cur0, ready);
                            probe.on_vdst_write(di.vdst, di.latency == LOAD_LATENCY);
                        }
                        vready[d] = t + di.latency;
                        report.vmads += 1;
                        self.vregs[d] = self.vregs[a].fma(self.vregs[b], self.vregs[c]);
                    }
                    oi += 1;
                }
                BatchKind::VlddRun => {
                    let fits = report.instructions + n as u64 <= self.budget;
                    if op.seq && fits {
                        report.instructions += n as u64;
                        for pc in pc0..pc0 + n {
                            let di = &instrs[pc];
                            let base = di.isrc as usize;
                            let d = di.vdst as usize;
                            let cur0 = cur;
                            let mut t = cur.max(iready[base]).max(vready[d]);
                            let mut ready = (0u64, false);
                            if PROBE {
                                consider(&mut ready, iready[base], false);
                                consider(&mut ready, vready[d], probe.vload[d]);
                            }
                            if t == cur && p1_used {
                                t += 1;
                            }
                            if t > cur {
                                cur = t;
                                p0_used = false;
                            }
                            p1_used = true;
                            if p0_used {
                                report.dual_issue_cycles += 1;
                            }
                            last_issue = last_issue.max(t);
                            if PROBE {
                                probe.on_issue(Pipe::P1, t, cur0, ready);
                                probe.on_vdst_write(di.vdst, di.latency == LOAD_LATENCY);
                            }
                            vready[d] = t + di.latency;
                        }
                        // Wide effect: bounds/alignment of the first
                        // element plus bounds of the last cover the
                        // whole contiguous window.
                        let di0 = &instrs[pc0];
                        let a0 = self.vaddr(IReg(di0.isrc), di0.imm);
                        let last = &instrs[pc0 + n - 1];
                        let _ = self.vaddr(IReg(last.isrc), last.imm);
                        let d0 = di0.vdst as usize;
                        V256::load_seq(&mut self.vregs[d0..d0 + n], &self.ldm[a0..]);
                    } else {
                        // Non-contiguous run, or the budget trips inside
                        // it: per-element loads with exact partial-state
                        // semantics.
                        for pc in pc0..pc0 + n {
                            let di = &instrs[pc];
                            report.instructions += 1;
                            if report.instructions > self.budget {
                                return Err(BudgetExceeded {
                                    pc,
                                    instr: di.op,
                                    executed: report.instructions,
                                    budget: self.budget,
                                });
                            }
                            let base = di.isrc as usize;
                            let d = di.vdst as usize;
                            let cur0 = cur;
                            let mut t = cur.max(iready[base]).max(vready[d]);
                            let mut ready = (0u64, false);
                            if PROBE {
                                consider(&mut ready, iready[base], false);
                                consider(&mut ready, vready[d], probe.vload[d]);
                            }
                            if t == cur && p1_used {
                                t += 1;
                            }
                            if t > cur {
                                cur = t;
                                p0_used = false;
                            }
                            p1_used = true;
                            if p0_used {
                                report.dual_issue_cycles += 1;
                            }
                            last_issue = last_issue.max(t);
                            if PROBE {
                                probe.on_issue(Pipe::P1, t, cur0, ready);
                                probe.on_vdst_write(di.vdst, di.latency == LOAD_LATENCY);
                            }
                            vready[d] = t + di.latency;
                            let a = self.vaddr(IReg(di.isrc), di.imm);
                            self.vregs[d] = V256::load(&self.ldm[a..]);
                        }
                    }
                    oi += 1;
                }
                BatchKind::VstdRun => {
                    let fits = report.instructions + n as u64 <= self.budget;
                    if op.seq && fits {
                        report.instructions += n as u64;
                        for pc in pc0..pc0 + n {
                            let di = &instrs[pc];
                            let s = di.vsrcs[0] as usize;
                            let base = di.isrc as usize;
                            let cur0 = cur;
                            let mut t = cur.max(vready[s]).max(iready[base]);
                            let mut ready = (0u64, false);
                            if PROBE {
                                consider(&mut ready, vready[s], probe.vload[s]);
                                consider(&mut ready, iready[base], false);
                            }
                            if t == cur && p1_used {
                                t += 1;
                            }
                            if t > cur {
                                cur = t;
                                p0_used = false;
                            }
                            p1_used = true;
                            if p0_used {
                                report.dual_issue_cycles += 1;
                            }
                            last_issue = last_issue.max(t);
                            if PROBE {
                                probe.on_issue(Pipe::P1, t, cur0, ready);
                            }
                        }
                        let di0 = &instrs[pc0];
                        let a0 = self.vaddr(IReg(di0.isrc), di0.imm);
                        let last = &instrs[pc0 + n - 1];
                        let _ = self.vaddr(IReg(last.isrc), last.imm);
                        let s0 = di0.vsrcs[0] as usize;
                        V256::store_seq(&self.vregs[s0..s0 + n], &mut self.ldm[a0..a0 + 4 * n]);
                    } else {
                        for pc in pc0..pc0 + n {
                            let di = &instrs[pc];
                            report.instructions += 1;
                            if report.instructions > self.budget {
                                return Err(BudgetExceeded {
                                    pc,
                                    instr: di.op,
                                    executed: report.instructions,
                                    budget: self.budget,
                                });
                            }
                            let s = di.vsrcs[0] as usize;
                            let base = di.isrc as usize;
                            let cur0 = cur;
                            let mut t = cur.max(vready[s]).max(iready[base]);
                            let mut ready = (0u64, false);
                            if PROBE {
                                consider(&mut ready, vready[s], probe.vload[s]);
                                consider(&mut ready, iready[base], false);
                            }
                            if t == cur && p1_used {
                                t += 1;
                            }
                            if t > cur {
                                cur = t;
                                p0_used = false;
                            }
                            p1_used = true;
                            if p0_used {
                                report.dual_issue_cycles += 1;
                            }
                            last_issue = last_issue.max(t);
                            if PROBE {
                                probe.on_issue(Pipe::P1, t, cur0, ready);
                            }
                            let a = self.vaddr(IReg(di.isrc), di.imm);
                            self.vregs[s].store(&mut self.ldm[a..a + 4]);
                        }
                    }
                    oi += 1;
                }
                BatchKind::One | BatchKind::Strip => {
                    // Generic dispatch, one op lookup for the whole
                    // stretch (`n == 1` for `One`, which is only
                    // `bne`; strips never contain a branch, so the
                    // only instruction that can rewrite `next_oi` is
                    // always the last of its op).
                    let mut next_oi = oi + 1;
                    for pc in pc0..pc0 + n {
                        let di = &instrs[pc];
                        report.instructions += 1;
                        if report.instructions > self.budget {
                            return Err(BudgetExceeded {
                                pc,
                                instr: di.op,
                                executed: report.instructions,
                                budget: self.budget,
                            });
                        }
                        let cur0 = cur;
                        let mut t = cur;
                        let mut ready = (0u64, false);
                        for &r in &di.vsrcs[..di.n_vsrcs as usize] {
                            let rt = vready[r as usize];
                            t = t.max(rt);
                            if PROBE {
                                consider(&mut ready, rt, probe.vload[r as usize]);
                            }
                        }
                        if di.isrc != NO_REG {
                            let rt = iready[di.isrc as usize];
                            t = t.max(rt);
                            if PROBE {
                                consider(&mut ready, rt, false);
                            }
                        }
                        if di.vdst != NO_REG {
                            let rt = vready[di.vdst as usize];
                            t = t.max(rt);
                            if PROBE {
                                consider(&mut ready, rt, probe.vload[di.vdst as usize]);
                            }
                        }
                        if di.idst != NO_REG {
                            let rt = iready[di.idst as usize];
                            t = t.max(rt);
                            if PROBE {
                                consider(&mut ready, rt, false);
                            }
                        }
                        loop {
                            if t > cur {
                                cur = t;
                                p0_used = false;
                                p1_used = false;
                            }
                            let used = match di.pipe {
                                Pipe::P0 => &mut p0_used,
                                Pipe::P1 => &mut p1_used,
                            };
                            if !*used {
                                *used = true;
                                break;
                            }
                            t += 1;
                        }
                        if p0_used && p1_used {
                            report.dual_issue_cycles += 1;
                        }
                        last_issue = last_issue.max(t);
                        if PROBE {
                            probe.on_issue(di.pipe, t, cur0, ready);
                        }
                        if di.vdst != NO_REG {
                            vready[di.vdst as usize] = t + di.latency;
                            if PROBE {
                                probe.on_vdst_write(di.vdst, di.latency == LOAD_LATENCY);
                            }
                        }
                        if di.idst != NO_REG {
                            iready[di.idst as usize] = t + di.latency;
                        }
                        match di.op {
                            Instr::Vmad { a, b, c, d } => {
                                report.vmads += 1;
                                self.vregs[d.idx()] = self.vregs[a.idx()]
                                    .fma(self.vregs[b.idx()], self.vregs[c.idx()]);
                            }
                            Instr::Vldd { d, base, off } => {
                                let a = self.vaddr(base, off);
                                self.vregs[d.idx()] = V256::load(&self.ldm[a..]);
                            }
                            Instr::Vstd { s, base, off } => {
                                let a = self.vaddr(base, off);
                                self.vregs[s.idx()].store(&mut self.ldm[a..a + 4]);
                            }
                            Instr::Ldde { d, base, off } => {
                                let a = self.addr(base, off);
                                self.vregs[d.idx()] = V256::splat(self.ldm[a]);
                            }
                            Instr::Vldr { d, base, off, net } => {
                                let a = self.vaddr(base, off);
                                let v = V256::load(&self.ldm[a..]);
                                match net {
                                    crate::instr::Net::Row => self.comm.row_bcast(v),
                                    crate::instr::Net::Col => self.comm.col_bcast(v),
                                }
                                self.vregs[d.idx()] = v;
                            }
                            Instr::Lddec { d, base, off, net } => {
                                let a = self.addr(base, off);
                                let v = V256::splat(self.ldm[a]);
                                match net {
                                    crate::instr::Net::Row => self.comm.row_bcast(v),
                                    crate::instr::Net::Col => self.comm.col_bcast(v),
                                }
                                self.vregs[d.idx()] = v;
                            }
                            Instr::Getr { d } => {
                                self.vregs[d.idx()] = self.comm.getr();
                            }
                            Instr::Getc { d } => {
                                self.vregs[d.idx()] = self.comm.getc();
                            }
                            Instr::Vclr { d } => {
                                self.vregs[d.idx()] = V256::ZERO;
                            }
                            Instr::Addl { d, s, imm } => {
                                self.iregs[d.idx()] = self.iregs[s.idx()] + imm;
                            }
                            Instr::Setl { d, imm } => {
                                self.iregs[d.idx()] = imm;
                            }
                            Instr::Bne { s, target } => {
                                debug_assert_eq!(op.kind, BatchKind::One, "bne fused into a strip");
                                if self.iregs[s.idx()] != 0 {
                                    report.taken_branches += 1;
                                    // Pipeline refill bubble, as in the
                                    // decoded engine.
                                    cur = t + 1 + BRANCH_TAKEN_PENALTY;
                                    p0_used = false;
                                    p1_used = false;
                                    if PROBE {
                                        probe.on_taken_branch(t);
                                    }
                                    next_oi = if target < prog.op_at.len() {
                                        debug_assert_ne!(
                                            prog.op_at[target],
                                            u32::MAX,
                                            "branch target inside a fused run"
                                        );
                                        prog.op_at[target] as usize
                                    } else {
                                        ops.len()
                                    };
                                }
                            }
                            Instr::Nop => {}
                        }
                    }
                    oi = next_oi;
                }
            }
        }
        report.cycles = if report.instructions == 0 {
            0
        } else {
            last_issue + 1
        };
        let stall = if PROBE {
            probe.finish(report.cycles)
        } else {
            StallReport::default()
        };
        Ok((report, stall))
    }

    /// The trace-replay engine. A straight-line program's timing is a
    /// pure function of its instruction stream (the scoreboard never
    /// reads data), so `CompiledProgram` precomputed the whole
    /// [`ExecReport`] and [`StallReport`] at compile time; at run time
    /// only the effect table is replayed — in program order, which is
    /// bitwise exact because effects are applied in program order in
    /// every engine and timing never affects values. Branchy programs
    /// and runs whose budget would trip mid-trace take the decoded
    /// engine instead (exact partial state and error reporting).
    fn exec_compiled<const PROBE: bool>(
        &mut self,
        prog: &CompiledProgram,
    ) -> Result<(ExecReport, StallReport), BudgetExceeded> {
        let Some(tr) = prog.trace() else {
            return self.exec_decoded::<PROBE>(prog.decoded(), &mut StallProbe::default());
        };
        if tr.report.instructions > self.budget {
            return self.exec_decoded::<PROBE>(prog.decoded(), &mut StallProbe::default());
        }
        // All compile-time-resolved addresses were sign- and
        // alignment-checked at compile time; one bounds check covers
        // the highest absolute access of the whole trace.
        assert!(
            tr.abs_end <= self.ldm.len(),
            "LDM address {} beyond scratch pad ({} doubles)",
            tr.abs_end.saturating_sub(1),
            self.ldm.len()
        );
        let entry = self.iregs;
        // Register indices came from `VReg`/`IReg` (always < 32), so
        // masking is a semantic no-op — but it proves to the optimizer
        // that every access is in bounds, which removes four bounds
        // checks from the fma replay loop, the engine's hottest path.
        const MASK: usize = VREG_COUNT - 1;
        const { assert!(VREG_COUNT.is_power_of_two()) };
        for step in &tr.steps {
            match *step {
                Step::FmaRun { start, n } => {
                    for f in &tr.fmas[start as usize..(start + n) as usize] {
                        self.vregs[f[3] as usize & MASK] = self.vregs[f[0] as usize & MASK].fma(
                            self.vregs[f[1] as usize & MASK],
                            self.vregs[f[2] as usize & MASK],
                        );
                    }
                }
                Step::LoadSeq { d0, addr, n } => {
                    let d0 = d0 as usize;
                    V256::load_seq(&mut self.vregs[d0..d0 + n as usize], &self.ldm[addr..]);
                }
                Step::StoreSeq { s0, addr, n } => {
                    let s0 = s0 as usize;
                    let n = n as usize;
                    V256::store_seq(&self.vregs[s0..s0 + n], &mut self.ldm[addr..addr + 4 * n]);
                }
                Step::Load { d, addr } => {
                    let a = self.dyn_vaddr(&entry, addr);
                    self.vregs[d as usize] = V256::load(&self.ldm[a..]);
                }
                Step::Store { s, addr } => {
                    let a = self.dyn_vaddr(&entry, addr);
                    self.vregs[s as usize].store(&mut self.ldm[a..a + 4]);
                }
                Step::Splat { d, addr } => {
                    let a = self.dyn_addr(&entry, addr);
                    self.vregs[d as usize] = V256::splat(self.ldm[a]);
                }
                Step::BcastV { d, addr, col } => {
                    let a = self.dyn_vaddr(&entry, addr);
                    let v = V256::load(&self.ldm[a..]);
                    if col {
                        self.comm.col_bcast(v);
                    } else {
                        self.comm.row_bcast(v);
                    }
                    self.vregs[d as usize] = v;
                }
                Step::BcastS { d, addr, col } => {
                    let a = self.dyn_addr(&entry, addr);
                    let v = V256::splat(self.ldm[a]);
                    if col {
                        self.comm.col_bcast(v);
                    } else {
                        self.comm.row_bcast(v);
                    }
                    self.vregs[d as usize] = v;
                }
                Step::Getr { d } => {
                    self.vregs[d as usize] = self.comm.getr();
                }
                Step::Getc { d } => {
                    self.vregs[d as usize] = self.comm.getc();
                }
                Step::Clr { d } => {
                    self.vregs[d as usize] = V256::ZERO;
                }
            }
        }
        for (r, v) in self.iregs.iter_mut().zip(&tr.final_iregs) {
            *r = v.resolve(&entry);
        }
        Ok((
            tr.report,
            if PROBE {
                tr.stalls
            } else {
                StallReport::default()
            },
        ))
    }

    /// Resolves a run-time (entry-register-relative) scalar LDM
    /// address with the same checks as [`Machine::addr`].
    fn dyn_addr(&self, entry: &[i64; IREG_COUNT], addr: Addr) -> usize {
        match addr {
            Addr::Abs(a) => a,
            Addr::Dyn { reg, delta } => {
                let a = entry[reg as usize] + delta;
                assert!(a >= 0, "negative LDM address {a}");
                let a = a as usize;
                assert!(
                    a < self.ldm.len(),
                    "LDM address {a} beyond scratch pad ({} doubles)",
                    self.ldm.len()
                );
                a
            }
        }
    }

    /// Resolves a run-time vector LDM address with the same checks as
    /// [`Machine::vaddr`].
    fn dyn_vaddr(&self, entry: &[i64; IREG_COUNT], addr: Addr) -> usize {
        match addr {
            Addr::Abs(a) => a,
            Addr::Dyn { reg, delta } => {
                let a = self.dyn_addr(entry, Addr::Dyn { reg, delta });
                assert!(
                    a.is_multiple_of(4),
                    "vector LDM access at {a} is not 256-bit aligned"
                );
                assert!(
                    a + 4 <= self.ldm.len(),
                    "vector LDM access at {a} runs off the scratch pad"
                );
                a
            }
        }
    }

    /// The original direct-from-[`Instr`] interpreter, kept as the
    /// golden model for the decoded engine (its only change since: the
    /// same compiled-out attribution hooks as the hot path).
    /// Equivalence tests (and the engine benchmark) run both and
    /// compare registers, LDM, and [`ExecReport`] field for field.
    pub fn run_reference(&mut self, prog: &[Instr]) -> ExecReport {
        self.exec_reference::<false>(prog, &mut StallProbe::default())
            .0
    }

    /// Probed variant of the golden model: identical attribution
    /// semantics to [`Machine::run_probed`], implemented independently
    /// over the raw [`Instr`] stream so the two engines cross-check
    /// each other cycle for cycle.
    pub fn run_reference_probed(&mut self, prog: &[Instr]) -> (ExecReport, StallReport) {
        self.exec_reference::<true>(prog, &mut StallProbe::default())
    }

    fn exec_reference<const PROBE: bool>(
        &mut self,
        prog: &[Instr],
        probe: &mut StallProbe,
    ) -> (ExecReport, StallReport) {
        let mut report = ExecReport::default();
        // Scoreboard: the cycle at which each register's pending write
        // completes.
        let mut vready = [0u64; VREG_COUNT];
        let mut iready = [0u64; IREG_COUNT];
        // Issue state: current cycle and which pipes issued in it.
        let mut cur: u64 = 0;
        let mut p0_used = false;
        let mut p1_used = false;
        let mut last_issue: u64 = 0;
        let mut pc = 0usize;

        while pc < prog.len() {
            let instr = prog[pc];
            report.instructions += 1;
            assert!(
                report.instructions <= self.budget,
                "instruction budget exhausted — runaway loop?"
            );

            // Earliest legal issue cycle: in order, sources ready (RAW),
            // destination write drained (WAW).
            let cur0 = cur;
            let mut t = cur;
            let mut ready = (0u64, false);
            for r in instr.vsrcs() {
                let rt = vready[r.idx()];
                t = t.max(rt);
                if PROBE {
                    consider(&mut ready, rt, probe.vload[r.idx()]);
                }
            }
            for r in instr.isrcs() {
                let rt = iready[r.idx()];
                t = t.max(rt);
                if PROBE {
                    consider(&mut ready, rt, false);
                }
            }
            if let Some(d) = instr.vdst() {
                let rt = vready[d.idx()];
                t = t.max(rt);
                if PROBE {
                    consider(&mut ready, rt, probe.vload[d.idx()]);
                }
            }
            if let Some(d) = instr.idst() {
                let rt = iready[d.idx()];
                t = t.max(rt);
                if PROBE {
                    consider(&mut ready, rt, false);
                }
            }
            // Find a free slot on the instruction's pipe.
            loop {
                if t > cur {
                    cur = t;
                    p0_used = false;
                    p1_used = false;
                }
                let used = match instr.pipe() {
                    Pipe::P0 => &mut p0_used,
                    Pipe::P1 => &mut p1_used,
                };
                if !*used {
                    *used = true;
                    break;
                }
                t += 1;
            }
            if p0_used && p1_used {
                report.dual_issue_cycles += 1;
            }
            last_issue = last_issue.max(t);
            if PROBE {
                probe.on_issue(instr.pipe(), t, cur0, ready);
            }

            // Retire: update the scoreboard and perform the effect.
            if let Some(d) = instr.vdst() {
                vready[d.idx()] = t + instr.latency();
                if PROBE {
                    probe.on_vdst_write(d.0, instr.latency() == LOAD_LATENCY);
                }
            }
            if let Some(d) = instr.idst() {
                iready[d.idx()] = t + instr.latency();
            }
            let mut next_pc = pc + 1;
            match instr {
                Instr::Vmad { a, b, c, d } => {
                    report.vmads += 1;
                    self.vregs[d.idx()] =
                        self.vregs[a.idx()].fma(self.vregs[b.idx()], self.vregs[c.idx()]);
                }
                Instr::Vldd { d, base, off } => {
                    let a = self.vaddr(base, off);
                    self.vregs[d.idx()] = V256::load(&self.ldm[a..]);
                }
                Instr::Vstd { s, base, off } => {
                    let a = self.vaddr(base, off);
                    self.vregs[s.idx()].store(&mut self.ldm[a..a + 4]);
                }
                Instr::Ldde { d, base, off } => {
                    let a = self.addr(base, off);
                    self.vregs[d.idx()] = V256::splat(self.ldm[a]);
                }
                Instr::Vldr { d, base, off, net } => {
                    let a = self.vaddr(base, off);
                    let v = V256::load(&self.ldm[a..]);
                    match net {
                        crate::instr::Net::Row => self.comm.row_bcast(v),
                        crate::instr::Net::Col => self.comm.col_bcast(v),
                    }
                    self.vregs[d.idx()] = v;
                }
                Instr::Lddec { d, base, off, net } => {
                    let a = self.addr(base, off);
                    let v = V256::splat(self.ldm[a]);
                    match net {
                        crate::instr::Net::Row => self.comm.row_bcast(v),
                        crate::instr::Net::Col => self.comm.col_bcast(v),
                    }
                    self.vregs[d.idx()] = v;
                }
                Instr::Getr { d } => {
                    self.vregs[d.idx()] = self.comm.getr();
                }
                Instr::Getc { d } => {
                    self.vregs[d.idx()] = self.comm.getc();
                }
                Instr::Vclr { d } => {
                    self.vregs[d.idx()] = V256::ZERO;
                }
                Instr::Addl { d, s, imm } => {
                    self.iregs[d.idx()] = self.iregs[s.idx()] + imm;
                }
                Instr::Setl { d, imm } => {
                    self.iregs[d.idx()] = imm;
                }
                Instr::Bne { s, target } => {
                    if self.iregs[s.idx()] != 0 {
                        report.taken_branches += 1;
                        next_pc = target;
                        // Pipeline refill bubble: nothing issues until
                        // the fetch redirect completes.
                        cur = t + 1 + BRANCH_TAKEN_PENALTY;
                        p0_used = false;
                        p1_used = false;
                        if PROBE {
                            probe.on_taken_branch(t);
                        }
                    }
                }
                Instr::Nop => {}
            }
            pc = next_pc;
        }
        report.cycles = if report.instructions == 0 {
            0
        } else {
            last_issue + 1
        };
        let stall = if PROBE {
            probe.finish(report.cycles)
        } else {
            StallReport::default()
        };
        (report, stall)
    }
}

/// Timing-only pass over a straight-line (branch-free) decoded stream:
/// the full scoreboard, dual-issue slotting, and stall attribution of
/// the interpreter, with every numeric effect omitted. Sound because
/// issue timing is a pure function of the instruction stream — no
/// source operand's *value* ever influences a ready time — so for
/// branch-free programs the [`ExecReport`] and [`StallReport`] are
/// compile-time constants. Trace compilation runs this once per
/// kernel; replays then return the precomputed reports.
///
/// Panics (debug) if the stream contains a branch; callers must have
/// rejected branchy programs already.
pub(crate) fn straightline_timing(instrs: &[DecodedInstr]) -> (ExecReport, StallReport) {
    let mut probe = StallProbe::default();
    let mut report = ExecReport::default();
    let mut vready = [0u64; VREG_COUNT];
    let mut iready = [0u64; IREG_COUNT];
    let mut cur: u64 = 0;
    let mut p0_used = false;
    let mut p1_used = false;
    let mut last_issue: u64 = 0;

    for di in instrs {
        debug_assert!(
            !matches!(di.op, Instr::Bne { .. }),
            "straightline_timing on a branchy stream"
        );
        report.instructions += 1;
        let cur0 = cur;
        let mut t = cur;
        let mut ready = (0u64, false);
        for &r in &di.vsrcs[..di.n_vsrcs as usize] {
            let rt = vready[r as usize];
            t = t.max(rt);
            consider(&mut ready, rt, probe.vload[r as usize]);
        }
        if di.isrc != NO_REG {
            let rt = iready[di.isrc as usize];
            t = t.max(rt);
            consider(&mut ready, rt, false);
        }
        if di.vdst != NO_REG {
            let rt = vready[di.vdst as usize];
            t = t.max(rt);
            consider(&mut ready, rt, probe.vload[di.vdst as usize]);
        }
        if di.idst != NO_REG {
            let rt = iready[di.idst as usize];
            t = t.max(rt);
            consider(&mut ready, rt, false);
        }
        loop {
            if t > cur {
                cur = t;
                p0_used = false;
                p1_used = false;
            }
            let used = match di.pipe {
                Pipe::P0 => &mut p0_used,
                Pipe::P1 => &mut p1_used,
            };
            if !*used {
                *used = true;
                break;
            }
            t += 1;
        }
        if p0_used && p1_used {
            report.dual_issue_cycles += 1;
        }
        last_issue = last_issue.max(t);
        probe.on_issue(di.pipe, t, cur0, ready);
        if di.vdst != NO_REG {
            vready[di.vdst as usize] = t + di.latency;
            probe.on_vdst_write(di.vdst, di.latency == LOAD_LATENCY);
        }
        if di.idst != NO_REG {
            iready[di.idst as usize] = t + di.latency;
        }
        if matches!(di.op, Instr::Vmad { .. }) {
            report.vmads += 1;
        }
    }
    report.cycles = if report.instructions == 0 {
        0
    } else {
        last_issue + 1
    };
    let stalls = probe.finish(report.cycles);
    (report, stalls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{NullComm, ScriptedComm};
    use crate::instr::Net;
    use crate::regs::{IReg, VReg};

    fn run(prog: &[Instr], ldm: &mut [f64]) -> (ExecReport, [V256; VREG_COUNT]) {
        let mut comm = NullComm;
        let mut m = Machine::new(ldm, &mut comm);
        let r = m.run(prog);
        (r, m.vregs)
    }

    #[test]
    fn dual_issue_pairs_float_with_p1() {
        // vmad + nop can share a cycle; two vmads cannot.
        let v = Instr::Vmad {
            a: VReg(0),
            b: VReg(1),
            c: VReg(2),
            d: VReg(2),
        };
        let w = Instr::Vmad {
            a: VReg(0),
            b: VReg(1),
            c: VReg(3),
            d: VReg(3),
        };
        let mut ldm = vec![0.0; 64];
        let (r, _) = run(&[v, Instr::Nop], &mut ldm);
        assert_eq!(r.cycles, 1);
        assert_eq!(r.dual_issue_cycles, 1);
        let (r, _) = run(&[v, w], &mut ldm);
        assert_eq!(r.cycles, 2);
        assert_eq!(r.dual_issue_cycles, 0);
    }

    #[test]
    fn raw_hazard_stalls_vmad_chain() {
        // Two vmads accumulating into the same register serialize at the
        // 6-cycle RAW latency.
        let v = Instr::Vmad {
            a: VReg(0),
            b: VReg(1),
            c: VReg(2),
            d: VReg(2),
        };
        let mut ldm = vec![0.0; 64];
        let (r, _) = run(&[v, v], &mut ldm);
        assert_eq!(r.cycles, 7); // issue at 0 and 6
    }

    #[test]
    fn load_use_stall_is_four_cycles() {
        let prog = [
            Instr::Vldd {
                d: VReg(0),
                base: IReg(0),
                off: 0,
            },
            Instr::Vmad {
                a: VReg(0),
                b: VReg(1),
                c: VReg(2),
                d: VReg(2),
            },
        ];
        let mut ldm = vec![0.0; 64];
        let (r, _) = run(&prog, &mut ldm);
        // load at 0, vmad at 4.
        assert_eq!(r.cycles, 5);
    }

    #[test]
    fn independent_load_pairs_with_vmad() {
        let prog = [
            Instr::Vmad {
                a: VReg(0),
                b: VReg(1),
                c: VReg(2),
                d: VReg(2),
            },
            Instr::Vldd {
                d: VReg(3),
                base: IReg(0),
                off: 0,
            },
        ];
        let mut ldm = vec![0.0; 64];
        let (r, _) = run(&prog, &mut ldm);
        assert_eq!(r.cycles, 1);
        assert_eq!(r.dual_issue_cycles, 1);
    }

    #[test]
    fn functional_fma_and_loads() {
        let mut ldm = vec![0.0; 64];
        ldm[0..4].copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        ldm[8] = 10.0;
        let prog = [
            Instr::Vldd {
                d: VReg(0),
                base: IReg(0),
                off: 0,
            },
            Instr::Ldde {
                d: VReg(1),
                base: IReg(0),
                off: 8,
            },
            Instr::Vclr { d: VReg(2) },
            Instr::Vmad {
                a: VReg(0),
                b: VReg(1),
                c: VReg(2),
                d: VReg(2),
            },
            Instr::Vstd {
                s: VReg(2),
                base: IReg(0),
                off: 16,
            },
        ];
        let (_, _) = run(&prog, &mut ldm);
        assert_eq!(&ldm[16..20], &[10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn loop_with_bne_executes_and_penalizes() {
        // r1 = 3; loop { r1 -= 1; bne r1 } — 3 iterations, 2 taken.
        let prog = [
            Instr::Setl { d: IReg(1), imm: 3 },
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: -1,
            },
            Instr::Bne {
                s: IReg(1),
                target: 1,
            },
        ];
        let mut ldm = vec![0.0; 16];
        let (r, _) = run(&prog, &mut ldm);
        assert_eq!(r.taken_branches, 2);
        assert_eq!(r.instructions, 7);
    }

    #[test]
    fn broadcast_and_receive_via_scripted_comm() {
        let mut ldm = vec![0.0; 16];
        ldm[0..4].copy_from_slice(&[5.0, 6.0, 7.0, 8.0]);
        ldm[4] = 2.5;
        let mut comm = ScriptedComm::default();
        comm.script_row_panel(&[1.0, 1.0, 1.0, 1.0]);
        comm.script_col_scalars(&[3.0]);
        let prog = [
            Instr::Vldr {
                d: VReg(0),
                base: IReg(0),
                off: 0,
                net: Net::Row,
            },
            Instr::Lddec {
                d: VReg(1),
                base: IReg(0),
                off: 4,
                net: Net::Col,
            },
            Instr::Getr { d: VReg(2) },
            Instr::Getc { d: VReg(3) },
        ];
        let mut m = Machine::new(&mut ldm, &mut comm);
        m.run(&prog);
        assert_eq!(m.vregs[0], V256::new([5.0, 6.0, 7.0, 8.0]));
        assert_eq!(m.vregs[1], V256::splat(2.5));
        assert_eq!(m.vregs[2], V256::splat(1.0));
        assert_eq!(m.vregs[3], V256::splat(3.0));
        assert_eq!(comm.row_out, vec![V256::new([5.0, 6.0, 7.0, 8.0])]);
        assert_eq!(comm.col_out, vec![V256::splat(2.5)]);
    }

    #[test]
    #[should_panic]
    fn misaligned_vector_access_panics() {
        let mut ldm = vec![0.0; 16];
        let prog = [Instr::Vldd {
            d: VReg(0),
            base: IReg(0),
            off: 2,
        }];
        let _ = run(&prog, &mut ldm);
    }

    #[test]
    #[should_panic]
    fn out_of_ldm_access_panics() {
        let mut ldm = vec![0.0; 16];
        let prog = [Instr::Vldd {
            d: VReg(0),
            base: IReg(0),
            off: 16,
        }];
        let _ = run(&prog, &mut ldm);
    }

    #[test]
    fn waw_drains_before_overwrite() {
        // A load followed by vclr of the same register: the clear must
        // wait for the load's write-back.
        let prog = [
            Instr::Vldd {
                d: VReg(0),
                base: IReg(0),
                off: 0,
            },
            Instr::Vclr { d: VReg(0) },
        ];
        let mut ldm = vec![0.0; 16];
        let (r, regs) = run(&prog, &mut ldm);
        assert_eq!(regs[0], V256::ZERO);
        assert_eq!(r.cycles, 5); // vclr at cycle 4
    }

    #[test]
    fn occupancy_statistics() {
        let v = Instr::Vmad {
            a: VReg(0),
            b: VReg(1),
            c: VReg(2),
            d: VReg(2),
        };
        let mut ldm = vec![0.0; 16];
        let (r, _) = run(&[v], &mut ldm);
        assert_eq!(r.vmads, 1);
        assert_eq!(r.flops(), 8);
        assert!((r.vmad_occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn budget_exhaustion_reports_offending_instr() {
        // r1 = 1; loop forever on bne (r1 never changes).
        let prog = [
            Instr::Setl { d: IReg(1), imm: 1 },
            Instr::Bne {
                s: IReg(1),
                target: 1,
            },
        ];
        let mut ldm = vec![0.0; 16];
        let mut comm = NullComm;
        let mut m = Machine::new(&mut ldm, &mut comm);
        m.set_budget(100);
        let err = m
            .try_run(&prog)
            .expect_err("infinite loop must trip the budget");
        assert_eq!(err.budget, 100);
        assert_eq!(err.executed, 101);
        assert_eq!(err.pc, 1);
        assert_eq!(
            err.instr,
            Instr::Bne {
                s: IReg(1),
                target: 1
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("pc 1"), "{msg}");
        assert!(msg.contains("bne"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "runaway loop")]
    fn budget_exhaustion_panics_in_run() {
        let prog = [
            Instr::Setl { d: IReg(1), imm: 1 },
            Instr::Bne {
                s: IReg(1),
                target: 1,
            },
        ];
        let mut ldm = vec![0.0; 16];
        let mut comm = NullComm;
        let mut m = Machine::new(&mut ldm, &mut comm);
        m.set_budget(10);
        let _ = m.run(&prog);
    }

    #[test]
    fn within_budget_run_succeeds() {
        let prog = [
            Instr::Setl { d: IReg(1), imm: 3 },
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: -1,
            },
            Instr::Bne {
                s: IReg(1),
                target: 1,
            },
        ];
        let mut ldm = vec![0.0; 16];
        let mut comm = NullComm;
        let mut m = Machine::new(&mut ldm, &mut comm);
        m.set_budget(7); // exactly the dynamic count
        let r = m.try_run(&prog).expect("exact-budget run must pass");
        assert_eq!(r.instructions, 7);
    }

    #[test]
    fn stall_attribution_raw_chain() {
        // Two dependent vmads: issue at 0 and 6. P0 timeline: issue 2,
        // raw 5 (cycles 1..6), total 7. P1 never issues: 7 conflicts.
        let v = Instr::Vmad {
            a: VReg(0),
            b: VReg(1),
            c: VReg(2),
            d: VReg(2),
        };
        let mut ldm = vec![0.0; 64];
        let mut comm = NullComm;
        let mut m = Machine::new(&mut ldm, &mut comm);
        let (r, s) = m.run_probed(&[v, v]);
        assert_eq!(r.cycles, 7);
        s.check().unwrap();
        assert_eq!(s.pipes[0].issue, 2);
        assert_eq!(s.pipes[0].raw, 5);
        assert_eq!(s.pipes[0].load_use, 0);
        assert_eq!(s.pipes[1].issue, 0);
        assert_eq!(s.pipes[1].pipe_conflict, 7);
    }

    #[test]
    fn stall_attribution_load_use() {
        // Load at 0, dependent vmad at 4: P0 sees 4 load-use cycles.
        let prog = [
            Instr::Vldd {
                d: VReg(0),
                base: IReg(0),
                off: 0,
            },
            Instr::Vmad {
                a: VReg(0),
                b: VReg(1),
                c: VReg(2),
                d: VReg(2),
            },
        ];
        let mut ldm = vec![0.0; 64];
        let mut comm = NullComm;
        let mut m = Machine::new(&mut ldm, &mut comm);
        let (r, s) = m.run_probed(&prog);
        assert_eq!(r.cycles, 5);
        s.check().unwrap();
        assert_eq!(s.pipes[0].issue, 1);
        assert_eq!(s.pipes[0].load_use, 4);
        assert_eq!(s.pipes[0].raw, 0);
        assert_eq!(s.pipes[1].issue, 1);
        assert_eq!(s.pipes[1].pipe_conflict, 4);
    }

    #[test]
    fn stall_attribution_loop_overhead() {
        // r1 = 2; loop { r1 -= 1; bne } — one taken branch, so each
        // pipe carries one BRANCH_TAKEN_PENALTY refill window.
        let prog = [
            Instr::Setl { d: IReg(1), imm: 2 },
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: -1,
            },
            Instr::Bne {
                s: IReg(1),
                target: 1,
            },
        ];
        let mut ldm = vec![0.0; 16];
        let mut comm = NullComm;
        let mut m = Machine::new(&mut ldm, &mut comm);
        let (r, s) = m.run_probed(&prog);
        assert_eq!(r.taken_branches, 1);
        s.check().unwrap();
        assert_eq!(s.pipes[0].loop_overhead, BRANCH_TAKEN_PENALTY);
        assert_eq!(s.pipes[1].loop_overhead, BRANCH_TAKEN_PENALTY);
        assert_eq!(s.pipes[0].issue, 0);
        assert_eq!(s.pipes[1].issue, r.instructions);
    }

    #[test]
    fn stall_attribution_trailing_taken_branch_clamped() {
        // The final dynamic instruction is a taken branch (target ==
        // prog.len()): its refill window outlives the run and must be
        // clamped, keeping the attribution sum exact.
        let prog = [
            Instr::Setl { d: IReg(1), imm: 1 },
            Instr::Bne {
                s: IReg(1),
                target: 2,
            },
        ];
        let mut ldm = vec![0.0; 16];
        let mut comm = NullComm;
        let mut m = Machine::new(&mut ldm, &mut comm);
        let (r, s) = m.run_probed(&prog);
        assert_eq!(r.taken_branches, 1);
        s.check().unwrap();
        assert_eq!(s.cycles, r.cycles);
    }

    #[test]
    fn stall_attribution_empty_program() {
        let mut ldm = vec![0.0; 16];
        let mut comm = NullComm;
        let mut m = Machine::new(&mut ldm, &mut comm);
        let (r, s) = m.run_probed(&[]);
        assert_eq!(r.cycles, 0);
        s.check().unwrap();
        assert_eq!(s.stall_cycles(), 0);
    }

    #[test]
    fn probed_and_unprobed_reports_agree() {
        use crate::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
        let cfg = BlockKernelCfg {
            pm: 16,
            pn: 8,
            pk: 24,
            a_src: Operand::Ldm,
            b_src: Operand::Ldm,
            a_base: 0,
            b_base: 4096,
            c_base: 6144,
            alpha_addr: 8000,
        };
        for style in [KernelStyle::Naive, KernelStyle::Scheduled] {
            let prog = gen_block_kernel(&cfg, style);
            let mk_ldm = || {
                (0..sw_arch::consts::LDM_DOUBLES)
                    .map(|i| (i % 89) as f64 * 0.5 - 7.0)
                    .collect::<Vec<f64>>()
            };
            let mut ldm_a = mk_ldm();
            let mut comm_a = NullComm;
            let plain = Machine::new(&mut ldm_a, &mut comm_a).run(&prog);
            let mut ldm_b = mk_ldm();
            let mut comm_b = NullComm;
            let (probed, stall) = Machine::new(&mut ldm_b, &mut comm_b).run_probed(&prog);
            assert_eq!(plain, probed, "probing changed the report for {style:?}");
            assert_eq!(ldm_a, ldm_b, "probing changed the numerics for {style:?}");
            stall.check().unwrap();
            let mut ldm_c = mk_ldm();
            let mut comm_c = NullComm;
            let (ref_rep, ref_stall) =
                Machine::new(&mut ldm_c, &mut comm_c).run_reference_probed(&prog);
            assert_eq!(ref_rep, probed, "engines disagree for {style:?}");
            assert_eq!(ref_stall, stall, "attributions disagree for {style:?}");
        }
    }

    #[test]
    fn scheduled_kernel_stalls_less_than_naive() {
        // The §IV-C claim the stall table quantifies: scheduling the
        // same work strictly reduces stall cycles.
        use crate::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
        let cfg = BlockKernelCfg {
            pm: 16,
            pn: 8,
            pk: 24,
            a_src: Operand::Ldm,
            b_src: Operand::Ldm,
            a_base: 0,
            b_base: 4096,
            c_base: 6144,
            alpha_addr: 8000,
        };
        let mut stalls = Vec::new();
        for style in [KernelStyle::Naive, KernelStyle::Scheduled] {
            let prog = gen_block_kernel(&cfg, style);
            let mut ldm = vec![0.0; sw_arch::consts::LDM_DOUBLES];
            let mut comm = NullComm;
            let (_, s) = Machine::new(&mut ldm, &mut comm).run_probed(&prog);
            s.check().unwrap();
            stalls.push(s.stall_cycles());
        }
        assert!(
            stalls[1] < stalls[0],
            "scheduled {} !< naive {}",
            stalls[1],
            stalls[0]
        );
    }

    #[test]
    fn decoded_program_reusable_across_runs() {
        let prog = [
            Instr::Vclr { d: VReg(0) },
            Instr::Vmad {
                a: VReg(0),
                b: VReg(1),
                c: VReg(2),
                d: VReg(2),
            },
        ];
        let decoded = DecodedProgram::new(&prog);
        let mut ldm = vec![0.0; 16];
        let mut comm = NullComm;
        let mut m = Machine::new(&mut ldm, &mut comm);
        let r1 = m.run_decoded(&decoded);
        let r2 = m.run_decoded(&decoded);
        assert_eq!(r1, r2);
        assert_eq!(r1.instructions, 2);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::comm::NullComm;
    use crate::instr::Instr;
    use crate::regs::{IReg, VReg};
    use sw_arch::V256;

    fn run(prog: &[Instr], ldm: &mut [f64]) -> ExecReport {
        let mut comm = NullComm;
        Machine::new(ldm, &mut comm).run(prog)
    }

    #[test]
    fn same_cycle_war_reads_old_value() {
        // vmad reads v0 in the same cycle a paired load overwrites it
        // (the Algorithm 3 idiom): the vmad must see the old value.
        let mut ldm = vec![0.0; 64];
        ldm[0..4].copy_from_slice(&[9.0, 9.0, 9.0, 9.0]);
        let prog = [
            // v0 = 1.0 (splat from ldm[8]), v1 = 2.0, v2 = 0.
            Instr::Ldde {
                d: VReg(0),
                base: IReg(0),
                off: 8,
            },
            Instr::Ldde {
                d: VReg(1),
                base: IReg(0),
                off: 9,
            },
            Instr::Vclr { d: VReg(2) },
            Instr::Nop,
            Instr::Nop,
            // Pair: vmad v2 = v0*v1 + v2 ; reload v0 from ldm[0..4].
            Instr::Vmad {
                a: VReg(0),
                b: VReg(1),
                c: VReg(2),
                d: VReg(2),
            },
            Instr::Vldd {
                d: VReg(0),
                base: IReg(0),
                off: 0,
            },
        ];
        ldm[8] = 1.0;
        ldm[9] = 2.0;
        let mut comm = NullComm;
        let mut m = Machine::new(&mut ldm, &mut comm);
        let r = m.run(&prog);
        // vmad used the old v0 (= 1.0): v2 = 2.0 per lane.
        assert_eq!(m.vregs[2], V256::splat(2.0));
        // And the load did land afterwards.
        assert_eq!(m.vregs[0], V256::splat(9.0));
        assert!(r.dual_issue_cycles >= 1);
    }

    #[test]
    fn untaken_branch_costs_no_bubble() {
        let prog = [
            Instr::Setl { d: IReg(1), imm: 0 },
            Instr::Bne {
                s: IReg(1),
                target: 0,
            }, // never taken
            Instr::Nop,
        ];
        let mut ldm = vec![0.0; 16];
        let r = run(&prog, &mut ldm);
        assert_eq!(r.taken_branches, 0);
        assert_eq!(r.instructions, 3);
        // setl@0, bne@1 (needs r1 ready at 1), nop@2 (bne and nop are
        // both P1) — and crucially no refill bubble beyond that.
        assert!(r.cycles <= 3, "{}", r.cycles);
    }

    #[test]
    fn two_p1_ops_cannot_share_a_cycle() {
        let prog = [
            Instr::Vclr { d: VReg(0) },
            Instr::Vclr { d: VReg(1) },
            Instr::Vclr { d: VReg(2) },
        ];
        let mut ldm = vec![0.0; 16];
        let r = run(&prog, &mut ldm);
        assert_eq!(r.cycles, 3);
        assert_eq!(r.dual_issue_cycles, 0);
    }

    #[test]
    fn store_then_load_sees_the_value() {
        let mut ldm = vec![0.0; 32];
        ldm[0..4].copy_from_slice(&[4.0, 3.0, 2.0, 1.0]);
        let prog = [
            Instr::Vldd {
                d: VReg(0),
                base: IReg(0),
                off: 0,
            },
            Instr::Vstd {
                s: VReg(0),
                base: IReg(0),
                off: 16,
            },
            Instr::Vldd {
                d: VReg(1),
                base: IReg(0),
                off: 16,
            },
        ];
        let mut comm = NullComm;
        let mut m = Machine::new(&mut ldm, &mut comm);
        m.run(&prog);
        assert_eq!(m.vregs[1], V256::new([4.0, 3.0, 2.0, 1.0]));
    }

    #[test]
    fn empty_program_is_zero_cycles() {
        let mut ldm = vec![0.0; 16];
        let r = run(&[], &mut ldm);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.instructions, 0);
        assert_eq!(r.vmad_occupancy(), 0.0);
    }

    #[test]
    fn integer_register_dependencies_respected() {
        // addl chain: each depends on the previous (latency 1).
        let prog = [
            Instr::Setl { d: IReg(1), imm: 5 },
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: 5,
            },
            Instr::Addl {
                d: IReg(2),
                s: IReg(1),
                imm: 1,
            },
        ];
        let mut ldm = vec![0.0; 16];
        let mut comm = NullComm;
        let mut m = Machine::new(&mut ldm, &mut comm);
        let r = m.run(&prog);
        assert_eq!(m.iregs[1], 10);
        assert_eq!(m.iregs[2], 11);
        assert_eq!(r.cycles, 3); // serial on P1 with 1-cycle latencies
    }

    #[test]
    fn vmad_occupancy_zero_cycle_report_is_zero() {
        // Empty and budget-aborted runs produce cycles == 0; occupancy
        // must be 0.0, never NaN.
        let r = ExecReport::default();
        assert_eq!(r.vmad_occupancy(), 0.0);
        let r = ExecReport {
            vmads: 5,
            ..Default::default()
        };
        assert!(!r.vmad_occupancy().is_nan());
        assert_eq!(r.vmad_occupancy(), 0.0);
    }

    #[test]
    fn decoded_matches_reference_on_kernels() {
        // The shipped kernel generators are the most important streams:
        // run both engines on each and require identical reports,
        // register files, and LDM contents.
        use crate::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
        let cfg = BlockKernelCfg {
            pm: 16,
            pn: 8,
            pk: 24,
            a_src: Operand::Ldm,
            b_src: Operand::Ldm,
            a_base: 0,
            b_base: 4096,
            c_base: 6144,
            alpha_addr: 8000,
        };
        for style in [KernelStyle::Naive, KernelStyle::Scheduled] {
            let prog = gen_block_kernel(&cfg, style);
            let mut ldm_a: Vec<f64> = (0..sw_arch::consts::LDM_DOUBLES)
                .map(|i| (i % 97) as f64 * 0.25 - 11.5)
                .collect();
            let mut ldm_b = ldm_a.clone();
            let mut comm_a = NullComm;
            let mut comm_b = NullComm;
            let mut ma = Machine::new(&mut ldm_a, &mut comm_a);
            let ra = ma.run_reference(&prog);
            let (va, ia) = (ma.vregs, ma.iregs);
            let mut mb = Machine::new(&mut ldm_b, &mut comm_b);
            let rb = mb.run(&prog);
            let (vb, ib) = (mb.vregs, mb.iregs);
            assert_eq!(ra, rb, "reports differ for {style:?}");
            assert_eq!(va, vb, "vregs differ for {style:?}");
            assert_eq!(ia, ib, "iregs differ for {style:?}");
            assert_eq!(ldm_a, ldm_b, "LDM differs for {style:?}");
        }
    }
}

#[cfg(test)]
mod backend_tests {
    use super::*;
    use crate::comm::NullComm;
    use crate::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
    use crate::regs::{IReg, VReg};

    fn kernel_cfg() -> BlockKernelCfg {
        BlockKernelCfg {
            pm: 16,
            pn: 8,
            pk: 24,
            a_src: Operand::Ldm,
            b_src: Operand::Ldm,
            a_base: 0,
            b_base: 4096,
            c_base: 6144,
            alpha_addr: 8000,
        }
    }

    fn mk_ldm() -> Vec<f64> {
        (0..sw_arch::consts::LDM_DOUBLES)
            .map(|i| (i % 83) as f64 * 0.125 - 3.0)
            .collect()
    }

    #[test]
    fn all_backends_match_reference_on_kernels() {
        for style in [KernelStyle::Naive, KernelStyle::Scheduled] {
            let prog = gen_block_kernel(&kernel_cfg(), style);
            let mut ldm_r = mk_ldm();
            let mut comm_r = NullComm;
            let mut mr = Machine::new(&mut ldm_r, &mut comm_r);
            let (rep_r, st_r) = mr.run_reference_probed(&prog);
            let (vr, ir) = (mr.vregs, mr.iregs);
            for backend in EngineBackend::ALL {
                let mut ldm = mk_ldm();
                let mut comm = NullComm;
                let mut m = Machine::new(&mut ldm, &mut comm);
                let (rep, st) = m.run_backend_probed(backend, &prog);
                st.check().unwrap();
                assert_eq!(rep, rep_r, "{backend} report differs for {style:?}");
                assert_eq!(st, st_r, "{backend} stalls differ for {style:?}");
                assert_eq!(m.vregs, vr, "{backend} vregs differ for {style:?}");
                assert_eq!(m.iregs, ir, "{backend} iregs differ for {style:?}");
                assert_eq!(ldm, ldm_r, "{backend} LDM differs for {style:?}");
            }
        }
    }

    #[test]
    fn unprobed_backends_match_too() {
        let prog = gen_block_kernel(&kernel_cfg(), KernelStyle::Scheduled);
        let mut ldm_d = mk_ldm();
        let mut comm_d = NullComm;
        let rep_d = Machine::new(&mut ldm_d, &mut comm_d).run(&prog);
        for backend in [EngineBackend::Batched, EngineBackend::Compiled] {
            let mut ldm = mk_ldm();
            let mut comm = NullComm;
            let rep = Machine::new(&mut ldm, &mut comm).run_backend(backend, &prog);
            assert_eq!(rep, rep_d, "{backend}");
            assert_eq!(ldm, ldm_d, "{backend}");
        }
    }

    #[test]
    fn batched_budget_trips_identically_inside_fused_runs() {
        // A single 8-long vmad run with budget 5: the 6th element
        // (pc 5) trips, and the first five must have retired.
        let prog: Vec<Instr> = (8..16)
            .map(|d| Instr::Vmad {
                a: VReg(0),
                b: VReg(1),
                c: VReg(2),
                d: VReg(d),
            })
            .collect();
        let run_with = |batched: bool| {
            let mut ldm = mk_ldm();
            let mut comm = NullComm;
            let mut m = Machine::new(&mut ldm, &mut comm);
            m.vregs[0] = V256::splat(2.0);
            m.vregs[1] = V256::splat(3.0);
            m.vregs[2] = V256::splat(1.0);
            m.set_budget(5);
            let err = if batched {
                m.try_run_batched(&BatchedProgram::new(&prog))
            } else {
                m.try_run_decoded(&DecodedProgram::new(&prog))
            }
            .expect_err("budget must trip");
            (err, m.vregs)
        };
        let (err_d, vregs_d) = run_with(false);
        let (err_b, vregs_b) = run_with(true);
        assert_eq!(err_b, err_d);
        assert_eq!(err_b.pc, 5);
        assert_eq!(err_b.executed, 6);
        assert_eq!(
            vregs_b, vregs_d,
            "partial state must match the decoded engine"
        );
        assert_eq!(vregs_b[12], V256::splat(7.0), "five fmas retired");
        assert_eq!(vregs_b[13], V256::ZERO, "the sixth did not");
    }

    #[test]
    fn batched_budget_trips_identically_inside_seq_load_runs() {
        // A contiguous 4-load run with budget 2: the seq fast path
        // must be bypassed and partial state kept exact.
        let prog: Vec<Instr> = (0..4)
            .map(|i| Instr::Vldd {
                d: VReg(i as u8),
                base: IReg(0),
                off: 4 * i,
            })
            .collect();
        let run_with = |batched: bool| {
            let mut ldm = mk_ldm();
            let mut comm = NullComm;
            let mut m = Machine::new(&mut ldm, &mut comm);
            m.set_budget(2);
            let err = if batched {
                m.try_run_batched(&BatchedProgram::new(&prog))
            } else {
                m.try_run_decoded(&DecodedProgram::new(&prog))
            }
            .expect_err("budget must trip");
            (err, m.vregs)
        };
        let (err_d, vregs_d) = run_with(false);
        let (err_b, vregs_b) = run_with(true);
        assert_eq!(err_b, err_d);
        assert_eq!(err_b.pc, 2);
        assert_eq!(vregs_b, vregs_d);
        assert_ne!(vregs_b[1], V256::ZERO, "two loads retired");
        assert_eq!(vregs_b[2], V256::ZERO, "the third did not");
    }

    #[test]
    fn batched_handles_counted_loops() {
        // Branch back into a fused-run boundary: the op_at map must
        // land control flow exactly.
        let prog = [
            Instr::Setl { d: IReg(7), imm: 3 },
            Instr::Vmad {
                a: VReg(0),
                b: VReg(1),
                c: VReg(2),
                d: VReg(2),
            },
            Instr::Vmad {
                a: VReg(0),
                b: VReg(1),
                c: VReg(3),
                d: VReg(3),
            },
            Instr::Addl {
                d: IReg(7),
                s: IReg(7),
                imm: -1,
            },
            Instr::Bne {
                s: IReg(7),
                target: 1,
            },
        ];
        let mut ldm_d = mk_ldm();
        let mut comm_d = NullComm;
        let mut md = Machine::new(&mut ldm_d, &mut comm_d);
        let (rep_d, st_d) = md.run_decoded_probed(&DecodedProgram::new(&prog));
        let (vd, id) = (md.vregs, md.iregs);
        let mut ldm_b = mk_ldm();
        let mut comm_b = NullComm;
        let mut mb = Machine::new(&mut ldm_b, &mut comm_b);
        let (rep_b, st_b) = mb.run_batched_probed(&BatchedProgram::new(&prog));
        assert_eq!(rep_b, rep_d);
        assert_eq!(st_b, st_d);
        assert_eq!(rep_b.taken_branches, 2);
        assert_eq!(mb.vregs, vd);
        assert_eq!(mb.iregs, id);
    }

    #[test]
    fn compiled_falls_back_on_branches_and_budget() {
        // Branchy program: no trace, decoded fallback, identical run.
        let loop_prog = [
            Instr::Setl { d: IReg(1), imm: 3 },
            Instr::Addl {
                d: IReg(1),
                s: IReg(1),
                imm: -1,
            },
            Instr::Bne {
                s: IReg(1),
                target: 1,
            },
        ];
        let compiled = CompiledProgram::new(&loop_prog);
        assert!(!compiled.is_traced());
        let mut ldm_a = mk_ldm();
        let mut comm_a = NullComm;
        let rep_a = Machine::new(&mut ldm_a, &mut comm_a).run_compiled(&compiled);
        let mut ldm_b = mk_ldm();
        let mut comm_b = NullComm;
        let rep_b = Machine::new(&mut ldm_b, &mut comm_b).run(&loop_prog);
        assert_eq!(rep_a, rep_b);

        // Straight-line program with a too-small budget: the compiled
        // engine must not replay the trace; it reports the same error
        // and partial state as the decoded engine.
        let prog: Vec<Instr> = (8..16)
            .map(|d| Instr::Vmad {
                a: VReg(0),
                b: VReg(1),
                c: VReg(2),
                d: VReg(d),
            })
            .collect();
        let compiled = CompiledProgram::new(&prog);
        assert!(compiled.is_traced());
        let mut ldm_c = mk_ldm();
        let mut comm_c = NullComm;
        let mut mc = Machine::new(&mut ldm_c, &mut comm_c);
        mc.set_budget(5);
        let err_c = mc
            .try_run_compiled(&compiled)
            .expect_err("budget must trip");
        let vregs_c = mc.vregs;
        let mut ldm_d = mk_ldm();
        let mut comm_d = NullComm;
        let mut md = Machine::new(&mut ldm_d, &mut comm_d);
        md.set_budget(5);
        let err_d = md.try_run(&prog).expect_err("budget must trip");
        assert_eq!(err_c, err_d);
        assert_eq!(vregs_c, md.vregs);
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in EngineBackend::ALL {
            assert_eq!(backend.name().parse::<EngineBackend>().unwrap(), backend);
            assert_eq!(format!("{backend}"), backend.name());
        }
        assert!("jit".parse::<EngineBackend>().is_err());
        assert_eq!(EngineBackend::default(), EngineBackend::Decoded);
    }
}
