//! Kernel generation for arbitrary register tilings.
//!
//! §III-C.3 derives rM = rN = 4 analytically (LDM-bandwidth reduction
//! `2/(1/rM + 1/rN)` under `rM·rN + rM + rN < 32`). This module makes
//! the claim *measurable*: it generates the block kernel for any
//! feasible `(rM, rN)` tile — `rM` A-registers (covering `4·rM` rows),
//! `rN` splatted B-registers, `rM·rN` accumulators — in naive order,
//! and relies on [`crate::sched::list_schedule`] to software-pipeline
//! it. The `ablation_register` harness binary then measures cycles per
//! flop across tilings on the pipeline model, reproducing the paper's
//! conclusion empirically: wider tiles amortize P1 traffic until the
//! register file runs out.
//!
//! Local-operand kernels only (the collective scheme is tied to the
//! 16-row 4×4 tile); the paper's production tile lives in
//! [`crate::kernels`].

use crate::instr::Instr;
use crate::regs::{IReg, VReg};
use crate::sched::list_schedule;
use sw_arch::consts::{VREG_COUNT, VREG_LANES};

/// Registers the kernel needs besides the tile: α, the zero register,
/// and two epilogue temporaries.
const SUPPORT_REGS: usize = 4;

/// A register tiling choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tiling {
    /// A-registers per tile (tile rows = `4·rm`).
    pub rm: usize,
    /// B-registers per tile (tile columns = `rn`).
    pub rn: usize,
}

impl Tiling {
    /// Vector registers the tile consumes (§III-C.3's `rM·rN + rM +
    /// rN`).
    pub fn tile_registers(&self) -> usize {
        self.rm * self.rn + self.rm + self.rn
    }

    /// True when the tile plus the kernel's support registers fit the
    /// 32-register file.
    pub fn feasible(&self) -> bool {
        self.rm >= 1 && self.rn >= 1 && self.tile_registers() + SUPPORT_REGS <= VREG_COUNT
    }

    /// Tile rows (`4·rM` — one 256-bit register per 4 rows).
    pub fn rows(&self) -> usize {
        VREG_LANES * self.rm
    }
}

/// Configuration of a generic-tiling block kernel (all operands local).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TiledKernelCfg {
    /// Block rows; multiple of the tile rows.
    pub pm: usize,
    /// Block columns; multiple of `rn`.
    pub pn: usize,
    /// Depth.
    pub pk: usize,
    /// LDM offset of the A panel (pm×pk, column-major).
    pub a_base: usize,
    /// LDM offset of the B panel (pk×pn, column-major).
    pub b_base: usize,
    /// LDM offset of the C block (pm×pn, column-major).
    pub c_base: usize,
    /// LDM offset of the scalar α.
    pub alpha_addr: usize,
}

// Register layout: rA = v0..rm, rB = v(rm)..(rm+rn),
// rC = v(rm+rn)..(rm+rn+rm·rn), then α / zero / 2 temps at the top.
fn ra(t: Tiling, i: usize) -> VReg {
    debug_assert!(i < t.rm);
    VReg(i as u8)
}
fn rb(t: Tiling, j: usize) -> VReg {
    debug_assert!(j < t.rn);
    VReg((t.rm + j) as u8)
}
fn rc(t: Tiling, i: usize, j: usize) -> VReg {
    VReg((t.rm + t.rn + i * t.rn + j) as u8)
}
fn valpha(t: Tiling) -> VReg {
    VReg((t.tile_registers()) as u8)
}
fn vzero(t: Tiling) -> VReg {
    VReg((t.tile_registers() + 1) as u8)
}
fn tmp(t: Tiling, which: usize) -> VReg {
    debug_assert!(which < 2);
    VReg((t.tile_registers() + 2 + which) as u8)
}

const BASE: IReg = IReg(0);

/// Generates the block kernel for an arbitrary tiling, in naive order
/// (loads next to uses). Pass the result through
/// [`list_schedule`] for the pipelined form (see
/// [`gen_tiled_kernel_scheduled`]).
pub fn gen_tiled_kernel_naive(cfg: &TiledKernelCfg, t: Tiling) -> Vec<Instr> {
    assert!(t.feasible(), "tiling {t:?} does not fit the register file");
    assert!(
        cfg.pm > 0 && cfg.pm.is_multiple_of(t.rows()),
        "pm = {} must be a multiple of {}",
        cfg.pm,
        t.rows()
    );
    assert!(
        cfg.pn > 0 && cfg.pn.is_multiple_of(t.rn),
        "pn = {} must be a multiple of rn = {}",
        cfg.pn,
        t.rn
    );
    assert!(cfg.pk >= 1, "pk must be positive");
    assert!(
        cfg.a_base.is_multiple_of(4) && cfg.c_base.is_multiple_of(4),
        "A and C panels must be 256-bit aligned"
    );

    let mut prog = Vec::new();
    prog.push(Instr::Setl { d: BASE, imm: 0 });
    prog.push(Instr::Ldde {
        d: valpha(t),
        base: BASE,
        off: cfg.alpha_addr as i64,
    });
    prog.push(Instr::Vclr { d: vzero(t) });
    for r0 in (0..cfg.pm).step_by(t.rows()) {
        for j0 in (0..cfg.pn).step_by(t.rn) {
            // Tile body.
            for k in 0..cfg.pk {
                for i in 0..t.rm {
                    prog.push(Instr::Vldd {
                        d: ra(t, i),
                        base: BASE,
                        off: (cfg.a_base + k * cfg.pm + r0 + 4 * i) as i64,
                    });
                }
                for j in 0..t.rn {
                    prog.push(Instr::Ldde {
                        d: rb(t, j),
                        base: BASE,
                        off: (cfg.b_base + (j0 + j) * cfg.pk + k) as i64,
                    });
                    for i in 0..t.rm {
                        let c = if k == 0 { vzero(t) } else { rc(t, i, j) };
                        prog.push(Instr::Vmad {
                            a: ra(t, i),
                            b: rb(t, j),
                            c,
                            d: rc(t, i, j),
                        });
                    }
                }
            }
            // α-epilogue, two C words in flight.
            for j in 0..t.rn {
                for i in 0..t.rm {
                    let off = (cfg.c_base + (j0 + j) * cfg.pm + r0 + 4 * i) as i64;
                    let tr = tmp(t, i % 2);
                    prog.push(Instr::Vldd {
                        d: tr,
                        base: BASE,
                        off,
                    });
                    prog.push(Instr::Vmad {
                        a: rc(t, i, j),
                        b: valpha(t),
                        c: tr,
                        d: tr,
                    });
                    prog.push(Instr::Vstd {
                        s: tr,
                        base: BASE,
                        off,
                    });
                }
            }
        }
    }
    prog
}

/// The list-scheduled (software-pipelined) form of the generic-tiling
/// kernel.
pub fn gen_tiled_kernel_scheduled(cfg: &TiledKernelCfg, t: Tiling) -> Vec<Instr> {
    list_schedule(&gen_tiled_kernel_naive(cfg, t))
}

/// Enumerates the feasible square-ish tilings worth benchmarking.
pub fn ablation_tilings() -> Vec<Tiling> {
    let mut out = Vec::new();
    for rm in 1..=6 {
        for rn in 1..=8 {
            let t = Tiling { rm, rn };
            if t.feasible() {
                out.push(t);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::NullComm;
    use crate::machine::Machine;

    fn cfg(t: Tiling, pk: usize) -> TiledKernelCfg {
        TiledKernelCfg {
            pm: t.rows(),
            pn: 2 * t.rn,
            pk,
            a_base: 0,
            b_base: 2048,
            c_base: 4096,
            alpha_addr: 8000,
        }
    }

    fn reference(c: &TiledKernelCfg, ldm: &[f64], alpha: f64) -> Vec<f64> {
        let mut out: Vec<f64> = ldm[c.c_base..c.c_base + c.pm * c.pn].to_vec();
        for j in 0..c.pn {
            for r in 0..c.pm {
                let mut acc = 0.0f64;
                for k in 0..c.pk {
                    acc = ldm[c.a_base + k * c.pm + r].mul_add(ldm[c.b_base + j * c.pk + k], acc);
                }
                out[j * c.pm + r] = acc.mul_add(alpha, out[j * c.pm + r]);
            }
        }
        out
    }

    fn fill(c: &TiledKernelCfg, alpha: f64) -> Vec<f64> {
        let mut x = 0.77f64;
        let mut ldm = vec![0.0; 8192];
        for v in ldm.iter_mut().take(c.c_base + c.pm * c.pn) {
            x = (x * 1103.0 + 0.377).fract() - 0.5;
            *v = x;
        }
        ldm[c.alpha_addr] = alpha;
        ldm
    }

    #[test]
    fn every_feasible_tiling_is_correct_and_verifies() {
        for t in ablation_tilings() {
            let c = cfg(t, 8);
            let alpha = 1.25;
            let mut ldm = fill(&c, alpha);
            let expect = reference(&c, &ldm, alpha);
            let naive = gen_tiled_kernel_naive(&c, t);
            // Static verification of the tiled generators lives in
            // sw-lint's test suite (the analyzer depends on this crate).
            let mut comm = NullComm;
            Machine::new(&mut ldm, &mut comm).run(&naive);
            assert_eq!(
                &ldm[c.c_base..c.c_base + c.pm * c.pn],
                &expect[..],
                "{t:?} wrong result"
            );
        }
    }

    #[test]
    fn scheduled_form_matches_naive_bitwise() {
        for t in [
            Tiling { rm: 2, rn: 2 },
            Tiling { rm: 4, rn: 4 },
            Tiling { rm: 1, rn: 8 },
        ] {
            let c = cfg(t, 12);
            let mut l1 = fill(&c, -0.5);
            let mut l2 = l1.clone();
            let mut comm = NullComm;
            Machine::new(&mut l1, &mut comm).run(&gen_tiled_kernel_naive(&c, t));
            Machine::new(&mut l2, &mut comm).run(&gen_tiled_kernel_scheduled(&c, t));
            assert_eq!(l1, l2, "{t:?}");
        }
    }

    #[test]
    fn four_by_four_matches_the_production_generator() {
        // The generic path at rM = rN = 4 must agree numerically with
        // the Algorithm 3 generator (same per-element FMA order).
        use crate::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
        let t = Tiling { rm: 4, rn: 4 };
        let c = cfg(t, 16);
        let mut l1 = fill(&c, 2.0);
        let mut l2 = l1.clone();
        let kc = BlockKernelCfg {
            pm: c.pm,
            pn: c.pn,
            pk: c.pk,
            a_src: Operand::Ldm,
            b_src: Operand::Ldm,
            a_base: c.a_base,
            b_base: c.b_base,
            c_base: c.c_base,
            alpha_addr: c.alpha_addr,
        };
        let mut comm = NullComm;
        Machine::new(&mut l1, &mut comm).run(&gen_tiled_kernel_naive(&c, t));
        Machine::new(&mut l2, &mut comm).run(&gen_block_kernel(&kc, KernelStyle::Naive));
        assert_eq!(
            &l1[c.c_base..c.c_base + c.pm * c.pn],
            &l2[c.c_base..c.c_base + c.pm * c.pn]
        );
    }

    #[test]
    fn wider_tiles_cost_fewer_cycles_per_flop() {
        // The empirical form of §III-C.3: cycles/vmad falls as the tile
        // widens (scheduled forms).
        let mut per_flop = Vec::new();
        for t in [
            Tiling { rm: 1, rn: 1 },
            Tiling { rm: 2, rn: 2 },
            Tiling { rm: 4, rn: 4 },
        ] {
            let c = cfg(t, 32);
            let mut ldm = fill(&c, 1.0);
            let mut comm = NullComm;
            let r = Machine::new(&mut ldm, &mut comm).run(&gen_tiled_kernel_scheduled(&c, t));
            per_flop.push((t, r.cycles as f64 / r.vmads as f64));
        }
        for w in per_flop.windows(2) {
            assert!(
                w[1].1 < w[0].1,
                "{:?} ({:.2} cyc/vmad) should beat {:?} ({:.2})",
                w[1].0,
                w[1].1,
                w[0].0,
                w[0].1
            );
        }
        // And 4×4 approaches the 1-cycle-per-vmad ideal (the residue is
        // the two-temporary epilogue, which the production 4-temporary
        // kernel in `kernels.rs` amortizes better).
        let (_, best) = per_flop.last().unwrap();
        assert!(*best < 1.35, "4x4 scheduled was {best:.2} cycles/vmad");
    }

    #[test]
    fn infeasible_tilings_rejected() {
        assert!(!Tiling { rm: 5, rn: 5 }.feasible());
        assert!(!Tiling { rm: 0, rn: 4 }.feasible());
        // 4×5 fits the raw §III-C.3 bound but not with support regs.
        assert!(!Tiling { rm: 4, rn: 5 }.feasible());
    }
}
