//! Programmatic generators for the register-blocked DGEMM micro-kernel.
//!
//! The register-level blocking of §III-C.3 uses rM = rN = 4: four vector
//! registers of A (16 rows), four splatted B scalars (4 columns), and 16
//! accumulators — a 16×4 C tile updated along the full `pK` depth. A
//! thread-level block multiplication executes this tile kernel
//! `(pM/16)·(pN/4)` times and folds `α` into the LDM-resident C block in
//! a per-tile epilogue (`C_ldm[i][j] += α · acc[i][j]`).
//!
//! Two code shapes are generated from the same arithmetic:
//!
//! * [`KernelStyle::Naive`] — loads placed next to their uses, no
//!   software pipelining: the shape a straightforward compiler emits.
//!   On the dual-issue in-order pipeline it costs ≈34 cycles per
//!   k-iteration (load-use stalls dominate).
//! * [`KernelStyle::Scheduled`] — the hand schedule of Algorithm 3
//!   (§IV-C): every k-iteration is exactly 16 dual-issue pairs; the
//!   A3/B3 words of the *current* iteration load in pairs 1–2, the
//!   A0–A2/B0–B2 words of the *next* iteration load right after their
//!   last use, and `nop`s hold the issue pattern in place. Steady state
//!   is 16 cycles per k-iteration with zero stalls.
//!
//! The ≈2.1× ratio between the two — measured by the executor, not
//! assumed — is what reproduces the paper's 113.9 % SCHED-over-DB gain.
//!
//! Operand sourcing mirrors the collective data sharing scheme
//! (§III-B): each of A and B is either loaded locally, loaded *and
//! broadcast* (`vldr`/`lddec`), or received from the mesh
//! (`getr`/`getc`), according to the CPE's role in the current strip
//! step.

// Register arrays are index-coupled to the instruction encoding; indexed
// loops are clearer than iterator chains here.
#![allow(clippy::needless_range_loop)]

use crate::instr::{Instr, Net};
use crate::regs::{IReg, VReg};

/// Where a kernel operand comes from in the current strip step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Plain local LDM loads (no communication).
    Ldm,
    /// Local LDM loads broadcast to the given network, local copy kept
    /// (`vldr` / `lddec`) — the broadcaster roles of §III-B.
    LdmBcast(Net),
    /// Received from the given network (`getr` / `getc`).
    Recv(Net),
}

impl Operand {
    /// True when this operand never touches the mesh.
    pub fn is_local(&self) -> bool {
        matches!(self, Operand::Ldm)
    }
}

/// Code shape to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelStyle {
    /// Loads next to uses, no pipelining.
    Naive,
    /// Algorithm 3: software-pipelined dual-issue pairs.
    Scheduled,
}

/// Configuration of one thread-level block multiplication
/// `C (pm×pn) += α · A (pm×pk) · B (pk×pn)`, all panels column-major in
/// this CPE's LDM at absolute double offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockKernelCfg {
    /// Block rows; multiple of 16 (one register tile covers 16 rows).
    pub pm: usize,
    /// Block columns; multiple of 4.
    pub pn: usize,
    /// Depth.
    pub pk: usize,
    /// How A words are obtained.
    pub a_src: Operand,
    /// How B scalars are obtained.
    pub b_src: Operand,
    /// LDM offset of the A panel (ignored when `a_src` is `Recv`).
    pub a_base: usize,
    /// LDM offset of the B panel (ignored when `b_src` is `Recv`).
    pub b_base: usize,
    /// LDM offset of the C block.
    pub c_base: usize,
    /// LDM offset of the scalar α.
    pub alpha_addr: usize,
}

// Register allocation (32 vector registers, §III-C.3: rM·rN + rM + rN < 32):
// v0..v3   rA[0..4]     — 16 rows of the current A column
// v4..v7   rB[0..4]     — 4 splatted B scalars
// v8       α (splatted)
// v9..v12  epilogue temporaries
// v16..v31 rC[i][j] = v16 + 4*i + j
const RA: [VReg; 4] = [VReg(0), VReg(1), VReg(2), VReg(3)];
const RB: [VReg; 4] = [VReg(4), VReg(5), VReg(6), VReg(7)];
const VALPHA: VReg = VReg(8);
const TMP: [VReg; 4] = [VReg(9), VReg(10), VReg(11), VReg(12)];
/// Permanently-zero register: the first k-iteration of each tile uses it
/// as the addend, which zero-initializes the accumulators without 16
/// `vclr`s per tile.
const VZERO: VReg = VReg(13);
#[inline]
fn rc(i: usize, j: usize) -> VReg {
    VReg((16 + 4 * i + j) as u8)
}

/// Base register; the generators emit fully unrolled streams with
/// absolute offsets, so a single zeroed base register suffices.
const BASE: IReg = IReg(0);
/// Scratch integer registers for the pointer-update `addl`s Algorithm 3
/// carries in its pair schedule.
const SCRATCH: [IReg; 2] = [IReg(6), IReg(7)];

/// The `vmad` issue order of Algorithm 3: `(a index, b index)` pairs.
/// `rC` index is `4a + b`.
const SCHED_VMAD_ORDER: [(usize, usize); 16] = [
    (0, 0),
    (0, 1),
    (1, 0),
    (1, 1),
    (0, 2),
    (2, 0),
    (0, 3),
    (3, 0),
    (1, 2),
    (1, 3),
    (2, 1),
    (3, 1),
    (2, 2),
    (2, 3),
    (3, 2),
    (3, 3),
];

/// P1 companion of each pair in the Algorithm 3 schedule.
#[derive(Clone, Copy)]
enum P1Slot {
    /// Load A word `i` of the *current* k.
    ACur(usize),
    /// Load B scalar `j` of the *current* k.
    BCur(usize),
    /// Load A word `i` of the *next* k.
    ANext(usize),
    /// Load B scalar `j` of the *next* k.
    BNext(usize),
    /// Pointer-update `addl` (scratch register `idx`).
    Addl(usize),
    /// Hold the pattern.
    Nop,
}

/// Algorithm 3's P1 schedule, pair by pair.
const SCHED_P1_ORDER: [P1Slot; 16] = [
    P1Slot::ACur(3),
    P1Slot::BCur(3),
    P1Slot::Addl(0),
    P1Slot::Addl(1),
    P1Slot::Nop,
    P1Slot::Nop,
    P1Slot::ANext(0),
    P1Slot::Nop,
    P1Slot::BNext(0),
    P1Slot::ANext(1),
    P1Slot::Nop,
    P1Slot::BNext(1),
    P1Slot::Nop,
    P1Slot::ANext(2),
    P1Slot::BNext(2),
    P1Slot::Nop,
];

impl BlockKernelCfg {
    /// Validates the shape constraints the generators assume.
    pub fn validate(&self) -> Result<(), String> {
        if self.pm == 0 || !self.pm.is_multiple_of(16) {
            return Err(format!(
                "pm = {} must be a positive multiple of 16",
                self.pm
            ));
        }
        if self.pn == 0 || !self.pn.is_multiple_of(4) {
            return Err(format!("pn = {} must be a positive multiple of 4", self.pn));
        }
        if self.pk < 2 {
            return Err(format!("pk = {} must be at least 2", self.pk));
        }
        if self.pm != 16 && (!self.a_src.is_local() || !self.b_src.is_local()) {
            return Err(
                "communication operands require pm = 16 (one register tile of rows, \
                        matching the 8x8 strip decomposition)"
                    .into(),
            );
        }
        if !self.a_base.is_multiple_of(4) || !self.c_base.is_multiple_of(4) {
            return Err("A and C panels must be 256-bit aligned in LDM".into());
        }
        Ok(())
    }

    /// Absolute LDM offset of A word `i` (rows `r0+4i..r0+4i+4`) of
    /// column `k`.
    fn a_off(&self, r0: usize, k: usize, i: usize) -> i64 {
        (self.a_base + k * self.pm + r0 + 4 * i) as i64
    }

    /// Absolute LDM offset of B element `(k, j0 + j)`.
    fn b_off(&self, k: usize, j0: usize, j: usize) -> i64 {
        (self.b_base + (j0 + j) * self.pk + k) as i64
    }

    /// Absolute LDM offset of C element `(r, j0 + j)`.
    fn c_off(&self, r: usize, j0: usize, j: usize) -> i64 {
        (self.c_base + (j0 + j) * self.pm + r) as i64
    }

    fn load_a(&self, d: VReg, r0: usize, k: usize, i: usize) -> Instr {
        match self.a_src {
            Operand::Ldm => Instr::Vldd {
                d,
                base: BASE,
                off: self.a_off(r0, k, i),
            },
            Operand::LdmBcast(net) => Instr::Vldr {
                d,
                base: BASE,
                off: self.a_off(r0, k, i),
                net,
            },
            Operand::Recv(Net::Row) => Instr::Getr { d },
            Operand::Recv(Net::Col) => Instr::Getc { d },
        }
    }

    fn load_b(&self, d: VReg, k: usize, j0: usize, j: usize) -> Instr {
        match self.b_src {
            Operand::Ldm => Instr::Ldde {
                d,
                base: BASE,
                off: self.b_off(k, j0, j),
            },
            Operand::LdmBcast(net) => Instr::Lddec {
                d,
                base: BASE,
                off: self.b_off(k, j0, j),
                net,
            },
            Operand::Recv(Net::Row) => Instr::Getr { d },
            Operand::Recv(Net::Col) => Instr::Getc { d },
        }
    }
}

/// Generates the full thread-level block multiplication program.
///
/// ```
/// use sw_isa::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
///
/// let cfg = BlockKernelCfg {
///     pm: 16, pn: 8, pk: 16,
///     a_src: Operand::Ldm, b_src: Operand::Ldm,
///     a_base: 0, b_base: 2048, c_base: 4096, alpha_addr: 8000,
/// };
/// let hand = gen_block_kernel(&cfg, KernelStyle::Scheduled);
/// let vmads = hand.iter().filter(|i| matches!(i, sw_isa::Instr::Vmad { .. })).count();
/// assert_eq!(vmads as u64, sw_isa::kernels::body_vmads(&cfg) + 16 * 2);
/// ```
///
/// Generated streams are verified by the `sw-lint` static analyzer
/// (structural checks, LDM bounds, mesh rendezvous) rather than here.
pub fn gen_block_kernel(cfg: &BlockKernelCfg, style: KernelStyle) -> Vec<Instr> {
    cfg.validate().expect("invalid kernel configuration");
    let mut prog = Vec::new();
    prog.push(Instr::Setl { d: BASE, imm: 0 });
    prog.push(Instr::Ldde {
        d: VALPHA,
        base: BASE,
        off: cfg.alpha_addr as i64,
    });
    prog.push(Instr::Vclr { d: VZERO });
    for r0 in (0..cfg.pm).step_by(16) {
        for j0 in (0..cfg.pn).step_by(4) {
            match style {
                KernelStyle::Naive => gen_tile_naive(cfg, r0, j0, &mut prog),
                KernelStyle::Scheduled => gen_tile_scheduled(cfg, r0, j0, &mut prog),
            }
            gen_tile_epilogue(cfg, r0, j0, &mut prog);
        }
    }
    prog
}

/// Addend register for accumulator `rc(i, j)` at depth `k`: the zero
/// register on the first iteration (accumulator initialization), the
/// accumulator itself afterwards.
#[inline]
fn addend(i: usize, j: usize, k: usize) -> VReg {
    if k == 0 {
        VZERO
    } else {
        rc(i, j)
    }
}

/// Naive tile body: per k, load the 4 A words, then per column load the
/// B scalar and immediately consume it — no pipelining across
/// iterations, the shape unoptimized code takes.
fn gen_tile_naive(cfg: &BlockKernelCfg, r0: usize, j0: usize, prog: &mut Vec<Instr>) {
    for k in 0..cfg.pk {
        for (i, &ra) in RA.iter().enumerate() {
            prog.push(cfg.load_a(ra, r0, k, i));
        }
        // The address updates unoptimized code performs each iteration.
        prog.push(Instr::Addl {
            d: SCRATCH[0],
            s: SCRATCH[0],
            imm: cfg.pm as i64,
        });
        prog.push(Instr::Addl {
            d: SCRATCH[1],
            s: SCRATCH[1],
            imm: 1,
        });
        for j in 0..4 {
            prog.push(cfg.load_b(RB[j], k, j0, j));
            for i in 0..4 {
                prog.push(Instr::Vmad {
                    a: RA[i],
                    b: RB[j],
                    c: addend(i, j, k),
                    d: rc(i, j),
                });
            }
        }
    }
}

/// Scheduled tile body: Algorithm 3. A0–A2/B0–B2 are preloaded; every
/// k-iteration issues 16 (P0, P1) pairs — the 16 `vmad`s in the
/// paper's order against the current-k A3/B3 loads, the next-k
/// A0–A2/B0–B2 loads, two `addl`s and pattern-holding `nop`s.
fn gen_tile_scheduled(cfg: &BlockKernelCfg, r0: usize, j0: usize, prog: &mut Vec<Instr>) {
    // Preload A0..A2 and B0..B2 of k = 0.
    for i in 0..3 {
        prog.push(cfg.load_a(RA[i], r0, 0, i));
    }
    for j in 0..3 {
        prog.push(cfg.load_b(RB[j], 0, j0, j));
    }
    for k in 0..cfg.pk {
        let last = k + 1 == cfg.pk;
        for (pair, &(ai, bj)) in SCHED_VMAD_ORDER.iter().enumerate() {
            prog.push(Instr::Vmad {
                a: RA[ai],
                b: RB[bj],
                c: addend(ai, bj, k),
                d: rc(ai, bj),
            });
            let p1 = match SCHED_P1_ORDER[pair] {
                P1Slot::ACur(i) => cfg.load_a(RA[i], r0, k, i),
                P1Slot::BCur(j) => cfg.load_b(RB[j], k, j0, j),
                // Next-k loads fall off the panel in the final
                // iteration; the pattern holds with nops instead.
                P1Slot::ANext(i) if !last => cfg.load_a(RA[i], r0, k + 1, i),
                P1Slot::BNext(j) if !last => cfg.load_b(RB[j], k + 1, j0, j),
                P1Slot::ANext(_) | P1Slot::BNext(_) => Instr::Nop,
                P1Slot::Addl(s) => Instr::Addl {
                    d: SCRATCH[s],
                    s: SCRATCH[s],
                    imm: 1,
                },
                P1Slot::Nop => Instr::Nop,
            };
            prog.push(p1);
        }
    }
}

/// Tile epilogue: `C_ldm[r, j] += α · acc[r, j]` for the 16×4 tile,
/// four C words in flight.
fn gen_tile_epilogue(cfg: &BlockKernelCfg, r0: usize, j0: usize, prog: &mut Vec<Instr>) {
    for j in 0..4 {
        for i in 0..4 {
            prog.push(Instr::Vldd {
                d: TMP[i],
                base: BASE,
                off: cfg.c_off(r0 + 4 * i, j0, j),
            });
        }
        for i in 0..4 {
            prog.push(Instr::Vmad {
                a: rc(i, j),
                b: VALPHA,
                c: TMP[i],
                d: TMP[i],
            });
        }
        for i in 0..4 {
            prog.push(Instr::Vstd {
                s: TMP[i],
                base: BASE,
                off: cfg.c_off(r0 + 4 * i, j0, j),
            });
        }
    }
}

/// Number of `vmad`s the block kernel performs (excluding the α
/// epilogue): `pm·pn·pk / 4` lanes of FMA work.
pub fn body_vmads(cfg: &BlockKernelCfg) -> u64 {
    (cfg.pm / 16) as u64 * (cfg.pn / 4) as u64 * cfg.pk as u64 * 16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{NullComm, ScriptedComm};
    use crate::machine::Machine;

    /// Host reference of the same block update with matching FMA
    /// accumulation order (k ascending per element, one α fold at the
    /// end).
    fn reference(cfg: &BlockKernelCfg, ldm: &[f64], alpha: f64) -> Vec<f64> {
        let mut c: Vec<f64> = ldm[cfg.c_base..cfg.c_base + cfg.pm * cfg.pn].to_vec();
        for j in 0..cfg.pn {
            for r in 0..cfg.pm {
                let mut acc = 0.0f64;
                for k in 0..cfg.pk {
                    let a = ldm[cfg.a_base + k * cfg.pm + r];
                    let b = ldm[cfg.b_base + j * cfg.pk + k];
                    acc = a.mul_add(b, acc);
                }
                let idx = j * cfg.pm + r;
                c[idx] = acc.mul_add(alpha, c[idx]);
            }
        }
        c
    }

    fn fill_ldm(cfg: &BlockKernelCfg, alpha: f64) -> Vec<f64> {
        let mut ldm = vec![0.0; 8192];
        let mut x = 0.37f64;
        let mut next = || {
            x = (x * 997.0 + 0.1234).fract() - 0.5;
            x
        };
        for v in ldm[cfg.a_base..cfg.a_base + cfg.pm * cfg.pk].iter_mut() {
            *v = next();
        }
        for v in ldm[cfg.b_base..cfg.b_base + cfg.pk * cfg.pn].iter_mut() {
            *v = next();
        }
        for v in ldm[cfg.c_base..cfg.c_base + cfg.pm * cfg.pn].iter_mut() {
            *v = next();
        }
        ldm[cfg.alpha_addr] = alpha;
        ldm
    }

    fn local_cfg(pm: usize, pn: usize, pk: usize) -> BlockKernelCfg {
        BlockKernelCfg {
            pm,
            pn,
            pk,
            a_src: Operand::Ldm,
            b_src: Operand::Ldm,
            a_base: 0,
            b_base: 4096,
            c_base: 6144,
            alpha_addr: 8000,
        }
    }

    #[test]
    fn naive_kernel_matches_reference() {
        let cfg = local_cfg(16, 8, 24);
        let alpha = 1.5;
        let mut ldm = fill_ldm(&cfg, alpha);
        let expect = reference(&cfg, &ldm, alpha);
        let prog = gen_block_kernel(&cfg, KernelStyle::Naive);
        let mut comm = NullComm;
        Machine::new(&mut ldm, &mut comm).run(&prog);
        assert_eq!(&ldm[cfg.c_base..cfg.c_base + cfg.pm * cfg.pn], &expect[..]);
    }

    #[test]
    fn scheduled_kernel_matches_reference_bitwise() {
        let cfg = local_cfg(16, 8, 24);
        let alpha = -0.75;
        let mut ldm = fill_ldm(&cfg, alpha);
        let expect = reference(&cfg, &ldm, alpha);
        let prog = gen_block_kernel(&cfg, KernelStyle::Scheduled);
        let mut comm = NullComm;
        Machine::new(&mut ldm, &mut comm).run(&prog);
        assert_eq!(&ldm[cfg.c_base..cfg.c_base + cfg.pm * cfg.pn], &expect[..]);
    }

    #[test]
    fn scheduled_and_naive_agree_bitwise() {
        // Different instruction orders, same per-element FMA order.
        let cfg = local_cfg(32, 12, 16);
        let alpha = 2.25;
        let mut l1 = fill_ldm(&cfg, alpha);
        let mut l2 = l1.clone();
        let mut comm = NullComm;
        Machine::new(&mut l1, &mut comm).run(&gen_block_kernel(&cfg, KernelStyle::Naive));
        Machine::new(&mut l2, &mut comm).run(&gen_block_kernel(&cfg, KernelStyle::Scheduled));
        assert_eq!(l1, l2);
    }

    #[test]
    fn scheduled_steady_state_is_16_cycles_per_k() {
        // The paper's production shape: pm=16, pn=32, pk=96.
        let cfg = local_cfg(16, 32, 96);
        let mut ldm = fill_ldm(&cfg, 1.0);
        let prog = gen_block_kernel(&cfg, KernelStyle::Scheduled);
        let mut comm = NullComm;
        let r = Machine::new(&mut ldm, &mut comm).run(&prog);
        let per_k = r.cycles as f64 / (8.0 * 96.0);
        assert!(
            per_k < 16.8,
            "scheduled kernel should be ~16 cycles per k-iteration, got {per_k:.2}"
        );
        // §IV-C: vmad occupies ~97% of the cycles.
        assert!(
            r.vmad_occupancy() > 0.94,
            "vmad occupancy should be ≥94%, got {:.3}",
            r.vmad_occupancy()
        );
    }

    #[test]
    fn naive_is_roughly_2x_scheduled() {
        let cfg = local_cfg(16, 32, 96);
        let mut l1 = fill_ldm(&cfg, 1.0);
        let mut l2 = l1.clone();
        let mut comm = NullComm;
        let rn = Machine::new(&mut l1, &mut comm).run(&gen_block_kernel(&cfg, KernelStyle::Naive));
        let rs =
            Machine::new(&mut l2, &mut comm).run(&gen_block_kernel(&cfg, KernelStyle::Scheduled));
        let ratio = rn.cycles as f64 / rs.cycles as f64;
        assert!(
            (1.9..2.4).contains(&ratio),
            "naive/scheduled cycle ratio should be ~2.1 (paper: +113.9%), got {ratio:.2}"
        );
    }

    #[test]
    fn paper_loop_cycle_count_reproduced() {
        // §IV-C profiles the whole strip-multiplication loop of one
        // thread-level block (pm=16, pn=32, pk=96, 8 strip steps) at
        // 101,858 cycles with vmad taking 97% of them. One strip step
        // is one block kernel; 8 steps must land near that count.
        let cfg = local_cfg(16, 32, 96);
        let mut ldm = fill_ldm(&cfg, 1.0);
        let mut comm = NullComm;
        let r =
            Machine::new(&mut ldm, &mut comm).run(&gen_block_kernel(&cfg, KernelStyle::Scheduled));
        let eight_steps = 8 * r.cycles;
        assert!(
            (98_000..=108_000).contains(&eight_steps),
            "8 strip steps should take ≈101,858 cycles, got {eight_steps}"
        );
    }

    #[test]
    fn broadcaster_and_receiver_transcripts_compose() {
        // A diagonal CPE broadcasts A (row) and B (col); a plain CPE
        // receives both. Feeding the broadcaster's transcript to the
        // receiver must reproduce the local result exactly.
        let base = local_cfg(16, 8, 16);
        let alpha = 1.0;
        let ldm0 = fill_ldm(&base, alpha);

        // Local reference run.
        let mut l_ref = ldm0.clone();
        let mut comm = NullComm;
        Machine::new(&mut l_ref, &mut comm).run(&gen_block_kernel(&base, KernelStyle::Scheduled));

        // Broadcaster run (keeps local copies, so same numerics).
        let bcfg = BlockKernelCfg {
            a_src: Operand::LdmBcast(Net::Row),
            b_src: Operand::LdmBcast(Net::Col),
            ..base
        };
        let mut l_b = ldm0.clone();
        let mut bcomm = ScriptedComm::default();
        Machine::new(&mut l_b, &mut bcomm).run(&gen_block_kernel(&bcfg, KernelStyle::Scheduled));
        assert_eq!(
            &l_b[base.c_base..base.c_base + base.pm * base.pn],
            &l_ref[base.c_base..base.c_base + base.pm * base.pn]
        );

        // Receiver run fed with the broadcaster's transcript.
        let rcfg = BlockKernelCfg {
            a_src: Operand::Recv(Net::Row),
            b_src: Operand::Recv(Net::Col),
            ..base
        };
        let mut l_r = ldm0.clone();
        // Wipe the receiver's A/B panels: it must not touch them.
        for v in l_r[base.a_base..base.a_base + base.pm * base.pk].iter_mut() {
            *v = f64::NAN;
        }
        for v in l_r[base.b_base..base.b_base + base.pk * base.pn].iter_mut() {
            *v = f64::NAN;
        }
        let mut rcomm = ScriptedComm {
            row_in: bcomm.row_out.iter().copied().collect(),
            col_in: bcomm.col_out.iter().copied().collect(),
            ..Default::default()
        };
        Machine::new(&mut l_r, &mut rcomm).run(&gen_block_kernel(&rcfg, KernelStyle::Scheduled));
        assert_eq!(
            &l_r[base.c_base..base.c_base + base.pm * base.pn],
            &l_ref[base.c_base..base.c_base + base.pm * base.pn]
        );
        assert!(
            rcomm.row_in.is_empty(),
            "receiver must consume the full A transcript"
        );
        assert!(
            rcomm.col_in.is_empty(),
            "receiver must consume the full B transcript"
        );
    }

    #[test]
    fn naive_and_scheduled_comm_transcripts_are_equal() {
        // The two styles must put the *same words in the same order*
        // on the mesh, or mixed deployments would deadlock.
        let base = local_cfg(16, 8, 12);
        let bcfg = BlockKernelCfg {
            a_src: Operand::LdmBcast(Net::Row),
            b_src: Operand::LdmBcast(Net::Col),
            ..base
        };
        let ldm0 = fill_ldm(&base, 1.0);
        let mut c1 = ScriptedComm::default();
        let mut c2 = ScriptedComm::default();
        let mut l1 = ldm0.clone();
        let mut l2 = ldm0;
        Machine::new(&mut l1, &mut c1).run(&gen_block_kernel(&bcfg, KernelStyle::Naive));
        Machine::new(&mut l2, &mut c2).run(&gen_block_kernel(&bcfg, KernelStyle::Scheduled));
        assert_eq!(c1.row_out, c2.row_out);
        assert_eq!(c1.col_out, c2.col_out);
    }

    #[test]
    fn register_budget_respected() {
        // §III-C.3: rM·rN + rM + rN < 32. Our allocation uses 16 + 4 +
        // 4 + α + 4 temps = 29 < 32.
        let cfg = local_cfg(16, 32, 96);
        for style in [KernelStyle::Naive, KernelStyle::Scheduled] {
            let prog = gen_block_kernel(&cfg, style);
            let max_reg = prog
                .iter()
                .filter_map(|i| i.vdst())
                .map(|r| r.0)
                .max()
                .unwrap();
            assert!(max_reg < 32);
        }
    }

    #[test]
    fn invalid_shapes_rejected() {
        assert!(local_cfg(8, 8, 16).validate().is_err());
        assert!(local_cfg(16, 6, 16).validate().is_err());
        assert!(local_cfg(16, 8, 1).validate().is_err());
        let mut c = local_cfg(32, 8, 16);
        c.a_src = Operand::Recv(Net::Row);
        assert!(c.validate().is_err());
    }

    #[test]
    fn body_vmad_count() {
        let cfg = local_cfg(16, 32, 96);
        assert_eq!(body_vmads(&cfg), 8 * 96 * 16);
    }
}

#[cfg(test)]
mod diag {
    use super::*;
    use crate::comm::NullComm;
    use crate::machine::Machine;

    #[test]
    #[ignore]
    fn print_marginals() {
        let mk = |pk| BlockKernelCfg {
            pm: 16,
            pn: 4,
            pk,
            a_src: Operand::Ldm,
            b_src: Operand::Ldm,
            a_base: 0,
            b_base: 4096,
            c_base: 6144,
            alpha_addr: 8000,
        };
        let mut comm = NullComm;
        for style in [KernelStyle::Scheduled, KernelStyle::Naive] {
            let mut ldm = vec![1.0; 8192];
            let r1 = Machine::new(&mut ldm, &mut comm).run(&gen_block_kernel(&mk(100), style));
            let mut ldm = vec![1.0; 8192];
            let r2 = Machine::new(&mut ldm, &mut comm).run(&gen_block_kernel(&mk(200), style));
            println!(
                "{:?}: marginal {} cycles/k; pk=100 total {}",
                style,
                (r2.cycles - r1.cycles) as f64 / 100.0,
                r1.cycles
            );
        }
    }
}
