//! Tier-1 tests of the checker itself: every built-in model (correct
//! primitives and seeded-defect mutants alike) must produce exactly
//! the verdict it declares, violations must replay deterministically
//! from their schedule tokens, and budget truncation must be loud.

use sw_check::models::{builtin, Expect};
use sw_check::{check, Config, Outcome, Schedule, Strategy};

#[test]
fn builtin_models_match_expectations() {
    for model in builtin() {
        let report = model.run(0);
        assert!(
            model.satisfied(&report),
            "model `{}` expected {:?}, got:\n{report}",
            model.name,
            model.expect,
        );
    }
}

#[test]
fn every_mutant_violation_carries_a_trace_and_schedule() {
    for model in builtin() {
        if !matches!(model.expect, Expect::Violation(_)) {
            continue;
        }
        let report = model.run(0);
        let v = report
            .violation()
            .unwrap_or_else(|| panic!("mutant `{}` produced no violation", model.name));
        assert!(
            !v.trace.is_empty(),
            "mutant `{}` violation has an empty trace",
            model.name
        );
        assert!(
            !v.schedule.is_empty(),
            "mutant `{}` violation has no replay schedule",
            model.name
        );
    }
}

#[test]
fn violations_replay_deterministically() {
    for model in builtin() {
        let Expect::Violation(kind) = model.expect else {
            continue;
        };
        let report = model.run(0);
        let v = report.violation().expect("mutant violates");
        let mut cfg = model.config();
        cfg.replay = Some(Schedule::parse(&v.schedule).expect("token parses"));
        let replayed = model.run_with(&cfg);
        let rv = replayed.violation().unwrap_or_else(|| {
            panic!("replay of `{}` found no violation:\n{replayed}", model.name)
        });
        assert_eq!(rv.kind, kind, "replay of `{}` changed verdict", model.name);
        assert_eq!(
            rv.trace, v.trace,
            "replay of `{}` produced a different interleaving",
            model.name
        );
    }
}

#[test]
fn seeds_change_nothing_about_verdicts() {
    for model in builtin() {
        for seed in [1, 42] {
            let report = model.run(seed);
            assert!(
                model.satisfied(&report),
                "model `{}` verdict changed under seed {seed}:\n{report}",
                model.name,
            );
        }
    }
}

#[test]
fn execution_budget_truncation_is_loud() {
    // counter-lossy has enough interleavings that a 2-execution budget
    // cannot exhaust them; if no violation happens to be found within
    // the budget the pass must be demoted to PassBounded.
    let models = builtin();
    let idx = sw_check::models::find(&models, "mutex-counter").expect("model exists");
    let mut cfg = models[idx].config();
    cfg.max_executions = 2;
    let report = models[idx].run_with(&cfg);
    match report.outcome {
        Outcome::PassBounded => {
            assert!(
                report.stats.truncated(),
                "PassBounded but stats not truncated"
            );
            assert!(
                report.stats.truncated_branches > 0,
                "truncation did not count unexplored branches:\n{report}"
            );
            let text = format!("{report}");
            assert!(
                text.contains("TRUNCATED"),
                "report hides truncation:\n{text}"
            );
        }
        ref other => panic!("expected PassBounded, got {other:?}:\n{report}"),
    }
}

#[test]
fn bounded_preemption_strategy_finds_seeded_bugs_and_is_loud() {
    let models = builtin();
    let idx = sw_check::models::find(&models, "counter-lossy").expect("model exists");
    let mut cfg = models[idx].config();
    cfg.strategy = Strategy::BoundedPreemption(2);
    let report = models[idx].run_with(&cfg);
    assert!(
        matches!(&report.outcome, Outcome::Violation(v) if v.kind == sw_check::ViolationKind::Assert),
        "bounded-preemption missed the lossy increment:\n{report}"
    );
}

#[test]
fn sequential_consistency_mode_misses_the_stale_read() {
    // The relaxed-stale-read mutant is ONLY observable with weak-value
    // simulation: under SC-only exploration the data load always sees
    // the newest store. This is the negative control proving the
    // checker's verdict comes from the memory model, not scheduling.
    let models = builtin();
    let idx = sw_check::models::find(&models, "relaxed-stale-read").expect("model exists");
    let mut cfg = models[idx].config();
    cfg.weak_values = false;
    let report = models[idx].run_with(&cfg);
    assert!(
        report.passed(),
        "stale read should be invisible under SC:\n{report}"
    );
}

#[test]
fn checked_types_fall_back_to_std_outside_models() {
    // The instrumented types must behave like std when no model
    // execution is active (this is what lets them compile into every
    // build unconditionally).
    use std::sync::atomic::Ordering;
    let a = sw_check::checked::AtomicU64::new(7);
    assert_eq!(a.load(Ordering::SeqCst), 7);
    assert_eq!(a.fetch_add(1, Ordering::SeqCst), 7);
    assert_eq!(a.swap(3, Ordering::SeqCst), 8);
    assert_eq!(a.fetch_max(10, Ordering::SeqCst), 3);

    let m = sw_check::checked::Mutex::new(1u64);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 2);

    let c = sw_check::checked::UnsafeCell::new(5u64);
    c.with_mut(|p| unsafe { *p = 6 });
    assert_eq!(c.with(|p| unsafe { *p }), 6);

    let cv = sw_check::checked::Condvar::new();
    let g = m.lock().unwrap();
    let (_g, res) = cv
        .wait_timeout(g, std::time::Duration::from_millis(1))
        .unwrap();
    assert!(res.timed_out());
}

#[test]
fn trivial_model_passes_exhaustively() {
    let report = check(&Config::default(), || {
        let x = sw_check::checked::AtomicU64::new(0);
        x.store(1, std::sync::atomic::Ordering::SeqCst);
        assert_eq!(x.load(std::sync::atomic::Ordering::SeqCst), 1);
    });
    assert!(
        matches!(report.outcome, Outcome::Pass),
        "single-threaded model must pass exhaustively:\n{report}"
    );
    assert_eq!(report.stats.executions, 1);
}
