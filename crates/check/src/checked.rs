//! Checker-instrumented drop-ins for the `std` concurrency vocabulary
//! the runtime primitives use.
//!
//! Every type here has two behaviours, selected at *runtime* by
//! whether the current thread is a model worker (see
//! [`crate::engine::current`]): inside a model execution, operations
//! become visible ops routed through the deterministic scheduler and
//! the happens-before engine; outside one, they defer to the real
//! `std` implementation, so instrumented code keeps working in plain
//! unit tests. Production crates never pay for this dispatch — their
//! hot paths import these types only under `cfg(sw_check)`, and
//! otherwise get direct `std` re-exports from the [`crate`] facade.

use crate::engine::{current, Op, OpKind, Rmw};
use std::sync::atomic::Ordering;
use std::time::Duration;

fn addr_of<T: ?Sized>(x: &T) -> usize {
    x as *const T as *const u8 as usize
}

macro_rules! checked_atomic {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Instrumented counterpart of the `std` atomic of the same
        /// name. All orderings are simulated, not collapsed to SeqCst.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            pub fn new(v: $prim) -> Self {
                Self {
                    inner: <$std>::new(v),
                }
            }

            /// Initial value for first-touch seeding: inside a model,
            /// `inner` is never mutated, so it still holds the value
            /// passed to `new`.
            fn seed(&self) -> u64 {
                self.inner.load(Ordering::Relaxed) as u64
            }

            fn op(&self, kind: OpKind) -> Option<u64> {
                current().map(|ctx| {
                    ctx.visible_atomic(
                        addr_of(self),
                        self.seed(),
                        Op {
                            loc: Some(addr_of(self)),
                            kind,
                        },
                    )
                })
            }

            pub fn load(&self, ord: Ordering) -> $prim {
                match self.op(OpKind::Load(ord)) {
                    Some(v) => v as $prim,
                    None => self.inner.load(ord),
                }
            }

            pub fn store(&self, v: $prim, ord: Ordering) {
                if self.op(OpKind::Store(ord, v as u64)).is_none() {
                    self.inner.store(v, ord);
                }
            }

            pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                match self.op(OpKind::Rmw(ord, Rmw::Swap(v as u64))) {
                    Some(old) => old as $prim,
                    None => self.inner.swap(v, ord),
                }
            }

            pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                match self.op(OpKind::Rmw(ord, Rmw::Add(v as u64))) {
                    Some(old) => old as $prim,
                    None => self.inner.fetch_add(v, ord),
                }
            }

            pub fn fetch_sub(&self, v: $prim, ord: Ordering) -> $prim {
                match self.op(OpKind::Rmw(ord, Rmw::Sub(v as u64))) {
                    Some(old) => old as $prim,
                    None => self.inner.fetch_sub(v, ord),
                }
            }

            pub fn fetch_max(&self, v: $prim, ord: Ordering) -> $prim {
                match self.op(OpKind::Rmw(ord, Rmw::Max(v as u64))) {
                    Some(old) => old as $prim,
                    None => self.inner.fetch_max(v, ord),
                }
            }
        }
    };
}

checked_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
checked_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);

/// Instrumented `AtomicBool` (the subset the runtime uses).
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    fn op(&self, kind: OpKind) -> Option<u64> {
        current().map(|ctx| {
            ctx.visible_atomic(
                addr_of(self),
                self.inner.load(Ordering::Relaxed) as u64,
                Op {
                    loc: Some(addr_of(self)),
                    kind,
                },
            )
        })
    }

    pub fn load(&self, ord: Ordering) -> bool {
        match self.op(OpKind::Load(ord)) {
            Some(v) => v != 0,
            None => self.inner.load(ord),
        }
    }

    pub fn store(&self, v: bool, ord: Ordering) {
        if self.op(OpKind::Store(ord, v as u64)).is_none() {
            self.inner.store(v, ord);
        }
    }

    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        match self.op(OpKind::Rmw(ord, Rmw::Swap(v as u64))) {
            Some(old) => old != 0,
            None => self.inner.swap(v, ord),
        }
    }
}

/// Instrumented plain-memory cell: unordered conflicting accesses are
/// reported as data races by the vector-clock detector. The closure
/// API (`with`/`with_mut`) brackets the raw pointer access with the
/// visible read/write op; the zero-cost facade twin in [`crate::cell`]
/// has the identical API over a bare `std::cell::UnsafeCell`.
#[derive(Debug, Default)]
pub struct UnsafeCell<T> {
    inner: std::cell::UnsafeCell<T>,
}

// Safety: the whole point of this type is to *detect* unsynchronized
// sharing dynamically instead of preventing it statically; model
// threads are physically serialized by the scheduler, so even a racy
// model never performs a concurrent host-level access.
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    pub fn new(v: T) -> Self {
        Self {
            inner: std::cell::UnsafeCell::new(v),
        }
    }

    /// Immutable access, checked as a plain read.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        if let Some(ctx) = current() {
            ctx.visible(Op {
                loc: Some(addr_of(self)),
                kind: OpKind::CellRead,
            });
        }
        f(self.inner.get())
    }

    /// Mutable access, checked as a plain write.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        if let Some(ctx) = current() {
            ctx.visible(Op {
                loc: Some(addr_of(self)),
                kind: OpKind::CellWrite,
            });
        }
        f(self.inner.get())
    }
}

/// Instrumented mutex. Inside a model, contention is virtual (the
/// scheduler only grants the lock when it is free), so the real
/// `inner` mutex is never contended and exists only for the
/// outside-model fallback.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<()>,
    data: std::cell::UnsafeCell<T>,
}

// Safety: inside a model the scheduler serializes access; outside one
// the inner mutex does.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(v: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(()),
            data: std::cell::UnsafeCell::new(v),
        }
    }

    /// Always `Ok` (model mutexes cannot be poisoned; the outside-model
    /// fallback recovers from poison), but typed like `std` so call
    /// sites written for `std::sync::Mutex` compile unchanged.
    #[allow(clippy::type_complexity)]
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, std::sync::PoisonError<MutexGuard<'_, T>>> {
        match current() {
            Some(ctx) => {
                let addr = addr_of(self);
                ctx.seed_mutex(addr);
                ctx.visible(Op {
                    loc: Some(addr),
                    kind: OpKind::Lock,
                });
                Ok(MutexGuard {
                    mtx: self,
                    std: None,
                })
            }
            None => {
                let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard {
                    mtx: self,
                    std: Some(g),
                })
            }
        }
    }
}

pub struct MutexGuard<'a, T> {
    mtx: &'a Mutex<T>,
    std: Option<std::sync::MutexGuard<'a, ()>>,
}

impl<'a, T> MutexGuard<'a, T> {
    /// Takes the guard apart without running its unlock (for condvar
    /// waits, where the release is part of the wait op itself).
    fn dissolve(self) -> (&'a Mutex<T>, Option<std::sync::MutexGuard<'a, ()>>) {
        let mut this = std::mem::ManuallyDrop::new(self);
        (this.mtx, this.std.take())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.mtx.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.mtx.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.std.is_some() {
            return; // the std guard's own drop unlocks
        }
        // Model-held lock. Skip the visible op while unwinding (the
        // execution is being torn down; announcing would re-panic).
        if std::thread::panicking() {
            return;
        }
        if let Some(ctx) = current() {
            ctx.visible(Op {
                loc: Some(addr_of(self.mtx)),
                kind: OpKind::Unlock,
            });
        }
    }
}

/// Result of a timed condvar wait; mirrors
/// `std::sync::WaitTimeoutResult` (which has no public constructor).
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Instrumented condvar. Inside a model, parking is virtual and timed
/// waits only expire at quiescence (when no thread can run) — a
/// forced expiry that progress *depends on* is the checker's
/// lost-wakeup signal.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_all(&self) {
        match current() {
            Some(ctx) => {
                ctx.visible(Op {
                    loc: Some(addr_of(self)),
                    kind: OpKind::CvNotifyAll,
                });
            }
            None => self.inner.notify_all(),
        }
    }

    pub fn notify_one(&self) {
        match current() {
            Some(ctx) => {
                ctx.visible(Op {
                    loc: Some(addr_of(self)),
                    kind: OpKind::CvNotifyOne,
                });
            }
            None => self.inner.notify_one(),
        }
    }

    #[allow(clippy::type_complexity)]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> Result<
        (MutexGuard<'a, T>, WaitTimeoutResult),
        std::sync::PoisonError<(MutexGuard<'a, T>, WaitTimeoutResult)>,
    > {
        match current() {
            Some(ctx) => {
                let (mtx, _) = guard.dissolve();
                let timed_out = ctx.visible(Op {
                    loc: Some(addr_of(self)),
                    kind: OpKind::CvWait {
                        mutex: addr_of(mtx),
                        timeout: Some(dur.as_nanos() as u64),
                    },
                });
                Ok((
                    MutexGuard { mtx, std: None },
                    WaitTimeoutResult(timed_out != 0),
                ))
            }
            None => {
                let (mtx, std_guard) = guard.dissolve();
                let g = std_guard.expect("outside-model guard holds the std lock");
                let (g, res) = self
                    .inner
                    .wait_timeout(g, dur)
                    .unwrap_or_else(|e| e.into_inner());
                Ok((
                    MutexGuard { mtx, std: Some(g) },
                    WaitTimeoutResult(res.timed_out()),
                ))
            }
        }
    }

    #[allow(clippy::type_complexity)]
    pub fn wait<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
    ) -> Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>> {
        match current() {
            Some(ctx) => {
                let (mtx, _) = guard.dissolve();
                ctx.visible(Op {
                    loc: Some(addr_of(self)),
                    kind: OpKind::CvWait {
                        mutex: addr_of(mtx),
                        timeout: None,
                    },
                });
                Ok(MutexGuard { mtx, std: None })
            }
            None => {
                let (mtx, std_guard) = guard.dissolve();
                let g = std_guard.expect("outside-model guard holds the std lock");
                let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard { mtx, std: Some(g) })
            }
        }
    }
}

/// Thread operations. Model workers spawned with [`thread::spawn`]
/// are scheduled by the checker; the join is a visible op carrying the
/// child's happens-before clock.
pub mod thread {
    use super::*;

    pub enum JoinHandle {
        Model(usize),
        Std(std::thread::JoinHandle<()>),
    }

    impl JoinHandle {
        // Mirrors `std::thread::JoinHandle::join`'s Result shape
        // (success carries no payload here; the error arm is never
        // constructed — model threads panic straight to the engine).
        #[allow(clippy::result_unit_err)]
        pub fn join(self) -> Result<(), ()> {
            match self {
                JoinHandle::Model(child) => {
                    let ctx = current().expect("model join handle used outside a model");
                    ctx.visible(Op {
                        loc: None,
                        kind: OpKind::Join { child },
                    });
                    Ok(())
                }
                JoinHandle::Std(h) => h.join().map_err(|_| ()),
            }
        }
    }

    pub fn spawn(f: impl FnOnce() + Send + 'static) -> JoinHandle {
        match current() {
            Some(ctx) => JoinHandle::Model(ctx.spawn_model(f)),
            None => JoinHandle::Std(std::thread::spawn(f)),
        }
    }

    /// A scheduling point: the model scheduler prefers switching away
    /// after a yield, which is what makes polling loops explorable.
    pub fn yield_now() {
        match current() {
            Some(ctx) => {
                ctx.visible(Op {
                    loc: None,
                    kind: OpKind::Yield,
                });
            }
            None => std::thread::yield_now(),
        }
    }

    /// Timed sleep in virtual time: the sleeper re-enables once
    /// quiescence advances the clock past its deadline.
    pub fn sleep(dur: Duration) {
        match current() {
            Some(ctx) => {
                let until = ctx.now() + dur.as_nanos() as u64;
                ctx.visible(Op {
                    loc: None,
                    kind: OpKind::Sleep { until },
                });
            }
            None => std::thread::sleep(dur),
        }
    }
}

pub mod hint {
    use super::*;

    /// Treated as a yield inside a model (loom does the same): a spin
    /// loop is only correct if another thread can run during it.
    pub fn spin_loop() {
        match current() {
            Some(ctx) => {
                ctx.visible(Op {
                    loc: None,
                    kind: OpKind::Yield,
                });
            }
            None => std::hint::spin_loop(),
        }
    }
}

pub mod time {
    use super::*;

    /// Instant over virtual time inside a model, real time outside.
    /// The two variants are never compared with each other in
    /// practice: a value created inside a model execution stays
    /// inside it.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
    pub enum Instant {
        Real(std::time::Instant),
        Virtual(u64),
    }

    impl Instant {
        pub fn now() -> Instant {
            match current() {
                Some(ctx) => Instant::Virtual(ctx.now()),
                None => Instant::Real(std::time::Instant::now()),
            }
        }

        pub fn elapsed(&self) -> Duration {
            match *self {
                Instant::Real(i) => i.elapsed(),
                Instant::Virtual(t0) => {
                    let now = current().map(|c| c.now()).unwrap_or(t0);
                    Duration::from_nanos(now.saturating_sub(t0))
                }
            }
        }
    }

    impl std::ops::Add<Duration> for Instant {
        type Output = Instant;
        fn add(self, d: Duration) -> Instant {
            match self {
                Instant::Real(i) => Instant::Real(i + d),
                Instant::Virtual(t) => Instant::Virtual(t + d.as_nanos() as u64),
            }
        }
    }
}
