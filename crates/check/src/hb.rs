//! Vector clocks, per-location store histories, and the
//! happens-before engine.
//!
//! Every model thread carries a [`VClock`]; every visible operation
//! ticks the acting thread's own component. Synchronization edges —
//! acquire loads observing release stores (and their C11 release
//! sequences), mutex acquire/release pairs, spawn and join — merge
//! clocks with [`VClock::join`]. On top of the clocks sit two
//! detectors:
//!
//! * **Data races on plain memory** ([`LocState::cell_read`] /
//!   [`LocState::cell_write`]): FastTrack-style — a read races with a
//!   write that does not happen-before it; a write races with any
//!   unordered prior read or write.
//! * **Weak-memory value simulation** ([`LocState::load_eligible`]):
//!   an atomic load may observe any store not excluded by coherence
//!   or happens-before, so a `Relaxed` publication really can hand a
//!   reader a stale value — the checker explores those executions
//!   instead of assuming sequential consistency. Acquire loads that
//!   pick a store carrying a release clock merge it; `Relaxed` loads
//!   merge nothing, which is exactly what lets the race detector
//!   distinguish a correct `Release` publish from an (injected)
//!   incorrect `Relaxed` one.

use std::sync::atomic::Ordering;

/// A vector clock over model-thread ids. Component `t` counts the
/// visible operations of thread `t` that happen-before the owner.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    pub fn get(&self, t: usize) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Increments the owner's own component.
    pub fn tick(&mut self, t: usize) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }

    /// Sets component `t` to `max(current, v)`.
    pub fn raise(&mut self, t: usize, v: u64) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = self.0[t].max(v);
    }

    /// Number of components tracked so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Component-wise maximum: the happens-before merge.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(*o);
        }
    }

    /// `self ⊑ other`: everything the owner has seen, `other` has too.
    pub fn leq(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(t, &v)| v <= other.get(t))
    }
}

/// True for orderings that perform an acquire on a load/RMW.
pub(crate) fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

/// True for orderings that perform a release on a store/RMW.
pub(crate) fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// One element of an atomic location's modification order.
#[derive(Clone, Debug)]
pub(crate) struct StoreElem {
    pub val: u64,
    /// Writer's clock at the store (after its tick). The pre-model
    /// initial value uses an empty clock, which happens-before
    /// everything.
    pub vc: VClock,
    /// The release-sequence clock an acquire load of this element
    /// merges: the head release store's clock, joined with the clocks
    /// of any release RMWs along the sequence. `None` once a plain
    /// non-release store broke the sequence (post-C++17 rules: only
    /// RMWs extend someone else's release sequence).
    pub sync: Option<VClock>,
}

/// What kind of shared object lives at an address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LocKind {
    Atomic,
    Cell,
    Mutex,
    Condvar,
}

impl LocKind {
    pub fn name(self) -> &'static str {
        match self {
            LocKind::Atomic => "atomic",
            LocKind::Cell => "cell",
            LocKind::Mutex => "mutex",
            LocKind::Condvar => "condvar",
        }
    }
}

/// A detected data race: two unordered conflicting plain accesses.
#[derive(Clone, Debug)]
pub(crate) struct RaceInfo {
    /// Step index of the earlier access in the execution trace.
    pub prior_step: usize,
    /// Thread that performed the earlier access.
    pub prior_thread: usize,
    /// Whether the earlier access was a write.
    pub prior_write: bool,
}

/// Checker-side state of one shared location (atomic, cell, mutex, or
/// condvar — each uses the subset of fields its kind needs).
#[derive(Debug)]
pub(crate) struct LocState {
    /// Display id, assigned in first-touch order (deterministic under
    /// a fixed schedule, unlike the address used as the map key).
    pub id: usize,
    pub kind: LocKind,

    // Atomic: modification order + per-thread coherence floors.
    pub stores: Vec<StoreElem>,
    /// Per thread: index of the last store read (or written) — a later
    /// load may never observe anything older (read coherence).
    last_read: Vec<usize>,
    /// Per thread: `stores.len()` when stale alternatives were last
    /// offered, so an unchanged history never re-branches — this is
    /// what keeps spin loops (`while x.load() == 0`) finite: after one
    /// stale branch, re-reads observe the newest store until a new
    /// store arrives.
    branched_at: Vec<usize>,

    // Cell: FastTrack race-detection state.
    /// Last write as (thread, component, trace step).
    write_epoch: Option<(usize, u64, usize)>,
    /// Clock of reads since the last write.
    read_vc: VClock,
    /// Per thread: trace step of its last read (for race reports).
    read_step: Vec<usize>,

    // Mutex.
    pub owner: Option<usize>,
    pub unlock_clock: VClock,

    // Condvar: parked (thread, woken-by-timeout-at) queue in park
    // order.
    pub cv_waiters: Vec<(usize, Option<u64>)>,
}

fn slot<T: Clone + Default>(v: &mut Vec<T>, t: usize) -> &mut T {
    if v.len() <= t {
        v.resize(t + 1, T::default());
    }
    &mut v[t]
}

impl LocState {
    pub fn new(id: usize, kind: LocKind, init: Option<u64>) -> Self {
        LocState {
            id,
            kind,
            stores: init
                .map(|val| {
                    vec![StoreElem {
                        val,
                        vc: VClock::default(),
                        sync: None,
                    }]
                })
                .unwrap_or_default(),
            last_read: Vec::new(),
            branched_at: Vec::new(),
            write_epoch: None,
            read_vc: VClock::default(),
            read_step: Vec::new(),
            owner: None,
            unlock_clock: VClock::default(),
            cv_waiters: Vec::new(),
        }
    }

    /// The store indices a load by `t` (whose clock is `clock`) may
    /// observe, oldest first. The newest store is always eligible; an
    /// older store `i` is excluded once some newer store happens-before
    /// the load, or once `t`'s coherence floor passed it.
    pub fn load_eligible(&self, t: usize, clock: &VClock) -> Vec<usize> {
        let floor = self.last_read.get(t).copied().unwrap_or(0);
        let n = self.stores.len();
        let mut out = Vec::new();
        for i in floor..n {
            let superseded = (i + 1..n).any(|j| self.stores[j].vc.leq(clock));
            if !superseded {
                out.push(i);
            }
        }
        debug_assert!(out.contains(&(n - 1)), "newest store must be eligible");
        out
    }

    /// Picks the store a load observes. `forced` replays an explorer
    /// choice (a stale read branched to on an earlier path); otherwise
    /// the newest eligible store is read. Stale choices are one-shot:
    /// the next load of the same unchanged history reads the newest
    /// store again (eventual visibility), which keeps spin loops
    /// finite. Returns `(index, fresh_alternatives)` where the
    /// alternatives are stale indices the explorer may branch to
    /// (empty when `weak` is off, the ordering is `SeqCst`, or the
    /// history did not change since this thread last branched).
    pub fn load_choice(
        &mut self,
        t: usize,
        clock: &VClock,
        ord: Ordering,
        weak: bool,
        forced: Option<usize>,
    ) -> (usize, Vec<usize>) {
        let eligible = self.load_eligible(t, clock);
        let newest = *eligible.last().expect("location has no stores");
        if let Some(i) = forced {
            let i = if eligible.contains(&i) { i } else { newest };
            *slot(&mut self.branched_at, t) = self.stores.len();
            return (i, Vec::new());
        }
        let may_branch = weak
            && ord != Ordering::SeqCst
            && self.stores.len() > self.branched_at.get(t).copied().unwrap_or(0);
        let alts = if may_branch {
            *slot(&mut self.branched_at, t) = self.stores.len();
            eligible[..eligible.len() - 1].to_vec()
        } else {
            Vec::new()
        };
        (newest, alts)
    }

    /// Commits a load of store `i` by `t`: advances the coherence
    /// floor and, for acquire loads, merges the store's release clock.
    pub fn commit_load(&mut self, t: usize, clock: &mut VClock, ord: Ordering, i: usize) -> u64 {
        *slot(&mut self.last_read, t) = i;
        let elem = &self.stores[i];
        if is_acquire(ord) {
            if let Some(sync) = &elem.sync {
                clock.join(sync);
            }
        }
        elem.val
    }

    /// Appends a plain store: heads a new release sequence when
    /// `release`, otherwise breaks the current one.
    pub fn store(&mut self, t: usize, clock: &VClock, ord: Ordering, val: u64) {
        self.stores.push(StoreElem {
            val,
            vc: clock.clone(),
            sync: is_release(ord).then(|| clock.clone()),
        });
        *slot(&mut self.last_read, t) = self.stores.len() - 1;
    }

    /// Appends an RMW element: reads the newest store (RMWs always act
    /// on the head of the modification order), continues its release
    /// sequence, and adds this thread's clock when the RMW releases.
    /// Returns the value read.
    pub fn rmw(&mut self, t: usize, clock: &mut VClock, ord: Ordering, new_val: u64) -> u64 {
        let old = self.stores.last().expect("location has no stores").clone();
        if is_acquire(ord) {
            if let Some(sync) = &old.sync {
                clock.join(sync);
            }
        }
        let sync = if is_release(ord) {
            let mut s = clock.clone();
            if let Some(prev) = &old.sync {
                s.join(prev);
            }
            Some(s)
        } else {
            old.sync.clone()
        };
        self.stores.push(StoreElem {
            val: new_val,
            vc: clock.clone(),
            sync,
        });
        *slot(&mut self.last_read, t) = self.stores.len() - 1;
        old.val
    }

    /// Checks a plain read by `t` against the last write; `Err` is a
    /// data race. On success records the read for later write checks.
    pub fn cell_read(&mut self, t: usize, clock: &VClock, step: usize) -> Result<(), RaceInfo> {
        if let Some((w, c, ws)) = self.write_epoch {
            if w != t && clock.get(w) < c {
                return Err(RaceInfo {
                    prior_step: ws,
                    prior_thread: w,
                    prior_write: true,
                });
            }
        }
        // Record only this thread's component — FastTrack's read set.
        self.read_vc.raise(t, clock.get(t));
        *slot(&mut self.read_step, t) = step;
        Ok(())
    }

    /// Checks a plain write by `t` against the last write and all
    /// unordered reads; `Err` is a data race. On success installs the
    /// new write epoch and clears the (now ordered) read set.
    pub fn cell_write(&mut self, t: usize, clock: &VClock, step: usize) -> Result<(), RaceInfo> {
        if let Some((w, c, ws)) = self.write_epoch {
            if w != t && clock.get(w) < c {
                return Err(RaceInfo {
                    prior_step: ws,
                    prior_thread: w,
                    prior_write: true,
                });
            }
        }
        if !self.read_vc.leq(clock) {
            let racer = (0..self.read_vc.len())
                .find(|&u| u != t && self.read_vc.get(u) > clock.get(u))
                .unwrap_or(0);
            return Err(RaceInfo {
                prior_step: self.read_step.get(racer).copied().unwrap_or(0),
                prior_thread: racer,
                prior_write: false,
            });
        }
        self.write_epoch = Some((t, clock.get(t), step));
        self.read_vc = VClock::default();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock_of(pairs: &[(usize, u64)]) -> VClock {
        let mut c = VClock::default();
        for &(t, n) in pairs {
            for _ in 0..n {
                c.tick(t);
            }
        }
        c
    }

    #[test]
    fn vclock_join_and_leq() {
        let a = clock_of(&[(0, 3), (1, 1)]);
        let b = clock_of(&[(1, 4)]);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
        assert_eq!(j.get(0), 3);
        assert_eq!(j.get(1), 4);
    }

    #[test]
    fn release_store_syncs_acquire_load() {
        let mut loc = LocState::new(0, LocKind::Atomic, Some(0));
        let writer = clock_of(&[(0, 5)]);
        loc.store(0, &writer, Ordering::Release, 7);
        let mut reader = clock_of(&[(1, 2)]);
        let (i, _) = loc.load_choice(1, &reader, Ordering::Acquire, true, None);
        assert_eq!(loc.commit_load(1, &mut reader, Ordering::Acquire, i), 7);
        assert!(writer.leq(&reader), "acquire merged the release clock");
    }

    #[test]
    fn relaxed_store_does_not_sync() {
        let mut loc = LocState::new(0, LocKind::Atomic, Some(0));
        let writer = clock_of(&[(0, 5)]);
        loc.store(0, &writer, Ordering::Relaxed, 7);
        let mut reader = clock_of(&[(1, 2)]);
        let (i, _) = loc.load_choice(1, &reader, Ordering::Acquire, true, None);
        assert_eq!(loc.commit_load(1, &mut reader, Ordering::Acquire, i), 7);
        assert!(!writer.leq(&reader), "no release clock to merge");
    }

    #[test]
    fn release_sequence_continues_through_rmw_but_not_store() {
        let mut loc = LocState::new(0, LocKind::Atomic, Some(0));
        let head = clock_of(&[(0, 3)]);
        loc.store(0, &head, Ordering::Release, 1);
        // A relaxed RMW by another thread extends the sequence.
        let mut rmw_clock = clock_of(&[(2, 1)]);
        loc.rmw(2, &mut rmw_clock, Ordering::Relaxed, 2);
        let mut reader = VClock::default();
        let (i, _) = loc.load_choice(1, &reader, Ordering::Acquire, false, None);
        loc.commit_load(1, &mut reader, Ordering::Acquire, i);
        assert!(head.leq(&reader), "sequence survived the relaxed RMW");
        // A plain relaxed store breaks it.
        loc.store(2, &clock_of(&[(2, 2)]), Ordering::Relaxed, 3);
        let mut reader2 = VClock::default();
        let (i, _) = loc.load_choice(3, &reader2, Ordering::Acquire, false, None);
        loc.commit_load(3, &mut reader2, Ordering::Acquire, i);
        assert!(!head.leq(&reader2), "plain store broke the sequence");
    }

    #[test]
    fn stale_reads_eligible_until_superseded_by_hb() {
        let mut loc = LocState::new(0, LocKind::Atomic, Some(10));
        let writer = clock_of(&[(0, 1)]);
        loc.store(0, &writer, Ordering::Release, 11);
        // Reader that has NOT synchronized: both stores eligible.
        let reader = clock_of(&[(1, 1)]);
        assert_eq!(loc.load_eligible(1, &reader), vec![0, 1]);
        // Reader that HAS synchronized: only the newest.
        let mut synced = reader.clone();
        synced.join(&writer);
        assert_eq!(loc.load_eligible(1, &synced), vec![1]);
    }

    #[test]
    fn coherence_floor_blocks_rereading_older_stores() {
        let mut loc = LocState::new(0, LocKind::Atomic, Some(10));
        loc.store(0, &clock_of(&[(0, 1)]), Ordering::Relaxed, 11);
        loc.store(0, &clock_of(&[(0, 2)]), Ordering::Relaxed, 12);
        let mut reader = VClock::default();
        let (i, _) = loc.load_choice(1, &reader, Ordering::Relaxed, true, Some(1));
        assert_eq!(loc.commit_load(1, &mut reader, Ordering::Relaxed, i), 11);
        // Store 0 is now below the floor.
        assert_eq!(loc.load_eligible(1, &reader), vec![1, 2]);
    }

    #[test]
    fn unordered_write_read_is_a_race() {
        let mut loc = LocState::new(0, LocKind::Cell, None);
        let w = clock_of(&[(0, 4)]);
        loc.cell_write(0, &w, 3).unwrap();
        // Reader ordered after the write: fine.
        let mut ordered = clock_of(&[(1, 1)]);
        ordered.join(&w);
        assert!(loc.cell_read(1, &ordered, 5).is_ok());
        // Unordered reader: race, naming the writer.
        let unordered = clock_of(&[(2, 9)]);
        let race = loc.cell_read(2, &unordered, 6).unwrap_err();
        assert_eq!(race.prior_thread, 0);
        assert!(race.prior_write);
        assert_eq!(race.prior_step, 3);
    }

    #[test]
    fn unordered_read_write_is_a_race() {
        let mut loc = LocState::new(0, LocKind::Cell, None);
        loc.cell_read(1, &clock_of(&[(1, 2)]), 4).unwrap();
        let race = loc.cell_write(0, &clock_of(&[(0, 3)]), 7).unwrap_err();
        assert_eq!(race.prior_thread, 1);
        assert!(!race.prior_write);
    }

    #[test]
    fn ordered_accesses_do_not_race() {
        let mut loc = LocState::new(0, LocKind::Cell, None);
        let mut c = clock_of(&[(0, 1)]);
        loc.cell_write(0, &c, 0).unwrap();
        c.tick(0);
        loc.cell_read(0, &c, 1).unwrap();
        let mut peer = clock_of(&[(1, 1)]);
        peer.join(&c);
        assert!(loc.cell_write(1, &peer, 2).is_ok());
    }
}
