//! `sw-check`: a deterministic-scheduler model checker (in the style
//! of loom/CDSChecker) plus a happens-before race detector for the
//! runtime's lock-free concurrency layer — the SPSC mesh rings, the
//! cancellable barrier, and the flight recorder.
//!
//! # Two faces
//!
//! **The facade modules** ([`sync`], [`cell`], [`thread`], [`time`],
//! [`hint`]) are what the production crates import in place of `std`.
//! In a normal build they are direct `std` re-exports (plus a
//! `#[repr(transparent)]` cell wrapper) — zero cost, nothing
//! instrumented, hot paths identical to before. Compiled with
//! `RUSTFLAGS='--cfg sw_check'` they switch to the instrumented
//! [`checked`] types, and the same primitive source code becomes
//! model-checkable.
//!
//! **The checker** ([`check`], [`Config`], [`models`]) explores every
//! interleaving of a small model (up to DPOR equivalence and the
//! configured budgets) under a simulated C11 memory model:
//! Relaxed/Acquire/Release are distinguished (a relaxed load really
//! can observe a stale value), release sequences follow the
//! post-C++17 rules, and plain-memory accesses are race-checked with
//! vector clocks. Violations come with the exact interleaving as a
//! schedule trace and a token that replays it deterministically.
//!
//! The checker itself is always compiled (its [`checked`] types fall
//! back to real `std` behaviour outside a model execution), so the
//! built-in model suite runs under plain `cargo test`; only the
//! *ported production primitives* need the `sw_check` cfg.

mod engine;
mod explore;
mod hb;

pub mod checked;
pub mod models;
pub mod report;

pub use explore::{check, Config, Strategy};
pub use report::{CheckReport, ExploreStats, Outcome, Schedule, Violation, ViolationKind};

/// `std::sync` vocabulary for the instrumented primitives. Normal
/// builds re-export `std`; `--cfg sw_check` builds substitute the
/// checker-instrumented types with the same API.
#[cfg(not(sw_check))]
pub mod sync {
    pub use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }
}

#[cfg(sw_check)]
pub mod sync {
    pub use crate::checked::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

    pub mod atomic {
        pub use crate::checked::{AtomicBool, AtomicU64, AtomicUsize};
        pub use std::sync::atomic::Ordering;
    }
}

/// Interior-mutability cell with the closure API the checker needs
/// (`with`/`with_mut`). The normal-build wrapper is
/// `#[repr(transparent)]` over `std::cell::UnsafeCell` and compiles to
/// the bare pointer accesses. Deliberately `!Sync` here, exactly like
/// `std`'s cell: containers (e.g. the SPSC ring) assert their own
/// sharing discipline; under `sw_check` the checker verifies it.
pub mod cell {
    #[cfg(sw_check)]
    pub use crate::checked::UnsafeCell;

    #[cfg(not(sw_check))]
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    #[cfg(not(sw_check))]
    impl<T> UnsafeCell<T> {
        #[inline(always)]
        pub fn new(v: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(v))
        }

        #[inline(always)]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        #[inline(always)]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}

/// Thread yield/sleep/spawn for the instrumented primitives.
pub mod thread {
    #[cfg(not(sw_check))]
    pub use std::thread::{sleep, spawn, yield_now, JoinHandle};

    #[cfg(sw_check)]
    pub use crate::checked::thread::{sleep, spawn, yield_now, JoinHandle};
}

/// Time sources: virtual inside a model execution (`sw_check`), real
/// otherwise.
pub mod time {
    pub use std::time::Duration;

    #[cfg(not(sw_check))]
    pub use std::time::Instant;

    #[cfg(sw_check)]
    pub use crate::checked::time::Instant;
}

pub mod hint {
    #[cfg(not(sw_check))]
    pub use std::hint::spin_loop;

    #[cfg(sw_check)]
    pub use crate::checked::hint::spin_loop;
}
