//! Built-in models: small self-contained concurrency scenarios that
//! exercise every checker capability, each paired with a seeded-defect
//! mutant the checker provably catches (the same methodology sw-lint
//! uses for CPE programs). The production crates register their own
//! models for the ported primitives under `cfg(sw_check)`; these ones
//! use [`crate::checked`] directly so they run in every build.

use crate::checked::thread;
use crate::checked::{AtomicU64, Condvar, Mutex, UnsafeCell};
use crate::explore::{check, Config};
use crate::report::{CheckReport, Outcome, ViolationKind};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// What a model's check is expected to produce. A mutant model
/// *expects* its violation — the suite fails if the checker misses it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expect {
    Pass,
    Violation(ViolationKind),
}

/// A registered model: a body the checker can explore, plus the
/// expected verdict and any config tuning it needs.
pub struct NamedModel {
    pub name: &'static str,
    pub about: &'static str,
    pub expect: Expect,
    /// Adjusts the default [`Config`] (budgets, timeout-rescue
    /// policy) for this model.
    pub tune: fn(&mut Config),
    pub body: fn(),
}

impl NamedModel {
    pub fn config(&self) -> Config {
        let mut cfg = Config::default();
        (self.tune)(&mut cfg);
        cfg
    }

    /// Runs the model under its tuned config (seed overridable).
    pub fn run(&self, seed: u64) -> CheckReport {
        let mut cfg = self.config();
        cfg.seed = seed;
        check(&cfg, self.body)
    }

    /// Runs the model under an explicit config (CLI replay path).
    pub fn run_with(&self, cfg: &Config) -> CheckReport {
        check(cfg, self.body)
    }

    /// Whether a report matches this model's expectation.
    pub fn satisfied(&self, report: &CheckReport) -> bool {
        match (self.expect, &report.outcome) {
            (Expect::Pass, Outcome::Pass | Outcome::PassBounded) => true,
            (Expect::Violation(k), Outcome::Violation(v)) => v.kind == k,
            _ => false,
        }
    }
}

fn no_tune(_: &mut Config) {}

fn forbid_rescue(cfg: &mut Config) {
    cfg.forbid_timeout_rescue = true;
}

// --- publish / subscribe ------------------------------------------------

fn publish(release: bool) {
    let data = Arc::new(UnsafeCell::new(0u64));
    let flag = Arc::new(AtomicU64::new(0));
    let (d, f) = (data.clone(), flag.clone());
    let t = thread::spawn(move || {
        d.with_mut(|p| unsafe { *p = 42 });
        let ord = if release {
            Ordering::Release
        } else {
            Ordering::Relaxed
        };
        f.store(1, ord);
    });
    while flag.load(Ordering::Acquire) == 0 {
        thread::yield_now();
    }
    let v = data.with(|p| unsafe { *p });
    assert_eq!(v, 42);
    t.join().unwrap();
}

fn atomic_publish() {
    publish(true);
}

fn atomic_publish_relaxed() {
    publish(false);
}

// --- weak-value simulation ----------------------------------------------

fn fresh_read(acquire: bool) {
    let data = Arc::new(AtomicU64::new(0));
    let ready = Arc::new(AtomicU64::new(0));
    let (d, r) = (data.clone(), ready.clone());
    let t = thread::spawn(move || {
        d.store(1, Ordering::Relaxed);
        r.store(1, Ordering::Release);
    });
    let ord = if acquire {
        Ordering::Acquire
    } else {
        Ordering::Relaxed
    };
    if ready.load(ord) == 1 {
        // With an acquire load this is synchronized and must see 1;
        // with a relaxed load the checker may hand us the stale 0.
        assert_eq!(
            data.load(Ordering::Relaxed),
            1,
            "stale read slipped through"
        );
    }
    t.join().unwrap();
}

fn acquire_fresh_read() {
    fresh_read(true);
}

fn relaxed_stale_read() {
    fresh_read(false);
}

// --- counters -----------------------------------------------------------

fn counter_rmw() {
    let c = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let c = c.clone();
            thread::spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.load(Ordering::Relaxed), 2);
}

fn counter_lossy() {
    let c = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let c = c.clone();
            thread::spawn(move || {
                // Mutant: load + store instead of an RMW — two threads
                // can read the same value and lose an increment.
                let v = c.load(Ordering::Relaxed);
                c.store(v + 1, Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.load(Ordering::Relaxed), 2);
}

// --- mutexes ------------------------------------------------------------

fn mutex_counter() {
    let c = Arc::new(Mutex::new(0u64));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let c = c.clone();
            thread::spawn(move || {
                *c.lock().unwrap() += 1;
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*c.lock().unwrap(), 2);
}

fn cell_race() {
    let c = Arc::new(UnsafeCell::new(0u64));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let c = c.clone();
            thread::spawn(move || {
                // Mutant: unlocked read-modify-write of plain memory.
                c.with_mut(|p| unsafe { *p += 1 });
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn lock_order(same_order: bool) {
    let a = Arc::new(Mutex::new(0u64));
    let b = Arc::new(Mutex::new(0u64));
    let (a2, b2) = (a.clone(), b.clone());
    let t = thread::spawn(move || {
        if same_order {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        } else {
            // Mutant: opposite acquisition order — AB/BA deadlock.
            let _gb = b2.lock().unwrap();
            let _ga = a2.lock().unwrap();
        }
    });
    {
        let _ga = a.lock().unwrap();
        let _gb = b.lock().unwrap();
    }
    t.join().unwrap();
}

fn lock_order_consistent() {
    lock_order(true);
}

fn lock_order_deadlock() {
    lock_order(false);
}

// --- condvars -----------------------------------------------------------

const PARK: Duration = Duration::from_millis(1);

fn cv_handshake(recheck_under_lock: bool) {
    let flag = Arc::new(Mutex::new(false));
    let cv = Arc::new(Condvar::new());
    let (f, c) = (flag.clone(), cv.clone());
    let t = thread::spawn(move || {
        *f.lock().unwrap() = true;
        c.notify_all();
    });
    if recheck_under_lock {
        // Correct: test-and-park atomically under the lock.
        let mut g = flag.lock().unwrap();
        while !*g {
            let (g2, _) = cv.wait_timeout(g, PARK).unwrap();
            g = g2;
        }
    } else {
        // Mutant: check, drop the lock, then park — the notify can
        // land in the window and the waiter strands until its timeout
        // rescues it.
        loop {
            if *flag.lock().unwrap() {
                break;
            }
            let g = flag.lock().unwrap();
            let _ = cv.wait_timeout(g, PARK).unwrap();
        }
    }
    t.join().unwrap();
}

fn cv_handshake_correct() {
    cv_handshake(true);
}

fn cv_lost_wakeup() {
    cv_handshake(false);
}

// --- livelock -----------------------------------------------------------

fn livelock_sleepers() {
    // Mutant shape: two threads each sleep-poll for a store the other
    // never performs — no progress, forever.
    let x = Arc::new(AtomicU64::new(0));
    let y = Arc::new(AtomicU64::new(0));
    let x2 = x.clone();
    let t = thread::spawn(move || {
        while x2.load(Ordering::Acquire) == 0 {
            thread::sleep(Duration::from_micros(50));
        }
    });
    while y.load(Ordering::Acquire) == 0 {
        thread::sleep(Duration::from_micros(50));
    }
    x.store(1, Ordering::Release);
    t.join().unwrap();
}

/// The built-in model registry: correct/mutant pairs covering every
/// violation kind the checker can report.
pub fn builtin() -> Vec<NamedModel> {
    vec![
        NamedModel {
            name: "atomic-publish",
            about: "release store publishes a plain write to an acquire spin loop",
            expect: Expect::Pass,
            tune: no_tune,
            body: atomic_publish,
        },
        NamedModel {
            name: "atomic-publish-relaxed",
            about: "mutant: publish flag store weakened to Relaxed -> data race on the cell",
            expect: Expect::Violation(ViolationKind::Race),
            tune: no_tune,
            body: atomic_publish_relaxed,
        },
        NamedModel {
            name: "acquire-fresh-read",
            about: "acquire load of the ready flag guarantees the data store is visible",
            expect: Expect::Pass,
            tune: no_tune,
            body: acquire_fresh_read,
        },
        NamedModel {
            name: "relaxed-stale-read",
            about: "mutant: relaxed ready load lets the data load observe the stale value",
            expect: Expect::Violation(ViolationKind::Assert),
            tune: no_tune,
            body: relaxed_stale_read,
        },
        NamedModel {
            name: "counter-rmw",
            about: "two fetch_add increments always sum",
            expect: Expect::Pass,
            tune: no_tune,
            body: counter_rmw,
        },
        NamedModel {
            name: "counter-lossy",
            about: "mutant: load+store increment loses an update under interleaving",
            expect: Expect::Violation(ViolationKind::Assert),
            tune: no_tune,
            body: counter_lossy,
        },
        NamedModel {
            name: "mutex-counter",
            about: "mutex-guarded increments never race or lose updates",
            expect: Expect::Pass,
            tune: no_tune,
            body: mutex_counter,
        },
        NamedModel {
            name: "cell-race",
            about: "mutant: unlocked increments of plain memory -> data race",
            expect: Expect::Violation(ViolationKind::Race),
            tune: no_tune,
            body: cell_race,
        },
        NamedModel {
            name: "lock-order-consistent",
            about: "two mutexes taken in one global order never deadlock",
            expect: Expect::Pass,
            tune: no_tune,
            body: lock_order_consistent,
        },
        NamedModel {
            name: "lock-order-deadlock",
            about: "mutant: AB/BA lock order -> deadlock",
            expect: Expect::Violation(ViolationKind::Deadlock),
            tune: no_tune,
            body: lock_order_deadlock,
        },
        NamedModel {
            name: "cv-handshake",
            about: "test-and-park under the lock never needs a timeout rescue",
            expect: Expect::Pass,
            tune: forbid_rescue,
            body: cv_handshake_correct,
        },
        NamedModel {
            name: "cv-lost-wakeup",
            about: "mutant: check-then-park without the lock strands the waiter",
            expect: Expect::Violation(ViolationKind::LostWakeup),
            tune: forbid_rescue,
            body: cv_lost_wakeup,
        },
        NamedModel {
            name: "livelock-sleepers",
            about: "mutant: two sleep-polling threads waiting on each other forever",
            expect: Expect::Violation(ViolationKind::Livelock),
            tune: no_tune,
            body: livelock_sleepers,
        },
    ]
}

/// Looks up a built-in model by name.
pub fn find(models: &[NamedModel], name: &str) -> Option<usize> {
    models.iter().position(|m| m.name == name)
}
