//! Check outcomes: violations with rendered interleavings, replayable
//! schedule tokens, and exploration statistics (loud about every
//! budget that truncated the search).

use crate::engine::{OpKind, TraceStep};
use crate::hb::LocKind;
use std::fmt;

/// A scheduling path: at each decision point, the chosen thread plus
/// (for weak atomic loads) the forced store-history index.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule(pub Vec<(usize, Option<usize>)>);

impl Schedule {
    /// Compact replay token, e.g. `0.1.1r0.2` — thread ids separated
    /// by dots, `rN` marking a forced stale read of store index `N`.
    pub fn token(&self) -> String {
        self.0
            .iter()
            .map(|(t, r)| match r {
                Some(i) => format!("{t}r{i}"),
                None => format!("{t}"),
            })
            .collect::<Vec<_>>()
            .join(".")
    }

    /// Parses a token produced by [`Schedule::token`].
    pub fn parse(token: &str) -> Result<Schedule, String> {
        let mut out = Vec::new();
        for part in token.split('.').filter(|p| !p.is_empty()) {
            let (t, r) = match part.split_once('r') {
                Some((t, r)) => {
                    let idx = r
                        .parse::<usize>()
                        .map_err(|_| format!("bad read index in `{part}`"))?;
                    (t, Some(idx))
                }
                None => (part, None),
            };
            let tid = t
                .parse::<usize>()
                .map_err(|_| format!("bad thread id in `{part}`"))?;
            out.push((tid, r));
        }
        Ok(Schedule(out))
    }
}

/// What went wrong on a violating interleaving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Unordered conflicting plain-memory accesses (vector clocks).
    Race,
    /// A model assertion or panic fired.
    Assert,
    /// All threads blocked with no pending deadline.
    Deadlock,
    /// Quiescence cycles without progress (spinning forever).
    Livelock,
    /// Progress required a forced condvar timeout: a waiter parked
    /// after its wakeup had already been delivered.
    LostWakeup,
}

impl ViolationKind {
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::Race => "data-race",
            ViolationKind::Assert => "assertion",
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::Livelock => "livelock",
            ViolationKind::LostWakeup => "lost-wakeup",
        }
    }
}

/// A checker-found violation, with the exact interleaving rendered as
/// a schedule trace and a token that replays it deterministically.
#[derive(Clone, Debug)]
pub struct Violation {
    pub kind: ViolationKind,
    pub message: String,
    /// Human-readable interleaving, one visible op per line.
    pub trace: Vec<String>,
    /// Replay token for `--replay` / `Config::replay`.
    pub schedule: String,
}

/// Exploration statistics. Every cap that cut the search short is
/// counted here and surfaced in the outcome — bounded exploration is
/// loud, never silent.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExploreStats {
    /// Complete interleavings explored.
    pub executions: u64,
    /// Total visible ops executed across all interleavings.
    pub steps: u64,
    /// DPOR backtrack points (or bounded-preemption branches) taken.
    pub branches: u64,
    /// Branch points still pending when the execution budget ran out.
    pub truncated_branches: u64,
    /// Stale-read alternatives dropped by the per-execution cap.
    pub stale_reads_capped: u64,
    /// Schedules pruned by the preemption bound.
    pub preemption_pruned: u64,
    /// Executions cut short by the per-execution step budget.
    pub step_budget_hits: u64,
}

impl ExploreStats {
    /// True when any budget truncated the search: a passing result is
    /// then only `PassBounded`, never `Pass`.
    pub fn truncated(&self) -> bool {
        self.truncated_branches > 0
            || self.stale_reads_capped > 0
            || self.preemption_pruned > 0
            || self.step_budget_hits > 0
    }
}

/// Final verdict of a [`crate::check`] run.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Every reachable interleaving (under the configured memory
    /// model) was explored and no property failed.
    Pass,
    /// No violation found, but a budget truncated the search; the
    /// counts say exactly what was dropped.
    PassBounded,
    /// A violation was found (exploration stops at the first one).
    Violation(Violation),
    /// The checker itself failed (e.g. a replay schedule diverged).
    Internal(String),
}

#[derive(Clone, Debug)]
pub struct CheckReport {
    pub outcome: Outcome,
    pub stats: ExploreStats,
}

impl CheckReport {
    pub fn passed(&self) -> bool {
        matches!(self.outcome, Outcome::Pass | Outcome::PassBounded)
    }

    pub fn violation(&self) -> Option<&Violation> {
        match &self.outcome {
            Outcome::Violation(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.outcome {
            Outcome::Pass => writeln!(f, "PASS: exhaustive within the configured memory model")?,
            Outcome::PassBounded => writeln!(
                f,
                "PASS (bounded): no violation found, but the search was truncated"
            )?,
            Outcome::Violation(v) => {
                writeln!(f, "VIOLATION [{}]: {}", v.kind.name(), v.message)?;
                writeln!(f, "interleaving:")?;
                for line in &v.trace {
                    writeln!(f, "  {line}")?;
                }
                writeln!(f, "replay: --replay {}", v.schedule)?;
            }
            Outcome::Internal(msg) => writeln!(f, "INTERNAL ERROR: {msg}")?,
        }
        let s = &self.stats;
        writeln!(
            f,
            "explored {} interleavings ({} steps, {} branch points)",
            s.executions, s.steps, s.branches
        )?;
        if s.truncated() {
            writeln!(
                f,
                "TRUNCATED: {} branch points unexplored, {} stale reads capped, \
                 {} schedules preemption-pruned, {} step-budget hits",
                s.truncated_branches, s.stale_reads_capped, s.preemption_pruned, s.step_budget_hits
            )?;
        }
        Ok(())
    }
}

/// Renders one trace step as `t1 atomic#2.load(Acquire) -> 1`.
pub(crate) fn render_step(step: &TraceStep, names: &[String], loc_kinds: &[LocKind]) -> String {
    let who = names.get(step.tid).map(|s| s.as_str()).unwrap_or("?");
    let loc = |id: Option<usize>| -> String {
        match id {
            Some(i) => format!(
                "{}#{}",
                loc_kinds.get(i).map(|k| k.name()).unwrap_or("loc"),
                i
            ),
            None => String::new(),
        }
    };
    let body = match step.kind {
        OpKind::Begin => "begin".to_string(),
        OpKind::Load(ord) => format!("{}.load({ord:?}) -> {}", loc(step.loc), step.result),
        OpKind::Store(ord, v) => format!("{}.store({v}, {ord:?})", loc(step.loc)),
        OpKind::Rmw(ord, rmw) => format!(
            "{}.{}({ord:?}) -> {}",
            loc(step.loc),
            rmw.name(),
            step.result
        ),
        OpKind::CellRead => format!("{}.read", loc(step.loc)),
        OpKind::CellWrite => format!("{}.write", loc(step.loc)),
        OpKind::Lock => {
            if step.result != 0 {
                format!("{}.lock (cv reacquire, timed out)", loc(step.loc))
            } else {
                format!("{}.lock", loc(step.loc))
            }
        }
        OpKind::Unlock => format!("{}.unlock", loc(step.loc)),
        OpKind::CvWait { timeout, .. } => format!(
            "{}.wait(release {}{})",
            loc(step.loc),
            loc(step.loc2),
            if timeout.is_some() { ", timed" } else { "" }
        ),
        OpKind::CvNotifyAll => format!("{}.notify_all -> {} woken", loc(step.loc), step.result),
        OpKind::CvNotifyOne => format!("{}.notify_one -> {} woken", loc(step.loc), step.result),
        OpKind::Yield => "yield".to_string(),
        OpKind::Sleep { until } => format!("sleep(until {until}ns)"),
        OpKind::Spawn => format!("spawn -> t{}", step.result),
        OpKind::Join { child } => format!("join(t{child})"),
        OpKind::Exit => "exit".to_string(),
    };
    format!("{who} {body}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_token_round_trips() {
        let s = Schedule(vec![(0, None), (1, Some(2)), (1, None), (3, Some(0))]);
        let tok = s.token();
        assert_eq!(tok, "0.1r2.1.3r0");
        assert_eq!(Schedule::parse(&tok).unwrap(), s);
    }

    #[test]
    fn schedule_parse_rejects_garbage() {
        assert!(Schedule::parse("1.x.2").is_err());
        assert!(Schedule::parse("1r?").is_err());
        assert!(Schedule::parse("").unwrap().0.is_empty());
    }

    #[test]
    fn truncation_is_loud() {
        let mut stats = ExploreStats::default();
        assert!(!stats.truncated());
        stats.stale_reads_capped = 1;
        assert!(stats.truncated());
        let report = CheckReport {
            outcome: Outcome::PassBounded,
            stats,
        };
        let text = format!("{report}");
        assert!(text.contains("TRUNCATED"), "{text}");
        assert!(text.contains("bounded"), "{text}");
    }
}
