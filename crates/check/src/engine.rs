//! The deterministic-scheduler execution engine.
//!
//! One model **execution** runs every model thread as a real OS thread,
//! but under a turnstile: a thread that reaches a *visible operation*
//! (an instrumented atomic/cell/mutex/condvar/thread op) announces it
//! and blocks; whichever announcement completes the "everyone settled"
//! condition runs the scheduling step inline — picks the next thread
//! (replaying the explorer's forced prefix, then the default policy),
//! executes the op's effects against the happens-before state of
//! [`crate::hb`], records the trace step, updates DPOR backtrack sets,
//! and grants exactly one thread. At most one model thread is ever
//! between grant and announce, so model memory accesses are physically
//! serialized even when the *model* has a data race — races are caught
//! logically by the vector-clock detector, never by corrupting the
//! host process.
//!
//! Blocking is virtual: `Mutex` contention, condvar parks, and timed
//! sleeps suspend the model thread inside the engine. When no thread
//! is runnable the engine reaches **quiescence**: virtual time jumps
//! to the earliest pending deadline (waking sleepers and timed condvar
//! waiters — counting every such *forced timeout*, the signature of a
//! lost wakeup), and if nothing is wakeable the execution is reported
//! as a deadlock with every thread's pending operation. Repeated
//! quiescence cycles without a single write/unlock/notify are reported
//! as a livelock.

use crate::hb::{LocKind, LocState, VClock};
use crate::report::{Schedule, ViolationKind};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

/// Max model threads per execution (64 CPEs would be unexplorable;
/// models use "small configurations" of 2–5 threads).
pub(crate) const MAX_THREADS: usize = 16;

/// Read-modify-write flavours used by the shim atomics.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Rmw {
    Add(u64),
    Sub(u64),
    Max(u64),
    Swap(u64),
}

impl Rmw {
    fn apply(self, old: u64) -> u64 {
        match self {
            Rmw::Add(n) => old.wrapping_add(n),
            Rmw::Sub(n) => old.wrapping_sub(n),
            Rmw::Max(n) => old.max(n),
            Rmw::Swap(n) => n,
        }
    }

    pub(crate) fn name(self) -> &'static str {
        match self {
            Rmw::Add(_) => "fetch_add",
            Rmw::Sub(_) => "fetch_sub",
            Rmw::Max(_) => "fetch_max",
            Rmw::Swap(_) => "swap",
        }
    }
}

/// A visible operation, announced by a model thread before it may
/// proceed. `loc` is the address of the shared object (stable within
/// one execution).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Op {
    pub loc: Option<usize>,
    pub kind: OpKind,
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum OpKind {
    /// First announcement of a freshly spawned thread.
    Begin,
    Load(Ordering),
    Store(Ordering, u64),
    Rmw(Ordering, Rmw),
    CellRead,
    CellWrite,
    Lock,
    Unlock,
    /// Park on a condvar, atomically releasing `mutex`; `timeout` is
    /// virtual nanoseconds until a timed wake becomes possible.
    CvWait {
        mutex: usize,
        timeout: Option<u64>,
    },
    CvNotifyAll,
    CvNotifyOne,
    Yield,
    /// Timed sleep; enabled once virtual time reaches `until`.
    Sleep {
        until: u64,
    },
    Spawn,
    Join {
        child: usize,
    },
    Exit,
}

impl OpKind {
    /// Whether the op conflicts with other accesses to the same
    /// location (DPOR dependence needs "at least one write").
    fn writes(self) -> bool {
        !matches!(
            self,
            OpKind::Load(_)
                | OpKind::CellRead
                | OpKind::Yield
                | OpKind::Sleep { .. }
                | OpKind::Begin
                | OpKind::Join { .. }
                | OpKind::Exit
                | OpKind::Spawn
        )
    }

    /// Ops that constitute progress for the livelock detector.
    fn progresses(self) -> bool {
        matches!(
            self,
            OpKind::Store(..)
                | OpKind::Rmw(..)
                | OpKind::CellWrite
                | OpKind::Unlock
                | OpKind::CvNotifyAll
                | OpKind::CvNotifyOne
                | OpKind::Exit
        )
    }
}

/// One recorded step of the execution trace. Locations are display
/// ids (first-touch order), stable under a fixed schedule.
#[derive(Clone, Debug)]
pub(crate) struct TraceStep {
    pub tid: usize,
    pub loc: Option<usize>,
    /// Second location (a cv-wait's mutex).
    pub loc2: Option<usize>,
    pub kind: OpKind,
    pub result: u64,
}

impl TraceStep {
    fn dependent(&self, other: &TraceStep) -> bool {
        if self.tid == other.tid {
            return false;
        }
        let shares = |a: Option<usize>, b: Option<usize>| a.is_some() && a == b;
        let overlap = shares(self.loc, other.loc)
            || shares(self.loc, other.loc2)
            || shares(self.loc2, other.loc)
            || shares(self.loc2, other.loc2);
        overlap && (self.kind.writes() || other.kind.writes())
    }
}

/// One scheduling decision point of the exploration stack.
#[derive(Clone, Debug)]
pub(crate) struct Frame {
    /// Runnable threads at this point.
    pub enabled: Vec<usize>,
    /// The choice taken on the current path: (thread, forced stale
    /// store index for a weak load).
    pub choice: (usize, Option<usize>),
    /// Choices already explored from this point.
    pub tried: Vec<(usize, Option<usize>)>,
    /// Choices queued by DPOR backtracking / weak-read branching.
    pub pending: Vec<(usize, Option<usize>)>,
    /// Preemptive context switches on the path up to this choice.
    pub preemptions: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Slot reserved by a spawn; the OS thread has not announced yet.
    Reserved,
    /// Announced a pending op, waiting to be granted.
    Announced,
    /// Parked on a condvar.
    Parked,
    /// Granted; the thread will pick up its result and run.
    Granted,
    /// Running model code between visible ops.
    Running,
    Exited,
}

pub(crate) struct ThreadSt {
    pub name: String,
    pub phase: Phase,
    pub pending: Option<Op>,
    pub result: u64,
    /// Set when a cv wait was ended by a forced timeout.
    pub timed_out: bool,
    /// The mutex to reacquire when woken from a condvar.
    pub cv_mutex: Option<usize>,
    /// Pending wait was granted as a cv reacquire (result carries the
    /// timed_out flag).
    pub cv_reacquire: bool,
    /// Model-level exit clock (set when `Exit` executes).
    pub exit_clock: Option<VClock>,
    pub handle: Option<std::thread::JoinHandle<()>>,
    /// The op this thread last executed was a yield (scheduling hint).
    pub yielded: bool,
    /// Consecutive yields executed with no intervening non-yield op.
    pub yields_in_row: u32,
    /// `exec.progress_ops` when this thread last yielded; once past
    /// the fairness bound the thread stays blocked until it changes.
    pub progress_snapshot: u64,
}

impl ThreadSt {
    fn new(name: String) -> Self {
        ThreadSt {
            name,
            phase: Phase::Reserved,
            pending: None,
            result: 0,
            timed_out: false,
            cv_mutex: None,
            cv_reacquire: false,
            exit_clock: None,
            handle: None,
            yielded: false,
            yields_in_row: 0,
            progress_snapshot: 0,
        }
    }
}

/// Per-execution dynamic state (reset between executions).
pub(crate) struct ExecSt {
    pub clocks: Vec<VClock>,
    pub locs: HashMap<usize, LocState>,
    pub loc_kinds: Vec<LocKind>,
    pub now: u64,
    pub trace: Vec<TraceStep>,
    pub forced_timeouts: u64,
    pub stale_branches_capped: u64,
    pub stale_branches: u32,
    /// Total progress ops (stores/unlocks/notifies/exits) so far —
    /// the signal that re-enables a fairness-blocked spinner.
    pub progress_ops: u64,
    progress_since_quiescence: bool,
    livelock_strikes: u32,
}

impl ExecSt {
    fn new() -> Self {
        ExecSt {
            clocks: Vec::new(),
            locs: HashMap::new(),
            loc_kinds: Vec::new(),
            now: 0,
            trace: Vec::new(),
            forced_timeouts: 0,
            stale_branches_capped: 0,
            stale_branches: 0,
            progress_ops: 0,
            progress_since_quiescence: true,
            livelock_strikes: 0,
        }
    }

    /// The location entry at `addr`, created on first touch.
    fn loc(&mut self, addr: usize, kind: LocKind, init: Option<u64>) -> &mut LocState {
        let next_id = self.loc_kinds.len();
        let kinds = &mut self.loc_kinds;
        self.locs.entry(addr).or_insert_with(|| {
            kinds.push(kind);
            LocState::new(next_id, kind, init)
        })
    }
}

/// A violation discovered during an execution, with the evidence
/// needed for the report: the full trace and the replayable schedule.
#[derive(Clone, Debug)]
pub(crate) struct RawViolation {
    pub kind: ViolationKind,
    pub message: String,
    pub trace: Vec<TraceStep>,
    pub thread_names: Vec<String>,
    pub loc_kinds: Vec<LocKind>,
    pub schedule: Schedule,
}

/// Exploration knobs shared by the engine and explorer (a subset of
/// the public [`crate::Config`], pre-resolved).
#[derive(Clone, Debug)]
pub(crate) struct EngineConfig {
    pub seed: u64,
    pub weak_values: bool,
    pub max_steps: usize,
    pub max_stale_branches: u32,
    pub preemption_bound: Option<u32>,
    pub forbid_timeout_rescue: bool,
    /// Consecutive quiescence cycles without progress before the
    /// execution is reported as a livelock.
    pub livelock_limit: u32,
    /// Consecutive yields by one thread (with no progress anywhere)
    /// before the fairness bound blocks it.
    pub yield_bound: u32,
}

pub(crate) struct EngineSt {
    pub cfg: EngineConfig,
    pub threads: Vec<ThreadSt>,
    pub exec: ExecSt,
    pub stack: Vec<Frame>,
    /// Replay prefix for this execution (stack choices up to the
    /// branch point, or an explicit replay schedule).
    pub forced: Schedule,
    /// Threads whose OS threads are live (reserved or running).
    pub live: usize,
    pub abort: bool,
    pub done: bool,
    pub violation: Option<RawViolation>,
    /// Set when the per-execution step budget tripped.
    pub step_budget_hit: bool,
    last_granted: Option<usize>,
    /// Internal error (a replay prefix that no longer matches).
    pub internal_error: Option<String>,
    pub preemption_pruned: u64,
}

impl EngineSt {
    fn snapshot_violation(&self, kind: ViolationKind, message: String) -> RawViolation {
        RawViolation {
            kind,
            message,
            trace: self.exec.trace.clone(),
            thread_names: self.threads.iter().map(|t| t.name.clone()).collect(),
            loc_kinds: self.exec.loc_kinds.clone(),
            schedule: Schedule(self.stack.iter().map(|f| f.choice).collect()),
        }
    }

    fn report_violation(&mut self, kind: ViolationKind, message: String) {
        if self.violation.is_none() {
            self.violation = Some(self.snapshot_violation(kind, message));
        }
        self.abort = true;
    }

    fn settled(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.phase, Phase::Announced | Phase::Parked | Phase::Exited))
    }

    fn enabled(&self, tid: usize) -> bool {
        let Some(op) = &self.threads[tid].pending else {
            return false;
        };
        match op.kind {
            OpKind::Lock => {
                let addr = op.loc.expect("lock has a location");
                self.locs_owner(addr).is_none()
            }
            OpKind::Sleep { until } => self.exec.now >= until,
            OpKind::Join { child } => self.threads[child].exit_clock.is_some(),
            // Fairness bound: a thread that has spun past the yield
            // budget blocks until some other thread makes progress.
            // Extra spin iterations over unchanged state are
            // stutter-equivalent, so pruning them is what keeps spin
            // loops finitely explorable — and a spinner that can never
            // be unblocked is a livelock, which quiescence reports.
            OpKind::Yield => {
                let t = &self.threads[tid];
                t.yields_in_row < self.cfg.yield_bound
                    || self.exec.progress_ops != t.progress_snapshot
            }
            _ => true,
        }
    }

    fn locs_owner(&self, addr: usize) -> Option<usize> {
        self.exec.locs.get(&addr).and_then(|l| l.owner)
    }

    fn runnable(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.threads[t].phase == Phase::Announced && self.enabled(t))
            .collect()
    }

    /// Deterministic tie-break score for the default policy.
    fn score(&self, step: usize, tid: usize) -> u64 {
        let mut x = self
            .cfg
            .seed
            .wrapping_add((step as u64) << 32)
            .wrapping_add(tid as u64)
            .wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    /// Picks the next thread to run (and, for weak loads, the forced
    /// store index), either replaying the forced prefix or extending
    /// the stack with a fresh decision point.
    fn decide(&mut self, runnable: &[usize]) -> Option<(usize, Option<usize>)> {
        // Frames are 1:1 with trace steps. The stack persists across
        // executions (it IS the exploration state), so during replay
        // of the forced prefix the frame for this step already exists.
        let step = self.exec.trace.len();
        if let Some(&(tid, read)) = self.forced.0.get(step) {
            if !runnable.contains(&tid) {
                self.internal_error = Some(format!(
                    "replay diverged at step {step}: thread {tid} not runnable"
                ));
                self.abort = true;
                return None;
            }
            if self.stack.len() == step {
                // Replaying an explicit schedule (no pre-built stack):
                // materialize the frame so violations snapshot it.
                self.stack.push(Frame {
                    enabled: runnable.to_vec(),
                    choice: (tid, read),
                    tried: vec![(tid, read)],
                    pending: Vec::new(),
                    preemptions: 0,
                });
            } else {
                self.stack[step].choice = (tid, read);
            }
            return Some((tid, read));
        }
        // Default policy: stay on the previously granted thread unless
        // it yielded, parked, or blocked — switching only on yields
        // keeps polling loops fair while preserving long runs DPOR can
        // reason about.
        let prev = self.last_granted;
        let stay = prev.filter(|p| runnable.contains(p) && !self.threads[*p].yielded);
        let tid = stay.unwrap_or_else(|| {
            *runnable
                .iter()
                .min_by_key(|&&t| self.score(step, t))
                .expect("runnable is non-empty")
        });
        let path_preemptions = self.stack.last().map(|f| f.preemptions).unwrap_or(0);
        let mut frame = Frame {
            enabled: runnable.to_vec(),
            choice: (tid, None),
            tried: vec![(tid, None)],
            pending: Vec::new(),
            preemptions: path_preemptions,
        };
        // Bounded-preemption strategy: eagerly queue every other
        // runnable thread, pruning (loudly) those that would exceed
        // the preemption budget.
        if let Some(bound) = self.cfg.preemption_bound {
            for &alt in runnable {
                if alt == tid {
                    continue;
                }
                let preempts = prev
                    .map(|p| p != alt && runnable.contains(&p) && !self.threads[p].yielded)
                    .unwrap_or(false);
                if preempts && path_preemptions >= bound {
                    self.preemption_pruned += 1;
                } else {
                    frame.pending.push((alt, None));
                }
            }
        }
        self.stack.push(frame);
        Some((tid, None))
    }

    /// DPOR: find the most recent step dependent with the step just
    /// executed and queue the executing thread at that decision point.
    fn dpor_update(&mut self) {
        if self.cfg.preemption_bound.is_some() {
            return; // bounded-preemption mode branches eagerly instead
        }
        let i = self.exec.trace.len() - 1;
        let e = self.exec.trace[i].clone();
        let Some(j) = (0..i).rev().find(|&j| self.exec.trace[j].dependent(&e)) else {
            return;
        };
        self.queue_backtrack(j, e.tid);
        // A blocked lock attempt never executes, so the conflict
        // between two acquisitions of the same mutex never shows up as
        // a dependent pair — only release→acquire does. Reversing that
        // pair means moving the acquirer before the releaser's WHOLE
        // critical section, so also queue a backtrack at the matching
        // acquisition; without this, lock-order deadlocks and
        // park-before-notify lost wakeups are unreachable.
        if matches!(e.kind, OpKind::Lock) {
            let m = e.loc;
            let rel = &self.exec.trace[j];
            let releaser = rel.tid;
            let released = match rel.kind {
                OpKind::Unlock => rel.loc == m,
                OpKind::CvWait { .. } => rel.loc2 == m,
                _ => false,
            };
            if released {
                if let Some(k) = (0..j).rev().find(|&k| {
                    let s = &self.exec.trace[k];
                    s.tid == releaser && matches!(s.kind, OpKind::Lock) && s.loc == m
                }) {
                    self.queue_backtrack(k, e.tid);
                }
            }
        }
    }

    /// Queue thread `tid` as a pending alternative at decision point
    /// `j` (or every thread runnable there if `tid` was not).
    fn queue_backtrack(&mut self, j: usize, tid: usize) {
        let frame = &mut self.stack[j];
        let queue: Vec<usize> = if frame.enabled.contains(&tid) {
            vec![tid]
        } else {
            // The thread was not yet runnable there: conservatively
            // try every thread that was.
            frame.enabled.clone()
        };
        for t in queue {
            let c = (t, None);
            if frame.choice != c && !frame.tried.contains(&c) && !frame.pending.contains(&c) {
                frame.pending.push(c);
            }
        }
    }

    /// Executes thread `tid`'s announced op against the model state.
    /// Returns `false` if the op parked the thread instead of
    /// completing (cv wait).
    fn execute(&mut self, tid: usize, forced_read: Option<usize>) -> bool {
        let op = self.threads[tid].pending.take().expect("op announced");
        self.exec.clocks[tid].tick(tid);
        let step = self.exec.trace.len();
        let mut result = 0u64;
        let mut loc_id = None;
        let mut loc2_id = None;
        let mut completed = true;
        match op.kind {
            OpKind::Begin | OpKind::Yield | OpKind::Sleep { .. } => {}
            OpKind::Load(ord) => {
                let addr = op.loc.expect("load has a location");
                let weak = self.cfg.weak_values;
                let clock = self.exec.clocks[tid].clone();
                let loc = self
                    .exec
                    .locs
                    .get_mut(&addr)
                    .expect("atomic seeded at announce");
                loc_id = Some(loc.id);
                let (i, alts) = loc.load_choice(tid, &clock, ord, weak, forced_read);
                let mut clock = clock;
                result = loc.commit_load(tid, &mut clock, ord, i);
                self.exec.clocks[tid] = clock;
                if !alts.is_empty() {
                    // Register the stale alternatives at THIS step's
                    // frame (frames are 1:1 with trace steps), deduping
                    // against choices already tried on earlier paths.
                    if self.exec.stale_branches < self.cfg.max_stale_branches {
                        let frame = &mut self.stack[step];
                        let mut added = false;
                        for a in alts {
                            let c = (tid, Some(a));
                            if frame.choice != c
                                && !frame.tried.contains(&c)
                                && !frame.pending.contains(&c)
                            {
                                frame.pending.push(c);
                                added = true;
                            }
                        }
                        if added {
                            self.exec.stale_branches += 1;
                        }
                    } else {
                        self.exec.stale_branches_capped += alts.len() as u64;
                    }
                }
            }
            OpKind::Store(ord, val) => {
                let addr = op.loc.expect("store has a location");
                let clock = self.exec.clocks[tid].clone();
                let loc = self
                    .exec
                    .locs
                    .get_mut(&addr)
                    .expect("atomic seeded at announce");
                loc_id = Some(loc.id);
                loc.store(tid, &clock, ord, val);
            }
            OpKind::Rmw(ord, rmw) => {
                let addr = op.loc.expect("rmw has a location");
                let mut clock = self.exec.clocks[tid].clone();
                let loc = self
                    .exec
                    .locs
                    .get_mut(&addr)
                    .expect("atomic seeded at announce");
                loc_id = Some(loc.id);
                let old = loc.stores.last().expect("seeded").val;
                result = loc.rmw(tid, &mut clock, ord, rmw.apply(old));
                self.exec.clocks[tid] = clock;
            }
            OpKind::CellRead | OpKind::CellWrite => {
                let addr = op.loc.expect("cell access has a location");
                let clock = self.exec.clocks[tid].clone();
                let loc = self.exec.loc(addr, LocKind::Cell, None);
                loc_id = Some(loc.id);
                let res = if matches!(op.kind, OpKind::CellRead) {
                    loc.cell_read(tid, &clock, step)
                } else {
                    loc.cell_write(tid, &clock, step)
                };
                if let Err(race) = res {
                    let (id, kname) = (loc.id, loc.kind.name());
                    let msg = format!(
                        "data race on {kname}#{id}: {} by {} at step {} is unordered with this {} by {}",
                        if race.prior_write { "write" } else { "read" },
                        self.threads[race.prior_thread].name,
                        race.prior_step,
                        if matches!(op.kind, OpKind::CellRead) { "read" } else { "write" },
                        self.threads[tid].name,
                    );
                    // Record the racing access in the trace first so
                    // the rendered schedule ends at the crime scene.
                    self.push_trace(tid, op, loc_id, loc2_id, result);
                    self.report_violation(ViolationKind::Race, msg);
                    return true;
                }
            }
            OpKind::Lock => {
                let addr = op.loc.expect("lock has a location");
                let clock = &mut self.exec.clocks[tid];
                let loc = self.exec.locs.get_mut(&addr).expect("mutex seeded");
                loc_id = Some(loc.id);
                debug_assert!(loc.owner.is_none(), "granted lock must be free");
                loc.owner = Some(tid);
                clock.join(&loc.unlock_clock);
                if self.threads[tid].cv_reacquire {
                    self.threads[tid].cv_reacquire = false;
                    result = self.threads[tid].timed_out as u64;
                }
            }
            OpKind::Unlock => {
                let addr = op.loc.expect("unlock has a location");
                let clock = self.exec.clocks[tid].clone();
                let loc = self.exec.locs.get_mut(&addr).expect("mutex seeded");
                loc_id = Some(loc.id);
                loc.owner = None;
                loc.unlock_clock = clock;
            }
            OpKind::CvWait { mutex, timeout } => {
                let cv_addr = op.loc.expect("cv wait has a location");
                let clock = self.exec.clocks[tid].clone();
                // Release the mutex...
                let m = self.exec.locs.get_mut(&mutex).expect("mutex seeded");
                loc2_id = Some(m.id);
                m.owner = None;
                m.unlock_clock = clock;
                // ...and park on the condvar.
                let wake_at = timeout.map(|d| self.exec.now + d);
                let cv = self.exec.loc(cv_addr, LocKind::Condvar, None);
                loc_id = Some(cv.id);
                cv.cv_waiters.push((tid, wake_at));
                self.threads[tid].cv_mutex = Some(mutex);
                self.threads[tid].timed_out = false;
                self.threads[tid].phase = Phase::Parked;
                completed = false;
            }
            OpKind::CvNotifyAll | OpKind::CvNotifyOne => {
                let cv_addr = op.loc.expect("notify has a location");
                let cv = self.exec.loc(cv_addr, LocKind::Condvar, None);
                loc_id = Some(cv.id);
                let n = if matches!(op.kind, OpKind::CvNotifyOne) {
                    1.min(cv.cv_waiters.len())
                } else {
                    cv.cv_waiters.len()
                };
                let woken: Vec<(usize, Option<u64>)> = cv.cv_waiters.drain(..n).collect();
                result = woken.len() as u64;
                for (w, _) in woken {
                    self.wake_cv_waiter(w, false);
                }
            }
            OpKind::Spawn => {
                if self.threads.len() >= MAX_THREADS {
                    self.report_violation(
                        ViolationKind::Assert,
                        format!("model spawned more than {MAX_THREADS} threads"),
                    );
                    return true;
                }
                let child = self.threads.len();
                let name = format!("t{child}");
                self.threads.push(ThreadSt::new(name));
                self.exec.clocks.push(self.exec.clocks[tid].clone());
                self.live += 1;
                result = child as u64;
            }
            OpKind::Join { child } => {
                let exit = self.threads[child]
                    .exit_clock
                    .clone()
                    .expect("join granted only after child exit");
                self.exec.clocks[tid].join(&exit);
            }
            OpKind::Exit => {
                self.threads[tid].exit_clock = Some(self.exec.clocks[tid].clone());
            }
        }
        if op.kind.progresses() {
            self.exec.progress_since_quiescence = true;
            self.exec.progress_ops += 1;
        }
        if matches!(op.kind, OpKind::Yield) {
            self.threads[tid].yielded = true;
            // Reads between yields do NOT reset the spin budget — a
            // spin loop's loads of unchanged state are stutter steps.
            // The budget resets only when global progress happened
            // since this thread last yielded.
            if self.exec.progress_ops != self.threads[tid].progress_snapshot {
                self.threads[tid].yields_in_row = 1;
            } else {
                self.threads[tid].yields_in_row += 1;
            }
            self.threads[tid].progress_snapshot = self.exec.progress_ops;
        } else {
            self.threads[tid].yielded = false;
            if op.kind.progresses() {
                self.threads[tid].yields_in_row = 0;
            }
        }
        self.threads[tid].result = result;
        self.push_trace(tid, op, loc_id, loc2_id, result);
        completed
    }

    fn push_trace(
        &mut self,
        tid: usize,
        op: Op,
        loc: Option<usize>,
        loc2: Option<usize>,
        result: u64,
    ) {
        self.exec.trace.push(TraceStep {
            tid,
            loc,
            loc2,
            kind: op.kind,
            result,
        });
    }

    /// Moves a parked thread back to announced, pending a reacquire of
    /// its condvar's mutex.
    fn wake_cv_waiter(&mut self, tid: usize, timed_out: bool) {
        let mutex = self.threads[tid].cv_mutex.expect("parked on a condvar");
        debug_assert_eq!(self.threads[tid].phase, Phase::Parked);
        self.threads[tid].pending = Some(Op {
            loc: Some(mutex),
            kind: OpKind::Lock,
        });
        self.threads[tid].timed_out = timed_out;
        self.threads[tid].cv_reacquire = true;
        self.threads[tid].phase = Phase::Announced;
    }

    /// No runnable thread: advance virtual time to the earliest
    /// deadline, or report deadlock. Returns `true` if anything was
    /// woken.
    fn quiesce(&mut self) -> bool {
        // Livelock: quiescence cycles without any store/unlock/notify.
        if !self.exec.progress_since_quiescence {
            self.exec.livelock_strikes += 1;
            if self.exec.livelock_strikes >= self.cfg.livelock_limit {
                let limit = self.cfg.livelock_limit;
                self.report_violation(
                    ViolationKind::Livelock,
                    format!(
                        "no progress across {limit} quiescence cycles \
                         (threads spin/sleep without ever writing)"
                    ),
                );
                return false;
            }
        } else {
            self.exec.livelock_strikes = 0;
        }
        self.exec.progress_since_quiescence = false;

        let mut wake_at = u64::MAX;
        for (t, th) in self.threads.iter().enumerate() {
            match th.phase {
                Phase::Announced => {
                    if let Some(Op {
                        kind: OpKind::Sleep { until },
                        ..
                    }) = th.pending
                    {
                        wake_at = wake_at.min(until);
                    }
                }
                Phase::Parked => {
                    if let Some((_, Some(at))) = self.find_cv_entry(t) {
                        wake_at = wake_at.min(at);
                    }
                }
                _ => {}
            }
        }
        if wake_at == u64::MAX {
            let blocked: Vec<String> = self
                .threads
                .iter()
                .filter(|t| !matches!(t.phase, Phase::Exited))
                .map(|t| {
                    format!(
                        "{} blocked on {}",
                        t.name,
                        t.pending
                            .as_ref()
                            .map(|o| format!("{:?}", o.kind))
                            .unwrap_or_else(|| "condvar (no timeout)".into())
                    )
                })
                .collect();
            // A fairness-blocked spinner that nothing can ever unblock
            // is a livelock, not a deadlock.
            let spinning = self.threads.iter().any(|t| {
                t.phase == Phase::Announced
                    && matches!(
                        t.pending,
                        Some(Op {
                            kind: OpKind::Yield,
                            ..
                        })
                    )
            });
            if spinning {
                self.report_violation(
                    ViolationKind::Livelock,
                    format!(
                        "spin loops can never observe progress (no runnable writer): {}",
                        blocked.join("; ")
                    ),
                );
            } else {
                self.report_violation(
                    ViolationKind::Deadlock,
                    format!(
                        "all threads blocked with no pending deadline: {}",
                        blocked.join("; ")
                    ),
                );
            }
            return false;
        }
        self.exec.now = self.exec.now.max(wake_at);
        // Wake every timed condvar waiter whose deadline passed; timed
        // sleepers become enabled automatically. Forced condvar
        // timeouts are the lost-wakeup signature and are counted.
        let due: Vec<usize> = (0..self.threads.len())
            .filter(|&t| {
                self.threads[t].phase == Phase::Parked
                    && matches!(self.find_cv_entry(t), Some((_, Some(at))) if at <= self.exec.now)
            })
            .collect();
        for t in &due {
            let (cv_addr, _) = self.find_cv_entry(*t).expect("due waiter is parked");
            let cv = self.exec.locs.get_mut(&cv_addr).expect("cv exists");
            cv.cv_waiters.retain(|&(w, _)| w != *t);
            self.exec.forced_timeouts += 1;
            self.wake_cv_waiter(*t, true);
        }
        true
    }

    fn find_cv_entry(&self, tid: usize) -> Option<(usize, Option<u64>)> {
        self.exec.locs.iter().find_map(|(addr, l)| {
            l.cv_waiters
                .iter()
                .find(|&&(w, _)| w == tid)
                .map(|&(_, at)| (*addr, at))
        })
    }

    /// The scheduling pump: whenever every thread is settled, run
    /// decision steps until a thread is granted (or the execution
    /// ends). Called by workers after every announcement and by the
    /// explorer at execution start.
    pub(crate) fn pump(&mut self) {
        loop {
            if self.abort || self.done {
                return;
            }
            if !self.settled() {
                return;
            }
            if self.threads.iter().all(|t| t.phase == Phase::Exited) {
                if self.cfg.forbid_timeout_rescue && self.exec.forced_timeouts > 0 {
                    self.report_violation(
                        ViolationKind::LostWakeup,
                        format!(
                            "progress required {} forced condvar timeout(s): a waiter \
                             parked after the wakeup it needed was already delivered",
                            self.exec.forced_timeouts
                        ),
                    );
                    return;
                }
                self.done = true;
                return;
            }
            if self.exec.trace.len() >= self.cfg.max_steps {
                self.step_budget_hit = true;
                self.abort = true;
                return;
            }
            let runnable = self.runnable();
            if runnable.is_empty() {
                if !self.quiesce() {
                    return; // deadlock/livelock reported
                }
                continue;
            }
            let Some((tid, forced_read)) = self.decide(&runnable) else {
                return; // replay diverged
            };
            let completed = self.execute(tid, forced_read);
            self.dpor_update();
            if self.abort {
                return;
            }
            self.last_granted = Some(tid);
            if completed {
                self.threads[tid].phase = Phase::Granted;
                return; // the granted worker announces next; pump re-runs then
            }
            // Parked (cv wait): nobody was granted, keep deciding.
        }
    }
}

/// The engine shared by the explorer and every model worker thread.
pub(crate) struct Engine {
    pub st: Mutex<EngineSt>,
    pub cv: Condvar,
    /// The model body, re-run once per execution.
    pub body: Arc<dyn Fn() + Send + Sync>,
}

/// Panic payload used to unwind model threads when an execution is
/// aborted (violation found or budget hit).
pub(crate) struct AbortToken;

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// A model worker's handle to the engine.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub engine: Arc<Engine>,
    pub tid: usize,
}

/// The active model context of the current thread, if any. Shim types
/// fall back to plain `std` behaviour when this is `None`.
pub(crate) fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// True while the current thread is a model worker (used to suppress
/// panic-hook output for expected unwinds).
pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn install_quiet_panic_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !in_model() {
                prev(info);
            }
        }));
    });
}

impl Ctx {
    /// Announces a visible op, waits to be granted, and returns the
    /// op's result. Panics with [`AbortToken`] when the execution is
    /// being torn down.
    pub fn visible(&self, op: Op) -> u64 {
        let mut st = self.engine.lock();
        st.threads[self.tid].pending = Some(op);
        st.threads[self.tid].phase = Phase::Announced;
        st.pump();
        self.engine.cv.notify_all();
        loop {
            if st.abort {
                st.threads[self.tid].pending = None;
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            if st.threads[self.tid].phase == Phase::Granted {
                break;
            }
            st = self.engine.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[self.tid].phase = Phase::Running;
        st.threads[self.tid].result
    }

    /// Seeds an atomic location (first touch) and announces an op on
    /// it, in one lock section.
    pub fn visible_atomic(&self, addr: usize, init: u64, op: Op) -> u64 {
        {
            let mut st = self.engine.lock();
            st.exec.loc(addr, LocKind::Atomic, Some(init));
        }
        self.visible(op)
    }

    /// Seeds a mutex location.
    pub fn seed_mutex(&self, addr: usize) {
        let mut st = self.engine.lock();
        st.exec.loc(addr, LocKind::Mutex, None);
    }

    /// Current virtual time in nanoseconds (no scheduling point).
    pub fn now(&self) -> u64 {
        self.engine.lock().exec.now
    }

    /// Spawns a model thread: reserves a slot via a visible op, starts
    /// the OS thread, and registers its handle for reaping.
    pub fn spawn_model(&self, f: impl FnOnce() + Send + 'static) -> usize {
        let child = self.visible(Op {
            loc: None,
            kind: OpKind::Spawn,
        }) as usize;
        let engine = self.engine.clone();
        let handle = std::thread::Builder::new()
            .name(format!("sw-check-t{child}"))
            .spawn(move || run_worker(engine, child, f))
            .expect("spawn model worker");
        self.engine.lock().threads[child].handle = Some(handle);
        child
    }
}

/// Body of every model worker OS thread: announce `Begin`, run the
/// closure, and report the outcome (normal exit, abort unwind, or an
/// assertion panic — the latter becomes an `Assert` violation).
pub(crate) fn run_worker(engine: Arc<Engine>, tid: usize, f: impl FnOnce()) {
    install_quiet_panic_hook();
    let ctx = Ctx {
        engine: engine.clone(),
        tid,
    };
    CURRENT.with(|c| *c.borrow_mut() = Some(ctx.clone()));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ctx.visible(Op {
            loc: None,
            kind: OpKind::Begin,
        });
        f();
        ctx.visible(Op {
            loc: None,
            kind: OpKind::Exit,
        });
    }));
    CURRENT.with(|c| *c.borrow_mut() = None);
    let mut st = engine.lock();
    st.threads[tid].phase = Phase::Exited;
    st.live -= 1;
    if let Err(payload) = outcome {
        if payload.downcast_ref::<AbortToken>().is_none() {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "model thread panicked".into());
            let name = st.threads[tid].name.clone();
            st.report_violation(ViolationKind::Assert, format!("{name} panicked: {msg}"));
        }
    }
    st.pump();
    drop(st);
    engine.cv.notify_all();
}

impl Engine {
    pub fn new(cfg: EngineConfig, body: Arc<dyn Fn() + Send + Sync>) -> Arc<Self> {
        Arc::new(Engine {
            st: Mutex::new(EngineSt {
                cfg,
                threads: Vec::new(),
                exec: ExecSt::new(),
                stack: Vec::new(),
                forced: Schedule(Vec::new()),
                live: 0,
                abort: false,
                done: false,
                violation: None,
                step_budget_hit: false,
                last_granted: None,
                internal_error: None,
                preemption_pruned: 0,
            }),
            cv: Condvar::new(),
            body,
        })
    }

    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, EngineSt> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Resets per-execution state and installs the replay prefix.
    pub fn reset_execution(&self, forced: Schedule) {
        let mut st = self.lock();
        debug_assert_eq!(st.live, 0, "previous execution fully reaped");
        st.threads.clear();
        st.exec = ExecSt::new();
        st.forced = forced;
        st.abort = false;
        st.done = false;
        st.step_budget_hit = false;
        st.last_granted = None;
        // Root thread slot.
        st.threads.push(ThreadSt::new("main".into()));
        st.exec.clocks.push(VClock::default());
        st.live = 1;
    }

    /// Starts the root worker for one execution.
    pub fn start_root(self: &Arc<Self>) {
        let engine = self.clone();
        let body = self.body.clone();
        let handle = std::thread::Builder::new()
            .name("sw-check-main".into())
            .spawn(move || run_worker(engine, 0, move || body()))
            .expect("spawn model root");
        self.lock().threads[0].handle = Some(handle);
    }

    /// Waits for the execution to finish (all model threads done or
    /// the execution aborted), then joins every OS thread.
    pub fn wait_and_reap(&self) {
        {
            let mut st = self.lock();
            while !(st.done || st.abort) {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.abort {
                self.cv.notify_all(); // wake workers so they unwind
            }
        }
        loop {
            let pending: Vec<std::thread::JoinHandle<()>> = {
                let mut st = self.lock();
                let handles: Vec<_> = st
                    .threads
                    .iter_mut()
                    .filter_map(|t| t.handle.take())
                    .collect();
                if handles.is_empty() {
                    // A spawn op that was granted right before an abort
                    // may have reserved a slot whose OS thread never
                    // started; once every started thread is joined, no
                    // handle can appear any more — reclaim them.
                    let stx = &mut *st;
                    for t in stx.threads.iter_mut() {
                        if t.phase == Phase::Reserved {
                            t.phase = Phase::Exited;
                            stx.live = stx.live.saturating_sub(1);
                        }
                    }
                    if st.live == 0 {
                        return;
                    }
                    drop(st);
                    self.cv.notify_all();
                    std::thread::yield_now();
                    continue;
                }
                handles
            };
            self.cv.notify_all();
            for h in pending {
                let _ = h.join();
            }
        }
    }
}
