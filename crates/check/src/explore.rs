//! The exploration driver: runs a model body under the deterministic
//! scheduler over and over, steering each execution down a different
//! interleaving via the DPOR stack (or the bounded-preemption
//! fallback), until the space is exhausted, a budget trips, or a
//! violation is found.

use crate::engine::{Engine, EngineConfig};
use crate::report::{render_step, CheckReport, ExploreStats, Outcome, Schedule, Violation};
use std::sync::Arc;

/// How alternative schedules are generated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Dynamic partial-order reduction: backtrack only at steps that
    /// were dependent with a later step of another thread. Exhaustive
    /// up to equivalence (within the other budgets).
    Dpor,
    /// Try every runnable thread at every decision point, pruning
    /// schedules with more than this many preemptive context switches.
    /// Not exhaustive — a fallback for models whose DPOR closure is
    /// too large — and loud about what it pruned.
    BoundedPreemption(u32),
}

/// Exploration configuration. The defaults exhaust small models (2–4
/// threads, tens of visible ops); every budget that can truncate the
/// search is counted in [`ExploreStats`] and demotes a `Pass` to
/// `PassBounded`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Seed for the default-policy tie-break (any value works; fixed
    /// default keeps runs reproducible).
    pub seed: u64,
    /// Max complete interleavings to explore.
    pub max_executions: u64,
    /// Max visible ops per interleaving (cuts runaway spins).
    pub max_steps_per_exec: usize,
    /// Max weak-read branch points registered per interleaving.
    pub max_stale_reads: u32,
    /// Simulate weak memory: relaxed/acquire loads may observe stale
    /// stores still permitted by coherence and happens-before. Turn
    /// off to check under sequential consistency only.
    pub weak_values: bool,
    pub strategy: Strategy,
    /// Treat any forced condvar-timeout rescue as a lost-wakeup
    /// violation. Turn on for models whose progress must never depend
    /// on a timed park expiring.
    pub forbid_timeout_rescue: bool,
    /// Consecutive no-progress quiescence cycles before a livelock is
    /// reported. Models that legitimately sleep through many timed
    /// parks (e.g. a backoff fuse) need this above
    /// `fuse_timeout / park_sleep`.
    pub livelock_limit: u32,
    /// Fairness bound: after this many consecutive yields by one
    /// thread with no progress op anywhere, the spinner blocks until
    /// progress happens. Spin iterations over unchanged state are
    /// stutter-equivalent, so this keeps spin-loop models finitely
    /// explorable without hiding bugs.
    pub yield_bound: u32,
    /// Replay exactly one schedule (from [`Schedule::parse`]) instead
    /// of exploring.
    pub replay: Option<Schedule>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 0,
            max_executions: 20_000,
            max_steps_per_exec: 5_000,
            max_stale_reads: 16,
            weak_values: true,
            strategy: Strategy::Dpor,
            forbid_timeout_rescue: false,
            livelock_limit: 16,
            yield_bound: 2,
            replay: None,
        }
    }
}

/// Model-checks `body`: runs it under the deterministic scheduler
/// across interleavings until exhaustion, a violation, or a budget.
/// The body runs once per explored interleaving and must construct
/// all shared state itself (typically in `Arc`s handed to
/// [`crate::checked::thread::spawn`]ed workers).
pub fn check(cfg: &Config, body: impl Fn() + Send + Sync + 'static) -> CheckReport {
    let engine_cfg = EngineConfig {
        seed: cfg.seed,
        weak_values: cfg.weak_values,
        max_steps: cfg.max_steps_per_exec,
        max_stale_branches: cfg.max_stale_reads,
        preemption_bound: match cfg.strategy {
            Strategy::Dpor => None,
            Strategy::BoundedPreemption(k) => Some(k),
        },
        forbid_timeout_rescue: cfg.forbid_timeout_rescue,
        livelock_limit: cfg.livelock_limit.max(1),
        yield_bound: cfg.yield_bound.max(1),
    };
    let engine = Engine::new(engine_cfg, Arc::new(body));
    let mut stats = ExploreStats::default();
    let mut forced = cfg.replay.clone().unwrap_or_default();
    let outcome = loop {
        engine.reset_execution(forced.clone());
        engine.start_root();
        engine.wait_and_reap();

        let mut st = engine.lock();
        stats.executions += 1;
        stats.steps += st.exec.trace.len() as u64;
        stats.stale_reads_capped += st.exec.stale_branches_capped;
        if st.step_budget_hit {
            stats.step_budget_hits += 1;
        }
        if let Some(err) = st.internal_error.take() {
            break Outcome::Internal(err);
        }
        if let Some(v) = st.violation.take() {
            let trace = v
                .trace
                .iter()
                .map(|s| render_step(s, &v.thread_names, &v.loc_kinds))
                .collect();
            break Outcome::Violation(Violation {
                kind: v.kind,
                message: v.message,
                trace,
                schedule: v.schedule.token(),
            });
        }
        if cfg.replay.is_some() {
            break Outcome::Pass;
        }
        if stats.executions >= cfg.max_executions {
            stats.truncated_branches = st.stack.iter().map(|f| f.pending.len() as u64).sum();
            break if stats.truncated() {
                Outcome::PassBounded
            } else {
                Outcome::Pass
            };
        }
        // Steer the next execution: pop the deepest pending choice,
        // truncating the stack above it; done when none remain.
        let advanced = loop {
            let Some(frame) = st.stack.last_mut() else {
                break false;
            };
            if let Some(c) = frame.pending.pop() {
                frame.tried.push(c);
                frame.choice = c;
                stats.branches += 1;
                break true;
            }
            st.stack.pop();
        };
        if !advanced {
            break if stats.truncated() {
                Outcome::PassBounded
            } else {
                Outcome::Pass
            };
        }
        st.forced = Schedule(st.stack.iter().map(|f| f.choice).collect());
        forced = st.forced.clone();
    };
    stats.preemption_pruned = engine.lock().preemption_pruned;
    if stats.preemption_pruned > 0 {
        // Pruning alone also demotes a clean pass.
        if matches!(outcome, Outcome::Pass) {
            return CheckReport {
                outcome: Outcome::PassBounded,
                stats,
            };
        }
    }
    CheckReport { outcome, stats }
}
