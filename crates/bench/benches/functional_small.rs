//! Bench of the functional simulator end-to-end: a full
//! 64-thread SCHED DGEMM at test scale, against the host references.

use std::hint::black_box;
use sw_bench::harness::Criterion;
use sw_bench::{criterion_group, criterion_main};
use sw_dgemm::gen::random_matrix;
use sw_dgemm::reference::{dgemm_naive, dgemm_parallel};
use sw_dgemm::{BlockingParams, DgemmRunner, Variant};

fn bench_functional(c: &mut Criterion) {
    let (m, n, k) = (128, 64, 128);
    let a = random_matrix(m, k, 1);
    let b = random_matrix(k, n, 2);
    let c0 = random_matrix(m, n, 3);
    let mut group = c.benchmark_group("functional_128x64x128");
    group.sample_size(10);
    group.bench_function("simulated_sched", |bch| {
        let runner = DgemmRunner::new(Variant::Sched).params(BlockingParams::test_small());
        bch.iter(|| {
            let mut cc = c0.clone();
            runner.run(1.0, &a, &b, 1.0, &mut cc).unwrap();
            black_box(cc)
        })
    });
    group.bench_function("host_naive", |bch| {
        bch.iter(|| {
            let mut cc = c0.clone();
            dgemm_naive(1.0, &a, &b, 1.0, &mut cc);
            black_box(cc)
        })
    });
    group.bench_function("host_parallel_8t", |bch| {
        bch.iter(|| {
            let mut cc = c0.clone();
            dgemm_parallel(1.0, &a, &b, 1.0, &mut cc, 8);
            black_box(cc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_functional);
criterion_main!(benches);
