//! Bench of the Figure 7 artefact: shape-sweep estimation.

use std::hint::black_box;
use sw_bench::harness::Criterion;
use sw_bench::{criterion_group, criterion_main};
use sw_dgemm::timing::estimate;
use sw_dgemm::Variant;

fn bench_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/estimate_shapes");
    for (name, m, n, k) in [
        ("thin_m", 1536usize, 9216usize, 9216usize),
        ("thin_n", 9216, 1536, 9216),
        ("thin_k", 9216, 9216, 1536),
        ("square", 9216, 9216, 9216),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(estimate(Variant::Sched, m, n, k).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shapes);
criterion_main!(benches);
