//! Bench of the Figure 6 artefact: timing-mode estimation
//! cost per variant at the paper's production size, and full
//! functional runs of every variant at test scale.

use std::hint::black_box;
use sw_bench::harness::Criterion;
use sw_bench::{criterion_group, criterion_main};
use sw_dgemm::gen::random_matrix;
use sw_dgemm::timing::estimate;
use sw_dgemm::variants::raw::RawParams;
use sw_dgemm::{BlockingParams, DgemmRunner, Variant};

fn bench_timing_estimates(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6/estimate_9216");
    for v in Variant::ALL {
        group.bench_function(v.name(), |b| {
            b.iter(|| black_box(estimate(v, 9216, 9216, 9216).unwrap()))
        });
    }
    group.finish();
}

fn bench_functional_variants(c: &mut Criterion) {
    let (m, n, k) = (128, 64, 128);
    let a = random_matrix(m, k, 1);
    let bm = random_matrix(k, n, 2);
    let c0 = random_matrix(m, n, 3);
    let mut group = c.benchmark_group("fig6/functional_128x64x128");
    group.sample_size(10);
    for v in Variant::ALL {
        group.bench_function(v.name(), |b| {
            let runner = match v {
                Variant::Raw => DgemmRunner::new(v).raw_params(RawParams::test_small()),
                _ => DgemmRunner::new(v).params(BlockingParams::test_small()),
            };
            b.iter(|| {
                let mut c = c0.clone();
                runner.run(1.0, &a, &bm, 1.0, &mut c).unwrap();
                black_box(c)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_timing_estimates, bench_functional_variants);
criterion_main!(benches);
