//! Bench of the kernel-scheduling ablation: executor
//! throughput on the naive, list-scheduled and hand-scheduled
//! (Algorithm 3) streams, plus generator and scheduler cost.

use std::hint::black_box;
use sw_bench::harness::Criterion;
use sw_bench::{criterion_group, criterion_main};
use sw_isa::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
use sw_isa::sched::list_schedule;
use sw_isa::{Machine, NullComm};

fn cfg() -> BlockKernelCfg {
    BlockKernelCfg {
        pm: 16,
        pn: 32,
        pk: 96,
        a_src: Operand::Ldm,
        b_src: Operand::Ldm,
        a_base: 0,
        b_base: 2048,
        c_base: 6144,
        alpha_addr: 8000,
    }
}

fn bench_kernels(c: &mut Criterion) {
    let cfg = cfg();
    let naive = gen_block_kernel(&cfg, KernelStyle::Naive);
    let hand = gen_block_kernel(&cfg, KernelStyle::Scheduled);
    let auto = list_schedule(&naive);
    let mut group = c.benchmark_group("kernel/execute");
    for (name, prog) in [
        ("naive", &naive),
        ("list_scheduled", &auto),
        ("hand_alg3", &hand),
    ] {
        group.bench_function(name, |b| {
            let mut ldm = vec![0.0f64; 8192];
            ldm[8000] = 1.0;
            let mut comm = NullComm;
            b.iter(|| {
                let mut m = Machine::new(&mut ldm, &mut comm);
                black_box(m.run(black_box(prog)))
            })
        });
    }
    group.finish();

    c.bench_function("kernel/generate_scheduled", |b| {
        b.iter(|| black_box(gen_block_kernel(black_box(&cfg), KernelStyle::Scheduled)))
    });
    c.bench_function("kernel/list_schedule_pass", |b| {
        b.iter(|| black_box(list_schedule(black_box(&naive))))
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
