//! Bench of the Figure 4 artefact: the modelled DMA sweep
//! plus the *functional* DMA engine actually moving a CG block in both
//! modes.

use std::hint::black_box;
use sw_bench::harness::Criterion;
use sw_bench::{criterion_group, criterion_main};
use sw_mem::dma::{BandwidthModel, DmaMode, MatRegion};
use sw_mem::microbench::{fig4_sweep, sustained_bandwidth_gbs, MicrobenchConfig};
use sw_mem::{HostMatrix, Ldm, MainMemory};

fn bench_model_sweep(c: &mut Criterion) {
    let model = BandwidthModel::calibrated();
    c.bench_function("fig4/model_sweep", |b| {
        b.iter(|| black_box(fig4_sweep(black_box(&model))))
    });
    let cfg = MicrobenchConfig::default();
    c.bench_function("fig4/model_point_row_9216", |b| {
        b.iter(|| {
            black_box(sustained_bandwidth_gbs(
                &model,
                DmaMode::Row,
                9216,
                9216,
                &cfg,
            ))
        })
    });
}

fn bench_functional_dma(c: &mut Criterion) {
    let mut mem = MainMemory::new();
    let mat = mem.install(HostMatrix::zeros(128, 768)).unwrap();
    let mut group = c.benchmark_group("fig4/functional");
    group.bench_function("pe_get_thread_block", |b| {
        let mut ldm = Ldm::new();
        let buf = ldm.alloc(16 * 96).unwrap();
        let region = MatRegion::new(mat, 16, 96, 16, 96);
        b.iter(|| sw_mem::dma::pe_get(&mem, black_box(region), &mut ldm, buf).unwrap())
    });
    group.bench_function("row_get_column_slab_share", |b| {
        let mut ldm = Ldm::new();
        let buf = ldm.alloc(128 * 96 / 8).unwrap();
        let region = MatRegion::new(mat, 0, 0, 128, 96);
        b.iter(|| sw_mem::dma::row_get(&mem, black_box(region), 3, &mut ldm, buf).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_model_sweep, bench_functional_dma);
criterion_main!(benches);
