//! A minimal, dependency-free benchmarking harness.
//!
//! The bench targets in `benches/` used to be Criterion benches; this
//! module provides the small slice of that surface they need
//! ([`Criterion`], [`Criterion::benchmark_group`], [`Bencher::iter`],
//! and the [`crate::criterion_group!`]/[`crate::criterion_main!`]
//! macros), implemented with `std::time` only. Measurements are
//! batched adaptively (a batch is sized to run ≥ ~2 ms so timer
//! granularity is negligible) and summarized by the median over up to
//! [`SAMPLES_DEFAULT`] batches.
//!
//! Run with `cargo bench -p sw-bench` — each target prints one line per
//! benchmark: name, median time per iteration, and the sampling shape.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default number of measured batches per benchmark.
pub const SAMPLES_DEFAULT: usize = 20;
/// Target wall time of one measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(2);
/// Cap on the measuring phase of one benchmark.
const BENCH_BUDGET: Duration = Duration::from_millis(600);

/// Per-benchmark measurement summary.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Median nanoseconds per iteration across batches.
    pub median_ns: f64,
    /// Fastest batch's nanoseconds per iteration.
    pub min_ns: f64,
    /// Iterations per batch.
    pub batch: u64,
    /// Batches measured.
    pub samples: usize,
}

impl Summary {
    fn display_time(ns: f64) -> String {
        if ns < 1_000.0 {
            format!("{ns:8.1} ns")
        } else if ns < 1_000_000.0 {
            format!("{:8.2} µs", ns / 1e3)
        } else if ns < 1_000_000_000.0 {
            format!("{:8.2} ms", ns / 1e6)
        } else {
            format!("{:8.3} s ", ns / 1e9)
        }
    }
}

/// Collects timing closures and prints their summaries — the harness's
/// stand-in for `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, Summary)>,
    sample_size: usize,
}

impl Criterion {
    /// Registers and immediately measures one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            summary: None,
            samples: if self.sample_size == 0 {
                SAMPLES_DEFAULT
            } else {
                self.sample_size
            },
        };
        f(&mut b);
        let s = b
            .summary
            .expect("benchmark closure never called Bencher::iter");
        println!(
            "{name:<44} {}  ({} batches × {} iters)",
            Summary::display_time(s.median_ns),
            s.samples,
            s.batch
        );
        self.results.push((name.to_string(), s));
        self
    }

    /// Opens a named group; benchmarks inside are prefixed `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            prefix: name.to_string(),
            sample_size: 0,
        }
    }

    /// All summaries measured so far.
    pub fn results(&self) -> &[(String, Summary)] {
        &self.results
    }
}

/// A named benchmark group (prefix + optional sample-size override).
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    prefix: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Registers and measures `prefix/name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.prefix);
        let saved = self.c.sample_size;
        self.c.sample_size = self.sample_size;
        self.c.bench_function(&full, f);
        self.c.sample_size = saved;
        self
    }

    /// Ends the group (kept for call-site compatibility).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; call [`Bencher::iter`] with the
/// code to measure.
pub struct Bencher {
    summary: Option<Summary>,
    samples: usize,
}

impl Bencher {
    /// Measures `f`, batching adaptively. The closure's return value is
    /// passed through `black_box` so its computation is not elided.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Size a batch: double until one batch takes ≥ BATCH_TARGET.
        let mut batch: u64 = 1;
        let mut per_iter;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let el = t.elapsed();
            per_iter = el.as_secs_f64() * 1e9 / batch as f64;
            if el >= BATCH_TARGET || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        // Measure: up to `samples` batches within the budget.
        let mut per_iter_ns = Vec::with_capacity(self.samples);
        per_iter_ns.push(per_iter);
        let start = Instant::now();
        while per_iter_ns.len() < self.samples.max(2) && start.elapsed() < BENCH_BUDGET {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter_ns.push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        self.summary = Some(Summary {
            median_ns: median,
            min_ns: per_iter_ns[0],
            batch,
            samples: per_iter_ns.len(),
        });
    }
}

/// Groups benchmark functions into a single registration function, like
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($func:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $( $func(c); )+
        }
    };
}

/// Entry point running one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_sane() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            });
        });
        let (name, s) = &c.results()[0];
        assert_eq!(name, "noop_add");
        assert!(s.median_ns > 0.0 && s.median_ns < 1e6, "{}", s.median_ns);
        assert!(s.samples >= 2);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("inner", |b| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(c.results()[0].0, "grp/inner");
        assert!(c.results()[0].1.samples >= 2);
    }
}
