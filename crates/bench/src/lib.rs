//! Benchmark harness regenerating the paper's evaluation artefacts.
//!
//! One binary per figure/table (see `src/bin/`):
//!
//! | Binary            | Paper artefact |
//! |-------------------|----------------|
//! | `fig4`            | Fig. 4 — sustained DMA bandwidth, `PE_MODE` vs `ROW_MODE` |
//! | `fig6`            | Fig. 6 — Gflops of RAW/PE/ROW/DB/SCHED over square sizes (+ `--gains` for the §V percentages) |
//! | `fig7`            | Fig. 7 — performance across matrix shapes |
//! | `block_model`     | §III-C — block-size determination tables |
//! | `kernel_cycles`   | §IV-C — inner-loop cycle count / vmad occupancy profile |
//! | `ablation_blocks` | §IV-B — buffering/blocking ablation |
//!
//! Bench targets (in `benches/`, run via `cargo bench`) measure the
//! *simulator's own* throughput on the same artefacts, using the
//! dependency-free [`harness`]; `engine_bench` (a harness binary)
//! measures the execution engine itself — interpreter instr/s and
//! fig6-sweep wall time, seed engine vs the predecoded/cached one —
//! and writes `BENCH_engine.json`.
//!
//! Output convention: every binary prints a paper-vs-reproduction
//! table to stdout and, with `--csv PATH`, writes machine-readable CSV.

pub mod harness;
pub mod paper;
pub mod report;

pub use report::{csv_arg, write_csv, Table};
