//! Regenerates Figure 4: sustained DMA bandwidth of `PE_MODE` vs
//! `ROW_MODE` over m = k ∈ {1536 … 15360}, with the paper's blocking
//! (bM = 128, bK = 768, pM = 16, pK = 96).
//!
//! ```text
//! cargo run -p sw-bench --release --bin fig4 [-- --csv fig4.csv]
//! ```

use sw_bench::paper::PAPER_FIG4_APPROX;
use sw_bench::{csv_arg, write_csv, Table};
use sw_mem::dma::BandwidthModel;
use sw_mem::microbench::fig4_sweep;

fn main() {
    let model = BandwidthModel::calibrated();
    let pts = fig4_sweep(&model);
    let mut table = Table::new(["m=k", "PE_MODE GB/s", "ROW_MODE GB/s", "ROW/PE"]);
    for p in &pts {
        table.row([
            p.mk.to_string(),
            format!("{:.1}", p.pe_gbs),
            format!("{:.1}", p.row_gbs),
            format!("{:.2}x", p.row_gbs / p.pe_gbs),
        ]);
    }
    println!("Figure 4 — sustained DMA bandwidth (micro-benchmark on the calibrated model)\n");
    println!("{}", table.render());
    println!("paper reference points (read off the plot):");
    for (mk, pe, row) in PAPER_FIG4_APPROX {
        println!("  m=k={mk:>6}: PE ~{pe:.1} GB/s, ROW ~{row:.1} GB/s");
    }
    if let Some(path) = csv_arg() {
        write_csv(&table, &path).expect("write CSV");
        println!("\nCSV written to {}", path.display());
    }
}
