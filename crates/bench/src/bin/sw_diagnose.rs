//! `sw-diagnose` — renders a failure diagnostics bundle as a human
//! incident report.
//!
//! ```text
//! sw-diagnose <bundle.json> [more.json ...]
//! ```
//!
//! Bundles are written automatically by the functional runner when a
//! run dies with a structured error (see `sw_dgemm::diagnostics`),
//! into `$SW_DIAG_DIR` (default `diagnostics/`). Exit status: 0 when
//! every bundle parsed and rendered, 1 on any unreadable or
//! unparsable bundle, 2 on usage errors.

use std::process::ExitCode;
use sw_dgemm::diagnostics::render_bundle_str;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p == "-h" || p == "--help") {
        eprintln!("usage: sw-diagnose <bundle.json> [more.json ...]");
        eprintln!("renders sw-dgemm failure diagnostics bundles as incident reports");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for (i, path) in paths.iter().enumerate() {
        if i > 0 {
            println!();
        }
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sw-diagnose: {path}: {e}");
                failed = true;
                continue;
            }
        };
        match render_bundle_str(&src) {
            Ok(report) => {
                println!("bundle: {path}");
                print!("{report}");
            }
            Err(e) => {
                eprintln!("sw-diagnose: {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
