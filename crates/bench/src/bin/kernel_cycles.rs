//! Regenerates the §IV-C kernel profile: cycle counts and vmad
//! occupancy of the thread-level block multiplication under the three
//! code shapes (naive, auto-scheduled, hand-scheduled Algorithm 3).
//!
//! The paper profiles the whole loop — 8 strip steps of one
//! pM=16 × pN=32 × pK=96 block — at 101,858 cycles with vmad taking
//! 97 % of them.
//!
//! ```text
//! cargo run -p sw-bench --release --bin kernel_cycles
//! ```

use sw_bench::paper::{PAPER_KERNEL_LOOP_CYCLES, PAPER_KERNEL_VMAD_SHARE};
use sw_bench::Table;
use sw_dgemm::timing::measure_kernel;
use sw_isa::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
use sw_isa::sched::list_schedule;
use sw_isa::{Machine, NullComm};

fn main() {
    let (pm, pn, pk) = (16usize, 32usize, 96usize);
    let naive = measure_kernel(pm, pn, pk, KernelStyle::Naive);
    let hand = measure_kernel(pm, pn, pk, KernelStyle::Scheduled);

    // The auto-scheduler (the paper's future-work direction) applied to
    // the naive stream.
    let cfg = BlockKernelCfg {
        pm,
        pn,
        pk,
        a_src: Operand::Ldm,
        b_src: Operand::Ldm,
        a_base: 0,
        b_base: 2048,
        c_base: 6144,
        alpha_addr: 8000,
    };
    let auto_prog = list_schedule(&gen_block_kernel(&cfg, KernelStyle::Naive));
    let mut ldm = vec![0.0; 8192];
    ldm[8000] = 1.0;
    let mut comm = NullComm;
    let auto = Machine::new(&mut ldm, &mut comm).run(&auto_prog);

    let mut t = Table::new([
        "kernel",
        "loop cycles (8 steps)",
        "cycles/k-iter",
        "vmad share",
        "vs hand",
    ]);
    for (name, r) in [
        ("naive", naive),
        ("list-scheduled", auto),
        ("hand (Alg. 3)", hand),
    ] {
        t.row([
            name.to_string(),
            (8 * r.cycles).to_string(),
            format!("{:.2}", r.cycles as f64 / (pn as f64 / 4.0 * pk as f64)),
            format!("{:.1}%", 100.0 * r.vmad_occupancy()),
            format!("{:.2}x", r.cycles as f64 / hand.cycles as f64),
        ]);
    }
    println!("§IV-C — thread-level block kernel on the dual-issue pipeline model");
    println!("(pM=16, pN=32, pK=96; \"loop\" = the 8 strip steps the paper profiles)\n");
    println!("{}", t.render());
    println!(
        "paper: whole loop = {PAPER_KERNEL_LOOP_CYCLES} cycles, vmad share = {:.0}%",
        100.0 * PAPER_KERNEL_VMAD_SHARE
    );
    println!(
        "reproduction (hand): {} cycles, vmad share = {:.1}%",
        8 * hand.cycles,
        100.0 * hand.vmad_occupancy()
    );
}
