//! `tune_bench` — sweep and gate harness for the staged block-size
//! autotuner, writing `BENCH_tune.json`.
//!
//! Sweeps the paper's square shape plus Fig. 7-style skinny shapes,
//! tall-skinny shapes the hand-picked blocking over-rounds, and a
//! small-batch shape. For each, the staged search runs end to end
//! (enumerate → lint → analytic/stall-prover rank → timed top-k with
//! the paper baseline seeded), and three properties gate:
//!
//! 1. **tuned ≥ paper** on every non-paper shape, *strictly* better on
//!    at least one tall-skinny shape (the paper's bN = 256 CG block
//!    rounds n = 96 up 2.7× — a tuner that cannot beat that is not
//!    tuning);
//! 2. **cheap pruning**: on every shape, the analytic + stall-prover
//!    ranking discards ≥ 80% of feasible candidates before any timed
//!    run;
//! 3. **warm cache ≈ free**: resolving a shape already in the tune
//!    cache performs no search (the `tune.searches` counter does not
//!    move) and costs at most 1% of the cold search, and the cache
//!    file round-trips across a fresh instance (a new process).
//!
//! ```text
//! tune-bench [--short] [--assert]
//! ```
//!
//! `--short` runs the CI profile (smaller shapes) and writes
//! `BENCH_tune_short.json`, leaving the committed full-profile numbers
//! untouched. `--assert` makes every gate fatal (exit 1).

use std::time::Instant;
use sw_dgemm::tunecache::TuneCache;
use sw_dgemm::tuner::{resolve_in, search, TunePolicy, TuneRequest};
use sw_dgemm::Variant;
use sw_mem::dma::BandwidthModel;
use sw_probe::metrics;

struct Cli {
    short: bool,
    assert_gate: bool,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        short: false,
        assert_gate: false,
    };
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--short" => cli.short = true,
            "--assert" => cli.assert_gate = true,
            other => {
                eprintln!("unknown flag {other}; usage: tune-bench [--short] [--assert]");
                std::process::exit(2);
            }
        }
    }
    cli
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Paper,
    Fig7,
    TallSkinny,
    Small,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Paper => "paper",
            Kind::Fig7 => "fig7",
            Kind::TallSkinny => "tall_skinny",
            Kind::Small => "small",
        }
    }
}

struct Shape {
    name: &'static str,
    m: usize,
    n: usize,
    k: usize,
    kind: Kind,
}

fn shapes(short: bool) -> Vec<Shape> {
    let s = |name, m, n, k, kind| Shape {
        name,
        m,
        n,
        k,
        kind,
    };
    if short {
        vec![
            s("paper_square", 1536, 1536, 1536, Kind::Paper),
            s("fig7_small_m", 384, 1536, 1536, Kind::Fig7),
            s("tall_skinny_n96", 1536, 96, 1536, Kind::TallSkinny),
            s("small_batch", 768, 384, 768, Kind::Small),
        ]
    } else {
        vec![
            s("paper_square", 9216, 9216, 9216, Kind::Paper),
            s("fig7_small_m", 1536, 9216, 9216, Kind::Fig7),
            s("fig7_small_k", 9216, 9216, 1536, Kind::Fig7),
            s("tall_skinny_n96", 4608, 96, 4608, Kind::TallSkinny),
            s("tall_skinny_n256", 9216, 256, 4608, Kind::TallSkinny),
            s("small_batch", 768, 384, 768, Kind::Small),
        ]
    }
}

struct Row {
    shape: &'static str,
    kind: Kind,
    dims: (usize, usize, usize),
    tuned: sw_dgemm::BlockingParams,
    tuned_gflops: f64,
    paper_gflops: f64,
    ratio: f64,
    enumerated: usize,
    feasible: usize,
    timed: usize,
    pruned_pct: f64,
    search_ms: f64,
}

/// Cache-phase measurements backing gate 3.
struct CacheProbe {
    search_ms: f64,
    hit_us: f64,
    searches_during_hit: u64,
    hit_resolved: bool,
    persisted_across_instances: bool,
    consistent: bool,
}

fn probe_cache(top_k: usize) -> CacheProbe {
    // An isolated cache file so the bench never clobbers a user's
    // tune_cache.json.
    let path = std::env::temp_dir().join(format!("tune_bench_cache_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let (m, n, k) = (256, 128, 256);
    let (t, be) = (Default::default(), Default::default());
    let cache = TuneCache::at(&path);

    let t0 = Instant::now();
    let cold = resolve_in(
        &cache,
        TunePolicy::Search { top_k },
        Variant::Sched,
        m,
        n,
        k,
        t,
        be,
    );
    let search_ms = t0.elapsed().as_secs_f64() * 1e3;

    let searches = metrics::global().counter("tune.searches");
    let before = searches.get();
    let t1 = Instant::now();
    let warm = resolve_in(
        &cache,
        TunePolicy::CacheOnly,
        Variant::Sched,
        m,
        n,
        k,
        t,
        be,
    );
    let hit_us = t1.elapsed().as_secs_f64() * 1e6;
    let searches_during_hit = searches.get() - before;

    // A fresh instance over the same file models the next process.
    let reloaded = TuneCache::at(&path);
    let across = resolve_in(
        &reloaded,
        TunePolicy::CacheOnly,
        Variant::Sched,
        m,
        n,
        k,
        t,
        be,
    );
    let _ = std::fs::remove_file(&path);
    CacheProbe {
        search_ms,
        hit_us,
        searches_during_hit,
        hit_resolved: warm.is_some(),
        persisted_across_instances: across.is_some() && across == cold,
        consistent: warm == cold && cold.is_some(),
    }
}

fn main() {
    let cli = parse_cli();
    let label = if cli.short { "short" } else { "full" };
    let top_k = if cli.short { 6 } else { 8 };
    println!("== tune_bench ({label}): staged autotuner sweep, top_k = {top_k} ==");
    let bw = BandwidthModel::calibrated();
    let mut gate_misses: Vec<String> = Vec::new();
    let mut rows: Vec<Row> = Vec::new();

    for sh in shapes(cli.short) {
        let req = TuneRequest {
            top_k,
            ..TuneRequest::shaped(Variant::Sched, sh.m, sh.n, sh.k)
        };
        let t0 = Instant::now();
        let outcome = match search(&req, &bw) {
            Ok(o) => o,
            Err(e) => {
                gate_misses.push(format!("{}: search failed: {e}", sh.name));
                continue;
            }
        };
        let search_ms = t0.elapsed().as_secs_f64() * 1e3;
        let best = *outcome.best();
        let paper = outcome
            .timed_for(&Variant::Sched.paper_params())
            .copied()
            .unwrap_or_else(|| {
                gate_misses.push(format!("{}: paper baseline was not timed", sh.name));
                best
            });
        let ratio = best.gflops / paper.gflops;
        let s = outcome.stats;
        println!(
            "{:<16} {:>5}x{:<5}x{:<5} tuned (pM={},pN={},pK={}) {:>6.1} Gflops eff \
             vs paper {:>6.1} ({:.3}x); {} enumerated -> {} feasible -> {} timed \
             ({:.1}% pruned, {:.0} ms)",
            sh.name,
            sh.m,
            sh.n,
            sh.k,
            best.params.pm,
            best.params.pn,
            best.params.pk,
            best.gflops,
            paper.gflops,
            ratio,
            s.enumerated,
            s.feasible,
            s.timed,
            s.pruned_pct(),
            search_ms
        );
        // Gate 1: tuned never loses to the hand-picked blocking off
        // the paper's own shape.
        if sh.kind != Kind::Paper && best.gflops < paper.gflops {
            gate_misses.push(format!(
                "{}: tuned {:.1} Gflops lost to the paper blocking's {:.1}",
                sh.name, best.gflops, paper.gflops
            ));
        }
        // Gate 2 (per shape): the cheap stages, not the timed stage,
        // must do the pruning.
        if s.pruned_pct() < 80.0 {
            gate_misses.push(format!(
                "{}: only {:.1}% of feasible candidates pruned before timing",
                sh.name,
                s.pruned_pct()
            ));
        }
        rows.push(Row {
            shape: sh.name,
            kind: sh.kind,
            dims: (sh.m, sh.n, sh.k),
            tuned: best.params,
            tuned_gflops: best.gflops,
            paper_gflops: paper.gflops,
            ratio,
            enumerated: s.enumerated,
            feasible: s.feasible,
            timed: s.timed,
            pruned_pct: s.pruned_pct(),
            search_ms,
        });
    }

    // Gate 1b: strictly better somewhere tall-skinny.
    let strict = rows
        .iter()
        .filter(|r| r.kind == Kind::TallSkinny)
        .max_by(|a, b| a.ratio.total_cmp(&b.ratio));
    match strict {
        Some(r) if r.ratio > 1.02 => {
            println!(
                "strict   : {} beats the paper blocking {:.2}x on a tall-skinny shape",
                r.shape, r.ratio
            );
        }
        Some(r) => gate_misses.push(format!(
            "no strict tall-skinny win: best ratio {:.3} ({})",
            r.ratio, r.shape
        )),
        None => gate_misses.push("sweep has no tall-skinny shape".into()),
    }

    // Gate 3: warm cache hits are free.
    let cache = probe_cache(top_k.min(4));
    println!(
        "cache    : cold search {:.1} ms; warm hit {:.1} us ({} searches during hit); \
         round-trips across instances: {}",
        cache.search_ms, cache.hit_us, cache.searches_during_hit, cache.persisted_across_instances
    );
    if !cache.hit_resolved || !cache.consistent {
        gate_misses.push("warm cache hit failed to resolve the cold search's winner".into());
    }
    if cache.searches_during_hit != 0 {
        gate_misses.push(format!(
            "warm cache hit ran {} search(es); hits must be search-free",
            cache.searches_during_hit
        ));
    }
    let hit_budget_us = (cache.search_ms * 1e3 / 100.0).max(1000.0);
    if cache.hit_us > hit_budget_us {
        gate_misses.push(format!(
            "warm cache hit cost {:.0} us, over the {:.0} us budget (1% of search, floor 1 ms)",
            cache.hit_us, hit_budget_us
        ));
    }
    if !cache.persisted_across_instances {
        gate_misses.push("tune cache did not round-trip across instances".into());
    }

    let prune_min = rows
        .iter()
        .map(|r| r.pruned_pct)
        .fold(f64::INFINITY, f64::min);
    let pass = gate_misses.is_empty();
    println!();
    if pass {
        println!("gates: PASS (tuned >= paper off-shape, strict tall-skinny win, >=80% pruned, free warm hits)");
    } else {
        for miss in &gate_misses {
            eprintln!("GATE MISS: {miss}");
        }
    }

    let path = if cli.short {
        "BENCH_tune_short.json"
    } else {
        "BENCH_tune.json"
    };
    let shape_rows = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"shape\": \"{}\", \"kind\": \"{}\", \"m\": {}, \"n\": {}, \"k\": {}, \
                 \"tuned_pm\": {}, \"tuned_pn\": {}, \"tuned_pk\": {}, \
                 \"tuned_gflops\": {:.2}, \"paper_gflops\": {:.2}, \"ratio\": {:.4}, \
                 \"enumerated\": {}, \"feasible\": {}, \"timed\": {}, \
                 \"pruned_pct\": {:.1}, \"search_ms\": {:.1}}}",
                r.shape,
                r.kind.name(),
                r.dims.0,
                r.dims.1,
                r.dims.2,
                r.tuned.pm,
                r.tuned.pn,
                r.tuned.pk,
                r.tuned_gflops,
                r.paper_gflops,
                r.ratio,
                r.enumerated,
                r.feasible,
                r.timed,
                r.pruned_pct,
                r.search_ms
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": 1,\n",
            "  \"profile\": \"{}\",\n",
            "  \"variant\": \"SCHED\",\n",
            "  \"top_k\": {},\n",
            "  \"shapes\": [\n{}\n  ],\n",
            "  \"prune_min_pct\": {:.1},\n",
            "  \"strict_tall_skinny_ratio\": {:.4},\n",
            "  \"cache_search_ms\": {:.2},\n",
            "  \"cache_hit_us\": {:.1},\n",
            "  \"cache_hit_searches\": {},\n",
            "  \"pass\": {}\n",
            "}}\n"
        ),
        label,
        top_k,
        shape_rows,
        prune_min,
        strict.map_or(0.0, |r| r.ratio),
        cache.search_ms,
        cache.hit_us,
        cache.searches_during_hit,
        pass
    );
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
    println!("wrote {path}");

    if !pass && cli.assert_gate {
        std::process::exit(1);
    }
    if !pass {
        eprintln!("(advisory run: rerun with --assert to make the gates fatal)");
    }
}
