//! Flight-recorder overhead benchmark: pins the cost of the always-on
//! black box (`sw_probe::flight::FlightRecorder`) on the fig6-size
//! functional run, and writes `BENCH_flight.json`.
//!
//! The recorder is *enabled by default* — every functional run pays
//! for it — so its cost is gated like a correctness property: the same
//! `SCHED` run at the paper's production blocking (default 1536³,
//! `--size` to override) is timed with the recorder on and off,
//! interleaved round by round so drift hits both arms equally. The
//! per-round overhead is the on/off wall-time ratio; the reported
//! number is the median across rounds, and the gate (fatal under
//! `--assert`) requires
//!
//! ```text
//! overhead_pct <= TOLERANCE (2%) + noise_pct
//! ```
//!
//! where `noise_pct` is half the spread of the per-round ratios around
//! their median — a run whose noise swamps 2% cannot honestly pass or
//! fail, so the band widens by exactly what the machine showed. The
//! off arm still pays for clock/busy accounting (`advance` is the time
//! base, not a probe); what is gated is the marginal cost of event
//! recording, which is the only part `set_enabled(false)` turns off.

use std::time::{Duration, Instant};
use sw_dgemm::gen::random_matrix;
use sw_dgemm::{DgemmRunner, Matrix, Variant};
use sw_sim::CoreGroup;

/// Default functional size: the smallest Fig. 6 point.
const FIG6_SIZE: usize = 1536;

/// Interleaved on/off measurement rounds.
const DEFAULT_ROUNDS: usize = 5;

/// Probe-overhead budget on top of the measured noise floor.
const TOLERANCE_PCT: f64 = 2.0;

struct Cli {
    size: usize,
    rounds: usize,
    assert_gate: bool,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        size: FIG6_SIZE,
        rounds: DEFAULT_ROUNDS,
        assert_gate: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--size" => {
                cli.size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--size needs an integer");
            }
            "--rounds" => {
                cli.rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds needs an integer");
            }
            "--assert" => cli.assert_gate = true,
            other => {
                eprintln!(
                    "unknown flag {other}; usage: flight_bench [--size N] [--rounds N] [--assert]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(cli.rounds >= 3, "need >= 3 rounds for a median and spread");
    cli
}

fn run_once(cg: &mut CoreGroup, a: &Matrix, b: &Matrix, c0: &Matrix) -> Duration {
    let mut c = c0.clone();
    let t = Instant::now();
    DgemmRunner::new(Variant::Sched)
        .run_on(cg, 1.5, a, b, 0.5, &mut c)
        .expect("fig6-size run failed");
    let dt = t.elapsed();
    std::hint::black_box(c);
    dt
}

fn main() {
    let cli = parse_cli();
    let n = cli.size;
    println!(
        "== flight-recorder overhead: SCHED {n}x{n}x{n}, {} interleaved rounds ==",
        cli.rounds
    );
    let a = random_matrix(n, n, 71);
    let b = random_matrix(n, n, 72);
    let c0 = random_matrix(n, n, 73);
    let mut cg = CoreGroup::new();

    // Warmup: pools, allocator, kernel caches — unmeasured.
    run_once(&mut cg, &a, &b, &c0);

    let mut ratios: Vec<f64> = Vec::with_capacity(cli.rounds);
    let mut best_on = Duration::MAX;
    let mut best_off = Duration::MAX;
    for round in 0..cli.rounds {
        cg.flight().set_enabled(true);
        let t_on = run_once(&mut cg, &a, &b, &c0);
        cg.flight().set_enabled(false);
        let t_off = run_once(&mut cg, &a, &b, &c0);
        cg.flight().set_enabled(true);
        best_on = best_on.min(t_on);
        best_off = best_off.min(t_off);
        let r = t_on.as_secs_f64() / t_off.as_secs_f64();
        println!(
            "round {round}: on {:>8.1} ms   off {:>8.1} ms   ratio {r:.3}",
            t_on.as_secs_f64() * 1e3,
            t_off.as_secs_f64() * 1e3
        );
        ratios.push(r);
    }
    ratios.sort_by(f64::total_cmp);
    let median = ratios[ratios.len() / 2];
    let overhead_pct = (median - 1.0) * 100.0;
    let noise_pct = 100.0 * (ratios[ratios.len() - 1] - ratios[0]) / 2.0;
    let allowed = TOLERANCE_PCT + noise_pct;
    println!();
    println!(
        "recorder on  (best): {:>8.1} ms",
        best_on.as_secs_f64() * 1e3
    );
    println!(
        "recorder off (best): {:>8.1} ms",
        best_off.as_secs_f64() * 1e3
    );
    println!(
        "overhead: {overhead_pct:+.2}% (median ratio {median:.3}); noise floor {noise_pct:.2}%; \
         allowed {allowed:.2}%"
    );

    let pass = overhead_pct <= allowed;
    if pass {
        println!("gate: PASS (always-on recording costs <= {TOLERANCE_PCT}% + noise)");
    } else {
        eprintln!(
            "GATE MISS: flight-recorder overhead {overhead_pct:+.2}% exceeds \
             {TOLERANCE_PCT}% + {noise_pct:.2}% noise"
        );
        if cli.assert_gate {
            std::process::exit(1);
        }
        eprintln!("(advisory run: rerun with --assert to make the gate fatal)");
    }

    if cli.size != FIG6_SIZE || cli.rounds != DEFAULT_ROUNDS {
        println!("\npartial run (--size/--rounds): BENCH_flight.json left untouched");
        return;
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"size\": {},\n",
            "  \"rounds\": {},\n",
            "  \"on_best_ms\": {:.2},\n",
            "  \"off_best_ms\": {:.2},\n",
            "  \"overhead_pct\": {:.2},\n",
            "  \"noise_pct\": {:.2},\n",
            "  \"tolerance_pct\": {:.1},\n",
            "  \"pass\": {}\n",
            "}}\n"
        ),
        n,
        cli.rounds,
        best_on.as_secs_f64() * 1e3,
        best_off.as_secs_f64() * 1e3,
        overhead_pct,
        noise_pct,
        TOLERANCE_PCT,
        pass
    );
    std::fs::write("BENCH_flight.json", &json).expect("failed to write BENCH_flight.json");
    println!("\nwrote BENCH_flight.json");
}
