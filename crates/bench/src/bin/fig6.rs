//! Regenerates Figure 6: sustained Gflops of the five DGEMM variants
//! over square sizes m = n = k ∈ {1536 … 15360}, and (with `--gains`)
//! the §V relative-improvement percentages.
//!
//! ```text
//! cargo run -p sw-bench --release --bin fig6 [-- --gains] [--csv fig6.csv]
//! ```

use sw_bench::paper::{PAPER_FIG6_SCHED, PAPER_GAINS, PAPER_PEAK_GFLOPS};
use sw_bench::{csv_arg, write_csv, Table};
use sw_dgemm::timing::estimate;
use sw_dgemm::Variant;

fn main() {
    let sizes: Vec<usize> = (1..=10).map(|i| 1536 * i).collect();
    let mut table = Table::new(["m=n=k", "RAW", "PE", "ROW", "DB", "SCHED", "paper SCHED"]);
    let mut at_9216 = [0.0f64; 5];
    let mut sched_max: f64 = 0.0;
    for &mk in &sizes {
        let mut cells = vec![mk.to_string()];
        for (vi, v) in Variant::ALL.iter().enumerate() {
            let g = estimate(*v, mk, mk, mk).expect("estimate").gflops;
            if mk == 9216 {
                at_9216[vi] = g;
            }
            if *v == Variant::Sched {
                sched_max = sched_max.max(g);
            }
            cells.push(format!("{g:.1}"));
        }
        let paper = PAPER_FIG6_SCHED
            .iter()
            .find(|(s, _)| *s == mk)
            .map(|(_, g)| *g)
            .unwrap();
        cells.push(format!("{paper:.1}"));
        table.row(cells);
    }
    println!("Figure 6 — five-variant performance ladder (timing simulation, Gflops/s)\n");
    println!("{}", table.render());
    println!(
        "max SCHED: {sched_max:.1} Gflops/s = {:.1}% of peak (paper: {PAPER_PEAK_GFLOPS} = 95%)",
        100.0 * sched_max / 742.4
    );

    if std::env::args().any(|a| a == "--gains") {
        println!("\n§V relative gains at m=n=k=9216 (each variant over its predecessor):");
        let names = ["PE/RAW", "ROW/PE", "DB/ROW", "SCHED/DB"];
        for (i, name) in names.iter().enumerate() {
            let ours = at_9216[i + 1] / at_9216[i];
            let paper = PAPER_GAINS[i].1;
            println!("  {name:<9} reproduction {ours:5.3}x   paper {paper:5.3}x");
        }
    }
    if let Some(path) = csv_arg() {
        write_csv(&table, &path).expect("write CSV");
        println!("\nCSV written to {}", path.display());
    }

    println!("\n== metrics snapshot ==\n");
    print!("{}", sw_probe::metrics::global().snapshot().render());
}
