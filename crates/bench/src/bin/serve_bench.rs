//! `serve_bench` — load generator and chaos gate for the `sw-serve`
//! DGEMM service, writing `BENCH_serve.json`.
//!
//! Four phases, each gating one of the service's promises:
//!
//! 1. **Overhead** — the same GEMM timed through a direct
//!    [`DgemmRunner::run_on`] and through a 1-tenant/1-worker/1-group
//!    service, in interleaved rounds. The service is policy, not
//!    numerics: its median wall-time overhead must stay within
//!    `OVERHEAD_TOL_PCT` plus the measured noise floor.
//! 2. **Mixed load** — two tenants (a weighted interactive tenant with
//!    high priority and deadlines, a batch tenant without) burst
//!    requests at a 2-worker/2-group service with small queue caps.
//!    Reported: p50/p99 latency, goodput, shed rate. Every completion
//!    is checked bitwise against the host reference; the p99 is pinned
//!    in `BENCH_serve.json` (initialized with 50% headroom on the
//!    first full run, a ceiling afterwards).
//! 3. **Chaos** — one in eight requests carries a fault plan:
//!    alternately a DMA bit-flip/transient storm on every attempt
//!    (ABFT `Correct` must heal it in place) and a first-attempt-only
//!    mesh wedge (the retry on a different core group must complete
//!    it). The gate is absolute: zero bitwise-incorrect results, every
//!    wedge request healed by retry, every outcome structured.
//! 4. **Quarantine** — a single-group service with threshold 2 takes
//!    two wedge failures; the group is quarantined, probed, and
//!    readmitted, and the time until the next clean request completes
//!    is the reported recovery time (liveness gate).
//!
//! ```text
//! serve_bench [--short] [--assert]
//! ```
//!
//! `--short` runs the CI profile (smaller shape and counts) and writes
//! `BENCH_serve_short.json`, leaving the committed full-profile pin
//! untouched. `--assert` makes every gate fatal (exit 1).

use std::sync::Arc;
use std::time::{Duration, Instant};
use sw_dgemm::gen::random_matrix;
use sw_dgemm::{
    reference, AbftPolicy, BlockingParams, DgemmRunner, FaultSpec, Matrix, Variant, WedgeSpec,
};
use sw_serve::{
    BackoffPolicy, FaultPlan, GemmRequest, Priority, ServeConfig, ServeOutcome, Service, TenantCfg,
};
use sw_sim::CoreGroup;

/// Service overhead budget on top of the measured noise floor.
const OVERHEAD_TOL_PCT: f64 = 5.0;

/// Headroom multiplier when initializing the p99 pin on a first run.
const P99_PIN_HEADROOM: f64 = 1.5;

const ALPHA: f64 = 1.5;
const BETA: f64 = 0.5;

struct Cli {
    short: bool,
    assert_gate: bool,
}

struct Profile {
    /// GEMM shape (m, n, k); multiples of the `test_small` CG block.
    m: usize,
    n: usize,
    k: usize,
    /// Interleaved rounds in the overhead phase.
    overhead_rounds: usize,
    /// Requests in the mixed-load phase.
    mixed_total: usize,
    /// Requests in the chaos phase (one in eight faulted).
    chaos_total: usize,
    /// Requests per offered-load level in the load-curve phase.
    load_requests: usize,
}

impl Profile {
    fn full() -> Self {
        Profile {
            m: 256,
            n: 128,
            k: 256,
            overhead_rounds: 9,
            mixed_total: 48,
            chaos_total: 32,
            load_requests: 16,
        }
    }

    fn short() -> Self {
        Profile {
            m: 128,
            n: 64,
            k: 128,
            overhead_rounds: 5,
            mixed_total: 16,
            chaos_total: 16,
            load_requests: 8,
        }
    }
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        short: false,
        assert_gate: false,
    };
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--short" => cli.short = true,
            "--assert" => cli.assert_gate = true,
            other => {
                eprintln!("unknown flag {other}; usage: serve_bench [--short] [--assert]");
                std::process::exit(2);
            }
        }
    }
    cli
}

/// One operand set plus its host-reference result (the bitwise oracle
/// for every completion that used it).
struct Problem {
    a: Arc<Matrix>,
    b: Arc<Matrix>,
    c0: Arc<Matrix>,
    expect: Matrix,
}

fn problems(p: &Profile, count: usize) -> Vec<Problem> {
    let pk = BlockingParams::test_small().pk;
    (0..count)
        .map(|i| {
            let seed = 1000 + 10 * i as u64;
            let a = random_matrix(p.m, p.k, seed);
            let b = random_matrix(p.k, p.n, seed + 1);
            let c0 = random_matrix(p.m, p.n, seed + 2);
            let mut expect = c0.clone();
            reference::dgemm_chunked_fma(ALPHA, &a, &b, BETA, &mut expect, pk);
            Problem {
                a: Arc::new(a),
                b: Arc::new(b),
                c0: Arc::new(c0),
                expect,
            }
        })
        .collect()
}

fn request(tenant: usize, prob: &Problem) -> GemmRequest {
    GemmRequest {
        alpha: ALPHA,
        beta: BETA,
        params: Some(BlockingParams::test_small()),
        ..GemmRequest::new(tenant, prob.a.clone(), prob.b.clone(), prob.c0.clone())
    }
}

fn wedge() -> FaultSpec {
    FaultSpec {
        wedge: Some(WedgeSpec { cpe: 18, epoch: 0 }),
        ..FaultSpec::seeded(0)
    }
}

/// The ABFT-healable chaos storm: guaranteed DMA bit-flips plus
/// transient DMA failures, drawn fresh per attempt.
fn storm(seed: u64) -> FaultSpec {
    FaultSpec {
        dma_transient_per_myriad: 200,
        bitflip_every_epoch: true,
        ..FaultSpec::seeded(seed)
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx]
}

/// Phase 1: median service overhead vs a direct runner, interleaved.
struct Overhead {
    direct_ms: f64,
    served_ms: f64,
    overhead_pct: f64,
    noise_pct: f64,
}

fn phase_overhead(p: &Profile, prob: &Problem) -> Overhead {
    let svc = Service::start(ServeConfig {
        tenants: vec![TenantCfg::new("bench")],
        workers: 1,
        core_groups: 1,
        ..ServeConfig::default()
    });
    let mut cg = CoreGroup::new();
    let direct = |cg: &mut CoreGroup| {
        let mut c = (*prob.c0).clone();
        let t = Instant::now();
        DgemmRunner::new(Variant::Sched)
            .params(BlockingParams::test_small())
            .run_on(cg, ALPHA, &prob.a, &prob.b, BETA, &mut c)
            .expect("direct run");
        let dt = t.elapsed();
        std::hint::black_box(c);
        dt
    };
    let served = |svc: &Service| {
        let t = Instant::now();
        let outcome = svc.submit(request(0, prob)).expect("admitted").wait();
        let dt = t.elapsed();
        assert!(
            matches!(outcome, ServeOutcome::Completed { .. }),
            "overhead-arm request failed: {outcome:?}"
        );
        dt
    };
    // Warmup both arms (pools, allocator, worker spin-up) — unmeasured.
    direct(&mut cg);
    served(&svc);
    let mut ratios = Vec::with_capacity(p.overhead_rounds);
    let mut direct_best = Duration::MAX;
    let mut served_best = Duration::MAX;
    for _ in 0..p.overhead_rounds {
        let d = direct(&mut cg);
        let s = served(&svc);
        direct_best = direct_best.min(d);
        served_best = served_best.min(s);
        ratios.push(s.as_secs_f64() / d.as_secs_f64());
    }
    svc.shutdown();
    ratios.sort_by(f64::total_cmp);
    let median = ratios[ratios.len() / 2];
    Overhead {
        direct_ms: direct_best.as_secs_f64() * 1e3,
        served_ms: served_best.as_secs_f64() * 1e3,
        overhead_pct: (median - 1.0) * 100.0,
        noise_pct: 100.0 * (ratios[ratios.len() - 1] - ratios[0]) / 2.0,
    }
}

/// Aggregate outcome accounting shared by the load phases.
#[derive(Default)]
struct Tally {
    completed: usize,
    rejected: usize,
    failed: usize,
    cancelled: usize,
    incorrect: usize,
    retried_completions: usize,
    latencies_ms: Vec<f64>,
}

impl Tally {
    fn absorb(&mut self, outcome: ServeOutcome, expect: &Matrix) {
        match outcome {
            ServeOutcome::Completed {
                c,
                attempts,
                latency,
            } => {
                self.completed += 1;
                if attempts > 1 {
                    self.retried_completions += 1;
                }
                self.latencies_ms.push(latency.as_secs_f64() * 1e3);
                if c != *expect {
                    self.incorrect += 1;
                }
            }
            ServeOutcome::Failed { .. } => self.failed += 1,
            ServeOutcome::Cancelled { .. } => self.cancelled += 1,
        }
    }

    fn accounted(&self) -> usize {
        self.completed + self.rejected + self.failed + self.cancelled
    }
}

/// Phase 2: two-tenant mixed load with priorities and deadlines.
fn phase_mixed(p: &Profile, probs: &[Problem]) -> Tally {
    let svc = Service::start(ServeConfig {
        tenants: vec![
            TenantCfg {
                name: "interactive".into(),
                weight: 3,
                queue_cap: 8,
            },
            TenantCfg {
                name: "batch".into(),
                weight: 1,
                queue_cap: 8,
            },
        ],
        workers: 2,
        core_groups: 2,
        ..ServeConfig::default()
    });
    let mut tally = Tally::default();
    let mut pending = Vec::new();
    for i in 0..p.mixed_total {
        let tenant = i % 2;
        let prob = &probs[i % probs.len()];
        let mut req = request(tenant, prob);
        if tenant == 0 {
            req.priority = Priority::High;
            // Generous vs the per-request cost: exercises the deadline
            // machinery without making p99 a coin flip.
            req.deadline = Some(Duration::from_secs(30));
        }
        match svc.submit(req) {
            Ok(ticket) => pending.push((ticket, i % probs.len())),
            Err(_) => tally.rejected += 1,
        }
        // Paced burst: faster than 2 workers drain, slow enough that
        // shedding stays a tail event rather than the common case.
        std::thread::sleep(Duration::from_micros(500));
    }
    for (ticket, prob_idx) in pending {
        tally.absorb(ticket.wait(), &probs[prob_idx].expect);
    }
    svc.shutdown();
    tally
}

/// Phase 3: chaos — one in eight requests carries a fault plan.
struct Chaos {
    tally: Tally,
    faulted: usize,
    wedge_requests: usize,
    wedge_healed: usize,
}

fn phase_chaos(p: &Profile, probs: &[Problem]) -> Chaos {
    let svc = Service::start(ServeConfig {
        tenants: vec![TenantCfg::new("chaos")],
        workers: 2,
        core_groups: 2,
        backoff: BackoffPolicy {
            max_attempts: 3,
            ..BackoffPolicy::default()
        },
        mesh_timeout: Duration::from_millis(60),
        ..ServeConfig::default()
    });
    let mut chaos = Chaos {
        tally: Tally::default(),
        faulted: 0,
        wedge_requests: 0,
        wedge_healed: 0,
    };
    let mut pending = Vec::new();
    for i in 0..p.chaos_total {
        let prob_idx = i % probs.len();
        let mut req = request(0, &probs[prob_idx]);
        let mut is_wedge = false;
        if i % 8 == 0 {
            chaos.faulted += 1;
            if (i / 8) % 2 == 0 {
                // Storm on every attempt: only in-run ABFT correction
                // can complete this request.
                req.faults = Some(FaultPlan::EveryAttempt(storm(i as u64)));
                req.abft = AbftPolicy::Correct;
            } else {
                // Transiently sick group: the retry must rotate and
                // complete cleanly.
                req.faults = Some(FaultPlan::FirstAttemptOnly(wedge()));
                is_wedge = true;
                chaos.wedge_requests += 1;
            }
        }
        match svc.submit(req) {
            Ok(ticket) => pending.push((ticket, prob_idx, is_wedge)),
            Err(_) => chaos.tally.rejected += 1,
        }
    }
    for (ticket, prob_idx, is_wedge) in pending {
        let outcome = ticket.wait();
        if is_wedge {
            if let ServeOutcome::Completed { attempts, .. } = &outcome {
                if *attempts > 1 {
                    chaos.wedge_healed += 1;
                }
            }
        }
        chaos.tally.absorb(outcome, &probs[prob_idx].expect);
    }
    svc.shutdown();
    chaos
}

/// Phase 4: quarantine → probe → readmission recovery time.
struct Recovery {
    recovery_ms: f64,
    recovered: bool,
}

fn phase_quarantine(probs: &[Problem]) -> Recovery {
    let svc = Service::start(ServeConfig {
        tenants: vec![TenantCfg::new("victim")],
        workers: 1,
        core_groups: 1,
        backoff: BackoffPolicy {
            max_attempts: 1,
            ..BackoffPolicy::default()
        },
        quarantine_threshold: 2,
        mesh_timeout: Duration::from_millis(60),
        ..ServeConfig::default()
    });
    for _ in 0..2 {
        let mut req = request(0, &probs[0]);
        req.faults = Some(FaultPlan::EveryAttempt(wedge()));
        let outcome = svc.submit(req).expect("admitted").wait();
        assert!(
            matches!(outcome, ServeOutcome::Failed { .. }),
            "wedge request must fail, got {outcome:?}"
        );
    }
    // The pool's only group is now quarantined; the next clean request
    // can only complete once the healer probes and readmits it.
    let t = Instant::now();
    let outcome = svc.submit(request(0, &probs[0])).expect("admitted").wait();
    let recovery_ms = t.elapsed().as_secs_f64() * 1e3;
    let recovered = match outcome {
        ServeOutcome::Completed { c, .. } => c == probs[0].expect,
        _ => false,
    };
    svc.shutdown();
    Recovery {
        recovery_ms,
        recovered,
    }
}

/// One point on the Gflops-utilization-vs-offered-load curve.
struct LoadPoint {
    /// Offered rate as a percentage of the pool's measured capacity
    /// (`workers / direct_ms`); the last level is an unpaced burst.
    offered_pct: f64,
    offered_rps: f64,
    completed_rps: f64,
    /// Simulated-work throughput actually delivered.
    gflops: f64,
    /// Delivered throughput over pool capacity.
    utilization_pct: f64,
    shed_pct: f64,
    p99_ms: f64,
}

/// Phase 5 (data only, no gate — ROADMAP item 1's leftover curve):
/// paced open-loop load at increasing offered rates against a
/// 2-worker/2-group service. Capacity is the measured direct
/// per-request cost from phase 1, so the curve is machine-relative:
/// utilization climbs with offered load until the workers saturate,
/// then shedding takes over.
fn phase_load_curve(p: &Profile, probs: &[Problem], direct_ms: f64) -> Vec<LoadPoint> {
    let workers = 2usize;
    let flops_per_req = 2.0 * p.m as f64 * p.n as f64 * p.k as f64;
    let capacity_rps = workers as f64 / (direct_ms / 1e3);
    // Pacing gaps as fractions of service capacity: 50%, 100%, 200%,
    // 400% offered, then an unpaced burst.
    let levels: [Option<f64>; 5] = [Some(0.5), Some(1.0), Some(2.0), Some(4.0), None];
    let mut curve = Vec::with_capacity(levels.len());
    for load in levels {
        let svc = Service::start(ServeConfig {
            tenants: vec![TenantCfg {
                name: "load".into(),
                weight: 1,
                queue_cap: 8,
            }],
            workers,
            core_groups: workers,
            ..ServeConfig::default()
        });
        let gap = load.map(|f| Duration::from_secs_f64(1.0 / (capacity_rps * f)));
        let mut tally = Tally::default();
        let mut pending = Vec::new();
        let t0 = Instant::now();
        for i in 0..p.load_requests {
            let prob_idx = i % probs.len();
            match svc.submit(request(0, &probs[prob_idx])) {
                Ok(ticket) => pending.push((ticket, prob_idx)),
                Err(_) => tally.rejected += 1,
            }
            if let Some(gap) = gap {
                std::thread::sleep(gap);
            }
        }
        let submit_window = t0.elapsed().as_secs_f64().max(1e-9);
        for (ticket, prob_idx) in pending {
            tally.absorb(ticket.wait(), &probs[prob_idx].expect);
        }
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        svc.shutdown();
        let offered_rps = p.load_requests as f64 / submit_window;
        let completed_rps = tally.completed as f64 / wall;
        let mut sorted = tally.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        curve.push(LoadPoint {
            offered_pct: 100.0 * offered_rps / capacity_rps,
            offered_rps,
            completed_rps,
            gflops: completed_rps * flops_per_req / 1e9,
            utilization_pct: 100.0 * completed_rps / capacity_rps,
            shed_pct: 100.0 * tally.rejected as f64 / p.load_requests as f64,
            p99_ms: percentile(&sorted, 0.99),
        });
    }
    curve
}

fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let cli = parse_cli();
    let profile = if cli.short {
        Profile::short()
    } else {
        Profile::full()
    };
    let label = if cli.short { "short" } else { "full" };
    println!(
        "== serve_bench ({label}): {}x{}x{} GEMMs ==",
        profile.m, profile.n, profile.k
    );
    let probs = problems(&profile, 4);
    let mut gate_misses: Vec<String> = Vec::new();

    // Phase 1: overhead.
    let ov = phase_overhead(&profile, &probs[0]);
    let allowed = OVERHEAD_TOL_PCT + ov.noise_pct;
    println!(
        "overhead : direct {:.2} ms, served {:.2} ms, {:+.2}% (noise {:.2}%, allowed {:.2}%)",
        ov.direct_ms, ov.served_ms, ov.overhead_pct, ov.noise_pct, allowed
    );
    if ov.overhead_pct > allowed {
        gate_misses.push(format!(
            "service overhead {:+.2}% exceeds {OVERHEAD_TOL_PCT}% + {:.2}% noise",
            ov.overhead_pct, ov.noise_pct
        ));
    }

    // Phase 2: mixed load.
    let mixed = phase_mixed(&profile, &probs);
    let mut sorted = mixed.latencies_ms.clone();
    sorted.sort_by(f64::total_cmp);
    let p50 = percentile(&sorted, 0.50);
    let p99 = percentile(&sorted, 0.99);
    let goodput_pct = 100.0 * mixed.completed as f64 / profile.mixed_total as f64;
    let shed_pct = 100.0 * mixed.rejected as f64 / profile.mixed_total as f64;
    println!(
        "mixed    : {} requests -> {} completed ({} after retry), {} shed, {} failed, \
         {} cancelled; p50 {:.2} ms, p99 {:.2} ms, goodput {:.1}%, shed {:.1}%",
        profile.mixed_total,
        mixed.completed,
        mixed.retried_completions,
        mixed.rejected,
        mixed.failed,
        mixed.cancelled,
        p50,
        p99,
        goodput_pct,
        shed_pct
    );
    if mixed.incorrect > 0 {
        gate_misses.push(format!(
            "{} mixed-load completion(s) were not bitwise the reference",
            mixed.incorrect
        ));
    }
    if mixed.accounted() != profile.mixed_total {
        gate_misses.push(format!(
            "mixed-load accounting leak: {} of {} requests resolved",
            mixed.accounted(),
            profile.mixed_total
        ));
    }

    // The p99 pin (full profile only — the short profile runs a
    // different shape, so its tail is not comparable).
    let baseline = std::fs::read_to_string("BENCH_serve.json").ok();
    let pinned = |key: &str| baseline.as_ref().and_then(|t| json_number(t, key));
    let p99_ceiling = if cli.short {
        None
    } else {
        match pinned("p99_ms_ceiling") {
            Some(ceiling) => {
                if p99 > ceiling {
                    gate_misses.push(format!(
                        "mixed-load p99 {p99:.2} ms exceeds the pinned ceiling {ceiling:.2} ms"
                    ));
                } else {
                    println!("p99 pin  : {p99:.2} ms <= pinned ceiling {ceiling:.2} ms");
                }
                Some(ceiling)
            }
            None => {
                let init = p99 * P99_PIN_HEADROOM;
                println!("p99 pin  : no pinned ceiling, initializing to {init:.2} ms (+50%)");
                Some(init)
            }
        }
    };

    // Phase 3: chaos.
    let chaos = phase_chaos(&profile, &probs);
    println!(
        "chaos    : {} requests ({} faulted) -> {} completed ({} after retry), {} failed, \
         {} cancelled; {} incorrect; wedge healed {}/{}",
        profile.chaos_total,
        chaos.faulted,
        chaos.tally.completed,
        chaos.tally.retried_completions,
        chaos.tally.failed,
        chaos.tally.cancelled,
        chaos.tally.incorrect,
        chaos.wedge_healed,
        chaos.wedge_requests
    );
    if chaos.tally.incorrect > 0 {
        gate_misses.push(format!(
            "{} chaos completion(s) were not bitwise the reference",
            chaos.tally.incorrect
        ));
    }
    if chaos.wedge_healed != chaos.wedge_requests {
        gate_misses.push(format!(
            "only {}/{} wedge requests healed via retry on another group",
            chaos.wedge_healed, chaos.wedge_requests
        ));
    }
    if chaos.tally.accounted() != profile.chaos_total {
        gate_misses.push(format!(
            "chaos accounting leak: {} of {} requests resolved",
            chaos.tally.accounted(),
            profile.chaos_total
        ));
    }

    // Phase 4: quarantine recovery.
    let rec = phase_quarantine(&probs);
    println!(
        "recovery : quarantine -> probe -> readmission in {:.1} ms ({})",
        rec.recovery_ms,
        if rec.recovered {
            "bitwise clean"
        } else {
            "FAILED"
        }
    );
    if !rec.recovered {
        gate_misses.push("post-quarantine request did not complete correctly".into());
    }

    // Phase 5: utilization-vs-offered-load curve (data only, no gate).
    let curve = phase_load_curve(&profile, &probs, ov.direct_ms);
    for pt in &curve {
        println!(
            "load     : offered {:>6.1}% ({:.2} rps) -> {:.2} rps completed, \
             {:.3} Gflops ({:.1}% util), shed {:.1}%, p99 {:.1} ms",
            pt.offered_pct,
            pt.offered_rps,
            pt.completed_rps,
            pt.gflops,
            pt.utilization_pct,
            pt.shed_pct,
            pt.p99_ms
        );
    }

    let pass = gate_misses.is_empty();
    println!();
    if pass {
        println!("gates: PASS (correctness, liveness, overhead, tail)");
    } else {
        for miss in &gate_misses {
            eprintln!("GATE MISS: {miss}");
        }
    }

    let path = if cli.short {
        "BENCH_serve_short.json"
    } else {
        "BENCH_serve.json"
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": 1,\n",
            "  \"profile\": \"{}\",\n",
            "  \"m\": {},\n",
            "  \"n\": {},\n",
            "  \"k\": {},\n",
            "  \"overhead_pct\": {:.2},\n",
            "  \"overhead_noise_pct\": {:.2},\n",
            "  \"direct_ms\": {:.3},\n",
            "  \"served_ms\": {:.3},\n",
            "  \"mixed_total\": {},\n",
            "  \"mixed_completed\": {},\n",
            "  \"mixed_shed\": {},\n",
            "  \"p50_ms\": {:.3},\n",
            "  \"p99_ms\": {:.3},\n",
            "  \"p99_ms_ceiling\": {},\n",
            "  \"goodput_pct\": {:.1},\n",
            "  \"shed_pct\": {:.1},\n",
            "  \"chaos_total\": {},\n",
            "  \"chaos_faulted\": {},\n",
            "  \"chaos_incorrect\": {},\n",
            "  \"chaos_wedge_healed\": {},\n",
            "  \"chaos_wedge_requests\": {},\n",
            "  \"recovery_ms\": {:.1},\n",
            "  \"load_curve\": [\n{}\n  ],\n",
            "  \"pass\": {}\n",
            "}}\n"
        ),
        label,
        profile.m,
        profile.n,
        profile.k,
        ov.overhead_pct,
        ov.noise_pct,
        ov.direct_ms,
        ov.served_ms,
        profile.mixed_total,
        mixed.completed,
        mixed.rejected,
        p50,
        p99,
        p99_ceiling.map_or("null".into(), |c| format!("{c:.3}")),
        goodput_pct,
        shed_pct,
        profile.chaos_total,
        chaos.faulted,
        chaos.tally.incorrect,
        chaos.wedge_healed,
        chaos.wedge_requests,
        rec.recovery_ms,
        curve
            .iter()
            .map(|pt| {
                format!(
                    "    {{\"offered_pct\": {:.1}, \"offered_rps\": {:.3}, \
                     \"completed_rps\": {:.3}, \"gflops\": {:.4}, \
                     \"utilization_pct\": {:.1}, \"shed_pct\": {:.1}, \"p99_ms\": {:.2}}}",
                    pt.offered_pct,
                    pt.offered_rps,
                    pt.completed_rps,
                    pt.gflops,
                    pt.utilization_pct,
                    pt.shed_pct,
                    pt.p99_ms
                )
            })
            .collect::<Vec<_>>()
            .join(",\n"),
        pass
    );
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
    println!("wrote {path}");

    if !pass && cli.assert_gate {
        std::process::exit(1);
    }
    if !pass {
        eprintln!("(advisory run: rerun with --assert to make the gates fatal)");
    }
}
