//! Renders the double-buffering overlap as a text Gantt chart — the
//! mechanism behind the DB gain of Figure 6 and the small-m penalty of
//! Figure 7, visible task by task.
//!
//! The chart is the probe crate's Gantt exporter fed by the same event
//! stream the Chrome-trace export uses ([`sw_sim::Dag::emit_trace`]):
//! one span per DAG task, laned by category.
//!
//! ```text
//! cargo run -p sw-bench --release --bin trace_overlap [-- --variant row]
//! ```

use sw_dgemm::timing::build_shared_dag;
use sw_dgemm::Variant;
use sw_mem::dma::BandwidthModel;
use sw_probe::gantt;
use sw_sim::Tracer;

fn main() {
    let variant = if std::env::args().any(|a| a == "--variant") {
        let v = std::env::args()
            .skip_while(|a| a != "--variant")
            .nth(1)
            .unwrap_or_default();
        match v.as_str() {
            "pe" => Variant::Pe,
            "row" => Variant::Row,
            "db" => Variant::Db,
            _ => Variant::Sched,
        }
    } else {
        Variant::Sched
    };
    // One (j, l) iteration's worth: a single column of CG blocks.
    let p = variant.paper_params();
    let (m, n, k) = (6 * p.bm(), p.bn(), p.bk());
    let model = BandwidthModel::calibrated();
    let (dag, kernel) = build_shared_dag(variant, m, n, k, p, &model).expect("dag");
    let tracer = Tracer::enabled();
    let (result, _) = dag.emit_trace(&tracer);
    let rows = gantt::from_trace(&tracer.take());

    println!(
        "{variant} schedule for one (j,l) iteration: M = {} CG blocks, kernel {} cycles/step\n",
        m / p.bm(),
        kernel.cycles
    );
    let span = result.makespan_cycles as f64;
    print!("{}", gantt::render(&rows, result.makespan_cycles, 72));
    println!("\nlanes: D = DMA channel, C = CPE cluster.");
    println!(
        "compute utilization {:.1}%; DMA busy {:.1}% of the makespan — {}",
        100.0 * result.compute_utilization(),
        100.0 * result.dma_busy_cycles as f64 / span,
        if variant.double_buffered() {
            "prefetches hide under the previous block's compute (Algorithm 2)"
        } else {
            "loads and compute strictly alternate (Algorithm 1)"
        }
    );
}
