//! Renders the double-buffering overlap as a text Gantt chart — the
//! mechanism behind the DB gain of Figure 6 and the small-m penalty of
//! Figure 7, visible task by task.
//!
//! ```text
//! cargo run -p sw-bench --release --bin trace_overlap [-- --variant row]
//! ```

use sw_dgemm::timing::build_shared_dag;
use sw_dgemm::Variant;
use sw_mem::dma::BandwidthModel;
use sw_sim::Resource;

fn main() {
    let variant = if std::env::args().any(|a| a == "--variant") {
        let v = std::env::args()
            .skip_while(|a| a != "--variant")
            .nth(1)
            .unwrap_or_default();
        match v.as_str() {
            "pe" => Variant::Pe,
            "row" => Variant::Row,
            "db" => Variant::Db,
            _ => Variant::Sched,
        }
    } else {
        Variant::Sched
    };
    // One (j, l) iteration's worth: a single column of CG blocks.
    let p = variant.paper_params();
    let (m, n, k) = (6 * p.bm(), p.bn(), p.bk());
    let model = BandwidthModel::calibrated();
    let (dag, kernel) = build_shared_dag(variant, m, n, k, p, &model).expect("dag");
    let (result, trace) = dag.trace();

    println!(
        "{variant} schedule for one (j,l) iteration: M = {} CG blocks, kernel {} cycles/step\n",
        m / p.bm(),
        kernel.cycles
    );
    let span = result.makespan_cycles as f64;
    let width = 72usize;
    println!(
        "{:<12} {:>10} {:>10}  timeline ({} cycles)",
        "task", "start", "end", result.makespan_cycles
    );
    for t in &trace {
        let lane = match t.resource {
            Resource::Dma => 'D',
            Resource::Cpes => 'C',
            Resource::None => '.',
        };
        let s = (t.start as f64 / span * width as f64) as usize;
        let e = ((t.end as f64 / span * width as f64) as usize)
            .max(s + 1)
            .min(width);
        let mut bar = vec![' '; width];
        for cell in bar.iter_mut().take(e).skip(s) {
            *cell = lane;
        }
        println!(
            "{:<12} {:>10} {:>10}  |{}|",
            t.label,
            t.start,
            t.end,
            bar.iter().collect::<String>()
        );
    }
    println!("\nlanes: D = DMA channel, C = CPE cluster.");
    println!(
        "compute utilization {:.1}%; DMA busy {:.1}% of the makespan — {}",
        100.0 * result.compute_utilization(),
        100.0 * result.dma_busy_cycles as f64 / span,
        if variant.double_buffered() {
            "prefetches hide under the previous block's compute (Algorithm 2)"
        } else {
            "loads and compute strictly alternate (Algorithm 1)"
        }
    );
}
