//! Execution-engine benchmark: measures what the engine overhaul
//! bought, and writes `BENCH_engine.json`.
//!
//! Two measurements:
//!
//! 1. **Interpreter throughput** (instructions/second) on the
//!    production kernel streams, for the *seed* engine (re-implemented
//!    here verbatim, with its per-instruction `Vec` source-register
//!    queries), the current reference engine (`Machine::run_reference`,
//!    allocation-free source sets), and the three selectable backends:
//!    predecoded (`run_decoded`), batch-fused (`run_batched`), and
//!    trace-compiled (`run_compiled`, reported as a *replay rate* —
//!    equivalent instructions per second of the straight-line trace).
//! 2. **Fig. 6 sweep wall time** (10 square sizes × 5 variants of
//!    timing-mode estimation), seed engine — `Vec`-allocating
//!    interpreter, `Vec`-dependence DAG, no kernel memoization —
//!    versus each current backend, cold (kernel-report cache reset
//!    before each measured round) and warm (decoded).
//!
//! Every comparison first asserts the engines agree exactly (same
//! `ExecReport`, same LDM image, same makespan per estimate), so the
//! speedups reported are for interchangeable computations.
//!
//! Flags: `--backend <decoded|batched|compiled|all>` restricts the
//! timed measurements to one backend, `--filter <stream>` restricts
//! the throughput rows to matching kernel streams, and `--assert`
//! (CI mode) makes pinned-floor misses fatal. Partial runs
//! (`--backend`/`--filter`) never rewrite `BENCH_engine.json`.

use std::hint::black_box;
use std::time::{Duration, Instant};
use sw_bench::paper::PAPER_FIG6_SCHED;
use sw_dgemm::timing::{estimate, estimate_with, kernel_cache_reset, kernel_cache_stats};
use sw_dgemm::Variant;
use sw_isa::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
use sw_isa::{
    BatchedProgram, CompiledProgram, DecodedProgram, EngineBackend, Instr, Machine, SinkComm,
};

/// A faithful re-implementation of the seed revision's execution
/// engine, kept as the benchmark baseline: per-instruction `Vec`
/// source queries in the interpreter, `Vec`-backed task dependences in
/// the discrete-event DAG, and no kernel-report memoization.
mod seed {
    use sw_arch::consts::{MESH_TRANSIT_CYCLES, VREG_COUNT};
    use sw_arch::V256;
    use sw_dgemm::variants::raw::RawParams;
    use sw_dgemm::{GemmPlan, Variant};
    use sw_isa::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
    use sw_isa::{ExecReport, IReg, Instr, VReg};
    use sw_mem::dma::{BandwidthModel, DmaMode};

    const IREG_COUNT: usize = 8;
    const BRANCH_TAKEN_PENALTY: u64 = 2;
    const STEP_SYNC_CYCLES: u64 = MESH_TRANSIT_CYCLES + 40;

    fn vsrcs(i: &Instr) -> Vec<VReg> {
        match *i {
            Instr::Vmad { a, b, c, .. } => vec![a, b, c],
            Instr::Vstd { s, .. } => vec![s],
            _ => vec![],
        }
    }

    fn isrcs(i: &Instr) -> Vec<IReg> {
        match *i {
            Instr::Vldd { base, .. }
            | Instr::Vstd { base, .. }
            | Instr::Ldde { base, .. }
            | Instr::Vldr { base, .. }
            | Instr::Lddec { base, .. } => vec![base],
            Instr::Addl { s, .. } | Instr::Bne { s, .. } => vec![s],
            _ => vec![],
        }
    }

    /// The seed `Machine::run` loop, heap-allocating source sets per
    /// dynamic instruction. Broadcasts are sunk and receives return
    /// zero (`SinkComm` semantics).
    pub fn run(prog: &[Instr], ldm: &mut [f64]) -> ExecReport {
        let mut vregs = [V256::ZERO; VREG_COUNT];
        let mut iregs = [0i64; IREG_COUNT];
        let mut report = ExecReport::default();
        let mut vready = [0u64; VREG_COUNT];
        let mut iready = [0u64; IREG_COUNT];
        let mut cur: u64 = 0;
        let mut p0_used = false;
        let mut p1_used = false;
        let mut last_issue: u64 = 0;
        let mut pc = 0usize;

        let addr = |iregs: &[i64; IREG_COUNT], base: IReg, off: i64| -> usize {
            let a = iregs[base.idx()] + off;
            assert!(a >= 0);
            a as usize
        };

        while pc < prog.len() {
            let instr = prog[pc];
            report.instructions += 1;
            assert!(report.instructions <= 200_000_000, "runaway loop");

            let mut t = cur;
            for r in vsrcs(&instr) {
                t = t.max(vready[r.idx()]);
            }
            for r in isrcs(&instr) {
                t = t.max(iready[r.idx()]);
            }
            if let Some(d) = instr.vdst() {
                t = t.max(vready[d.idx()]);
            }
            if let Some(d) = instr.idst() {
                t = t.max(iready[d.idx()]);
            }
            loop {
                if t > cur {
                    cur = t;
                    p0_used = false;
                    p1_used = false;
                }
                let used = match instr.pipe() {
                    sw_isa::instr::Pipe::P0 => &mut p0_used,
                    sw_isa::instr::Pipe::P1 => &mut p1_used,
                };
                if !*used {
                    *used = true;
                    break;
                }
                t += 1;
            }
            if p0_used && p1_used {
                report.dual_issue_cycles += 1;
            }
            last_issue = last_issue.max(t);

            if let Some(d) = instr.vdst() {
                vready[d.idx()] = t + instr.latency();
            }
            if let Some(d) = instr.idst() {
                iready[d.idx()] = t + instr.latency();
            }
            let mut next_pc = pc + 1;
            match instr {
                Instr::Vmad { a, b, c, d } => {
                    report.vmads += 1;
                    vregs[d.idx()] = vregs[a.idx()].fma(vregs[b.idx()], vregs[c.idx()]);
                }
                Instr::Vldd { d, base, off } => {
                    let a = addr(&iregs, base, off);
                    vregs[d.idx()] = V256::load(&ldm[a..]);
                }
                Instr::Vstd { s, base, off } => {
                    let a = addr(&iregs, base, off);
                    vregs[s.idx()].store(&mut ldm[a..a + 4]);
                }
                Instr::Ldde { d, base, off } => {
                    let a = addr(&iregs, base, off);
                    vregs[d.idx()] = V256::splat(ldm[a]);
                }
                Instr::Vldr { d, base, off, .. } => {
                    let a = addr(&iregs, base, off);
                    vregs[d.idx()] = V256::load(&ldm[a..]);
                }
                Instr::Lddec { d, base, off, .. } => {
                    let a = addr(&iregs, base, off);
                    vregs[d.idx()] = V256::splat(ldm[a]);
                }
                Instr::Getr { d } | Instr::Getc { d } => {
                    vregs[d.idx()] = V256::ZERO;
                }
                Instr::Vclr { d } => {
                    vregs[d.idx()] = V256::ZERO;
                }
                Instr::Addl { d, s, imm } => {
                    iregs[d.idx()] = iregs[s.idx()] + imm;
                }
                Instr::Setl { d, imm } => {
                    iregs[d.idx()] = imm;
                }
                Instr::Bne { s, target } => {
                    if iregs[s.idx()] != 0 {
                        report.taken_branches += 1;
                        next_pc = target;
                        cur = t + 1 + BRANCH_TAKEN_PENALTY;
                        p0_used = false;
                        p1_used = false;
                    }
                }
                Instr::Nop => {}
            }
            pc = next_pc;
        }
        report.cycles = if report.instructions == 0 {
            0
        } else {
            last_issue + 1
        };
        report
    }

    /// The seed DAG: task dependences heap-allocated per task.
    #[derive(Default)]
    pub struct SeedDag {
        tasks: Vec<(u8, u64, Vec<usize>)>, // (resource, duration, deps)
    }

    const DMA: u8 = 0;
    const CPES: u8 = 1;

    impl SeedDag {
        fn task(&mut self, resource: u8, duration: u64, deps: &[usize]) -> usize {
            let id = self.tasks.len();
            self.tasks.push((resource, duration, deps.to_vec()));
            id
        }

        fn schedule(&self) -> u64 {
            let mut finish = vec![0u64; self.tasks.len()];
            let mut dma_free = 0u64;
            let mut cpes_free = 0u64;
            let mut makespan = 0u64;
            for (i, (res, dur, deps)) in self.tasks.iter().enumerate() {
                let ready = deps.iter().map(|&d| finish[d]).max().unwrap_or(0);
                let start = if *res == DMA {
                    ready.max(dma_free)
                } else {
                    ready.max(cpes_free)
                };
                let end = start + dur;
                if *res == DMA {
                    dma_free = end;
                } else {
                    cpes_free = end;
                }
                finish[i] = end;
                makespan = makespan.max(end);
            }
            makespan
        }
    }

    /// The seed `measure_kernel`: regenerates and re-executes the
    /// kernel stream on every call (no memoization), on the
    /// `Vec`-allocating interpreter.
    pub fn measure_kernel(pm: usize, pn: usize, pk: usize, style: KernelStyle) -> ExecReport {
        let a_base = 0;
        let b_base = (a_base + pm * pk).next_multiple_of(4);
        let c_base = (b_base + pk * pn).next_multiple_of(4);
        let alpha_addr = c_base + pm * pn;
        let cfg = BlockKernelCfg {
            pm,
            pn,
            pk,
            a_src: Operand::Ldm,
            b_src: Operand::Ldm,
            a_base,
            b_base,
            c_base,
            alpha_addr,
        };
        let mut ldm = vec![0.0f64; alpha_addr + 1];
        ldm[alpha_addr] = 1.0;
        run(&gen_block_kernel(&cfg, style), &mut ldm)
    }

    /// The seed shared-variant estimate: same schedule construction as
    /// `sw_dgemm::timing::build_shared_dag`, on the seed DAG and the
    /// seed interpreter. Returns the makespan in cycles.
    pub fn estimate_shared_makespan(variant: Variant, m: usize, n: usize, k: usize) -> u64 {
        let model = BandwidthModel::calibrated();
        let params = variant.paper_params();
        let plan = GemmPlan::new(m, n, k, params, variant.double_buffered()).unwrap();
        let mapping = variant.mapping();
        let p = plan.params;
        let kernel = measure_kernel(p.pm, p.pn, p.pk, variant.kernel_style());
        let block_compute = 8 * (kernel.cycles + STEP_SYNC_CYCLES);

        let (a_fp, b_fp, c_fp) = (m * k * 8, k * n * 8, m * n * 8);
        let (bm, bn, bk) = (p.bm(), p.bn(), p.bk());
        let b_cycles = model.transfer_cycles(DmaMode::Pe, 64, bk * bn * 8, p.pk * 8, b_fp);
        let (ac_mode, ac_desc, ac_run) = match mapping {
            sw_dgemm::mapping::Mapping::Pe => (DmaMode::Pe, 64, p.pm * 8),
            sw_dgemm::mapping::Mapping::Row => (DmaMode::Row, 8, bm * 8),
        };
        let a_cycles = model.transfer_cycles(ac_mode, ac_desc, bm * bk * 8, ac_run, a_fp);
        let c_cycles = model.transfer_cycles(ac_mode, ac_desc, bm * bn * 8, ac_run, c_fp);

        let mut dag = SeedDag::default();
        let mut prev_compute: Option<usize> = None;
        let dep = |t: Option<usize>| t.map(|x| vec![x]).unwrap_or_default();
        for _j in 0..plan.grid_n {
            for _l in 0..plan.grid_k {
                let b_task = dag.task(DMA, b_cycles, &dep(prev_compute));
                if plan.double_buffered {
                    let mut pref_a = dag.task(DMA, a_cycles, &dep(prev_compute));
                    let mut pref_c = dag.task(DMA, c_cycles, &dep(prev_compute));
                    for i in 0..plan.grid_m {
                        let (next_a, next_c) = if i + 1 < plan.grid_m {
                            let a = dag.task(DMA, a_cycles, &dep(prev_compute));
                            let c = dag.task(DMA, c_cycles, &dep(prev_compute));
                            (Some(a), Some(c))
                        } else {
                            (None, None)
                        };
                        let mut deps = vec![pref_a, pref_c, b_task];
                        if let Some(pc) = prev_compute {
                            deps.push(pc);
                        }
                        let compute = dag.task(CPES, block_compute, &deps);
                        dag.task(DMA, c_cycles, &[compute]);
                        prev_compute = Some(compute);
                        if let (Some(a), Some(c)) = (next_a, next_c) {
                            pref_a = a;
                            pref_c = c;
                        }
                    }
                } else {
                    for _i in 0..plan.grid_m {
                        let a = dag.task(DMA, a_cycles, &dep(prev_compute));
                        let c = dag.task(DMA, c_cycles, &dep(prev_compute));
                        let compute = dag.task(CPES, block_compute, &[a, c, b_task]);
                        dag.task(DMA, c_cycles, &[compute]);
                        prev_compute = Some(compute);
                    }
                }
            }
        }
        dag.schedule()
    }

    /// The seed RAW-baseline estimate (same construction as
    /// `sw_dgemm::timing::estimate_raw`), returning the makespan.
    pub fn estimate_raw_makespan(m: usize, n: usize, k: usize) -> u64 {
        let model = BandwidthModel::calibrated();
        let raw = RawParams::paper();
        let kernel = measure_kernel(raw.pm, raw.pn, raw.kc, KernelStyle::Naive);
        let chunks = k / raw.kc;
        let (a_fp, b_fp, c_fp) = (m * k * 8, k * n * 8, m * n * 8);
        let c_io =
            2 * model.transfer_cycles(DmaMode::Pe, 64, 64 * raw.pm * raw.pn * 8, raw.pm * 8, c_fp);
        let a_chunk =
            model.transfer_cycles(DmaMode::Pe, 64, 64 * raw.pm * raw.kc * 8, raw.pm * 8, a_fp);
        let b_chunk =
            model.transfer_cycles(DmaMode::Pe, 64, 64 * raw.kc * raw.pn * 8, raw.kc * 8, b_fp);
        let dma_per_wave = c_io + chunks as u64 * (a_chunk + b_chunk);
        let compute_per_wave = chunks as u64 * kernel.cycles;
        let waves = (m / 8 / raw.pm) * (n / 8 / raw.pn);

        let mut dag = SeedDag::default();
        let mut prev: Option<usize> = None;
        for _ in 0..waves {
            let deps = prev.map(|t| vec![t]).unwrap_or_default();
            let dma = dag.task(DMA, dma_per_wave, &deps);
            let compute = dag.task(CPES, compute_per_wave, &[dma]);
            prev = Some(compute);
        }
        dag.schedule()
    }

    pub fn estimate_makespan(variant: Variant, mnk: usize) -> u64 {
        match variant {
            Variant::Raw => estimate_raw_makespan(mnk, mnk, mnk),
            _ => estimate_shared_makespan(variant, mnk, mnk, mnk),
        }
    }
}

/// Hardware-normalized probe-overhead gate: the fig6-sweep speedup
/// over the in-process seed engine is a ratio of two same-machine
/// measurements, so if the observability hooks (registry counters,
/// disabled tracer, `PROBE = false` interpreter) cost anything on the
/// hot path, the cold speedup drops. Two pins in the committed
/// `BENCH_engine.json` guard it: `speedup_cold_floor`, a conservative
/// absolute lower bound carried forward verbatim on regeneration, and
/// `speedup_cold` itself, the previous full run's measured median,
/// which the *symmetric* drift gate compares against — the measured
/// median must stay within 2% plus the run's own noise floor of the
/// reference, in either direction, so stale references surface as
/// failures instead of being silently banked as headroom.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Times `f` over `rounds` calls, returning the fastest round.
fn best_of<F: FnMut()>(rounds: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..rounds {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best
}

/// Times `f` adaptively so the total measured window is ≥ `floor`,
/// returning seconds per call.
fn secs_per_call<F: FnMut()>(floor: Duration, mut f: F) -> f64 {
    let mut n = 1u32;
    loop {
        let t = Instant::now();
        for _ in 0..n {
            f();
        }
        let el = t.elapsed();
        if el >= floor {
            // The window size is settled; take the fastest of three
            // full windows so a frequency dip or background burst
            // during one window can't skew a throughput row.
            let mut best = el;
            for _ in 0..2 {
                let t = Instant::now();
                for _ in 0..n {
                    f();
                }
                best = best.min(t.elapsed());
            }
            return best.as_secs_f64() / n as f64;
        }
        n = n.saturating_mul(2);
    }
}

fn kernel_cfg(pn: usize) -> BlockKernelCfg {
    BlockKernelCfg {
        pm: 16,
        pn,
        pk: 96,
        a_src: Operand::Ldm,
        b_src: Operand::Ldm,
        a_base: 0,
        b_base: 2048,
        c_base: 6144,
        alpha_addr: 8000,
    }
}

/// Parsed command-line options.
#[derive(Default)]
struct Cli {
    /// `--backend`: restrict the timed measurements to one backend.
    backend: Option<EngineBackend>,
    /// `--filter`: restrict the throughput rows to streams whose name
    /// contains this substring.
    filter: Option<String>,
    /// `--assert`: exit non-zero when a pinned floor is missed.
    assert_floors: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: engine_bench [--backend decoded|batched|compiled|all] \
         [--filter <stream>] [--assert]\n\
         \n\
         --backend   time only one execution backend (default: all)\n\
         --filter    bench only kernel streams whose name contains <stream>\n\
         --assert    exit non-zero when a pinned floor is missed (CI mode)\n\
         \n\
         Equivalence gates always run and are always fatal. Partial runs\n\
         (--backend/--filter) skip rewriting BENCH_engine.json."
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli = Cli::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--assert" => cli.assert_floors = true,
            "--backend" => {
                let v = args.next().unwrap_or_else(|| usage());
                if v != "all" {
                    cli.backend = Some(v.parse().unwrap_or_else(|e: String| {
                        eprintln!("{e}");
                        usage()
                    }));
                }
            }
            "--filter" => cli.filter = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    cli
}

struct InterpRow {
    stream: &'static str,
    instructions: u64,
    seed_mips: f64,
    reference_mips: f64,
    decoded_mips: f64,
    /// NaN when `--backend` excluded the batched backend.
    batched_mips: f64,
    /// Trace-replay rate in equivalent Minstr/s; NaN when excluded.
    compiled_mips: f64,
}

fn bench_interpreters(cli: &Cli, style: KernelStyle, stream: &'static str) -> InterpRow {
    let cfg = kernel_cfg(32);
    let prog: Vec<Instr> = gen_block_kernel(&cfg, style);
    let decoded = DecodedProgram::new(&prog);
    let batched = BatchedProgram::new(&prog);
    let compiled = CompiledProgram::new(&prog);
    assert!(
        compiled.is_traced(),
        "production {stream} kernel stream must compile to a straight-line trace"
    );
    let fresh_ldm = || {
        let mut l = vec![0.0f64; 8192];
        l[cfg.alpha_addr] = 1.0;
        l
    };

    // Equivalence gate: all five engines must agree exactly (report
    // and LDM image). Always runs, regardless of --backend/--filter.
    let mut l1 = fresh_ldm();
    let r_seed = seed::run(&prog, &mut l1);
    let mut l2 = fresh_ldm();
    let mut comm = SinkComm;
    let r_ref = Machine::new(&mut l2, &mut comm).run_reference(&prog);
    let mut l3 = fresh_ldm();
    let mut comm = SinkComm;
    let r_dec = Machine::new(&mut l3, &mut comm).run_decoded(&decoded);
    let mut l4 = fresh_ldm();
    let mut comm = SinkComm;
    let r_bat = Machine::new(&mut l4, &mut comm).run_batched(&batched);
    let mut l5 = fresh_ldm();
    let mut comm = SinkComm;
    let r_comp = Machine::new(&mut l5, &mut comm).run_compiled(&compiled);
    assert_eq!(
        r_seed, r_ref,
        "seed vs reference reports diverge on {stream}"
    );
    assert_eq!(
        r_ref, r_dec,
        "reference vs decoded reports diverge on {stream}"
    );
    assert_eq!(
        r_dec, r_bat,
        "decoded vs batched reports diverge on {stream}"
    );
    assert_eq!(
        r_dec, r_comp,
        "decoded vs compiled reports diverge on {stream}"
    );
    assert_eq!(l1, l2, "seed vs reference LDM diverges on {stream}");
    assert_eq!(l2, l3, "reference vs decoded LDM diverges on {stream}");
    assert_eq!(l3, l4, "decoded vs batched LDM diverges on {stream}");
    assert_eq!(l3, l5, "decoded vs compiled LDM diverges on {stream}");

    let want = |b: EngineBackend| cli.backend.is_none() || cli.backend == Some(b);
    let floor = Duration::from_millis(300);
    let mut ldm = fresh_ldm();
    let seed_s = secs_per_call(floor, || {
        black_box(seed::run(&prog, &mut ldm));
    });
    let mut ldm = fresh_ldm();
    let mut comm = SinkComm;
    let ref_s = secs_per_call(floor, || {
        black_box(Machine::new(&mut ldm, &mut comm).run_reference(&prog));
    });
    // The decoded backend is the baseline every per-backend ratio
    // divides by, so it is always timed.
    let mut ldm = fresh_ldm();
    let mut comm = SinkComm;
    let dec_s = secs_per_call(floor, || {
        black_box(Machine::new(&mut ldm, &mut comm).run_decoded(&decoded));
    });
    let bat_s = if want(EngineBackend::Batched) {
        let mut ldm = fresh_ldm();
        let mut comm = SinkComm;
        secs_per_call(floor, || {
            black_box(Machine::new(&mut ldm, &mut comm).run_batched(&batched));
        })
    } else {
        f64::NAN
    };
    let comp_s = if want(EngineBackend::Compiled) {
        let mut ldm = fresh_ldm();
        let mut comm = SinkComm;
        secs_per_call(floor, || {
            black_box(Machine::new(&mut ldm, &mut comm).run_compiled(&compiled));
        })
    } else {
        f64::NAN
    };

    let mips = |s: f64| r_seed.instructions as f64 / s / 1e6;
    InterpRow {
        stream,
        instructions: r_seed.instructions,
        seed_mips: mips(seed_s),
        reference_mips: mips(ref_s),
        decoded_mips: mips(dec_s),
        batched_mips: mips(bat_s),
        compiled_mips: mips(comp_s),
    }
}

fn pinned_key(b: EngineBackend) -> &'static str {
    match b {
        EngineBackend::Decoded => "speedup_cold_floor",
        EngineBackend::Batched => "batched_speedup_cold_floor",
        EngineBackend::Compiled => "compiled_speedup_cold_floor",
    }
}

/// Key of the pinned *reference* speedup (the previous full run's
/// measured median) the symmetric probe-overhead gate compares
/// against. Unlike the floor — a deliberately conservative lower
/// bound — the reference is rewritten to the fresh median on every
/// full regeneration, so drift is measured around zero instead of
/// against a value that is 10-15% low by construction.
fn reference_key(b: EngineBackend) -> &'static str {
    match b {
        EngineBackend::Decoded => "speedup_cold",
        EngineBackend::Batched => "batched_speedup_cold",
        EngineBackend::Compiled => "compiled_speedup_cold",
    }
}

/// Probe-overhead drift tolerated on top of the measured noise floor.
const PROBE_TOL_PCT: f64 = 2.0;

fn main() {
    let cli = parse_cli();
    let partial = cli.backend.is_some() || cli.filter.is_some();
    let sizes: Vec<usize> = PAPER_FIG6_SCHED.iter().map(|&(s, _)| s).collect();
    let backends: Vec<EngineBackend> = match cli.backend {
        Some(b) => vec![b],
        None => EngineBackend::ALL.to_vec(),
    };

    // 1. Fig. 6 sweep, seed vs each current backend, in *interleaved
    //    rounds*: each round times one seed sweep then one cold sweep
    //    per backend (kernel-report cache reset first), and the
    //    reported speedup is the median of the per-round ratios.
    //    Pairing cancels slow drift (CPU frequency scaling, background
    //    load) that separate seed-then-current phases would bake into
    //    the ratio — the floor gates below need that stability. Note
    //    the reset clears only the *report* cache: the compiled
    //    backend's process-global code cache survives, so its kernels
    //    cross the hot threshold in the first rounds and stay hot —
    //    exactly what a long-lived sweep process would see.
    assert_eq!(
        kernel_cache_stats().misses,
        0,
        "cache must be cold for the cold-sweep number"
    );
    let run_sweep = |backend: EngineBackend| {
        for &s in &sizes {
            for v in Variant::ALL {
                black_box(estimate_with(v, s, s, s, backend).unwrap());
            }
        }
    };
    let seed_sweep = || {
        for &s in &sizes {
            for v in Variant::ALL {
                black_box(seed::estimate_makespan(v, s));
            }
        }
    };
    let mut pair_ratios: Vec<Vec<f64>> = vec![Vec::new(); backends.len()];
    let mut cold_best: Vec<Duration> = vec![Duration::MAX; backends.len()];
    let mut seed_time = Duration::MAX;
    let mut cache = None;
    for round in 0..5 {
        let t = Instant::now();
        seed_sweep();
        let s = t.elapsed();
        seed_time = seed_time.min(s);
        for (i, &b) in backends.iter().enumerate() {
            kernel_cache_reset();
            let t = Instant::now();
            run_sweep(b);
            let c = t.elapsed();
            if round == 0 && b == EngineBackend::Decoded {
                cache = Some(kernel_cache_stats());
            }
            cold_best[i] = cold_best[i].min(c);
            pair_ratios[i].push(s.as_secs_f64() / c.as_secs_f64());
        }
    }
    let speedup_cold: Vec<f64> = pair_ratios
        .iter_mut()
        .map(|v| {
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        })
        .collect();
    let cache = cache.unwrap_or_default();

    // Warm: the report cache now holds every kernel shape the sweep
    // needs, so the warm number is backend-independent; measured on
    // decoded when it is selected.
    let new_warm = backends
        .iter()
        .position(|&b| b == EngineBackend::Decoded)
        .map(|_| best_of(3, || run_sweep(EngineBackend::Decoded)));

    // 2. Per-estimate equivalence gate against the current engine.
    let mut checked = false;
    for &s in &sizes {
        for v in Variant::ALL {
            let seed_mk = seed::estimate_makespan(v, s);
            let new_mk = estimate(v, s, s, s).unwrap().makespan_cycles;
            assert_eq!(
                seed_mk, new_mk,
                "seed vs current makespan diverges for {v} at {s}"
            );
            checked = true;
        }
    }
    assert!(checked);

    // 3. Interpreter throughput on the production kernel streams.
    let streams = [
        (KernelStyle::Scheduled, "sched"),
        (KernelStyle::Naive, "naive"),
    ];
    let rows: Vec<InterpRow> = streams
        .iter()
        .filter(|(_, name)| cli.filter.as_deref().is_none_or(|f| name.contains(f)))
        .map(|&(style, name)| bench_interpreters(&cli, style, name))
        .collect();
    if rows.is_empty() {
        eprintln!(
            "--filter {:?} matches no kernel stream (have: sched, naive)",
            cli.filter.as_deref().unwrap_or("")
        );
        std::process::exit(2);
    }

    let cell = |x: f64| {
        if x.is_nan() {
            "-".to_string()
        } else {
            format!("{x:.1}")
        }
    };
    let ratio = |x: f64| {
        if x.is_nan() {
            "-".to_string()
        } else {
            format!("{x:.2}x")
        }
    };
    println!("== interpreter throughput (Minstr/s; compiled = trace replay rate) ==");
    println!(
        "{:<8} {:>10} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "stream",
        "instrs",
        "seed",
        "ref",
        "decoded",
        "batched",
        "compiled",
        "dec/seed",
        "bat/dec",
        "comp/dec"
    );
    for r in &rows {
        println!(
            "{:<8} {:>10} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9}",
            r.stream,
            r.instructions,
            cell(r.seed_mips),
            cell(r.reference_mips),
            cell(r.decoded_mips),
            cell(r.batched_mips),
            cell(r.compiled_mips),
            ratio(r.decoded_mips / r.seed_mips),
            ratio(r.batched_mips / r.decoded_mips),
            ratio(r.compiled_mips / r.decoded_mips)
        );
    }
    println!();
    println!("== fig6 sweep wall time (10 sizes x 5 variants) ==");
    println!(
        "seed engine        : {:>10.1} ms",
        seed_time.as_secs_f64() * 1e3
    );
    for (i, &b) in backends.iter().enumerate() {
        println!(
            "{:<8} (cold)    : {:>10.1} ms   {:.2}x (median of 5 interleaved rounds)",
            b.name(),
            cold_best[i].as_secs_f64() * 1e3,
            speedup_cold[i]
        );
    }
    if let Some(w) = new_warm {
        println!(
            "decoded  (warm)    : {:>10.1} ms   {:.2}x",
            w.as_secs_f64() * 1e3,
            seed_time.as_secs_f64() / w.as_secs_f64()
        );
    }
    println!(
        "kernel cache       : {} hits / {} misses (cold decoded sweep)",
        cache.hits, cache.misses
    );
    println!();

    // 4. Floor gates. Pinned floors live in the committed
    //    BENCH_engine.json and are carried forward *verbatim* on
    //    regeneration (never ratcheted down by a noisy run) — only a
    //    deliberate re-bless moves them. Every gate allows the
    //    measured value to sit within 2% below its floor before it
    //    counts as a miss; misses are fatal under --assert.
    //
    //    * Cold-sweep floors (one per backend) are the
    //      probe-overhead gate: the speedup over the in-process seed
    //      engine is a ratio of two same-machine measurements, so if
    //      the observability hooks (registry counters, disabled
    //      tracer, `PROBE = false` interpreters) cost anything on the
    //      hot path, the cold speedup drops below its floor.
    //    * Replay floors gate the per-stream throughput ratio of the
    //      batched and compiled backends over decoded — the compiled
    //      floor is pinned at >= 2x, the PR's headline claim.
    let path = "BENCH_engine.json";
    let baseline = std::fs::read_to_string(path).ok();
    let pinned = |key: &str| baseline.as_ref().and_then(|t| json_number(t, key));
    let mut failures: Vec<String> = Vec::new();

    println!(
        "== floor gates (measured >= 98% of pinned floor; probe drift: |vs reference| <= \
         {PROBE_TOL_PCT}% + noise) =="
    );
    let mut sweep_floors: Vec<f64> = Vec::new();
    let mut probe_overhead_pct = 0.0;
    let mut probe_noise_pct = 0.0;
    for (i, &b) in backends.iter().enumerate() {
        let key = pinned_key(b);
        let measured = speedup_cold[i];
        // Round-to-round noise floor of this backend's ratio: half the
        // spread of the five interleaved pair ratios, relative to
        // their median. A drift smaller than this is not evidence of
        // anything.
        let ratios = &pair_ratios[i]; // sorted by the median step
        let noise = 100.0 * (ratios[ratios.len() - 1] - ratios[0]) / (2.0 * measured);
        match pinned(key) {
            Some(fl) => {
                println!(
                    "{:<8} cold sweep : {measured:.2}x vs floor {fl:.2}x",
                    b.name()
                );
                if measured < 0.98 * fl {
                    failures.push(format!(
                        "{b} fig6 cold speedup {measured:.2}x fell below 98% of the \
                         pinned floor {fl:.2}x"
                    ));
                }
                sweep_floors.push(fl);
            }
            None => {
                // First run without a pinned floor: initialize it 15%
                // under the measured median — the sweep ratio divides
                // two wall-clock medians, and each swings ~±10% across
                // runs on a shared machine.
                let fl = 0.85 * measured;
                println!(
                    "{:<8} cold sweep : {measured:.2}x; no pinned {key}, initializing to {fl:.2}x",
                    b.name()
                );
                sweep_floors.push(fl);
            }
        }
        // Symmetric probe-overhead gate: drift of the measured median
        // against the pinned reference (the previous full run's
        // median), failing on |drift| > tolerance + noise in *either*
        // direction — a large negative "overhead" means the committed
        // reference is stale and must be re-blessed by a full
        // regeneration, not silently banked as headroom.
        if let Some(reference) = pinned(reference_key(b)) {
            let overhead = (1.0 - measured / reference) * 100.0;
            let allowed = PROBE_TOL_PCT + noise;
            let dir = if overhead >= 0.0 { "cost" } else { "headroom" };
            println!(
                "{:<8} probe drift: {overhead:+.1}% vs reference {reference:.2}x \
                 ({dir}; noise floor {noise:.1}%, allowed {allowed:.1}%)",
                b.name()
            );
            if overhead.abs() > allowed {
                failures.push(format!(
                    "{b} cold-sweep drift {overhead:+.1}% vs the pinned reference \
                     {reference:.2}x exceeds the symmetric band {allowed:.1}% \
                     ({PROBE_TOL_PCT}% tolerance + {noise:.1}% measured noise); \
                     regenerate BENCH_engine.json to re-bless if deliberate"
                ));
            }
            if b == EngineBackend::Decoded {
                probe_overhead_pct = overhead;
                probe_noise_pct = noise;
            }
        } else {
            println!(
                "{:<8} probe drift: no pinned {} yet (first full run pins it)",
                b.name(),
                reference_key(b)
            );
            if b == EngineBackend::Decoded {
                probe_noise_pct = noise;
            }
        }
    }

    let min_ratio = |f: fn(&InterpRow) -> f64| {
        rows.iter()
            .map(|r| f(r) / r.decoded_mips)
            .fold(f64::INFINITY, f64::min)
    };
    let bat_ratio = min_ratio(|r| r.batched_mips);
    let comp_ratio = min_ratio(|r| r.compiled_mips);
    let mut replay_floor = |name: &str, key: &str, measured: f64, init: f64| -> f64 {
        if measured.is_nan() {
            return pinned(key).unwrap_or(init);
        }
        match pinned(key) {
            Some(fl) => {
                println!("{name:<8} replay     : {measured:.2}x vs decoded, floor {fl:.2}x");
                if measured < 0.98 * fl {
                    failures.push(format!(
                        "{name} replay throughput {measured:.2}x vs decoded fell below \
                         98% of the pinned floor {fl:.2}x"
                    ));
                }
                fl
            }
            None => {
                println!(
                    "{name:<8} replay     : {measured:.2}x vs decoded; no pinned {key}, \
                     initializing to {init:.2}x"
                );
                if measured < 0.98 * init {
                    failures.push(format!(
                        "{name} replay throughput {measured:.2}x vs decoded is below \
                         its initial floor {init:.2}x"
                    ));
                }
                init
            }
        }
    };
    let bat_floor = replay_floor(
        "batched",
        "batched_replay_floor",
        bat_ratio,
        0.8 * bat_ratio,
    );
    // The compiled floor is the PR's acceptance pin: never initialized
    // below 2x, however fast the machine.
    let comp_floor = replay_floor(
        "compiled",
        "compiled_replay_floor",
        comp_ratio,
        f64::max(2.0, 0.75 * comp_ratio),
    );

    if failures.is_empty() {
        println!("all floors hold");
    } else {
        for f in &failures {
            eprintln!("FLOOR MISS: {f}");
        }
        if cli.assert_floors {
            std::process::exit(1);
        }
        eprintln!("(advisory run: rerun with --assert to make floor misses fatal)");
    }

    // 5. BENCH_engine.json — full runs only, so a --backend/--filter
    //    slice can never clobber the committed baseline.
    if partial {
        println!("\npartial run (--backend/--filter): {path} left untouched");
        return;
    }
    let interp_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"stream\": \"{}\", \"instructions\": {}, ",
                    "\"seed_minstr_per_s\": {:.1}, \"reference_minstr_per_s\": {:.1}, ",
                    "\"decoded_minstr_per_s\": {:.1}, \"batched_minstr_per_s\": {:.1}, ",
                    "\"compiled_minstr_per_s\": {:.1}, \"decoded_speedup_vs_seed\": {:.2}, ",
                    "\"batched_speedup_vs_decoded\": {:.2}, \"compiled_speedup_vs_decoded\": {:.2}}}"
                ),
                r.stream,
                r.instructions,
                r.seed_mips,
                r.reference_mips,
                r.decoded_mips,
                r.batched_mips,
                r.compiled_mips,
                r.decoded_mips / r.seed_mips,
                r.batched_mips / r.decoded_mips,
                r.compiled_mips / r.decoded_mips
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"interpreter\": [\n{}\n  ],\n",
            "  \"replay_floors\": {{\n",
            "    \"batched_replay_floor\": {:.2},\n",
            "    \"compiled_replay_floor\": {:.2}\n",
            "  }},\n",
            "  \"fig6_sweep\": {{\n",
            "    \"sizes\": {:?},\n",
            "    \"variants\": 5,\n",
            "    \"seed_engine_ms\": {:.2},\n",
            "    \"current_engine_cold_ms\": {:.2},\n",
            "    \"batched_cold_ms\": {:.2},\n",
            "    \"compiled_cold_ms\": {:.2},\n",
            "    \"current_engine_warm_ms\": {:.2},\n",
            "    \"speedup_cold\": {:.2},\n",
            "    \"batched_speedup_cold\": {:.2},\n",
            "    \"compiled_speedup_cold\": {:.2},\n",
            "    \"speedup_warm\": {:.2},\n",
            "    \"speedup_cold_floor\": {:.2},\n",
            "    \"batched_speedup_cold_floor\": {:.2},\n",
            "    \"compiled_speedup_cold_floor\": {:.2},\n",
            "    \"probe_overhead_pct\": {:.1},\n",
            "    \"probe_noise_pct\": {:.1},\n",
            "    \"kernel_cache_cold\": {{\"hits\": {}, \"misses\": {}}}\n",
            "  }}\n",
            "}}\n"
        ),
        interp_json.join(",\n"),
        bat_floor,
        comp_floor,
        sizes,
        seed_time.as_secs_f64() * 1e3,
        cold_best[0].as_secs_f64() * 1e3,
        cold_best[1].as_secs_f64() * 1e3,
        cold_best[2].as_secs_f64() * 1e3,
        new_warm
            .expect("full run times the warm decoded sweep")
            .as_secs_f64()
            * 1e3,
        speedup_cold[0],
        speedup_cold[1],
        speedup_cold[2],
        seed_time.as_secs_f64() / new_warm.unwrap().as_secs_f64(),
        sweep_floors[0],
        sweep_floors[1],
        sweep_floors[2],
        probe_overhead_pct,
        probe_noise_pct,
        cache.hits,
        cache.misses
    );
    std::fs::write(path, &json).expect("failed to write BENCH_engine.json");
    println!("\nwrote {path}");
}
