//! Execution-engine benchmark: measures what the engine overhaul
//! bought, and writes `BENCH_engine.json`.
//!
//! Two measurements:
//!
//! 1. **Interpreter throughput** (instructions/second) on the
//!    production kernel streams, for three engines: the *seed* engine
//!    (re-implemented here verbatim, with its per-instruction `Vec`
//!    source-register queries), the current reference engine
//!    (`Machine::run_reference`, allocation-free source sets), and the
//!    predecoded engine (`Machine::run_decoded`).
//! 2. **Fig. 6 sweep wall time** (10 square sizes × 5 variants of
//!    timing-mode estimation), seed engine — `Vec`-allocating
//!    interpreter, `Vec`-dependence DAG, no kernel memoization —
//!    versus the current engine, cold (kernel cache reset before each
//!    measured round) and warm.
//!
//! Every comparison first asserts the engines agree exactly (same
//! `ExecReport`, same makespan per estimate), so the speedups reported
//! are for interchangeable computations.

use std::hint::black_box;
use std::time::{Duration, Instant};
use sw_bench::paper::PAPER_FIG6_SCHED;
use sw_dgemm::timing::{estimate, kernel_cache_reset, kernel_cache_stats};
use sw_dgemm::Variant;
use sw_isa::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
use sw_isa::{DecodedProgram, Instr, Machine, SinkComm};

/// A faithful re-implementation of the seed revision's execution
/// engine, kept as the benchmark baseline: per-instruction `Vec`
/// source queries in the interpreter, `Vec`-backed task dependences in
/// the discrete-event DAG, and no kernel-report memoization.
mod seed {
    use sw_arch::consts::{MESH_TRANSIT_CYCLES, VREG_COUNT};
    use sw_arch::V256;
    use sw_dgemm::variants::raw::RawParams;
    use sw_dgemm::{GemmPlan, Variant};
    use sw_isa::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
    use sw_isa::{ExecReport, IReg, Instr, VReg};
    use sw_mem::dma::{BandwidthModel, DmaMode};

    const IREG_COUNT: usize = 8;
    const BRANCH_TAKEN_PENALTY: u64 = 2;
    const STEP_SYNC_CYCLES: u64 = MESH_TRANSIT_CYCLES + 40;

    fn vsrcs(i: &Instr) -> Vec<VReg> {
        match *i {
            Instr::Vmad { a, b, c, .. } => vec![a, b, c],
            Instr::Vstd { s, .. } => vec![s],
            _ => vec![],
        }
    }

    fn isrcs(i: &Instr) -> Vec<IReg> {
        match *i {
            Instr::Vldd { base, .. }
            | Instr::Vstd { base, .. }
            | Instr::Ldde { base, .. }
            | Instr::Vldr { base, .. }
            | Instr::Lddec { base, .. } => vec![base],
            Instr::Addl { s, .. } | Instr::Bne { s, .. } => vec![s],
            _ => vec![],
        }
    }

    /// The seed `Machine::run` loop, heap-allocating source sets per
    /// dynamic instruction. Broadcasts are sunk and receives return
    /// zero (`SinkComm` semantics).
    pub fn run(prog: &[Instr], ldm: &mut [f64]) -> ExecReport {
        let mut vregs = [V256::ZERO; VREG_COUNT];
        let mut iregs = [0i64; IREG_COUNT];
        let mut report = ExecReport::default();
        let mut vready = [0u64; VREG_COUNT];
        let mut iready = [0u64; IREG_COUNT];
        let mut cur: u64 = 0;
        let mut p0_used = false;
        let mut p1_used = false;
        let mut last_issue: u64 = 0;
        let mut pc = 0usize;

        let addr = |iregs: &[i64; IREG_COUNT], base: IReg, off: i64| -> usize {
            let a = iregs[base.idx()] + off;
            assert!(a >= 0);
            a as usize
        };

        while pc < prog.len() {
            let instr = prog[pc];
            report.instructions += 1;
            assert!(report.instructions <= 200_000_000, "runaway loop");

            let mut t = cur;
            for r in vsrcs(&instr) {
                t = t.max(vready[r.idx()]);
            }
            for r in isrcs(&instr) {
                t = t.max(iready[r.idx()]);
            }
            if let Some(d) = instr.vdst() {
                t = t.max(vready[d.idx()]);
            }
            if let Some(d) = instr.idst() {
                t = t.max(iready[d.idx()]);
            }
            loop {
                if t > cur {
                    cur = t;
                    p0_used = false;
                    p1_used = false;
                }
                let used = match instr.pipe() {
                    sw_isa::instr::Pipe::P0 => &mut p0_used,
                    sw_isa::instr::Pipe::P1 => &mut p1_used,
                };
                if !*used {
                    *used = true;
                    break;
                }
                t += 1;
            }
            if p0_used && p1_used {
                report.dual_issue_cycles += 1;
            }
            last_issue = last_issue.max(t);

            if let Some(d) = instr.vdst() {
                vready[d.idx()] = t + instr.latency();
            }
            if let Some(d) = instr.idst() {
                iready[d.idx()] = t + instr.latency();
            }
            let mut next_pc = pc + 1;
            match instr {
                Instr::Vmad { a, b, c, d } => {
                    report.vmads += 1;
                    vregs[d.idx()] = vregs[a.idx()].fma(vregs[b.idx()], vregs[c.idx()]);
                }
                Instr::Vldd { d, base, off } => {
                    let a = addr(&iregs, base, off);
                    vregs[d.idx()] = V256::load(&ldm[a..]);
                }
                Instr::Vstd { s, base, off } => {
                    let a = addr(&iregs, base, off);
                    vregs[s.idx()].store(&mut ldm[a..a + 4]);
                }
                Instr::Ldde { d, base, off } => {
                    let a = addr(&iregs, base, off);
                    vregs[d.idx()] = V256::splat(ldm[a]);
                }
                Instr::Vldr { d, base, off, .. } => {
                    let a = addr(&iregs, base, off);
                    vregs[d.idx()] = V256::load(&ldm[a..]);
                }
                Instr::Lddec { d, base, off, .. } => {
                    let a = addr(&iregs, base, off);
                    vregs[d.idx()] = V256::splat(ldm[a]);
                }
                Instr::Getr { d } | Instr::Getc { d } => {
                    vregs[d.idx()] = V256::ZERO;
                }
                Instr::Vclr { d } => {
                    vregs[d.idx()] = V256::ZERO;
                }
                Instr::Addl { d, s, imm } => {
                    iregs[d.idx()] = iregs[s.idx()] + imm;
                }
                Instr::Setl { d, imm } => {
                    iregs[d.idx()] = imm;
                }
                Instr::Bne { s, target } => {
                    if iregs[s.idx()] != 0 {
                        report.taken_branches += 1;
                        next_pc = target;
                        cur = t + 1 + BRANCH_TAKEN_PENALTY;
                        p0_used = false;
                        p1_used = false;
                    }
                }
                Instr::Nop => {}
            }
            pc = next_pc;
        }
        report.cycles = if report.instructions == 0 {
            0
        } else {
            last_issue + 1
        };
        report
    }

    /// The seed DAG: task dependences heap-allocated per task.
    #[derive(Default)]
    pub struct SeedDag {
        tasks: Vec<(u8, u64, Vec<usize>)>, // (resource, duration, deps)
    }

    const DMA: u8 = 0;
    const CPES: u8 = 1;

    impl SeedDag {
        fn task(&mut self, resource: u8, duration: u64, deps: &[usize]) -> usize {
            let id = self.tasks.len();
            self.tasks.push((resource, duration, deps.to_vec()));
            id
        }

        fn schedule(&self) -> u64 {
            let mut finish = vec![0u64; self.tasks.len()];
            let mut dma_free = 0u64;
            let mut cpes_free = 0u64;
            let mut makespan = 0u64;
            for (i, (res, dur, deps)) in self.tasks.iter().enumerate() {
                let ready = deps.iter().map(|&d| finish[d]).max().unwrap_or(0);
                let start = if *res == DMA {
                    ready.max(dma_free)
                } else {
                    ready.max(cpes_free)
                };
                let end = start + dur;
                if *res == DMA {
                    dma_free = end;
                } else {
                    cpes_free = end;
                }
                finish[i] = end;
                makespan = makespan.max(end);
            }
            makespan
        }
    }

    /// The seed `measure_kernel`: regenerates and re-executes the
    /// kernel stream on every call (no memoization), on the
    /// `Vec`-allocating interpreter.
    pub fn measure_kernel(pm: usize, pn: usize, pk: usize, style: KernelStyle) -> ExecReport {
        let a_base = 0;
        let b_base = (a_base + pm * pk).next_multiple_of(4);
        let c_base = (b_base + pk * pn).next_multiple_of(4);
        let alpha_addr = c_base + pm * pn;
        let cfg = BlockKernelCfg {
            pm,
            pn,
            pk,
            a_src: Operand::Ldm,
            b_src: Operand::Ldm,
            a_base,
            b_base,
            c_base,
            alpha_addr,
        };
        let mut ldm = vec![0.0f64; alpha_addr + 1];
        ldm[alpha_addr] = 1.0;
        run(&gen_block_kernel(&cfg, style), &mut ldm)
    }

    /// The seed shared-variant estimate: same schedule construction as
    /// `sw_dgemm::timing::build_shared_dag`, on the seed DAG and the
    /// seed interpreter. Returns the makespan in cycles.
    pub fn estimate_shared_makespan(variant: Variant, m: usize, n: usize, k: usize) -> u64 {
        let model = BandwidthModel::calibrated();
        let params = variant.paper_params();
        let plan = GemmPlan::new(m, n, k, params, variant.double_buffered()).unwrap();
        let mapping = variant.mapping();
        let p = plan.params;
        let kernel = measure_kernel(p.pm, p.pn, p.pk, variant.kernel_style());
        let block_compute = 8 * (kernel.cycles + STEP_SYNC_CYCLES);

        let (a_fp, b_fp, c_fp) = (m * k * 8, k * n * 8, m * n * 8);
        let (bm, bn, bk) = (p.bm(), p.bn(), p.bk());
        let b_cycles = model.transfer_cycles(DmaMode::Pe, 64, bk * bn * 8, p.pk * 8, b_fp);
        let (ac_mode, ac_desc, ac_run) = match mapping {
            sw_dgemm::mapping::Mapping::Pe => (DmaMode::Pe, 64, p.pm * 8),
            sw_dgemm::mapping::Mapping::Row => (DmaMode::Row, 8, bm * 8),
        };
        let a_cycles = model.transfer_cycles(ac_mode, ac_desc, bm * bk * 8, ac_run, a_fp);
        let c_cycles = model.transfer_cycles(ac_mode, ac_desc, bm * bn * 8, ac_run, c_fp);

        let mut dag = SeedDag::default();
        let mut prev_compute: Option<usize> = None;
        let dep = |t: Option<usize>| t.map(|x| vec![x]).unwrap_or_default();
        for _j in 0..plan.grid_n {
            for _l in 0..plan.grid_k {
                let b_task = dag.task(DMA, b_cycles, &dep(prev_compute));
                if plan.double_buffered {
                    let mut pref_a = dag.task(DMA, a_cycles, &dep(prev_compute));
                    let mut pref_c = dag.task(DMA, c_cycles, &dep(prev_compute));
                    for i in 0..plan.grid_m {
                        let (next_a, next_c) = if i + 1 < plan.grid_m {
                            let a = dag.task(DMA, a_cycles, &dep(prev_compute));
                            let c = dag.task(DMA, c_cycles, &dep(prev_compute));
                            (Some(a), Some(c))
                        } else {
                            (None, None)
                        };
                        let mut deps = vec![pref_a, pref_c, b_task];
                        if let Some(pc) = prev_compute {
                            deps.push(pc);
                        }
                        let compute = dag.task(CPES, block_compute, &deps);
                        dag.task(DMA, c_cycles, &[compute]);
                        prev_compute = Some(compute);
                        if let (Some(a), Some(c)) = (next_a, next_c) {
                            pref_a = a;
                            pref_c = c;
                        }
                    }
                } else {
                    for _i in 0..plan.grid_m {
                        let a = dag.task(DMA, a_cycles, &dep(prev_compute));
                        let c = dag.task(DMA, c_cycles, &dep(prev_compute));
                        let compute = dag.task(CPES, block_compute, &[a, c, b_task]);
                        dag.task(DMA, c_cycles, &[compute]);
                        prev_compute = Some(compute);
                    }
                }
            }
        }
        dag.schedule()
    }

    /// The seed RAW-baseline estimate (same construction as
    /// `sw_dgemm::timing::estimate_raw`), returning the makespan.
    pub fn estimate_raw_makespan(m: usize, n: usize, k: usize) -> u64 {
        let model = BandwidthModel::calibrated();
        let raw = RawParams::paper();
        let kernel = measure_kernel(raw.pm, raw.pn, raw.kc, KernelStyle::Naive);
        let chunks = k / raw.kc;
        let (a_fp, b_fp, c_fp) = (m * k * 8, k * n * 8, m * n * 8);
        let c_io =
            2 * model.transfer_cycles(DmaMode::Pe, 64, 64 * raw.pm * raw.pn * 8, raw.pm * 8, c_fp);
        let a_chunk =
            model.transfer_cycles(DmaMode::Pe, 64, 64 * raw.pm * raw.kc * 8, raw.pm * 8, a_fp);
        let b_chunk =
            model.transfer_cycles(DmaMode::Pe, 64, 64 * raw.kc * raw.pn * 8, raw.kc * 8, b_fp);
        let dma_per_wave = c_io + chunks as u64 * (a_chunk + b_chunk);
        let compute_per_wave = chunks as u64 * kernel.cycles;
        let waves = (m / 8 / raw.pm) * (n / 8 / raw.pn);

        let mut dag = SeedDag::default();
        let mut prev: Option<usize> = None;
        for _ in 0..waves {
            let deps = prev.map(|t| vec![t]).unwrap_or_default();
            let dma = dag.task(DMA, dma_per_wave, &deps);
            let compute = dag.task(CPES, compute_per_wave, &[dma]);
            prev = Some(compute);
        }
        dag.schedule()
    }

    pub fn estimate_makespan(variant: Variant, mnk: usize) -> u64 {
        match variant {
            Variant::Raw => estimate_raw_makespan(mnk, mnk, mnk),
            _ => estimate_shared_makespan(variant, mnk, mnk, mnk),
        }
    }
}

/// Hardware-normalized probe-overhead gate: the fig6-sweep speedup
/// over the in-process seed engine is a ratio of two same-machine
/// measurements, so if the observability hooks (registry counters,
/// disabled tracer, `PROBE = false` interpreter) cost anything on the
/// hot path, the cold speedup drops. The committed
/// `BENCH_engine.json` pins `speedup_cold_floor`, the conservative
/// lower edge of the ratio's observed noise band from before the
/// observability layer existed; the gate requires the measured median
/// ratio to stay within 2% of that floor. The floor is carried
/// forward verbatim on regeneration (never ratcheted down by a noisy
/// run), so only a deliberate re-bless moves it.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Times `f` over `rounds` calls, returning the fastest round.
fn best_of<F: FnMut()>(rounds: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..rounds {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best
}

/// Times `f` adaptively so the total measured window is ≥ `floor`,
/// returning seconds per call.
fn secs_per_call<F: FnMut()>(floor: Duration, mut f: F) -> f64 {
    let mut n = 1u32;
    loop {
        let t = Instant::now();
        for _ in 0..n {
            f();
        }
        let el = t.elapsed();
        if el >= floor {
            return el.as_secs_f64() / n as f64;
        }
        n = n.saturating_mul(2);
    }
}

fn kernel_cfg(pn: usize) -> BlockKernelCfg {
    BlockKernelCfg {
        pm: 16,
        pn,
        pk: 96,
        a_src: Operand::Ldm,
        b_src: Operand::Ldm,
        a_base: 0,
        b_base: 2048,
        c_base: 6144,
        alpha_addr: 8000,
    }
}

struct InterpRow {
    stream: &'static str,
    instructions: u64,
    seed_mips: f64,
    reference_mips: f64,
    decoded_mips: f64,
}

fn bench_interpreters(style: KernelStyle, stream: &'static str) -> InterpRow {
    let cfg = kernel_cfg(32);
    let prog: Vec<Instr> = gen_block_kernel(&cfg, style);
    let decoded = DecodedProgram::new(&prog);
    let fresh_ldm = || {
        let mut l = vec![0.0f64; 8192];
        l[cfg.alpha_addr] = 1.0;
        l
    };

    // Equivalence gate: all three engines must agree exactly.
    let mut l1 = fresh_ldm();
    let r_seed = seed::run(&prog, &mut l1);
    let mut l2 = fresh_ldm();
    let mut comm = SinkComm;
    let r_ref = Machine::new(&mut l2, &mut comm).run_reference(&prog);
    let mut l3 = fresh_ldm();
    let mut comm = SinkComm;
    let r_dec = Machine::new(&mut l3, &mut comm).run_decoded(&decoded);
    assert_eq!(
        r_seed, r_ref,
        "seed vs reference reports diverge on {stream}"
    );
    assert_eq!(
        r_ref, r_dec,
        "reference vs decoded reports diverge on {stream}"
    );
    assert_eq!(l1, l2, "seed vs reference LDM diverges on {stream}");
    assert_eq!(l2, l3, "reference vs decoded LDM diverges on {stream}");

    let floor = Duration::from_millis(300);
    let mut ldm = fresh_ldm();
    let seed_s = secs_per_call(floor, || {
        black_box(seed::run(&prog, &mut ldm));
    });
    let mut ldm = fresh_ldm();
    let mut comm = SinkComm;
    let ref_s = secs_per_call(floor, || {
        black_box(Machine::new(&mut ldm, &mut comm).run_reference(&prog));
    });
    let mut ldm = fresh_ldm();
    let mut comm = SinkComm;
    let dec_s = secs_per_call(floor, || {
        black_box(Machine::new(&mut ldm, &mut comm).run_decoded(&decoded));
    });

    let mips = |s: f64| r_seed.instructions as f64 / s / 1e6;
    InterpRow {
        stream,
        instructions: r_seed.instructions,
        seed_mips: mips(seed_s),
        reference_mips: mips(ref_s),
        decoded_mips: mips(dec_s),
    }
}

fn main() {
    let sizes: Vec<usize> = PAPER_FIG6_SCHED.iter().map(|&(s, _)| s).collect();

    // 1. Fig. 6 sweep, seed vs current engine, in *interleaved pairs*:
    //    each round times one seed sweep then one cold current sweep
    //    (kernel cache reset), and the reported speedup is the median
    //    of the per-pair ratios. Pairing cancels slow drift (CPU
    //    frequency scaling, background load) that separate
    //    seed-then-current phases would bake into the ratio — the
    //    probe-overhead gate below needs that stability.
    assert_eq!(
        kernel_cache_stats().misses,
        0,
        "cache must be cold for the cold-sweep number"
    );
    let run_new_sweep = || {
        for &s in &sizes {
            for v in Variant::ALL {
                black_box(estimate(v, s, s, s).unwrap());
            }
        }
    };
    let seed_sweep = || {
        for &s in &sizes {
            for v in Variant::ALL {
                black_box(seed::estimate_makespan(v, s));
            }
        }
    };
    let mut pair_ratios = Vec::new();
    let mut seed_time = Duration::MAX;
    let mut new_cold = Duration::MAX;
    let mut cache = None;
    for round in 0..5 {
        let t = Instant::now();
        seed_sweep();
        let s = t.elapsed();
        kernel_cache_reset();
        let t = Instant::now();
        run_new_sweep();
        let c = t.elapsed();
        if round == 0 {
            cache = Some(kernel_cache_stats());
        }
        seed_time = seed_time.min(s);
        new_cold = new_cold.min(c);
        pair_ratios.push(s.as_secs_f64() / c.as_secs_f64());
    }
    pair_ratios.sort_by(f64::total_cmp);
    let sweep_speedup_cold = pair_ratios[pair_ratios.len() / 2];
    let cache = cache.expect("at least one measured round");

    // Warm: the cache now holds every kernel shape the sweep needs.
    let new_warm = best_of(3, run_new_sweep);

    // 2. Per-estimate equivalence gate against the current engine.
    let mut checked = false;
    for &s in &sizes {
        for v in Variant::ALL {
            let seed_mk = seed::estimate_makespan(v, s);
            let new_mk = estimate(v, s, s, s).unwrap().makespan_cycles;
            assert_eq!(
                seed_mk, new_mk,
                "seed vs current makespan diverges for {v} at {s}"
            );
            checked = true;
        }
    }
    assert!(checked);

    // 3. Interpreter throughput on the production kernel streams.
    let rows = [
        bench_interpreters(KernelStyle::Scheduled, "sched"),
        bench_interpreters(KernelStyle::Naive, "naive"),
    ];

    let sweep_speedup_warm = seed_time.as_secs_f64() / new_warm.as_secs_f64();

    println!("== interpreter throughput (Minstr/s) ==");
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "stream", "instrs", "seed", "ref", "decoded", "x-seed"
    );
    for r in &rows {
        println!(
            "{:<8} {:>12} {:>10.1} {:>10.1} {:>10.1} {:>7.2}x",
            r.stream,
            r.instructions,
            r.seed_mips,
            r.reference_mips,
            r.decoded_mips,
            r.decoded_mips / r.seed_mips
        );
    }
    println!();
    println!("== fig6 sweep wall time (10 sizes x 5 variants) ==");
    println!(
        "seed engine      : {:>10.1} ms",
        seed_time.as_secs_f64() * 1e3
    );
    println!(
        "current (cold)   : {:>10.1} ms   {:.2}x (median of 5 interleaved pairs)",
        new_cold.as_secs_f64() * 1e3,
        sweep_speedup_cold
    );
    println!(
        "current (warm)   : {:>10.1} ms   {:.2}x",
        new_warm.as_secs_f64() * 1e3,
        sweep_speedup_warm
    );
    println!(
        "kernel cache     : {} hits / {} misses (cold sweep)",
        cache.hits, cache.misses
    );

    // Probe-overhead gate: with probes disabled the sweep's
    // seed-relative speedup must stay within 2% of the pinned
    // pre-observability floor (a ratio of two same-process
    // measurements, so hardware-independent).
    let path = "BENCH_engine.json";
    let baseline = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| json_number(&t, "speedup_cold_floor"));
    let (floor, probe_overhead_pct) = match baseline {
        Some(floor) => {
            let overhead = (1.0 - sweep_speedup_cold / floor) * 100.0;
            println!(
                "probe overhead   : {overhead:>9.1} %   (cold speedup {sweep_speedup_cold:.2}x vs floor {floor:.2}x; negative = headroom)"
            );
            assert!(
                sweep_speedup_cold >= 0.98 * floor,
                "disabled probes cost {overhead:.1}% of the fig6 sweep \
                 (cold speedup {sweep_speedup_cold:.2}x < 98% of the pinned floor {floor:.2}x)"
            );
            (floor, overhead)
        }
        None => {
            // First run on a tree without a pinned floor: initialize
            // it 5% under the measured median.
            let floor = 0.95 * sweep_speedup_cold;
            println!(
                "probe overhead   : no pinned speedup_cold_floor in {path}; initializing to {floor:.2}x"
            );
            (floor, 0.0)
        }
    };

    let interp_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"stream\": \"{}\", \"instructions\": {}, ",
                    "\"seed_minstr_per_s\": {:.1}, \"reference_minstr_per_s\": {:.1}, ",
                    "\"decoded_minstr_per_s\": {:.1}, \"decoded_speedup_vs_seed\": {:.2}}}"
                ),
                r.stream,
                r.instructions,
                r.seed_mips,
                r.reference_mips,
                r.decoded_mips,
                r.decoded_mips / r.seed_mips
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"interpreter\": [\n{}\n  ],\n",
            "  \"fig6_sweep\": {{\n",
            "    \"sizes\": {:?},\n",
            "    \"variants\": 5,\n",
            "    \"seed_engine_ms\": {:.2},\n",
            "    \"current_engine_cold_ms\": {:.2},\n",
            "    \"current_engine_warm_ms\": {:.2},\n",
            "    \"speedup_cold\": {:.2},\n",
            "    \"speedup_warm\": {:.2},\n",
            "    \"speedup_cold_floor\": {:.2},\n",
            "    \"probe_overhead_pct\": {:.1},\n",
            "    \"kernel_cache_cold\": {{\"hits\": {}, \"misses\": {}}}\n",
            "  }}\n",
            "}}\n"
        ),
        interp_json.join(",\n"),
        sizes,
        seed_time.as_secs_f64() * 1e3,
        new_cold.as_secs_f64() * 1e3,
        new_warm.as_secs_f64() * 1e3,
        sweep_speedup_cold,
        sweep_speedup_warm,
        floor,
        probe_overhead_pct,
        cache.hits,
        cache.misses
    );
    std::fs::write(path, &json).expect("failed to write BENCH_engine.json");
    println!("\nwrote {path}");
}
