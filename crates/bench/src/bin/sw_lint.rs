//! `sw-lint` — static analysis over the DGEMM plans, from the shell.
//!
//! Lints all five Fig. 6 variants at the paper's production blocking
//! (mesh rendezvous, LDM safety, structural checks), then cross-checks
//! the static stall prover against the dynamic pipeline probe on each
//! variant's kernel stream. Exits non-zero if any Error-severity
//! finding survives.
//!
//! ```text
//! cargo run -p sw-bench --release --bin sw-lint
//! cargo run -p sw-bench --release --bin sw-lint -- --json lint.json
//! cargo run -p sw-bench --release --bin sw-lint -- --custom 16x8x16 --style sched --unroll 4
//! ```

use sw_dgemm::variants::raw::RawParams;
use sw_dgemm::{lint_variant, Variant};
use sw_isa::kernels::{BlockKernelCfg, KernelStyle, Operand};
use sw_isa::{gen_block_kernel_looped, Machine, SinkComm};
use sw_lint::{lint_stream, prove_stalls, Bound, LintReport};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = flag_value(&args, "--json");
    let custom = flag_value(&args, "--custom");
    let style = match flag_value(&args, "--style").as_deref() {
        None | Some("sched") | Some("scheduled") => KernelStyle::Scheduled,
        Some("naive") => KernelStyle::Naive,
        Some(other) => die(&format!("unknown --style {other} (naive|sched)")),
    };
    let unroll = flag_value(&args, "--unroll").map(|s| {
        s.parse::<usize>()
            .unwrap_or_else(|_| die(&format!("bad --unroll {s}")))
    });

    let mut errors = 0usize;
    let mut json_entries: Vec<String> = Vec::new();

    if let Some(shape) = custom {
        errors += lint_custom(&shape, style, unroll, &mut json_entries);
    } else {
        for v in Variant::ALL {
            errors += lint_one_variant(v, &mut json_entries);
        }
    }

    if let Some(path) = json_path {
        let json = format!(
            "{{\"schema\":1,\"reports\":[{}]}}\n",
            json_entries.join(",")
        );
        std::fs::write(&path, json).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        println!("\nJSON report written to {path}");
    }

    if errors > 0 {
        eprintln!("\nsw-lint: {errors} Error-severity finding(s)");
        std::process::exit(1);
    }
    println!("\nsw-lint: all streams clean");
}

/// Lints one variant's plan at the paper blocking and cross-checks the
/// stall prover on its kernel stream. Returns the Error count.
fn lint_one_variant(v: Variant, json: &mut Vec<String>) -> usize {
    let params = v.paper_params();
    let report = lint_variant(v, &params, RawParams::paper());
    let (pm, pn, pk, style) = match v {
        Variant::Raw => {
            let rp = RawParams::paper();
            (rp.pm, rp.pn, rp.kc, KernelStyle::Naive)
        }
        _ => (params.pm, params.pn, params.pk, v.kernel_style()),
    };
    print_report(v.name(), &report);
    stall_crosscheck(pm, pn, pk, style, default_unroll(pk));
    json.push(json_entry(v.name(), &report));
    report.error_count()
}

/// Lints a user-supplied `PMxPNxPK` kernel shape. Returns the Error
/// count.
fn lint_custom(
    shape: &str,
    style: KernelStyle,
    unroll: Option<usize>,
    json: &mut Vec<String>,
) -> usize {
    let dims: Vec<usize> = shape
        .split('x')
        .map(|t| {
            t.parse()
                .unwrap_or_else(|_| die(&format!("bad --custom shape {shape} (want PMxPNxPK)")))
        })
        .collect();
    let [pm, pn, pk] = dims[..] else {
        die(&format!("bad --custom shape {shape} (want PMxPNxPK)"));
    };
    let unroll = unroll.unwrap_or_else(|| default_unroll(pk));
    let prog = gen_block_kernel_looped(&custom_cfg(pm, pn, pk), style, unroll);
    let report = lint_stream(&prog, None);
    let name = format!("custom {pm}x{pn}x{pk}");
    print_report(&name, &report);
    stall_crosscheck(pm, pn, pk, style, unroll);
    json.push(json_entry(&name, &report));
    report.error_count()
}

/// Tightly packed synthetic layout for a stand-alone kernel.
fn custom_cfg(pm: usize, pn: usize, pk: usize) -> BlockKernelCfg {
    let a_base = 0;
    let b_base = (a_base + pm * pk).next_multiple_of(4);
    let c_base = (b_base + pk * pn).next_multiple_of(4);
    BlockKernelCfg {
        pm,
        pn,
        pk,
        a_src: Operand::Ldm,
        b_src: Operand::Ldm,
        a_base,
        b_base,
        c_base,
        alpha_addr: c_base + pm * pn,
    }
}

fn default_unroll(pk: usize) -> usize {
    if pk.is_multiple_of(4) {
        4
    } else {
        1
    }
}

/// Proves the static stall lower bound and compares it against the
/// dynamic probe on the same stream (they must agree exactly here: the
/// loop counters of generated kernels resolve statically).
fn stall_crosscheck(pm: usize, pn: usize, pk: usize, style: KernelStyle, unroll: usize) {
    let cfg = custom_cfg(pm, pn, pk);
    let prog = gen_block_kernel_looped(&cfg, style, unroll);
    let proved = prove_stalls(&prog);
    let mut ldm = vec![0.0f64; cfg.alpha_addr + 1];
    ldm[cfg.alpha_addr] = 1.0;
    let mut comm = SinkComm;
    let (_, dynamic) = Machine::new(&mut ldm, &mut comm).run_probed(&prog);
    let bound = match proved.bound {
        Bound::Exact => "exact",
        Bound::LowerBound => "lower bound",
    };
    let verdict = if proved.report == dynamic {
        "MATCH"
    } else if proved.bound == Bound::LowerBound {
        "bounded"
    } else {
        "MISMATCH"
    };
    println!(
        "  stalls: static {} ({bound}) vs dynamic {} over {} cycles — {verdict}",
        proved.report.stall_cycles(),
        dynamic.stall_cycles(),
        dynamic.cycles,
    );
    assert_ne!(verdict, "MISMATCH", "static stall prover diverged");
}

fn print_report(name: &str, report: &LintReport) {
    if report.is_clean() {
        println!("{name:<16} clean");
    } else {
        println!(
            "{name:<16} {} error(s), {} warning(s)",
            report.error_count(),
            report.warning_count()
        );
        print!("{}", report.render_text());
    }
}

fn json_entry(name: &str, report: &LintReport) -> String {
    format!(
        "{{\"name\":{:?},\"errors\":{},\"warnings\":{},\"report\":{}}}",
        name,
        report.error_count(),
        report.warning_count(),
        report.to_json()
    )
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    })
}

fn die(msg: &str) -> ! {
    eprintln!("sw-lint: {msg}");
    std::process::exit(2);
}
