//! Mesh-transport benchmark: measures what the lock-free SPSC fast
//! path (`MeshTransport::Ring`) and the bulk panel broadcasts
//! (`MeshPath::Bulk`) bought over the Mutex-channel baseline, and
//! writes `BENCH_mesh.json`.
//!
//! Three sections:
//!
//! 1. **Port-level throughput** (Mwords/s): one mesh row — a
//!    broadcaster and its 7 mates on live threads — streaming
//!    16-double panels, for the four (transport × path) combinations.
//! 2. **Equivalence gates** (always asserted): at a small functional
//!    size, every combination must produce a bitwise-identical C and
//!    identical `MeshStats`/`MeshGridStats` cell totals; under a
//!    seeded `FaultSpec` (mesh drops + DMA bit flips), every
//!    combination must additionally report identical `faults.*`
//!    counters — the batched paths consume exactly the per-word
//!    `send_idx` sequence the injector keys on.
//! 3. **Functional fig6-size run**: `SCHED` at the paper's blocking
//!    (default 1536³, `--size` to override), `Fallback`+`Word` versus
//!    `Ring`+`Bulk`, same operands. Reports the wall-clock speedup and
//!    asserts (with `--assert`) that it stays at or above the pinned
//!    `speedup_floor` in `BENCH_mesh.json`.
//!
//! The floor is initialized to 1.50× — the acceptance criterion,
//! deliberately conservative against the ~3.5× measured on the
//! development host, since Mutex contention (what the baseline pays)
//! scales with core count — and carried forward verbatim on
//! regeneration, never ratcheted by a fast run.

use std::time::{Duration, Instant};
use sw_arch::V256;
use sw_dgemm::gen::random_matrix;
use sw_dgemm::{
    AbftPolicy, DgemmReport, DgemmRunner, FaultSpec, Matrix, MeshPath, MeshTransport, Variant,
    WedgeSpec,
};
use sw_mesh::Mesh;
use sw_probe::metrics::MetricValue;

/// Panels streamed per port-level measurement (16 doubles = 4 words
/// each).
const MICRO_PANELS: usize = 50_000;

/// Default functional comparison size: the smallest Fig. 6 point,
/// running the paper's production blocking.
const FIG6_SIZE: usize = 1536;

/// Size of the (fast) equivalence-gate runs; a multiple of the
/// test-scale CG block in every dimension.
const EQUIV_SIZE: usize = 256;

/// Size of the deterministic-failure mesh-fault gates (a couple of CG
/// blocks — each failed attempt costs a full deadlock fuse, so these
/// stay small).
const FAULT_SIZE: usize = 128;

/// The four (transport, path) combinations, baseline first.
const COMBOS: [(MeshTransport, MeshPath, &str); 4] = [
    (MeshTransport::Fallback, MeshPath::Word, "fallback+word"),
    (MeshTransport::Fallback, MeshPath::Bulk, "fallback+bulk"),
    (MeshTransport::Ring, MeshPath::Word, "ring+word"),
    (MeshTransport::Ring, MeshPath::Bulk, "ring+bulk"),
];

fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Streams `MICRO_PANELS` 16-double panels from one broadcaster to its
/// 7 row mates on live threads; returns delivered words per second, in
/// millions (a broadcast delivers 7 copies of each of its 4 words).
fn micro_throughput(transport: MeshTransport, bulk: bool) -> f64 {
    let mesh = Mesh::with_transport(Duration::from_secs(30), transport);
    let mut ports = mesh.ports();
    ports.truncate(8); // row 0: broadcaster (0,0) + 7 mates
    let mates: Vec<_> = ports.drain(1..).collect();
    let tx = ports.pop().expect("port (0,0)");
    let t0 = Instant::now();
    std::thread::scope(|s| {
        s.spawn(move || {
            let panel: [f64; 16] = std::array::from_fn(|i| i as f64);
            for _ in 0..MICRO_PANELS {
                if bulk {
                    tx.row_bcast_panel(&panel).expect("bcast");
                } else {
                    for w in 0..4 {
                        tx.row_bcast(V256::load(&panel[4 * w..])).expect("bcast");
                    }
                }
            }
        });
        for p in mates {
            s.spawn(move || {
                let mut out = [0.0f64; 16];
                for _ in 0..MICRO_PANELS {
                    if bulk {
                        p.recv_row_panel(&mut out).expect("recv");
                    } else {
                        for w in 0..4 {
                            p.getr().expect("recv").store(&mut out[4 * w..4 * w + 4]);
                        }
                    }
                }
                std::hint::black_box(out);
            });
        }
    });
    (MICRO_PANELS * 4 * 7) as f64 / t0.elapsed().as_secs_f64() / 1e6
}

/// One functional run of `SCHED` with the given mesh configuration.
fn run_cfg(
    a: &Matrix,
    b: &Matrix,
    c0: &Matrix,
    transport: MeshTransport,
    path: MeshPath,
    faults: Option<(FaultSpec, AbftPolicy)>,
) -> (Matrix, Result<DgemmReport, sw_dgemm::DgemmError>) {
    let mut c = c0.clone();
    let mut runner = DgemmRunner::new(Variant::Sched)
        .mesh_transport(transport)
        .mesh_path(path);
    if let Some((spec, abft)) = faults {
        runner = runner
            .faults(spec)
            .abft(abft)
            .mesh_timeout(Duration::from_millis(300));
    }
    let report = runner.run(1.5, a, b, 0.5, &mut c);
    (c, report)
}

/// Asserts every combination agrees with the baseline bit-for-bit on a
/// run expected to succeed: C, `MeshStats`, per-CPE `MeshGridStats`
/// cells, and (when a fault plan is installed) the full `faults.*`
/// snapshot.
fn assert_equivalence(size: usize, faults: Option<(FaultSpec, AbftPolicy)>) {
    let a = random_matrix(size, size, 101);
    let b = random_matrix(size, size, 102);
    let c0 = random_matrix(size, size, 103);
    let (bt, bp, bname) = COMBOS[0];
    let (c_base, r_base) = run_cfg(&a, &b, &c0, bt, bp, faults);
    let r_base = r_base.expect("baseline run failed");
    for &(t, p, name) in &COMBOS[1..] {
        let (c, r) = run_cfg(&a, &b, &c0, t, p, faults);
        let r = r.unwrap_or_else(|e| panic!("{name} run failed: {e}"));
        assert_eq!(
            c.max_abs_diff(&c_base),
            0.0,
            "{name} C diverges bitwise from {bname}"
        );
        assert_eq!(
            r.stats.mesh, r_base.stats.mesh,
            "{name} MeshStats diverge from {bname}"
        );
        assert_eq!(
            r.stats.grid, r_base.stats.grid,
            "{name} per-CPE cell totals diverge from {bname}"
        );
        assert_eq!(
            r.faults, r_base.faults,
            "{name} faults.* counters diverge from {bname}"
        );
    }
    if let Some((spec, _)) = faults {
        let f = r_base.faults.expect("fault plan installed");
        assert!(
            f.total_injected() > 0,
            "fault gate vacuous: seed {} injected nothing",
            spec.seed
        );
    }
}

/// `faults.*` counters from a global-registry snapshot, in name order.
fn faults_counters() -> Vec<(String, u64)> {
    sw_probe::metrics::global()
        .snapshot()
        .entries
        .iter()
        .filter_map(|(name, v)| match v {
            MetricValue::Counter(c) if name.starts_with("faults.") => Some((name.clone(), *c)),
            _ => None,
        })
        .collect()
}

/// Per-name deltas between two `faults.*` snapshots (counters are
/// monotonic; names absent before count from zero).
fn faults_delta(before: &[(String, u64)], after: &[(String, u64)]) -> Vec<(String, u64)> {
    after
        .iter()
        .map(|(name, v)| {
            let prev = before
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, p)| *p);
            (name.clone(), v - prev)
        })
        .collect()
}

/// A fault plan whose mesh damage is unrecoverable by design (a drop
/// starves a receive into a structured deadlock on every attempt):
/// asserts the outcome class AND the `faults.*` counter deltas —
/// published even on failure — are identical across all four
/// combinations. This is the direct gate on the tentpole claim: the
/// batched paths consume exactly the per-word `send_idx` sequence, so
/// the injector makes bit-for-bit the same decisions.
fn assert_fault_delta_equivalence(size: usize, spec: FaultSpec, must_inject: &str) {
    let a = random_matrix(size, size, 101);
    let b = random_matrix(size, size, 102);
    let c0 = random_matrix(size, size, 103);
    let mut base: Option<(bool, Vec<(String, u64)>)> = None;
    for &(t, p, name) in &COMBOS {
        let before = faults_counters();
        let (_, r) = run_cfg(&a, &b, &c0, t, p, Some((spec, AbftPolicy::Off)));
        let delta = faults_delta(&before, &faults_counters());
        let injected = delta
            .iter()
            .find(|(n, _)| n == must_inject)
            .map_or(0, |(_, v)| *v);
        assert!(
            injected > 0,
            "fault gate vacuous: {name} run injected no {must_inject}"
        );
        match &base {
            None => base = Some((r.is_ok(), delta)),
            Some((base_ok, base_delta)) => {
                assert_eq!(
                    r.is_ok(),
                    *base_ok,
                    "{name} outcome class diverges from {}",
                    COMBOS[0].2
                );
                assert_eq!(
                    &delta, base_delta,
                    "{name} faults.* deltas diverge from {}",
                    COMBOS[0].2
                );
            }
        }
    }
}

fn main() {
    let mut assert_floor = false;
    let mut size = FIG6_SIZE;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--assert" => assert_floor = true,
            "--size" => {
                size = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--size needs an integer");
            }
            other => panic!("unknown argument {other} (expected --assert | --size N)"),
        }
    }

    // 1. Port-level throughput.
    println!("== port throughput: 1 broadcaster -> 7 mates, 16-double panels (Mwords/s) ==");
    let micro: Vec<(&str, f64)> = [
        (
            "fallback_word",
            micro_throughput(MeshTransport::Fallback, false),
        ),
        (
            "fallback_panel",
            micro_throughput(MeshTransport::Fallback, true),
        ),
        ("ring_word", micro_throughput(MeshTransport::Ring, false)),
        ("ring_panel", micro_throughput(MeshTransport::Ring, true)),
    ]
    .to_vec();
    for (name, mwps) in &micro {
        println!("{name:<16} {mwps:>8.2}");
    }
    let micro_speedup = micro[3].1 / micro[0].1;
    println!("ring_panel / fallback_word: {micro_speedup:.2}x");

    // 2. Equivalence gates (always asserted).
    println!("\n== equivalence gates at {EQUIV_SIZE}^3 ==");
    assert_equivalence(EQUIV_SIZE, None);
    println!("clean: 4 combos bitwise identical (C, MeshStats, grid cells)");
    let heal_spec = FaultSpec {
        dma_bitflip_per_myriad: 2,
        ldm_bitflip_per_myriad: 2,
        dma_transient_per_myriad: 4,
        ..FaultSpec::seeded(0x5EED)
    };
    assert_equivalence(EQUIV_SIZE, Some((heal_spec, AbftPolicy::Correct)));
    println!(
        "healed (seed {:#x}): 4 combos identical faults.* and bitwise C",
        heal_spec.seed
    );
    let drop_spec = FaultSpec {
        mesh_drop_per_myriad: 1,
        ..FaultSpec::seeded(0xD20B)
    };
    assert_fault_delta_equivalence(FAULT_SIZE, drop_spec, "faults.injected.mesh_drop");
    println!(
        "mesh drops (seed {:#x}, {FAULT_SIZE}^3): 4 combos identical faults.* deltas",
        drop_spec.seed
    );
    let wedge_spec = FaultSpec {
        wedge: Some(WedgeSpec { cpe: 27, epoch: 0 }),
        ..FaultSpec::seeded(0x3ED6E)
    };
    assert_fault_delta_equivalence(FAULT_SIZE, wedge_spec, "faults.injected.mesh_wedge");
    println!(
        "mesh wedge (seed {:#x}, {FAULT_SIZE}^3): 4 combos identical faults.* deltas",
        wedge_spec.seed
    );

    // 3. Functional fig6-size run, baseline vs fast path.
    println!("\n== functional SCHED {size}^3, fallback+word vs ring+bulk ==");
    let a = random_matrix(size, size, 1);
    let b = random_matrix(size, size, 2);
    let c0 = random_matrix(size, size, 3);
    let (c_base, r_base) = run_cfg(&a, &b, &c0, MeshTransport::Fallback, MeshPath::Word, None);
    let r_base = r_base.expect("baseline fig6-size run failed");
    let (c_fast, r_fast) = run_cfg(&a, &b, &c0, MeshTransport::Ring, MeshPath::Bulk, None);
    let r_fast = r_fast.expect("fast-path fig6-size run failed");
    assert_eq!(
        c_fast.max_abs_diff(&c_base),
        0.0,
        "fast-path C diverges bitwise at {size}"
    );
    assert_eq!(
        r_fast.stats.mesh, r_base.stats.mesh,
        "MeshStats diverge at {size}"
    );
    assert_eq!(
        r_fast.stats.grid, r_base.stats.grid,
        "grid cells diverge at {size}"
    );
    let base_s = r_base.stats.wall.as_secs_f64();
    let fast_s = r_fast.stats.wall.as_secs_f64();
    let speedup = base_s / fast_s;
    println!("fallback+word : {base_s:>8.2} s");
    println!("ring+bulk     : {fast_s:>8.2} s   {speedup:.2}x");

    // Pinned floor: carried forward verbatim; initialized to the
    // 1.50x acceptance criterion on a tree without one.
    let path = "BENCH_mesh.json";
    let floor = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| json_number(&t, "speedup_floor"))
        .unwrap_or_else(|| {
            println!("no pinned speedup_floor in {path}; initializing to 1.50x");
            1.50
        });
    println!("pinned floor  : {floor:>8.2}x");
    if assert_floor {
        assert!(
            speedup >= floor,
            "mesh fast path regressed: {speedup:.2}x < pinned floor {floor:.2}x \
             at {size}^3 (fallback+word {base_s:.2}s, ring+bulk {fast_s:.2}s)"
        );
        println!("--assert: speedup {speedup:.2}x >= floor {floor:.2}x");
    }

    let micro_json: Vec<String> = micro
        .iter()
        .map(|(name, mwps)| format!("    \"{name}_mwords_per_s\": {mwps:.2}"))
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"micro\": {{\n",
            "    \"panels\": {},\n",
            "    \"panel_doubles\": 16,\n",
            "{},\n",
            "    \"ring_panel_speedup_vs_fallback_word\": {:.2}\n",
            "  }},\n",
            "  \"equivalence\": {{\n",
            "    \"size\": {},\n",
            "    \"combos\": 4,\n",
            "    \"bitwise_identical\": true,\n",
            "    \"heal_seed\": {},\n",
            "    \"mesh_drop_seed\": {},\n",
            "    \"mesh_wedge_seed\": {},\n",
            "    \"fault_counters_identical\": true\n",
            "  }},\n",
            "  \"functional\": {{\n",
            "    \"variant\": \"sched\",\n",
            "    \"size\": {},\n",
            "    \"fallback_word_s\": {:.2},\n",
            "    \"ring_bulk_s\": {:.2},\n",
            "    \"speedup\": {:.2},\n",
            "    \"speedup_floor\": {:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        MICRO_PANELS,
        micro_json.join(",\n"),
        micro_speedup,
        EQUIV_SIZE,
        heal_spec.seed,
        drop_spec.seed,
        wedge_spec.seed,
        size,
        base_s,
        fast_s,
        speedup,
        floor
    );
    std::fs::write(path, &json).expect("failed to write BENCH_mesh.json");
    println!("\nwrote {path}");
}
