//! Regenerates Figure 7: sustained performance of the optimized
//! (SCHED) DGEMM across matrix shapes. Two dimensions are held at
//! 9216 while the third sweeps — the paper's observation is that small
//! m is penalized (double-buffering prologue) while n and k barely
//! matter.
//!
//! ```text
//! cargo run -p sw-bench --release --bin fig7 [-- --csv fig7.csv]
//! ```

use sw_bench::{csv_arg, write_csv, Table};
use sw_dgemm::timing::estimate;
use sw_dgemm::Variant;

fn main() {
    let sweep = [1536usize, 3072, 4608, 6144, 9216, 12288, 15360];
    let base = 9216usize;
    let mut table = Table::new(["swept size", "vary m", "vary n", "vary k"]);
    for &s in &sweep {
        let gm = estimate(Variant::Sched, s, base, base)
            .expect("estimate")
            .gflops;
        let gn = estimate(Variant::Sched, base, s, base)
            .expect("estimate")
            .gflops;
        let gk = estimate(Variant::Sched, base, base, s)
            .expect("estimate")
            .gflops;
        table.row([
            s.to_string(),
            format!("{gm:.1}"),
            format!("{gn:.1}"),
            format!("{gk:.1}"),
        ]);
    }
    println!(
        "Figure 7 — SCHED performance across matrix shapes (Gflops/s; other two dims = 9216)\n"
    );
    println!("{}", table.render());
    println!("paper's observation: \"performance for matrices with small m is relatively low\"");
    println!("(double-buffering prologue amortizes over the M-loop) \"... n and k have");
    println!("negligible influence\" — both visible above.");
    if let Some(path) = csv_arg() {
        write_csv(&table, &path).expect("write CSV");
        println!("\nCSV written to {}", path.display());
    }

    println!("\n== metrics snapshot ==\n");
    print!("{}", sw_probe::metrics::global().snapshot().render());
}
