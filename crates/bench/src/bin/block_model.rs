//! Regenerates the §III-C block-size determination analysis: the
//! bandwidth bounds, the LDM feasibility region, and the register
//! blocking table.
//!
//! ```text
//! cargo run -p sw-bench --release --bin block_model
//! ```

use sw_bench::Table;
use sw_dgemm::model::{
    cg_bandwidth_reduction, enumerate_register_blockings, fits_ldm, min_bn, required_bandwidth_gbs,
};

fn main() {
    println!("§III-C.1 — CG-level blocking bound");
    println!("  F = 742.4 Gflops/s, W = 8 B/flop, Bt = 34 GB/s");
    println!(
        "  ⇒ bN > F·W/Bt = {:.1} (paper: bN ≥ 175, bK ≥ 350 with bK = 2·bN)\n",
        min_bn()
    );

    let mut t = Table::new(["bK", "bN", "reduction S", "required GB/s", "feasible?"]);
    for (bk, bn) in [
        (256, 128),
        (384, 192),
        (512, 256),
        (768, 256),
        (768, 384),
        (1024, 512),
    ] {
        let req = required_bandwidth_gbs(bk, bn);
        t.row([
            bk.to_string(),
            bn.to_string(),
            format!("{:.1}", cg_bandwidth_reduction(bk, bn, 9216)),
            format!("{req:.1}"),
            if req < 34.0 { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("§III-C.2 — thread-level LDM feasibility (pM = 16, double buffered)");
    let mut t = Table::new(["pN", "pK", "LDM doubles", "fits < 8192?"]);
    for (pn, pk) in [
        (48, 96),
        (32, 96),
        (32, 112),
        (24, 128),
        (20, 144),
        (48, 48),
    ] {
        let words = 2 * (16 * pn + 16 * pk) + pk * pn;
        t.row([
            pn.to_string(),
            pk.to_string(),
            words.to_string(),
            if fits_ldm(16, pn, pk, true) {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("paper's choices: (pN=48, pK=96) single-buffered; (pN=32, pK=96) double-buffered.\n");

    println!("§III-C.3 — register-level blocking (constraint rM·rN + rM + rN < 32)");
    let mut t = Table::new(["rM", "rN", "registers", "LDM-BW reduction"]);
    for c in enumerate_register_blockings().into_iter().take(8) {
        t.row([
            c.rm.to_string(),
            c.rn.to_string(),
            c.registers.to_string(),
            format!("{:.2}", c.reduction),
        ]);
    }
    println!("{}", t.render());
    println!("the paper picks rM = rN = 4 (24 registers), leaving room for α, the zero");
    println!("register and the epilogue temporaries; the analytically-better 4×5 leaves only 3.");
}
