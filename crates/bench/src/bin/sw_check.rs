//! `sw-check` — the concurrency model checker, from the shell.
//!
//! Runs every registered model (the checker's built-in scenarios plus,
//! when the workspace is compiled with `RUSTFLAGS='--cfg sw_check'`,
//! the ported production primitives: the mesh SPSC ring and backoff
//! fuse, the cancellable barrier, the flight-recorder ring, and the
//! service's tenant queues) and
//! checks each against its declared expectation — correct primitives
//! must pass exhaustively, seeded-defect mutants must be caught with a
//! replayable interleaving.
//!
//! ```text
//! RUSTFLAGS='--cfg sw_check' cargo run -p sw-bench --bin sw-check
//! sw-check --list
//! sw-check --model mesh/ring-fifo --seed 7
//! sw-check --model mesh/ring-mutant-relaxed-tail --replay '0.1.1.0'
//! sw-check --json check.json
//! ```
//!
//! Exit codes: 0 all expectations met and exploration exhaustive;
//! 1 an expectation failed (missed mutant, unexpected violation, or
//! internal error); 3 expectations met but at least one exploration
//! was truncated by a budget (bounded, not exhaustive — loud by
//! design).

use sw_check::models::{builtin, Expect, NamedModel};
use sw_check::{Config, Outcome, Schedule};

/// A registered model plus the crate that contributed it.
struct Entry {
    origin: &'static str,
    model: NamedModel,
}

fn all_models() -> Vec<Entry> {
    #[cfg_attr(not(sw_check), allow(unused_mut))]
    let mut out: Vec<Entry> = builtin()
        .into_iter()
        .map(|model| Entry {
            origin: "check",
            model,
        })
        .collect();
    #[cfg(sw_check)]
    {
        out.extend(
            sw_mesh::check_models::models()
                .into_iter()
                .map(|model| Entry {
                    origin: "mesh",
                    model,
                }),
        );
        out.extend(
            sw_sim::check_models::models()
                .into_iter()
                .map(|model| Entry {
                    origin: "sim",
                    model,
                }),
        );
        out.extend(
            sw_probe::check_models::models()
                .into_iter()
                .map(|model| Entry {
                    origin: "probe",
                    model,
                }),
        );
        out.extend(
            sw_serve::check_models::models()
                .into_iter()
                .map(|model| Entry {
                    origin: "serve",
                    model,
                }),
        );
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let list = args.iter().any(|a| a == "--list");
    let only = flag_value(&args, "--model");
    let seed: u64 = flag_value(&args, "--seed")
        .map(|s| {
            s.parse()
                .unwrap_or_else(|_| die(&format!("bad --seed {s}")))
        })
        .unwrap_or(0);
    let replay = flag_value(&args, "--replay");
    let json_path = flag_value(&args, "--json");

    let entries = all_models();
    if cfg!(not(sw_check)) {
        eprintln!(
            "sw-check: built without --cfg sw_check; running the {} built-in models only \
             (rebuild with RUSTFLAGS='--cfg sw_check' to model-check the ported \
             mesh/sim/probe/serve primitives)",
            entries.len()
        );
    }

    if list {
        for e in &entries {
            println!(
                "{:<42} [{}] expect {:<22} {}",
                e.model.name,
                e.origin,
                expect_str(e.model.expect),
                e.model.about
            );
        }
        return;
    }

    let selected: Vec<&Entry> = match &only {
        Some(name) => {
            let e = entries
                .iter()
                .find(|e| e.model.name == *name)
                .unwrap_or_else(|| die(&format!("no model named {name} (try --list)")));
            vec![e]
        }
        None => entries.iter().collect(),
    };
    if replay.is_some() && selected.len() != 1 {
        die("--replay needs --model <name>");
    }

    let mut failed = 0usize;
    let mut truncated = 0usize;
    let mut json_entries: Vec<String> = Vec::new();
    for e in &selected {
        let mut cfg: Config = e.model.config();
        cfg.seed = seed;
        if let Some(tok) = &replay {
            cfg.replay = Some(
                Schedule::parse(tok).unwrap_or_else(|e| die(&format!("bad --replay {tok}: {e}"))),
            );
        }
        let report = e.model.run_with(&cfg);
        let ok = e.model.satisfied(&report);
        let verdict = match (&report.outcome, ok) {
            (_, false) => "FAIL",
            (Outcome::PassBounded, true) => "pass (BOUNDED)",
            (Outcome::Violation(_), true) => "caught",
            _ => "pass",
        };
        println!(
            "{:<42} [{:<5}] {:<14} {} interleavings, {} steps",
            e.model.name, e.origin, verdict, report.stats.executions, report.stats.steps
        );
        if !ok {
            failed += 1;
            // The full report names the missed expectation or shows
            // the unexpected violation's interleaving.
            println!("  expected {}", expect_str(e.model.expect));
            for line in format!("{report}").lines() {
                println!("  {line}");
            }
        } else if report.stats.truncated() {
            truncated += 1;
        }
        json_entries.push(json_entry(e, &report, ok));
    }

    if let Some(path) = json_path {
        let json = format!(
            "{{\"schema\":1,\"ported_primitives\":{},\"seed\":{},\"models\":[{}]}}\n",
            cfg!(sw_check),
            seed,
            json_entries.join(",")
        );
        std::fs::write(&path, json).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        println!("\nJSON report written to {path}");
    }

    if failed > 0 {
        eprintln!("\nsw-check: {failed} model(s) missed their expectation");
        std::process::exit(1);
    }
    if truncated > 0 {
        eprintln!(
            "\nsw-check: all expectations met, but {truncated} exploration(s) were budget-\
             truncated (bounded verification only)"
        );
        std::process::exit(3);
    }
    println!(
        "\nsw-check: all {} model(s) met their expectations",
        selected.len()
    );
}

fn expect_str(e: Expect) -> String {
    match e {
        Expect::Pass => "pass".into(),
        Expect::Violation(k) => format!("violation({})", k.name()),
    }
}

fn json_entry(e: &Entry, report: &sw_check::CheckReport, ok: bool) -> String {
    let outcome = match &report.outcome {
        Outcome::Pass => "pass".into(),
        Outcome::PassBounded => "pass-bounded".into(),
        Outcome::Violation(v) => format!("violation({})", v.kind.name()),
        Outcome::Internal(_) => "internal-error".into(),
    };
    let violation = match &report.outcome {
        Outcome::Violation(v) => format!(
            "{{\"kind\":{:?},\"message\":{:?},\"schedule\":{:?},\"trace\":[{}]}}",
            v.kind.name(),
            v.message,
            v.schedule,
            v.trace
                .iter()
                .map(|t| format!("{t:?}"))
                .collect::<Vec<_>>()
                .join(",")
        ),
        _ => "null".into(),
    };
    format!(
        "{{\"name\":{:?},\"origin\":{:?},\"expect\":{:?},\"outcome\":{:?},\"ok\":{},\
         \"executions\":{},\"steps\":{},\"truncated\":{},\"violation\":{}}}",
        e.model.name,
        e.origin,
        expect_str(e.model.expect),
        outcome,
        ok,
        report.stats.executions,
        report.stats.steps,
        report.stats.truncated(),
        violation
    )
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    })
}

fn die(msg: &str) -> ! {
    eprintln!("sw-check: {msg}");
    std::process::exit(2);
}
