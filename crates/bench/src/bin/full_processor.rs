//! Scales the headline result to the full SW26010 processor: the
//! four core groups of Figure 1, each running the optimized DGEMM on
//! its own column band with its own memory controller.
//!
//! (The paper evaluates one CG; TaihuLight's HPL drives all four. This
//! is the reproduction's extrapolation, labelled as such.)
//!
//! ```text
//! cargo run -p sw-bench --release --bin full_processor
//! ```

use sw_bench::Table;
use sw_dgemm::multi::estimate_multi_cg;
use sw_dgemm::Variant;

fn main() {
    let mk = 9216usize;
    let mut t = Table::new(["core groups", "Gflops/s", "efficiency", "scaling"]);
    let mut base = 0.0;
    for cgs in [1usize, 2, 4] {
        let r = estimate_multi_cg(Variant::Sched, cgs, mk, mk, mk).expect("estimate");
        if cgs == 1 {
            base = r.gflops;
        }
        t.row([
            cgs.to_string(),
            format!("{:.1}", r.gflops),
            format!("{:.1}%", 100.0 * r.efficiency),
            format!("{:.2}x", r.gflops / base),
        ]);
    }
    println!("SCHED DGEMM at m=n=k={mk}, scaled across core groups\n");
    println!("{}", t.render());
    println!("each CG owns its memory controller (Figure 1), so bands scale near-linearly;");
    println!("the full 4-CG SW26010 peaks at 4 x 742.4 = 2969.6 Gflops/s.");
}
