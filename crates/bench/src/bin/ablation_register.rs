//! Empirical register-blocking ablation (§III-C.3 made measurable).
//!
//! The paper derives rM = rN = 4 from the LDM-bandwidth-reduction
//! formula `2/(1/rM + 1/rN)` under the 32-register budget. Here every
//! feasible tiling's kernel is generated, list-scheduled and executed
//! on the pipeline model; cycles per `vmad` is the empirical
//! counterpart of the analytic reduction.
//!
//! ```text
//! cargo run -p sw-bench --release --bin ablation_register
//! ```

use sw_bench::Table;
use sw_isa::tiling::{ablation_tilings, gen_tiled_kernel_scheduled, TiledKernelCfg, Tiling};
use sw_isa::{Machine, NullComm};

fn measure(t: Tiling) -> (f64, u64) {
    let pk = 64;
    let cfg = TiledKernelCfg {
        pm: t.rows(),
        pn: 4 * t.rn,
        pk,
        a_base: 0,
        b_base: 2048,
        c_base: 4096,
        alpha_addr: 8000,
    };
    let prog = gen_tiled_kernel_scheduled(&cfg, t);
    let mut ldm = vec![0.0f64; 8192];
    ldm[8000] = 1.0;
    let mut comm = NullComm;
    let r = Machine::new(&mut ldm, &mut comm).run(&prog);
    (r.cycles as f64 / r.vmads as f64, r.cycles)
}

fn main() {
    let mut rows: Vec<(Tiling, f64, u64)> = ablation_tilings()
        .into_iter()
        .map(|t| {
            let (per, cyc) = measure(t);
            (t, per, cyc)
        })
        .collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    let mut table = Table::new([
        "rM",
        "rN",
        "registers",
        "analytic reduction",
        "cycles/vmad",
        "flops/cycle",
    ]);
    for (t, per, _) in &rows {
        table.row([
            t.rm.to_string(),
            t.rn.to_string(),
            t.tile_registers().to_string(),
            format!("{:.2}", 2.0 / (1.0 / t.rm as f64 + 1.0 / t.rn as f64)),
            format!("{per:.2}"),
            format!("{:.2}", 8.0 / per),
        ]);
    }
    println!(
        "§III-C.3 register-blocking ablation (list-scheduled kernels on the pipeline model)\n"
    );
    println!("{}", table.render());
    let best = rows.first().unwrap();
    println!(
        "best measured tiling: rM={} rN={} at {:.2} cycles/vmad — the paper's 4x4 \
         (and its transpose) lead, exactly as the analytic model predicts.",
        best.0.rm, best.0.rn, best.1
    );
}
