//! Seeded fault-injection sweep: drives `DgemmRunner` through N
//! deterministic fault plans under both ABFT policies plus a forced
//! mesh-wedge scenario, and tabulates what was injected, what was
//! detected, what was healed, and the residual against the fault-free
//! result.
//!
//! ```text
//! cargo run -p sw-bench --release --bin fault_sweep \
//!     [-- --seeds 8] [--json] [--assert]
//! ```
//!
//! `--assert` turns the sweep into a CI gate: every `Correct` run must
//! heal bitwise, every `Detect` run must surface the structured
//! `AbftMismatch`, the wedge must surface `MeshDeadlock`, and nothing
//! may panic. Exit code 1 on any violation.

use std::time::Duration;
use sw_bench::Table;
use sw_dgemm::gen::random_matrix;
use sw_dgemm::{
    AbftPolicy, BlockingParams, DgemmError, DgemmRunner, FaultSpec, Matrix, StuckSpec, Variant,
    WedgeSpec,
};

fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn arg_after(flag: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != flag).nth(1)
}

/// One sweep row: what a single (seed, policy) run did.
struct Row {
    seed: u64,
    policy: &'static str,
    outcome: String,
    injected: u64,
    detected: u64,
    corrected: u64,
    degraded: u64,
    /// `Some(max |C - C_clean|)` when the run returned a C; exact
    /// healing shows as `0.0e0`.
    residual: Option<f64>,
    /// Did the run end the way the policy demands?
    pass: bool,
}

/// The sweep's fault plan for one seed: a guaranteed bit-flip per CG
/// block, a transient-retry load, a trickle of LDM soft errors, and —
/// every third seed — a stuck CPE to force degradation.
fn plan(seed: u64) -> FaultSpec {
    FaultSpec {
        dma_transient_per_myriad: 200,
        ldm_bitflip_per_myriad: 5,
        bitflip_every_epoch: true,
        stuck: (seed.is_multiple_of(3)).then_some(StuckSpec {
            cpe: (seed % 64) as usize,
            epoch: 1,
        }),
        ..FaultSpec::seeded(seed)
    }
}

fn run_case(
    seed: u64,
    policy: AbftPolicy,
    p: BlockingParams,
    a: &Matrix,
    b: &Matrix,
    c0: &Matrix,
    clean: &Matrix,
) -> Row {
    let name = if policy == AbftPolicy::Correct {
        "Correct"
    } else {
        "Detect"
    };
    let mut c = c0.clone();
    let result = DgemmRunner::new(Variant::Pe)
        .params(p)
        .faults(plan(seed))
        .abft(policy)
        .run(1.5, a, b, 0.5, &mut c);
    let mut row = Row {
        seed,
        policy: name,
        outcome: String::new(),
        injected: 0,
        detected: 0,
        corrected: 0,
        degraded: 0,
        residual: None,
        pass: false,
    };
    match result {
        Ok(report) => {
            let f = report.faults.unwrap_or_default();
            let residual = c.max_abs_diff(clean);
            row.outcome = "healed".into();
            row.injected = f.total_injected();
            row.detected = f.detected_abft + f.detected_retry_exhausted;
            row.corrected = f.recovered_abft_blocks + f.recovered_dma_retry;
            row.degraded = f.recovered_degraded_blocks;
            row.residual = Some(residual);
            // A healed run must be bitwise identical to the fault-free
            // one, and with a guaranteed flip per block something must
            // actually have been injected and corrected.
            row.pass = policy == AbftPolicy::Correct
                && residual == 0.0
                && f.injected_dma_bitflip > 0
                && f.recovered_abft_blocks > 0;
        }
        Err(DgemmError::AbftMismatch {
            block, attempts, ..
        }) => {
            row.outcome = format!("mismatch@{block:?} after {attempts}");
            row.pass = policy == AbftPolicy::Detect;
        }
        Err(e) => {
            row.outcome = format!("error: {e}");
        }
    }
    row
}

/// The wedge scenario: a CPE whose mesh sends vanish must surface as a
/// structured `MeshDeadlock` — and never as a panic.
fn run_wedge(p: BlockingParams, a: &Matrix, b: &Matrix, c0: &Matrix) -> Row {
    let mut c = c0.clone();
    let spec = FaultSpec {
        wedge: Some(WedgeSpec { cpe: 18, epoch: 0 }),
        ..FaultSpec::seeded(0)
    };
    let result = DgemmRunner::new(Variant::Pe)
        .params(p)
        .faults(spec)
        .mesh_timeout(Duration::from_millis(200))
        .run(1.5, a, b, 0.5, &mut c);
    let (outcome, pass) = match result {
        Err(DgemmError::MeshDeadlock { coord, .. }) => {
            (format!("deadlock, fuse at {coord:?}"), true)
        }
        Err(e) => (format!("error: {e}"), false),
        Ok(_) => ("ran to completion (!)".into(), false),
    };
    Row {
        seed: 0,
        policy: "wedge",
        outcome,
        injected: 1,
        detected: u64::from(pass),
        corrected: 0,
        degraded: 0,
        residual: None,
        pass,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let seeds: u64 = arg_after("--seeds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let p = BlockingParams::test_small();
    let (m, n, k) = (2 * p.bm(), p.bn(), p.bk());
    let a = random_matrix(m, k, 1);
    let b = random_matrix(k, n, 2);
    let c0 = random_matrix(m, n, 3);
    let mut clean = c0.clone();
    DgemmRunner::new(Variant::Pe)
        .params(p)
        .run(1.5, &a, &b, 0.5, &mut clean)
        .expect("fault-free reference run");

    let mut rows = Vec::new();
    for seed in 0..seeds {
        for policy in [AbftPolicy::Detect, AbftPolicy::Correct] {
            rows.push(run_case(seed, policy, p, &a, &b, &c0, &clean));
        }
    }
    rows.push(run_wedge(p, &a, &b, &c0));

    if has_flag("--json") {
        let items: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"seed\":{},\"policy\":\"{}\",\"outcome\":\"{}\",\"injected\":{},\
                     \"detected\":{},\"corrected\":{},\"degraded\":{},\"residual\":{},\
                     \"pass\":{}}}",
                    r.seed,
                    r.policy,
                    json_escape(&r.outcome),
                    r.injected,
                    r.detected,
                    r.corrected,
                    r.degraded,
                    r.residual.map_or("null".to_string(), |x| format!("{x:e}")),
                    r.pass,
                )
            })
            .collect();
        println!("{{\"schema\":1,\"rows\":[{}]}}", items.join(","));
    } else {
        let mut table = Table::new([
            "seed",
            "policy",
            "outcome",
            "injected",
            "detected",
            "corrected",
            "degraded",
            "residual",
            "pass",
        ]);
        for r in &rows {
            table.row([
                r.seed.to_string(),
                r.policy.to_string(),
                r.outcome.clone(),
                r.injected.to_string(),
                r.detected.to_string(),
                r.corrected.to_string(),
                r.degraded.to_string(),
                r.residual.map_or("-".to_string(), |x| format!("{x:.1e}")),
                if r.pass { "yes" } else { "NO" }.to_string(),
            ]);
        }
        println!("== fault sweep: {seeds} seeds x {{Detect, Correct}} + wedge ==\n");
        println!("{}", table.render());
        println!(
            "Correct must heal bitwise (residual 0.0e0); Detect must surface the \
             structured mismatch; the wedge must surface MeshDeadlock."
        );
    }

    if has_flag("--assert") {
        let failures: Vec<&Row> = rows.iter().filter(|r| !r.pass).collect();
        if !failures.is_empty() {
            for r in failures {
                eprintln!(
                    "FAIL seed {} policy {}: {} (residual {:?})",
                    r.seed, r.policy, r.outcome, r.residual
                );
            }
            std::process::exit(1);
        }
        println!("\nall {} sweep rows passed", rows.len());
    }
}
