//! Unified performance report over the observability stack:
//!
//! 1. **Per-pipe stall attribution** of every variant's thread-level
//!    kernel (the Figure 6 ladder RAW→PE→ROW→DB→SCHED as a
//!    stall-breakdown table) — where the cycles of one kernel
//!    invocation go, per issue pipe, classified as issue / RAW stall /
//!    load-use stall / pipe conflict / loop overhead.
//! 2. **Achieved vs. model DMA bandwidth** per mode (the Figure 4
//!    micro-benchmark against the wire-model ceiling).
//! 3. A **Chrome-trace export** of a small traced functional run plus
//!    the variant's timing DAG: one track per CPE, per mesh link, and
//!    per timing-DAG resource — loadable in Perfetto / chrome://tracing.
//! 4. A **metrics snapshot** footer (DMA traffic, mesh words, kernel
//!    cache, model calibration) from the global registry.
//!
//! ```text
//! cargo run -p sw-bench --release --bin perf_report \
//!     [-- --variant sched] [--size 256] [--trace perf_trace.json]
//! ```

use sw_bench::Table;
use sw_dgemm::timing::build_shared_dag;
use sw_dgemm::variants::raw::RawParams;
use sw_dgemm::{BlockingParams, DgemmRunner, Variant};
use sw_isa::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
use sw_isa::{Machine, NullComm, StallKind, StallReport};
use sw_mem::dma::{BandwidthModel, DmaMode};
use sw_mem::microbench::{sustained_bandwidth_gbs, MicrobenchConfig};
use sw_probe::trace::validate_chrome_trace;
use sw_sim::Tracer;

fn arg_after(flag: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != flag).nth(1)
}

fn parse_variant(s: &str) -> Variant {
    match s {
        "raw" => Variant::Raw,
        "pe" => Variant::Pe,
        "row" => Variant::Row,
        "db" => Variant::Db,
        _ => Variant::Sched,
    }
}

/// The (pm, pn, pk, style) of a variant's thread-level kernel at the
/// paper's production blocking.
fn kernel_shape(v: Variant) -> (usize, usize, usize, KernelStyle) {
    match v {
        Variant::Raw => {
            let r = RawParams::paper();
            (r.pm, r.pn, r.kc, KernelStyle::Naive)
        }
        _ => {
            let p = v.paper_params();
            (p.pm, p.pn, p.pk, v.kernel_style())
        }
    }
}

/// Runs the variant's kernel on the probed interpreter (operands in a
/// tightly packed synthetic LDM image, as `timing::measure_kernel`
/// lays them out).
fn probe_kernel(v: Variant) -> (sw_isa::ExecReport, StallReport) {
    let (pm, pn, pk, style) = kernel_shape(v);
    let a_base = 0;
    let b_base = (a_base + pm * pk).next_multiple_of(4);
    let c_base = (b_base + pk * pn).next_multiple_of(4);
    let alpha_addr = c_base + pm * pn;
    let cfg = BlockKernelCfg {
        pm,
        pn,
        pk,
        a_src: Operand::Ldm,
        b_src: Operand::Ldm,
        a_base,
        b_base,
        c_base,
        alpha_addr,
    };
    let prog = gen_block_kernel(&cfg, style);
    let mut ldm = vec![0.0f64; alpha_addr + 1];
    ldm[alpha_addr] = 1.0;
    let mut comm = NullComm;
    Machine::new(&mut ldm, &mut comm).run_probed(&prog)
}

fn stall_table() -> Table {
    let mut table = Table::new([
        "variant",
        "cycles",
        "instrs",
        "issue",
        "raw",
        "load-use",
        "pipe-conf",
        "loop-ovh",
        "stall%",
    ]);
    let mut stalls_by_variant = Vec::new();
    for v in Variant::ALL {
        let (report, stall) = probe_kernel(v);
        stall
            .check()
            .unwrap_or_else(|e| panic!("{v} attribution broken: {e}"));
        assert_eq!(
            stall.issue_cycles(),
            report.instructions,
            "{v}: issue slots must equal instruction count"
        );
        table.row([
            v.name().to_string(),
            report.cycles.to_string(),
            report.instructions.to_string(),
            stall.issue_cycles().to_string(),
            stall.kind_cycles(StallKind::Raw).to_string(),
            stall.kind_cycles(StallKind::LoadUse).to_string(),
            stall.kind_cycles(StallKind::PipeConflict).to_string(),
            stall.kind_cycles(StallKind::LoopOverhead).to_string(),
            format!(
                "{:.1}",
                100.0 * stall.stall_cycles() as f64 / (2 * report.cycles) as f64
            ),
        ]);
        stalls_by_variant.push((v, stall.stall_cycles()));
    }
    // The §IV-C claim, as a hard gate: instruction scheduling must
    // remove stall cycles relative to the DB kernel.
    let db = stalls_by_variant[3].1;
    let sched = stalls_by_variant[4].1;
    assert!(
        sched < db,
        "SCHED kernel must stall strictly less than DB ({sched} vs {db})"
    );
    table
}

fn fig4_table(model: &BandwidthModel) -> Table {
    let cfg = MicrobenchConfig::default();
    let mut table = Table::new([
        "m=k",
        "PE achieved",
        "PE wire model",
        "ROW achieved",
        "ROW wire model",
    ]);
    for mk in [1536usize, 4608, 9216, 15360] {
        let fp = mk * mk * 8;
        let pe = sustained_bandwidth_gbs(model, DmaMode::Pe, mk, mk, &cfg);
        let row = sustained_bandwidth_gbs(model, DmaMode::Row, mk, mk, &cfg);
        let pe_wire = model.sustained_gbs(DmaMode::Pe, cfg.pm * 8, fp);
        let row_wire = model.sustained_gbs(DmaMode::Row, cfg.bm * 8, fp);
        assert!(
            pe <= pe_wire && row <= row_wire,
            "startup cannot add bandwidth"
        );
        table.row([
            mk.to_string(),
            format!("{pe:.1}"),
            format!("{pe_wire:.1}"),
            format!("{row:.1}"),
            format!("{row_wire:.1}"),
        ]);
    }
    table
}

fn main() {
    let variant = parse_variant(&arg_after("--variant").unwrap_or_default());
    let size: usize = arg_after("--size")
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let trace_path = arg_after("--trace").unwrap_or_else(|| "perf_trace.json".into());
    let model = BandwidthModel::calibrated();

    println!("== kernel stall attribution (one thread-level kernel invocation, both pipes) ==\n");
    println!("{}", stall_table().render());
    println!("stall% = non-issue slots over 2 pipes x cycles; SCHED < DB is asserted.\n");

    println!("== Figure 4: achieved vs wire-model DMA bandwidth (GB/s) ==\n");
    println!("{}", fig4_table(&model).render());
    println!(
        "achieved = micro-benchmark with per-descriptor startup; wire model = streaming ceiling.\n"
    );

    // Traced functional run (per-CPE + mesh tracks) plus the variant's
    // timing DAG (DMA engine / CPE cluster tracks) on one tracer.
    let tracer = Tracer::enabled();
    if variant != Variant::Raw {
        let params = BlockingParams::test_small();
        let (dag, _) = build_shared_dag(variant, size, size, size, params, &model)
            .expect("timing DAG at the traced size");
        dag.emit_trace(&tracer);
    }
    let a = sw_dgemm::gen::random_matrix(size, size, 1);
    let b = sw_dgemm::gen::random_matrix(size, size, 2);
    let mut c = sw_dgemm::gen::random_matrix(size, size, 3);
    model.publish(sw_probe::metrics::global());
    let report = DgemmRunner::new(variant)
        .tracer(tracer.clone())
        .run(1.0, &a, &b, 0.0, &mut c)
        .expect("traced functional run");
    let data = tracer.take();
    let json = data.to_chrome_json();
    let summary = validate_chrome_trace(&json).expect("trace must be Perfetto-valid");
    assert!(summary.pairs > 0, "traced run must produce span pairs");
    std::fs::write(&trace_path, &json).expect("write trace JSON");
    println!("== trace export ==\n");
    println!(
        "{variant} functional run at {size}^3: {} bytes DMA, {} mesh words sent",
        report.stats.dma.total_bytes(),
        report.stats.mesh.row_words_sent + report.stats.mesh.col_words_sent,
    );
    println!(
        "wrote {trace_path}: {} tracks, {} events ({} B/E pairs) — load in https://ui.perfetto.dev",
        data.tracks.len(),
        summary.events,
        summary.pairs
    );

    // A short self-healing run so the fault/recovery footer reflects
    // live machinery, not zeros: one guaranteed DMA bit-flip per CG
    // block, healed by ABFT recompute (tallies also land in the
    // metrics snapshot below as `faults.*`).
    if variant != Variant::Raw {
        let p = BlockingParams::test_small();
        let fa = sw_dgemm::gen::random_matrix(2 * p.bm(), p.bk(), 4);
        let fb = sw_dgemm::gen::random_matrix(p.bk(), p.bn(), 5);
        let mut fc = sw_dgemm::gen::random_matrix(2 * p.bm(), p.bn(), 6);
        let spec = sw_dgemm::FaultSpec {
            bitflip_every_epoch: true,
            ..sw_dgemm::FaultSpec::seeded(1)
        };
        let fr = DgemmRunner::new(variant)
            .params(p)
            .faults(spec)
            .abft(sw_dgemm::AbftPolicy::Correct)
            .run(1.0, &fa, &fb, 0.0, &mut fc)
            .expect("self-healing demo run");
        let f = fr.faults.expect("fault plan installed");
        println!("\n== fault injection & recovery (seeded demo plan, ABFT=Correct) ==\n");
        println!(
            "injected: {} dma bit-flips | detected: {} checksum misses | \
             healed: {} recomputed blocks",
            f.injected_dma_bitflip, f.detected_abft, f.recovered_abft_blocks
        );
        assert_eq!(
            f.recovered_abft_blocks, f.detected_abft,
            "every detected fault must be healed in the demo plan"
        );
    }

    // Causal critical path of the fig6-size schedule: the longest
    // dependency chain through the timing DAG, aggregated by task
    // label — where a production-size run's makespan actually goes,
    // and what an optimization would have to shorten.
    if variant != Variant::Raw {
        let p = variant.paper_params();
        let (dag, _) =
            build_shared_dag(variant, 1536, 1536, 1536, p, &model).expect("fig6-size timing DAG");
        let cp = dag.critical_path();
        println!("\n== critical path ({variant} at the fig6 size, 1536^3) ==\n");
        println!(
            "makespan: {} cycles; top segments of the binding chain:",
            cp.makespan_cycles
        );
        for (label, resource, cycles, count) in cp.top_segments(3) {
            println!(
                "  {label:<24} {:<5} {cycles:>12} cycles  {:>6.2}%  ({count} segments)",
                format!("{resource:?}"),
                100.0 * cycles as f64 / cp.makespan_cycles as f64
            );
        }
    }

    println!("\n== metrics snapshot ==\n");
    print!("{}", sw_probe::metrics::global().snapshot().render());
}
