//! Ablation of the §IV-B design choices: what double buffering costs
//! in block size and buys in overlap, across feasible pN at pK = 96.
//!
//! Shows why the paper shrank pN from 48 to 32: the single-buffered
//! pN = 48 blocking does not fit the LDM doubled, and the overlap win
//! outweighs the extra traffic of the smaller bN.
//!
//! ```text
//! cargo run -p sw-bench --release --bin ablation_blocks
//! ```

use sw_bench::Table;
use sw_dgemm::model::fits_ldm;
use sw_dgemm::timing::estimate_shared;
use sw_dgemm::{BlockingParams, Variant};
use sw_mem::dma::BandwidthModel;

fn main() {
    let model = BandwidthModel::calibrated();
    let mk: usize = 9216;
    println!("§IV-B ablation at m=n=k={mk}, pM=16, pK=96 (timing simulation)\n");
    let mut t = Table::new([
        "pN",
        "LDM (single)",
        "LDM (double)",
        "ROW Gflops (single-buffered)",
        "SCHED Gflops (double-buffered)",
    ]);
    for pn in [16usize, 24, 32, 40, 48] {
        let params = BlockingParams {
            pm: 16,
            pn,
            pk: 96,
            rm: 4,
            rn: 4,
        };
        let n = mk.next_multiple_of(params.bn());
        let single = if fits_ldm(16, pn, 96, false) {
            format!(
                "{:.1}",
                estimate_shared(Variant::Row, mk, n, mk, params, &model)
                    .unwrap()
                    .gflops
            )
        } else {
            "does not fit".into()
        };
        let double = if fits_ldm(16, pn, 96, true) {
            format!(
                "{:.1}",
                estimate_shared(Variant::Sched, mk, n, mk, params, &model)
                    .unwrap()
                    .gflops
            )
        } else {
            "does not fit".into()
        };
        t.row([
            pn.to_string(),
            params.ldm_doubles(false).to_string(),
            params.ldm_doubles(true).to_string(),
            single,
            double,
        ]);
    }
    println!("{}", t.render());
    println!("reading: pN = 48 maximizes reuse but cannot be double-buffered; pN = 32 is");
    println!("the largest doubled blocking, and overlap + scheduling dwarf the lost reuse.");
}
