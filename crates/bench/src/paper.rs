//! The paper's published numbers, used as the reference column in every
//! harness table.

/// Figure 6's SCHED series as printed above the curve: (m = n = k,
/// Gflops/s).
pub const PAPER_FIG6_SCHED: [(usize, f64); 10] = [
    (1536, 623.9),
    (3072, 668.6),
    (4608, 683.9),
    (6144, 691.7),
    (7680, 696.4),
    (9216, 699.7),
    (10752, 702.0),
    (12288, 703.7),
    (13824, 705.0),
    (15360, 706.1),
];

/// §V's relative gains: each variant over its predecessor.
pub const PAPER_GAINS: [(&str, f64); 4] = [
    ("PE/RAW", 1.423),
    ("ROW/PE", 1.166),
    ("DB/ROW", 1.26),
    ("SCHED/DB", 2.139),
];

/// §IV-C's kernel profile: the whole inner loop of one thread-level
/// block (8 strip steps) and vmad's share of its cycles.
pub const PAPER_KERNEL_LOOP_CYCLES: u64 = 101_858;

/// §IV-C vmad occupancy.
pub const PAPER_KERNEL_VMAD_SHARE: f64 = 0.97;

/// The headline result: 706.1 Gflops/s, 95 % of the 742.4 peak.
pub const PAPER_PEAK_GFLOPS: f64 = 706.1;

/// Approximate Figure 4 endpoints read off the plot, for the harness's
/// reference column: (m = k, PE GB/s, ROW GB/s).
pub const PAPER_FIG4_APPROX: [(usize, f64, f64); 3] =
    [(1536, 13.7, 21.8), (9216, 24.0, 28.3), (15360, 26.0, 29.3)];
