//! Table/CSV emission shared by the harness binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned table that can also serialize to CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are pre-formatted strings).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(out, "{cell:>w$}  ", w = w);
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let line = |cells: &[String]| cells.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",");
        out.push_str(&line(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// Writes a table as CSV to `path`.
pub fn write_csv(table: &Table, path: &Path) -> std::io::Result<()> {
    fs::write(path, table.to_csv())
}

/// Parses a `--csv PATH` argument from the process args, if present.
pub fn csv_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--csv" {
            return args.next().map(Into::into);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new(["a", "long header"]);
        t.row(["1", "2"]);
        t.row(["333", "4,4"]);
        let text = t.render();
        assert!(text.contains("long header"));
        assert!(text.lines().count() == 4);
        let csv = t.to_csv();
        assert!(csv.contains("\"4,4\""));
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
