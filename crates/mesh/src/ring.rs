//! Lock-free bounded SPSC ring links and the hybrid backoff they wait
//! with.
//!
//! The mesh's fast path gives every (sender, receiver, network) pair
//! its own [`SpscRing`]: a power-of-two circular buffer with one
//! atomic head (consumer) and one atomic tail (producer), each on its
//! own cache line so the two sides never false-share. Because exactly
//! one thread produces and exactly one consumes, a push is one
//! relaxed tail load, one acquire head load, one slot write and one
//! release tail store — no lock, no syscall, no condvar.
//!
//! Blocking is layered on top with [`Backoff`]: a full ring (or an
//! empty one on the receive side) is waited out with a
//! spin → yield → park progression, and the existing deadlock fuse is
//! preserved — the deadline is captured lazily on the first non-spin
//! wait, so the uncontended path never reads the clock, yet a peer
//! that never drains still trips [`crate::MeshError::Deadlock`] after
//! the configured timeout.

// Concurrency vocabulary comes from the sw-check facade: plain `std`
// re-exports in a normal build (zero-cost, the hot path is unchanged),
// checker-instrumented types under `--cfg sw_check` so this exact
// source is model-checked by `check_models`.
use std::mem::MaybeUninit;
use sw_arch::V256;
use sw_check::cell::UnsafeCell;
use sw_check::sync::atomic::{AtomicUsize, Ordering};
use sw_check::time::{Duration, Instant};

/// Pads (and aligns) a value to its own 128-byte region so the
/// producer-side and consumer-side indices of a ring never share a
/// cache line (128 covers the 64 B line size plus adjacent-line
/// prefetching).
#[repr(align(128))]
struct CachePadded<T>(T);

/// A bounded single-producer single-consumer ring of mesh words.
///
/// Capacity must be a power of two (indices are free-running and
/// wrapped with a mask). Slots hold [`MaybeUninit`] so the buffer
/// costs no initialization; `V256` is `Copy`, so abandoned slots need
/// no drops.
pub(crate) struct SpscRing {
    /// Consumer cursor: next slot to pop. Written only by the
    /// consumer.
    head: CachePadded<AtomicUsize>,
    /// Producer cursor: next slot to fill. Written only by the
    /// producer.
    tail: CachePadded<AtomicUsize>,
    slots: Box<[UnsafeCell<MaybeUninit<V256>>]>,
    mask: usize,
}

// The slot array is raced only in the disciplined SPSC pattern: the
// producer writes a slot strictly before publishing it with a release
// tail store; the consumer reads it strictly after an acquire tail
// load. The mesh hands each side to exactly one port, and ports are
// `!Sync`, so single-producer/single-consumer holds by construction.
unsafe impl Send for SpscRing {}
unsafe impl Sync for SpscRing {}

impl SpscRing {
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "ring capacity must be a power of two"
        );
        SpscRing {
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: capacity - 1,
        }
    }

    /// Producer side: enqueues `v` unless the ring is full.
    #[inline]
    pub fn try_push(&self, v: V256) -> bool {
        // Relaxed tail load: SPSC — only the producer writes `tail`,
        // so this reads our own last store. The acquire on `head`
        // pairs with the consumer's release to bound the window.
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            return false; // full
        }
        // SAFETY: single producer; the slot at `tail` is outside the
        // consumer's visible window until the release store below.
        self.slots[tail & self.mask].with_mut(|p| unsafe { (*p).write(v) });
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: dequeues the oldest word, if any.
    #[inline]
    pub fn try_pop(&self) -> Option<V256> {
        // Relaxed head load: mirror of `try_push` — only the consumer
        // writes `head`. Both pairings are model-checked by
        // `check_models::ring_spsc_fifo` and the ring mutants.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None; // empty
        }
        // SAFETY: single consumer; the acquire tail load ordered this
        // slot's contents before us.
        let v = self.slots[head & self.mask].with(|p| unsafe { (*p).assume_init_read() });
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }
}

/// Seeded defects for the model-check suite ([`crate::check_models`]):
/// mutated copies of the verified operations above, compiled only
/// under the checker cfg so production builds never contain them.
/// Every mutant must be *caught* by `sw-check` — a mutant that passes
/// means the suite lost its teeth.
#[cfg(sw_check)]
impl SpscRing {
    /// `try_push` with the publishing store weakened to `Relaxed`: the
    /// consumer's slot read is no longer ordered after the slot write,
    /// which the checker reports as a data race.
    pub(crate) fn try_push_mutant_relaxed_tail(&self, v: V256) -> bool {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            return false;
        }
        self.slots[tail & self.mask].with_mut(|p| unsafe { (*p).write(v) });
        // MUTANT: was Ordering::Release.
        self.tail.0.store(tail.wrapping_add(1), Ordering::Relaxed);
        true
    }

    /// `try_push` with the slot write sunk below the publish: the
    /// consumer can observe the new tail before the slot holds data.
    pub(crate) fn try_push_mutant_slot_after_publish(&self, v: V256) -> bool {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            return false;
        }
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        // MUTANT: the write belongs above the publish.
        self.slots[tail & self.mask].with_mut(|p| unsafe { (*p).write(v) });
        true
    }
}

/// How many exponential spin rounds before yielding the time slice.
/// Under the model checker the spin/yield phases shrink to one round
/// each so small models reach every phase (including the timed park)
/// within a few scheduler steps.
#[cfg(not(sw_check))]
const SPIN_ROUNDS: u32 = 6;
#[cfg(sw_check)]
const SPIN_ROUNDS: u32 = 1;
/// How many yield rounds before parking in timed sleeps.
#[cfg(not(sw_check))]
const YIELD_ROUNDS: u32 = 10;
#[cfg(sw_check)]
const YIELD_ROUNDS: u32 = 1;
/// Park quantum once spinning and yielding have not helped; short
/// enough that a late wakeup costs microseconds, long enough that a
/// genuinely blocked run does not burn a core until the fuse trips.
const PARK_SLEEP: Duration = Duration::from_micros(50);

/// Spin → yield → park waiter with a lazily armed deadline.
///
/// The progression: `2^k` busy spins for the first [`SPIN_ROUNDS`]
/// rounds (contention that resolves in nanoseconds never leaves
/// userspace), then [`YIELD_ROUNDS`] of `thread::yield_now`, then
/// timed [`PARK_SLEEP`] parks. The deadline clock is read only when
/// the spin phase is exhausted, so a wait that resolves immediately
/// costs no `Instant::now` call at all.
pub(crate) struct Backoff {
    timeout: Duration,
    deadline: Option<Instant>,
    round: u32,
}

impl Backoff {
    pub fn new(timeout: Duration) -> Self {
        Backoff {
            timeout,
            deadline: None,
            round: 0,
        }
    }

    /// Waits one round. Returns `false` once the deadlock fuse (the
    /// timeout measured from the first non-spin round) has tripped.
    #[inline]
    pub fn snooze(&mut self) -> bool {
        if self.round < SPIN_ROUNDS {
            for _ in 0..(1u32 << self.round) {
                sw_check::hint::spin_loop();
            }
            self.round += 1;
            return true;
        }
        let deadline = *self
            .deadline
            .get_or_insert_with(|| Instant::now() + self.timeout);
        if Instant::now() >= deadline {
            return false;
        }
        if self.round < SPIN_ROUNDS + YIELD_ROUNDS {
            sw_check::thread::yield_now();
            self.round += 1;
        } else {
            sw_check::thread::sleep(PARK_SLEEP);
        }
        true
    }
}

/// Seeded defect for the model-check suite: see the `SpscRing` mutant
/// block above.
#[cfg(sw_check)]
impl Backoff {
    /// `snooze` with the deadline check skipped: the fuse never trips,
    /// so a peer that never drains parks this thread forever — which
    /// the checker reports as a livelock.
    pub(crate) fn snooze_mutant_fuse_skip(&mut self) -> bool {
        if self.round < SPIN_ROUNDS {
            for _ in 0..(1u32 << self.round) {
                sw_check::hint::spin_loop();
            }
            self.round += 1;
            return true;
        }
        // MUTANT: the deadline arm + check belong here.
        if self.round < SPIN_ROUNDS + YIELD_ROUNDS {
            sw_check::thread::yield_now();
            self.round += 1;
        } else {
            sw_check::thread::sleep(PARK_SLEEP);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let r = SpscRing::new(8);
        for i in 0..8 {
            assert!(r.try_push(V256::splat(i as f64)));
        }
        assert!(!r.try_push(V256::ZERO), "ninth push must report full");
        for i in 0..8 {
            assert_eq!(r.try_pop(), Some(V256::splat(i as f64)));
        }
        assert_eq!(r.try_pop(), None);
    }

    #[test]
    fn wraps_around_many_times() {
        let r = SpscRing::new(4);
        for i in 0..1000 {
            assert!(r.try_push(V256::splat(i as f64)));
            assert_eq!(r.try_pop(), Some(V256::splat(i as f64)));
        }
    }

    #[test]
    fn concurrent_producer_consumer_preserves_order() {
        let r = SpscRing::new(8);
        let n = 100_000u64;
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut b = Backoff::new(Duration::from_secs(10));
                for i in 0..n {
                    while !r.try_push(V256::splat(i as f64)) {
                        assert!(b.snooze(), "producer timed out");
                    }
                }
            });
            let mut b = Backoff::new(Duration::from_secs(10));
            for i in 0..n {
                let v = loop {
                    match r.try_pop() {
                        Some(v) => break v,
                        None => assert!(b.snooze(), "consumer timed out"),
                    }
                };
                assert_eq!(v, V256::splat(i as f64));
            }
        });
    }

    #[test]
    fn backoff_fuse_trips() {
        let mut b = Backoff::new(Duration::from_millis(20));
        let start = Instant::now();
        let mut rounds = 0u64;
        while b.snooze() {
            rounds += 1;
            assert!(rounds < 1_000_000, "fuse never tripped");
        }
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn indices_do_not_false_share() {
        // The padded producer and consumer cursors must live ≥128 B
        // apart (the alignment contract the type encodes).
        let r = SpscRing::new(8);
        let head = &r.head as *const _ as usize;
        let tail = &r.tail as *const _ as usize;
        assert!(head.abs_diff(tail) >= 128);
    }
}
