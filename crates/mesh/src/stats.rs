//! Mesh traffic counters.

use sw_probe::metrics::{Counter, Registry};

/// Shared atomic counters behind every port of one mesh. Built on the
/// probe crate's [`Counter`] so a snapshot can be published into a
/// metrics [`Registry`] without translation.
#[derive(Debug, Default)]
pub(crate) struct MeshCounters {
    row_sent: Counter,
    col_sent: Counter,
    row_recv: Counter,
    col_recv: Counter,
}

impl MeshCounters {
    pub fn add_row_sent(&self, n: u64) {
        self.row_sent.add(n);
    }
    pub fn add_col_sent(&self, n: u64) {
        self.col_sent.add(n);
    }
    pub fn add_row_recv(&self, n: u64) {
        self.row_recv.add(n);
    }
    pub fn add_col_recv(&self, n: u64) {
        self.col_recv.add(n);
    }

    pub fn snapshot(&self) -> MeshStats {
        MeshStats {
            row_words_sent: self.row_sent.get(),
            col_words_sent: self.col_sent.get(),
            row_words_received: self.row_recv.get(),
            col_words_received: self.col_recv.get(),
        }
    }
}

/// Snapshot of mesh traffic, in 256-bit words. "Sent" counts enqueued
/// copies (a broadcast to 7 mates counts 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeshStats {
    /// Words enqueued onto row links.
    pub row_words_sent: u64,
    /// Words enqueued onto column links.
    pub col_words_sent: u64,
    /// Words consumed from row receive buffers.
    pub row_words_received: u64,
    /// Words consumed from column receive buffers.
    pub col_words_received: u64,
}

impl MeshStats {
    /// Total bytes moved over the mesh (counting each delivered copy).
    pub fn bytes_sent(&self) -> u64 {
        (self.row_words_sent + self.col_words_sent) * 32
    }

    /// Accumulates this snapshot into `reg` under `sim.mesh.*`.
    pub fn publish(&self, reg: &Registry) {
        reg.counter("sim.mesh.row.words_sent")
            .add(self.row_words_sent);
        reg.counter("sim.mesh.col.words_sent")
            .add(self.col_words_sent);
        reg.counter("sim.mesh.row.words_received")
            .add(self.row_words_received);
        reg.counter("sim.mesh.col.words_received")
            .add(self.col_words_received);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_adds() {
        let c = MeshCounters::default();
        c.add_row_sent(7);
        c.add_col_recv(3);
        let s = c.snapshot();
        assert_eq!(s.row_words_sent, 7);
        assert_eq!(s.col_words_received, 3);
        assert_eq!(s.bytes_sent(), 7 * 32);
    }

    #[test]
    fn publish_lands_in_registry() {
        let reg = Registry::new();
        let s = MeshStats {
            row_words_sent: 7,
            col_words_sent: 5,
            row_words_received: 7,
            col_words_received: 5,
        };
        s.publish(&reg);
        s.publish(&reg); // accumulates, run after run
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sim.mesh.row.words_sent"), Some(14));
        assert_eq!(snap.counter("sim.mesh.col.words_received"), Some(10));
    }
}
