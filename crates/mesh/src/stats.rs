//! Mesh traffic counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters behind every port of one mesh.
#[derive(Debug, Default)]
pub(crate) struct MeshCounters {
    row_sent: AtomicU64,
    col_sent: AtomicU64,
    row_recv: AtomicU64,
    col_recv: AtomicU64,
}

impl MeshCounters {
    pub fn add_row_sent(&self, n: u64) {
        self.row_sent.fetch_add(n, Ordering::Relaxed);
    }
    pub fn add_col_sent(&self, n: u64) {
        self.col_sent.fetch_add(n, Ordering::Relaxed);
    }
    pub fn add_row_recv(&self, n: u64) {
        self.row_recv.fetch_add(n, Ordering::Relaxed);
    }
    pub fn add_col_recv(&self, n: u64) {
        self.col_recv.fetch_add(n, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> MeshStats {
        MeshStats {
            row_words_sent: self.row_sent.load(Ordering::Relaxed),
            col_words_sent: self.col_sent.load(Ordering::Relaxed),
            row_words_received: self.row_recv.load(Ordering::Relaxed),
            col_words_received: self.col_recv.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of mesh traffic, in 256-bit words. "Sent" counts enqueued
/// copies (a broadcast to 7 mates counts 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeshStats {
    /// Words enqueued onto row links.
    pub row_words_sent: u64,
    /// Words enqueued onto column links.
    pub col_words_sent: u64,
    /// Words consumed from row receive buffers.
    pub row_words_received: u64,
    /// Words consumed from column receive buffers.
    pub col_words_received: u64,
}

impl MeshStats {
    /// Total bytes moved over the mesh (counting each delivered copy).
    pub fn bytes_sent(&self) -> u64 {
        (self.row_words_sent + self.col_words_sent) * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_adds() {
        let c = MeshCounters::default();
        c.add_row_sent(7);
        c.add_col_recv(3);
        let s = c.snapshot();
        assert_eq!(s.row_words_sent, 7);
        assert_eq!(s.col_words_received, 3);
        assert_eq!(s.bytes_sent(), 7 * 32);
    }
}
