//! Mesh traffic counters.
//!
//! Memory-ordering audit: this module holds no atomics of its own —
//! every counter delegates to [`sw_probe::metrics::Counter`], whose
//! all-`Relaxed` discipline is justified in the "Memory-ordering
//! audit" section of `sw_probe::metrics`. Nothing here derives a
//! happens-before edge from a counter value.

use sw_probe::metrics::{Counter, Registry};

/// Shared atomic counters behind every port of one mesh. Built on the
/// probe crate's [`Counter`] so a snapshot can be published into a
/// metrics [`Registry`] without translation.
#[derive(Debug, Default)]
pub(crate) struct MeshCounters {
    row_sent: Counter,
    col_sent: Counter,
    row_recv: Counter,
    col_recv: Counter,
}

impl MeshCounters {
    pub fn add_row_sent(&self, n: u64) {
        self.row_sent.add(n);
    }
    pub fn add_col_sent(&self, n: u64) {
        self.col_sent.add(n);
    }
    pub fn add_row_recv(&self, n: u64) {
        self.row_recv.add(n);
    }
    pub fn add_col_recv(&self, n: u64) {
        self.col_recv.add(n);
    }

    pub fn snapshot(&self) -> MeshStats {
        MeshStats {
            row_words_sent: self.row_sent.get(),
            col_words_sent: self.col_sent.get(),
            row_words_received: self.row_recv.get(),
            col_words_received: self.col_recv.get(),
        }
    }
}

/// Snapshot of mesh traffic, in 256-bit words. "Sent" counts enqueued
/// copies (a broadcast to 7 mates counts 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeshStats {
    /// Words enqueued onto row links.
    pub row_words_sent: u64,
    /// Words enqueued onto column links.
    pub col_words_sent: u64,
    /// Words consumed from row receive buffers.
    pub row_words_received: u64,
    /// Words consumed from column receive buffers.
    pub col_words_received: u64,
}

impl MeshStats {
    /// Total bytes moved over the mesh (counting each delivered copy).
    pub fn bytes_sent(&self) -> u64 {
        (self.row_words_sent + self.col_words_sent) * 32
    }

    /// Accumulates this snapshot into `reg` under `sim.mesh.*`.
    pub fn publish(&self, reg: &Registry) {
        reg.counter("sim.mesh.row.words_sent")
            .add(self.row_words_sent);
        reg.counter("sim.mesh.col.words_sent")
            .add(self.col_words_sent);
        reg.counter("sim.mesh.row.words_received")
            .add(self.row_words_received);
        reg.counter("sim.mesh.col.words_received")
            .add(self.col_words_received);
    }
}

/// Per-CPE mesh traffic counters, `cells[row][col]`. Alongside the
/// mesh-wide [`MeshCounters`], every port also tallies its own cell so
/// a failed run can be diagnosed per rendezvous group (the runtime
/// feeds a [`MeshGridStats`] snapshot to `sw-lint`'s mesh pass to name
/// the wedged row/column group).
#[derive(Debug, Default)]
pub(crate) struct GridCounters {
    cells: [[CellCounters; 8]; 8],
}

#[derive(Debug, Default)]
pub(crate) struct CellCounters {
    row_sent: Counter,
    col_sent: Counter,
    row_recv: Counter,
    col_recv: Counter,
    row_starved: Counter,
    col_starved: Counter,
}

impl GridCounters {
    pub fn cell(&self, row: usize, col: usize) -> &CellCounters {
        &self.cells[row][col]
    }

    pub fn snapshot(&self) -> MeshGridStats {
        let mut out = MeshGridStats::default();
        for r in 0..8 {
            for c in 0..8 {
                let cell = &self.cells[r][c];
                out.cells[r][c] = CellTraffic {
                    row_sent: cell.row_sent.get(),
                    col_sent: cell.col_sent.get(),
                    row_recv: cell.row_recv.get(),
                    col_recv: cell.col_recv.get(),
                    row_starved: cell.row_starved.get(),
                    col_starved: cell.col_starved.get(),
                };
            }
        }
        out
    }
}

impl CellCounters {
    pub fn add_sent(&self, col_net: bool, n: u64) {
        if col_net {
            self.col_sent.add(n);
        } else {
            self.row_sent.add(n);
        }
    }
    pub fn add_recv(&self, col_net: bool, n: u64) {
        if col_net {
            self.col_recv.add(n);
        } else {
            self.row_recv.add(n);
        }
    }
    /// Counts a receive that timed out: one word of unmet demand, the
    /// signature the rendezvous summary keys on.
    pub fn add_starved(&self, col_net: bool) {
        if col_net {
            self.col_starved.inc();
        } else {
            self.row_starved.inc();
        }
    }
}

/// One CPE's mesh traffic, in 256-bit words.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellTraffic {
    /// Copies this CPE enqueued onto its row links.
    pub row_sent: u64,
    /// Copies this CPE enqueued onto its column links.
    pub col_sent: u64,
    /// Words this CPE consumed from its row receive buffer.
    pub row_recv: u64,
    /// Words this CPE consumed from its column receive buffer.
    pub col_recv: u64,
    /// Row receives that timed out (unmet demand at deadlock time).
    pub row_starved: u64,
    /// Column receives that timed out.
    pub col_starved: u64,
}

/// Snapshot of per-CPE traffic, `cells[mesh_row][mesh_col]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshGridStats {
    /// Per-CPE counters.
    pub cells: [[CellTraffic; 8]; 8],
}

impl MeshGridStats {
    /// Adds another snapshot cell-by-cell — how a multi-block run folds
    /// each block's grid into one per-CPE total.
    pub fn accumulate(&mut self, other: &MeshGridStats) {
        for r in 0..8 {
            for c in 0..8 {
                let a = &mut self.cells[r][c];
                let b = &other.cells[r][c];
                a.row_sent += b.row_sent;
                a.col_sent += b.col_sent;
                a.row_recv += b.row_recv;
                a.col_recv += b.col_recv;
                a.row_starved += b.row_starved;
                a.col_starved += b.col_starved;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_cells_tally_independently() {
        let g = GridCounters::default();
        g.cell(2, 5).add_sent(false, 7);
        g.cell(2, 5).add_recv(true, 3);
        g.cell(2, 5).add_starved(false);
        let s = g.snapshot();
        assert_eq!(
            s.cells[2][5],
            CellTraffic {
                row_sent: 7,
                col_recv: 3,
                row_starved: 1,
                ..CellTraffic::default()
            }
        );
        assert_eq!(s.cells[0][0], CellTraffic::default());
    }

    #[test]
    fn snapshot_reflects_adds() {
        let c = MeshCounters::default();
        c.add_row_sent(7);
        c.add_col_recv(3);
        let s = c.snapshot();
        assert_eq!(s.row_words_sent, 7);
        assert_eq!(s.col_words_received, 3);
        assert_eq!(s.bytes_sent(), 7 * 32);
    }

    #[test]
    fn publish_lands_in_registry() {
        let reg = Registry::new();
        let s = MeshStats {
            row_words_sent: 7,
            col_words_sent: 5,
            row_words_received: 7,
            col_words_received: 5,
        };
        s.publish(&reg);
        s.publish(&reg); // accumulates, run after run
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sim.mesh.row.words_sent"), Some(14));
        assert_eq!(snap.counter("sim.mesh.col.words_received"), Some(10));
    }
}
